//! # tcp-trim — reproduction of TCP-TRIM (ICDCS 2016)
//!
//! A facade over the workspace crates that reproduce *"Tuning the
//! Aggressive TCP Behavior for Highly Concurrent HTTP Connections in Data
//! Center"*:
//!
//! - [`trim_core`] (re-exported as `core`) — the TCP-TRIM algorithm (probe-based window
//!   inheritance, delay-based queuing control) and the steady-state model
//!   for the threshold `K`.
//! - [`netsim`] — the packet-level discrete-event network simulator
//!   (links, drop-tail/ECN switches, data-center topologies).
//! - [`trim_tcp`] (re-exported as `tcp`) — a packet-level TCP with pluggable congestion
//!   control: Reno, CUBIC, DCTCP, L2DCT, and TCP-TRIM.
//! - [`trim_workload`] (re-exported as `workload`) — HTTP ON/OFF packet-train workloads and
//!   the scenario builders used by the paper's evaluation.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use tcp_trim::prelude::*;
//!
//! // Five senders race packet trains into one front-end over a 1 Gbps
//! // bottleneck, once with Reno and once with TCP-TRIM.
//! let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
//! for cc in [CcKind::Reno, trim] {
//!     let mut scenario = ScenarioBuilder::many_to_one(5)
//!         .congestion_control(cc)
//!         .build();
//!     for s in 0..5 {
//!         scenario.send_train(s, TrainSpec::at_secs(0.1, 64 * 1024));
//!     }
//!     let report = scenario.run_for_secs(1.0);
//!     assert_eq!(report.completed_trains(), 5);
//! }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]

pub use netsim;
pub use trim_core as core;
pub use trim_tcp as tcp;
pub use trim_workload as workload;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use netsim::prelude::*;
    pub use trim_core::{kmodel, SendDecision, Trim, TrimConfig, WindowAction};
    pub use trim_tcp::{CcKind, TcpConfig};
    pub use trim_workload::scenario::{ScenarioBuilder, TrainSpec};
}
