//! Quickstart: five web servers send one HTTP response each to a
//! front-end over a 1 Gbps bottleneck, once with plain TCP (Reno) and
//! once with TCP-TRIM, and we compare completion times and timeouts.
//!
//! Run with `cargo run --example quickstart --release`.

use tcp_trim::prelude::*;

fn main() {
    let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
    println!("five servers, one 64 KB response each at t = 10 ms\n");
    println!(
        "{:<8} {:>10} {:>10} {:>9} {:>7}",
        "cc", "act", "max_ct", "timeouts", "drops"
    );
    for cc in [CcKind::Reno, trim] {
        let mut scenario = ScenarioBuilder::many_to_one(5)
            .congestion_control(cc.clone())
            .build();
        for s in 0..5 {
            scenario.send_train(s, TrainSpec::at_secs(0.01, 64 * 1024));
        }
        let report = scenario.run_for_secs(1.0);
        assert_eq!(report.completed_trains(), 5);
        let act = report.act();
        println!(
            "{:<8} {:>8.2}ms {:>8.2}ms {:>9} {:>7}",
            cc.name(),
            act.mean * 1e3,
            act.max * 1e3,
            report.total_timeouts(),
            report.bottleneck.dropped,
        );
    }

    // The analytical side: the RTT threshold TCP-TRIM derives for this
    // network (Eq. 22 of the paper).
    let c = 1e9 / (1460.0 * 8.0); // packets per second
    let d = 224_000; // ~base RTT of the topology in ns
    let k = kmodel::k_lower_bound_ns(c, d);
    println!(
        "\nK guideline for this network: {:.0} us (base RTT {:.0} us)",
        k as f64 / 1e3,
        d as f64 / 1e3
    );
    let st = kmodel::steady_state(c, d, k, 5);
    println!(
        "steady state with 5 synchronized senders: target queue {:.1} pkts, \
         peak {:.1} pkts, full utilization: {}",
        st.target_queue, st.max_queue, st.full_utilization
    );
}
