//! The paper's motivating scenario (Section II.B / Fig. 4 / Fig. 6):
//! persistent HTTP connections carry 200 small ON/OFF responses, then a
//! long packet train arrives with the *inherited* congestion window.
//! Plain TCP inherits a huge window and collapses; TCP-TRIM probes first.
//!
//! Run with `cargo run --example http_onoff --release`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tcp_trim::prelude::*;
use tcp_trim::workload::http::impairment_workload;

fn main() {
    let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
    for cc in [CcKind::Reno, trim] {
        let mut scenario = ScenarioBuilder::many_to_one(5)
            .congestion_control(cc.clone())
            .record_cwnd()
            .record_queue()
            .build();
        // Each server: 200 responses of 2-10 KB from 0.1 s (~1 ms apart),
        // then a >=128 KB long train at 0.5 s.
        let mut rng = StdRng::seed_from_u64(42);
        for s in 0..5 {
            scenario.send_trains(s, impairment_workload(&mut rng));
        }
        let report = scenario.run_for_secs(3.0);

        println!("==== {} ====", cc.name());
        println!(
            "  timeouts {}   drops {}   peak queue {} pkts   ACT {:.2} ms",
            report.total_timeouts(),
            report.bottleneck.dropped,
            report.bottleneck.max_len,
            report.act().mean * 1e3,
        );
        for s in &report.senders {
            let cwnd_pre_lpt = s
                .cwnd
                .as_ref()
                .and_then(|series| series.value_at(SimTime::from_secs_f64(0.499)))
                .unwrap_or(0.0);
            let lpt = s.trains.iter().find(|t| t.id == 200);
            println!(
                "  conn {}: window before the long train {:>5.0} pkts, \
                 long-train completion {:>7.2} ms, timeouts {}",
                s.sender + 1,
                cwnd_pre_lpt,
                lpt.map(|t| t.completion_time().as_secs_f64() * 1e3)
                    .unwrap_or(f64::NAN),
                s.stats.timeouts,
            );
        }
        println!();
    }
    println!(
        "TCP blindly inherits the ~800-packet window grown during the ON/OFF\n\
         phase and floods the 100-packet switch buffer at 0.5 s; TCP-TRIM's\n\
         probe pair re-measures the path and tunes the inherited window, so\n\
         the queue never overflows."
    );
}
