//! Tour of the TCP mechanism options: NewReno vs SACK loss recovery,
//! delayed ACKs, and the packet-event trace — on a deterministic
//! injected-loss pattern.
//!
//! Run with `cargo run --example mechanisms --release`.

use tcp_trim::prelude::*;
use tcp_trim::tcp::{Segment, TcpConfig, TcpHost};

fn transfer(cfg: TcpConfig, label: &str) {
    let mut sim: Simulator<Segment> = Simulator::new();
    let mut rx = TcpHost::new();
    rx.add_receiver(FlowId(0), cfg);
    let rx_node = sim.add_host(Box::new(rx));
    let mut tx = TcpHost::new();
    let mut burst_cfg = cfg;
    burst_cfg.init_cwnd = 128.0; // one-burst send: arrival index == seq
    let idx = tx.add_sender(FlowId(0), rx_node, burst_cfg, &CcKind::Reno);
    tx.schedule_train(idx, SimTime::from_secs_f64(0.001), 60 * 1460);
    let tx_node = sim.add_host(Box::new(tx));
    let (data_ch, _) = sim.connect(
        tx_node,
        rx_node,
        Bandwidth::gbps(1),
        Dur::from_micros(50),
        QueueConfig::drop_tail(1000),
    );
    // Five scattered losses in one flight.
    sim.inject_channel_drops(data_ch, [6, 11, 16, 21, 26]);
    sim.enable_packet_trace(10_000);
    sim.run_until(SimTime::from_secs(5));

    let host: &TcpHost = sim.host(tx_node);
    let conn = host.connection(0);
    let stats = conn.stats();
    let ct = conn.completed_trains()[0].completion_time();
    let drops = sim
        .packet_trace()
        .expect("enabled")
        .events()
        .iter()
        .filter(|e| matches!(e.kind, PacketEventKind::Dropped { .. }))
        .count();
    println!(
        "{label:<22} completion {:>9}   rtx {:>2}   fast-rtx {}   RTOs {}   traced drops {}",
        format!("{ct}"),
        stats.rtx_sent,
        stats.fast_retransmits,
        stats.timeouts,
        drops,
    );
}

fn main() {
    println!("60-packet transfer, packets 6/11/16/21/26 lost in one flight\n");
    let base = TcpConfig::default().with_min_rto(Dur::from_millis(20));
    transfer(base, "newreno");
    transfer(base.with_sack(), "sack");
    transfer(
        base.with_sack().with_delayed_ack(Dur::from_millis(40)),
        "sack + delayed acks",
    );
    println!(
        "\nNewReno repairs one hole per round trip; SACK's scoreboard repairs\n\
         exactly the five holes within a single recovery episode. Delayed ACKs\n\
         do not slow recovery because out-of-order data is acked immediately."
    );
}
