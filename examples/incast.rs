//! Partition/aggregate incast: a front-end fans a query out to many
//! workers whose responses all arrive at (nearly) the same instant — the
//! many-to-one pattern of Section II.B.2. Sweep the fan-out and watch
//! plain TCP fall off a cliff while TCP-TRIM degrades gracefully.
//!
//! Run with `cargo run --example incast --release`.

use tcp_trim::prelude::*;

/// One aggregation round: `n` workers each return a 30 KB shard at t=1ms,
/// after a warm-up exchange that gives the persistent connections an
/// inherited window.
fn round(cc: &CcKind, n: usize) -> (f64, u64) {
    let mut scenario = ScenarioBuilder::many_to_one(n)
        .congestion_control(cc.clone())
        .build();
    for w in 0..n {
        // Warm-up: a few earlier responses grow the window.
        for k in 0..10 {
            scenario.send_train(w, TrainSpec::at_secs(0.001 + k as f64 * 0.002, 8_000));
        }
        // The measured aggregation burst.
        scenario.send_train(w, TrainSpec::at_secs(0.05, 30_000));
    }
    let report = scenario.run_for_secs(3.0);
    let times: Vec<_> = report
        .senders
        .iter()
        .flat_map(|s| {
            s.trains
                .iter()
                .filter(|t| t.id == 10)
                .map(|t| t.completion_time())
        })
        .collect();
    assert_eq!(times.len(), n, "every shard must arrive");
    let summary = tcp_trim::workload::Summary::of(&times);
    (summary.max, report.total_timeouts())
}

fn main() {
    let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
    println!("aggregation of n x 30 KB shards (query completes at the slowest shard)\n");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "workers", "tcp_worst", "trim_worst", "tcp_rtos", "trim_rtos"
    );
    for n in [4, 8, 16, 24, 32] {
        let (tcp_max, tcp_to) = round(&CcKind::Reno, n);
        let (trim_max, trim_to) = round(&trim, n);
        println!(
            "{:>8} {:>12.2}ms {:>12.2}ms {:>12} {:>12}",
            n,
            tcp_max * 1e3,
            trim_max * 1e3,
            tcp_to,
            trim_to
        );
    }
    println!(
        "\nThe query is as slow as its slowest shard: one RTO (>=200 ms) on any\n\
         worker stalls the whole aggregation. TCP-TRIM's probing + delay-based\n\
         queue control keeps the switch buffer shallow enough to absorb the\n\
         synchronized burst."
    );
}
