//! Convergence and fairness (the Fig. 10 scenario): five long flows
//! arrive two seconds apart on a shared 1 Gbps bottleneck, then leave one
//! by one. Watch each protocol's per-flow throughput as the competition
//! changes.
//!
//! Run with `cargo run --example fairness --release`.

use tcp_trim::prelude::*;
use tcp_trim::tcp::TcpHost;

fn run(cc: &CcKind) -> Vec<Vec<(SimTime, f64)>> {
    let mut sc = ScenarioBuilder::many_to_one(5)
        .congestion_control(cc.clone())
        .throughput_bin(Dur::from_millis(500))
        .build();
    for i in 0..5 {
        // Base-RTT warm-up on the idle network (the paper establishes all
        // connections before any data flows).
        sc.send_train(i, TrainSpec::at_secs(0.001 + 0.0002 * i as f64, 1));
        // The staggered long flow.
        sc.send_train(i, TrainSpec::at_secs(0.1 + 2.0 * i as f64, 4_000_000_000));
        let node = sc.net().senders[i];
        sc.sim_mut()
            .host_mut::<TcpHost>(node)
            .schedule_stop(0, SimTime::from_secs_f64(12.1 + 2.0 * i as f64));
    }
    let report = sc.run_for_secs(22.0);
    report
        .senders
        .iter()
        .map(|s| s.throughput.as_ref().expect("metered").mbps_series())
        .collect()
}

fn at(series: &[(SimTime, f64)], t: f64) -> f64 {
    let target = SimTime::from_secs_f64(t);
    let i = series.partition_point(|&(at, _)| at <= target);
    if i == 0 {
        return 0.0;
    }
    // Beyond a stopped flow's last bin the throughput is zero.
    let (bin_start, v) = series[i - 1];
    if target.saturating_since(bin_start) > Dur::from_millis(500) {
        0.0
    } else {
        v
    }
}

fn main() {
    let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
    for cc in [CcKind::Reno, trim] {
        let series = run(&cc);
        println!("==== {} — per-flow throughput (Mbps) ====", cc.name());
        println!(
            "{:>6} {:>7} {:>7} {:>7} {:>7} {:>7}  (fair share)",
            "t", "c1", "c2", "c3", "c4", "c5"
        );
        for step in 0..10 {
            let t = 1.0 + 2.0 * step as f64;
            let active = if t < 12.1 {
                (step + 1).min(5)
            } else {
                5usize.saturating_sub(step - 5)
            };
            let shares: Vec<f64> = series.iter().map(|s| at(s, t)).collect();
            println!(
                "{:>5.1}s {:>7.0} {:>7.0} {:>7.0} {:>7.0} {:>7.0}  ({:.0})",
                t,
                shares[0],
                shares[1],
                shares[2],
                shares[3],
                shares[4],
                if active > 0 {
                    1000.0 / active as f64
                } else {
                    0.0
                }
            );
        }
        println!();
    }
}
