//! Partition/aggregate (incast) queries — the many-to-one pattern the
//! paper's Section II.B.2 motivates: a front-end fans a query out to `n`
//! workers whose response shards all arrive at (nearly) the same time,
//! and the query completes when the *slowest* shard does.

use netsim::time::Dur;
use rand::Rng;
use rand::RngExt;

use crate::metrics::Summary;
use crate::scenario::{Scenario, ScenarioBuilder, TrainSpec};

/// Configuration of a partition/aggregate run.
#[derive(Clone, Debug)]
pub struct QueryConfig {
    /// Number of workers per query.
    pub workers: usize,
    /// Response shard size in bytes.
    pub shard_bytes: u64,
    /// Number of queries issued (sequentially spaced by `query_gap`).
    pub queries: usize,
    /// Spacing between query fan-outs.
    pub query_gap: Dur,
    /// Warm-up responses per worker before the first query, so the
    /// persistent connections carry inherited windows (see DESIGN.md §4).
    pub warmup_responses: usize,
    /// Random seed for warm-up sizes.
    pub seed: u64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            workers: 16,
            shard_bytes: 30_000,
            queries: 5,
            query_gap: Dur::from_millis(400),
            warmup_responses: 10,
            seed: 0x1ca5,
        }
    }
}

/// Results of one incast run.
#[derive(Clone, Debug)]
pub struct IncastReport {
    /// Per-query completion time: the slowest shard of each query.
    pub query_completion: Vec<Dur>,
    /// Summary over all individual shard completions.
    pub shards: Summary,
    /// Retransmission timeouts across all workers.
    pub timeouts: u64,
    /// Packets dropped at the fan-in bottleneck.
    pub drops: u64,
}

impl IncastReport {
    /// Summary over query completion times (mean is the mean QCT).
    pub fn queries(&self) -> Summary {
        Summary::of(&self.query_completion)
    }
}

/// Schedules the queries onto a built many-to-one [`Scenario`] and runs
/// it. The scenario must have been built with at least
/// [`QueryConfig::workers`] senders.
///
/// # Panics
///
/// Panics if the scenario has fewer senders than `cfg.workers`.
pub fn run_incast<R: Rng + ?Sized>(
    mut sc: Scenario,
    cfg: &QueryConfig,
    rng: &mut R,
) -> IncastReport {
    assert!(
        sc.net().senders.len() >= cfg.workers,
        "scenario has {} senders, need {}",
        sc.net().senders.len(),
        cfg.workers
    );
    // Warm-up: earlier responses grow each persistent connection.
    for w in 0..cfg.workers {
        let mut t = 0.001;
        for _ in 0..cfg.warmup_responses {
            sc.send_train(w, TrainSpec::at_secs(t, rng.random_range(2_000..=10_000)));
            t += 0.002;
        }
    }
    // Queries: synchronized shards, one train per worker per query.
    let first_query = 0.001 + cfg.warmup_responses as f64 * 0.002 + 0.02;
    for q in 0..cfg.queries {
        let at = first_query + q as f64 * cfg.query_gap.as_secs_f64();
        for w in 0..cfg.workers {
            sc.send_train(w, TrainSpec::at_secs(at, cfg.shard_bytes));
        }
    }
    let horizon = first_query + cfg.queries as f64 * cfg.query_gap.as_secs_f64() + 3.0;
    let report = sc.run_for_secs(horizon);

    let mut query_completion = Vec::with_capacity(cfg.queries);
    let mut all_shards = Vec::new();
    for q in 0..cfg.queries {
        let shard_id = (cfg.warmup_responses + q) as u64;
        let mut worst = Dur::ZERO;
        let mut seen = 0;
        for s in report.senders.iter().take(cfg.workers) {
            for t in s.trains.iter().filter(|t| t.id == shard_id) {
                let ct = t.completion_time();
                worst = worst.max(ct);
                all_shards.push(ct);
                seen += 1;
            }
        }
        assert_eq!(seen, cfg.workers, "query {q}: missing shards");
        query_completion.push(worst);
    }
    IncastReport {
        query_completion,
        shards: Summary::of(&all_shards),
        timeouts: report.total_timeouts(),
        drops: report.bottleneck.dropped,
    }
}

/// Convenience: builds the default 1 Gbps many-to-one fabric for
/// `cfg.workers` workers with the given congestion control and runs the
/// queries.
pub fn incast_qct(cc: &trim_tcp::CcKind, cfg: &QueryConfig) -> IncastReport {
    use rand::SeedableRng;
    let mut builder = ScenarioBuilder::many_to_one(cfg.workers).congestion_control(cc.clone());
    if cc.build().uses_ecn() {
        // ECN-based protocols need a marking threshold at the switch
        // (20 packets at 1 Gbps, per the DCTCP paper).
        builder = builder.ecn_threshold(20);
    }
    let sc = builder.build();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    run_incast(sc, cfg, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trim_tcp::CcKind;

    #[test]
    fn all_queries_complete_and_are_counted() {
        let cfg = QueryConfig {
            workers: 4,
            queries: 3,
            ..QueryConfig::default()
        };
        let report = incast_qct(&CcKind::Reno, &cfg);
        assert_eq!(report.query_completion.len(), 3);
        assert_eq!(report.shards.count, 12);
        // A query is never faster than its fastest shard.
        assert!(report.queries().min >= report.shards.min);
        assert!(report.queries().max <= report.shards.max + 1e-12);
    }

    #[test]
    fn trim_beats_reno_at_wide_fanout() {
        let cfg = QueryConfig {
            workers: 16,
            queries: 3,
            ..QueryConfig::default()
        };
        let reno = incast_qct(&CcKind::Reno, &cfg);
        let trim = incast_qct(&CcKind::trim_with_capacity(1_000_000_000, 1460), &cfg);
        assert_eq!(trim.timeouts, 0, "{trim:?}");
        assert!(reno.timeouts > 0, "{reno:?}");
        assert!(
            trim.queries().mean < reno.queries().mean,
            "QCT: trim {} vs reno {}",
            trim.queries().mean,
            reno.queries().mean
        );
    }

    #[test]
    #[should_panic(expected = "need")]
    fn too_few_senders_rejected() {
        use rand::SeedableRng;
        let sc = ScenarioBuilder::many_to_one(2).build();
        let cfg = QueryConfig::default(); // wants 16 workers
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = run_incast(sc, &cfg, &mut rng);
    }
}
