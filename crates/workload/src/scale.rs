//! Engine-scale incast: N senders (up to 100 000) fanning into one
//! front-end through a single switch.
//!
//! This is the stress workload behind the `trim-perf` macro-benchmarks
//! and the `large_scale_100k` campaign: it exists to exercise the event
//! engine at flow counts far beyond the paper's figures, so the
//! topology is the plain star and every knob lives in [`ScaleConfig`].
//! The report carries only deterministic quantities (completions,
//! packet audit, event count) — wall-clock timing is layered on top by
//! `trim-perf` and never enters campaign artifacts.

use netsim::prelude::*;
use netsim::time::SimTime;
use netsim::topology::{self, LinkSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use trim_tcp::{CcKind, Segment, TcpConfig, TcpHost};

use crate::metrics::Summary;
use crate::scenario::{schedule_train, wire_flow};

/// Parameters of one scale-incast run.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Number of senders (= flows), each on its own host.
    pub flows: usize,
    /// Application bytes per flow (one train per sender).
    pub bytes_per_flow: u64,
    /// Train starts are drawn uniformly from `[0, start_window)` so the
    /// first round-trip is not one synchronized 100k-packet burst.
    pub start_window: Dur,
    /// Hard simulation horizon; stragglers past it count as incomplete.
    pub horizon: Dur,
    /// RTO floor (the paper's datacenter tuning, not the 200 ms WAN
    /// default, so loss recovery does not dominate the run).
    pub min_rto: Dur,
    /// Seed for the start-time draw.
    pub seed: u64,
    /// Congestion control on every sender.
    pub cc: CcKind,
    /// Sending connections packed onto each sender host (flows on one
    /// host share its access link and flow slab). `1` reproduces the
    /// historical one-host-per-flow topology exactly; larger values keep
    /// million-flow runs to a bounded node/link count and exercise the
    /// struct-of-arrays slab at depth.
    pub senders_per_host: usize,
}

impl ScaleConfig {
    /// A scale point with the benchmark defaults: per-flow bytes shrink
    /// as the flow count grows so every point moves a comparable total
    /// volume (~146 MB) through the 1 Gbps bottleneck.
    pub fn with_flows(flows: usize) -> Self {
        ScaleConfig {
            flows,
            bytes_per_flow: (146_000_000 / flows.max(1) as u64).max(1_460), // trim-lint: allow(no-raw-unit-literal, reason = "total volume (~146 MB) held constant across flow counts; bytes, not time")
            start_window: Dur::from_millis(100),
            horizon: Dur::from_secs(10),
            min_rto: Dur::from_millis(20),
            seed: 0x5ca1e,
            cc: CcKind::Reno,
            senders_per_host: 1,
        }
    }

    /// The million-flow stress point: 10⁶ single-segment flows packed
    /// 1 000 to a host (1 000 sender hosts + the front-end), the
    /// headline workload for the timing-wheel + flow-slab engine. The
    /// 1 Gbps bottleneck cannot drain 10⁶ segments inside the horizon,
    /// so the run is dominated by queue drops and RTO backoff — exactly
    /// the timer-heavy regime the hierarchical wheel exists for;
    /// `completed` reports the flows that made it.
    pub fn million_flow() -> Self {
        ScaleConfig {
            flows: 1_000_000, // trim-lint: allow(no-raw-unit-literal, reason = "a flow count, not a physical quantity; no unit constructor applies")
            bytes_per_flow: 1_460,
            start_window: Dur::from_millis(500),
            horizon: Dur::from_secs(5),
            min_rto: Dur::from_millis(20),
            seed: 0x5ca1e,
            cc: CcKind::Reno,
            senders_per_host: 1_000,
        }
    }
}

/// Deterministic outcome of one scale-incast run.
#[derive(Clone, Debug)]
pub struct ScaleReport {
    /// Flows whose train completed within the horizon.
    pub completed: usize,
    /// Packet audit at the horizon (injected/delivered/dropped/...).
    pub audit: AuditStats,
    /// Retransmission timeouts fired across all senders.
    pub timeouts: u64,
    /// Events the engine dispatched.
    pub events: u64,
    /// Peak concurrent on-the-wire packets (arena high-water mark).
    pub arena_high_water: usize,
    /// Completion-time summary of the finished trains (seconds).
    pub act: Summary,
}

/// Runs the scale incast: `cfg.flows` senders each push one train to
/// the front-end of a 1 Gbps star.
///
/// Deterministic: a pure function of `cfg`.
pub fn run_scale_incast(cfg: &ScaleConfig) -> ScaleReport {
    let mut sim: Simulator<Segment> = Simulator::new();
    let link = LinkSpec::new(
        Bandwidth::gbps(1),
        Dur::from_micros(50),
        QueueConfig::drop_tail(100),
    );
    let per_host = cfg.senders_per_host.max(1);
    let hosts = cfg.flows.div_ceil(per_host);
    let net = topology::many_to_one(&mut sim, hosts, link, |role| {
        Box::new(match role {
            topology::Role::Sender(_) => TcpHost::with_sender_capacity(per_host),
            _ => TcpHost::new(),
        })
    });
    let tcp = TcpConfig::default().with_min_rto(cfg.min_rto);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let window = cfg.start_window.as_nanos();
    for i in 0..cfg.flows {
        let s = net.senders[i / per_host];
        let idx = wire_flow(&mut sim, FlowId(i as u64), s, net.front_end, tcp, &cfg.cc);
        let at = SimTime::from_nanos(rng.random_range(0..window.max(1)));
        schedule_train(
            &mut sim,
            s,
            idx,
            crate::TrainSpec {
                at,
                bytes: cfg.bytes_per_flow,
            },
        );
    }
    sim.run_until(SimTime::ZERO + cfg.horizon);

    let mut times: Vec<Dur> = Vec::new();
    let mut timeouts = 0u64;
    for &s in &net.senders {
        let host = sim.host::<TcpHost>(s);
        host.slab_leak_check()
            .expect("flow slab books must balance after a scale run"); // trim-lint: allow(no-panic-in-library, reason = "a leaked slab slot is engine corruption; aborting the campaign is the only safe outcome")
        for conn in host.connections() {
            timeouts += conn.stats().timeouts;
            times.extend(conn.completed_trains().iter().map(|t| t.completion_time()));
        }
    }
    ScaleReport {
        completed: times.len(),
        audit: sim.audit_stats(),
        timeouts,
        events: sim.events_processed(),
        arena_high_water: sim.arena_high_water(),
        act: Summary::of(&times),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_incast_completes_every_flow() {
        let mut cfg = ScaleConfig::with_flows(50);
        cfg.bytes_per_flow = 10_000;
        let r = run_scale_incast(&cfg);
        assert_eq!(r.completed, 50, "all 50 trains finish: {r:?}");
        assert!(r.events > 0);
        assert!(r.arena_high_water > 0);
        assert_eq!(r.audit.arena_live, 0, "arena drains with the run");
        assert!(r.act.mean > 0.0);
    }

    #[test]
    fn scale_incast_is_deterministic() {
        let cfg = ScaleConfig::with_flows(120);
        let a = run_scale_incast(&cfg);
        let b = run_scale_incast(&cfg);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.events, b.events);
        assert_eq!(a.audit.delivered, b.audit.delivered);
        assert_eq!(a.audit.dropped, b.audit.dropped);
        assert_eq!(a.act.mean, b.act.mean);
    }

    #[test]
    fn per_flow_bytes_shrink_with_scale() {
        assert_eq!(ScaleConfig::with_flows(1_000).bytes_per_flow, 146_000);
        assert_eq!(ScaleConfig::with_flows(100_000).bytes_per_flow, 1_460);
    }

    #[test]
    fn packed_hosts_complete_and_balance_the_slab() {
        let mut cfg = ScaleConfig::with_flows(200);
        cfg.bytes_per_flow = 10_000;
        cfg.senders_per_host = 50; // 4 sender hosts x 50 flows each
        let r = run_scale_incast(&cfg);
        assert_eq!(r.completed, 200, "all trains finish: {r:?}");
        assert_eq!(r.audit.arena_live, 0);

        let a = run_scale_incast(&cfg);
        assert_eq!(a.events, r.events, "packed runs stay deterministic");
        assert_eq!(a.act.mean, r.act.mean);
    }

    #[test]
    fn million_flow_config_is_packed() {
        let cfg = ScaleConfig::million_flow();
        assert_eq!(cfg.flows, 1_000_000);
        assert_eq!(cfg.senders_per_host, 1_000);
        assert_eq!(cfg.flows.div_ceil(cfg.senders_per_host), 1_000);
    }
}
