//! Packet-train analysis and synthesis (Section II.A, Fig. 1–2).
//!
//! A *packet train* (Jain & Routhier) is a burst of packets on one
//! connection whose inter-packet spacing never exceeds an inter-train gap
//! threshold. [`extract_trains`] applies that definition to a packet
//! timeline; [`synthesize_trace`] generates a timeline from the paper's
//! published distributions so the Fig. 1/2 methodology can be reproduced
//! without the proprietary 2 TB campus trace.

use netsim::time::{Dur, SimTime};
use netsim::trace::{PacketEvent, PacketEventKind};
use rand::Rng;

use crate::distributions::{pt_interval, pt_size_bytes, EmpiricalCdf};

/// One packet observation in a trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracePacket {
    /// Observation time.
    pub at: SimTime,
    /// Wire bytes.
    pub bytes: u32,
}

/// A packet train recovered from a trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Train {
    /// Time of the first packet.
    pub start: SimTime,
    /// Time of the last packet.
    pub end: SimTime,
    /// Packets in the train.
    pub pkts: u64,
    /// Total bytes in the train.
    pub bytes: u64,
}

impl Train {
    /// Whether this is a long packet train at the paper's threshold
    /// (>= 128 KB, Section II.B).
    pub fn is_long(&self) -> bool {
        self.bytes >= 128 * 1024
    }
}

/// Splits a time-ordered packet sequence into trains: a new train starts
/// whenever the gap since the previous packet exceeds `gap`.
///
/// # Panics
///
/// Panics if the packets are not in non-decreasing time order.
pub fn extract_trains(pkts: &[TracePacket], gap: Dur) -> Vec<Train> {
    let mut trains = Vec::new();
    let mut current: Option<Train> = None;
    let mut last_at = SimTime::ZERO;
    for (i, p) in pkts.iter().enumerate() {
        if i > 0 {
            assert!(p.at >= last_at, "trace not time-ordered at index {i}");
        }
        match &mut current {
            Some(t) if p.at.saturating_since(last_at) <= gap => {
                t.end = p.at;
                t.pkts += 1;
                t.bytes += p.bytes as u64;
            }
            _ => {
                if let Some(t) = current.take() {
                    trains.push(t);
                }
                current = Some(Train {
                    start: p.at,
                    end: p.at,
                    pkts: 1,
                    bytes: p.bytes as u64,
                });
            }
        }
        last_at = p.at;
    }
    if let Some(t) = current {
        trains.push(t);
    }
    trains
}

/// The gaps between consecutive trains (end of one to start of the next).
pub fn train_intervals(trains: &[Train]) -> Vec<Dur> {
    trains
        .windows(2)
        .map(|w| w[1].start.saturating_since(w[0].end))
        .collect()
}

/// Configuration for synthetic trace generation.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Packet train sizes in bytes; defaults to Fig. 2(a).
    pub size_dist: EmpiricalCdf,
    /// Inter-train gaps in nanoseconds; defaults to Fig. 2(b).
    pub gap_dist: EmpiricalCdf,
    /// Wire size of each packet.
    pub mss_bytes: u32,
    /// Spacing of packets inside a train (roughly one serialization time).
    pub intra_train_spacing: Dur,
    /// Number of trains to generate.
    pub trains: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            size_dist: pt_size_bytes(),
            gap_dist: pt_interval(),
            mss_bytes: 1460,
            intra_train_spacing: Dur::from_micros(12), // ~1460B at 1 Gbps
            trains: 100,
        }
    }
}

/// Converts a simulator packet-event trace into the packet timeline this
/// module analyses: the `Delivered` events of one flow whose wire size is
/// at least `min_bytes` (use the MSS to select data packets and exclude
/// ACKs). This closes the loop on the paper's Section II.A methodology —
/// the same train extraction that characterized the campus trace can be
/// applied to traffic the simulator generated.
pub fn packets_from_events(
    events: &[PacketEvent],
    flow: netsim::FlowId,
    min_bytes: u32,
) -> Vec<TracePacket> {
    events
        .iter()
        .filter(|e| {
            e.flow == flow
                && e.size >= min_bytes
                && matches!(e.kind, PacketEventKind::Delivered { .. })
        })
        .map(|e| TracePacket {
            at: e.at,
            bytes: e.size,
        })
        .collect()
}

/// Generates a packet timeline with the paper's ON/OFF structure: trains
/// of Fig. 2(a)-sized bursts separated by Fig. 2(b) gaps.
pub fn synthesize_trace<R: Rng + ?Sized>(rng: &mut R, cfg: &TraceConfig) -> Vec<TracePacket> {
    let mut pkts = Vec::new();
    let mut now = SimTime::ZERO;
    for _ in 0..cfg.trains {
        let bytes = cfg.size_dist.sample(rng).round() as u64;
        let n = bytes.div_ceil(cfg.mss_bytes as u64).max(1);
        for _ in 0..n {
            pkts.push(TracePacket {
                at: now,
                bytes: cfg.mss_bytes,
            });
            now += cfg.intra_train_spacing;
        }
        let gap_ns = cfg.gap_dist.sample(rng).round() as u64;
        now += Dur::from_nanos(gap_ns);
    }
    pkts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pkt(us: u64) -> TracePacket {
        TracePacket {
            at: SimTime::from_nanos(us * 1000),
            bytes: 1460,
        }
    }

    #[test]
    fn splits_on_gap() {
        let pkts = vec![pkt(0), pkt(10), pkt(20), pkt(500), pkt(510)];
        let trains = extract_trains(&pkts, Dur::from_micros(100));
        assert_eq!(trains.len(), 2);
        assert_eq!(trains[0].pkts, 3);
        assert_eq!(trains[0].bytes, 3 * 1460);
        assert_eq!(trains[1].pkts, 2);
        assert_eq!(trains[1].start, SimTime::from_nanos(500_000));
    }

    #[test]
    fn gap_exactly_at_threshold_stays_in_train() {
        let pkts = vec![pkt(0), pkt(100)];
        let trains = extract_trains(&pkts, Dur::from_micros(100));
        assert_eq!(trains.len(), 1);
        let trains = extract_trains(&pkts, Dur::from_micros(99));
        assert_eq!(trains.len(), 2);
    }

    #[test]
    fn empty_and_single_packet_traces() {
        assert!(extract_trains(&[], Dur::from_micros(1)).is_empty());
        let one = extract_trains(&[pkt(5)], Dur::from_micros(1));
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].pkts, 1);
    }

    #[test]
    fn intervals_between_trains() {
        let pkts = vec![pkt(0), pkt(500), pkt(1500)];
        let trains = extract_trains(&pkts, Dur::from_micros(100));
        let gaps = train_intervals(&trains);
        assert_eq!(gaps, vec![Dur::from_micros(500), Dur::from_micros(1000)]);
    }

    #[test]
    fn long_train_classification() {
        let t = Train {
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            pkts: 90,
            bytes: 131_072,
        };
        assert!(t.is_long());
        let s = Train { bytes: 4096, ..t };
        assert!(!s.is_long());
    }

    #[test]
    fn synthesis_round_trips_through_extraction() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = TraceConfig {
            trains: 200,
            ..TraceConfig::default()
        };
        let pkts = synthesize_trace(&mut rng, &cfg);
        // The extraction threshold sits between the intra-train spacing
        // and the minimum gap, so synthesis and extraction agree.
        let trains = extract_trains(&pkts, Dur::from_micros(50));
        assert_eq!(trains.len(), 200);
        // Size distribution matches Fig. 2(a) support.
        for t in &trains {
            assert!(t.bytes >= 512 && t.bytes <= 263_000, "train {t:?}");
        }
        let long = trains.iter().filter(|t| t.is_long()).count();
        let frac = long as f64 / trains.len() as f64;
        assert!(frac > 0.02 && frac < 0.25, "LPT fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "not time-ordered")]
    fn unordered_trace_rejected() {
        let pkts = vec![pkt(10), pkt(0)];
        extract_trains(&pkts, Dur::from_micros(1));
    }
}
