//! HTTP ON/OFF workload generators: schedules of [`TrainSpec`]s matching
//! the paper's evaluation scenarios.

use netsim::time::SimTime;
use rand::{Rng, RngExt};

use crate::distributions::{exponential, EmpiricalCdf};
use crate::scenario::TrainSpec;

/// The Section II.B impairment workload for one web server: 200 responses
/// of 2–10 KB starting at 0.1 s with ~1 ms-mean exponential spacing, then
/// a long packet train (>= 128 KB) at 0.5 s.
pub fn impairment_workload<R: Rng + ?Sized>(rng: &mut R) -> Vec<TrainSpec> {
    let mut specs = Vec::with_capacity(201);
    let mut t = 0.1;
    for _ in 0..200 {
        let bytes = rng.random_range(2_000..=10_000);
        specs.push(TrainSpec::at_secs(t, bytes));
        t += exponential(rng, 0.001);
    }
    specs.push(TrainSpec::at_secs(0.5, 150 * 1024));
    specs
}

/// A short packet train of `pkts` MSS-sized packets at `at` seconds
/// (the Fig. 5 SPT burst: 10 packets at 0.3 s).
pub fn spt(at: f64, pkts: u64, mss: u32) -> TrainSpec {
    TrainSpec::at_secs(at, pkts * mss as u64)
}

/// A long packet train running "throughout the test": one large train of
/// `bytes` at `at` seconds.
pub fn lpt(at: f64, bytes: u64) -> TrainSpec {
    TrainSpec::at_secs(at, bytes)
}

/// How SPT start times are spread over the Fig. 8 interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SptSpread {
    /// Uniform over the window.
    Uniform,
    /// Exponential inter-arrivals (truncated to the window).
    Exponential,
}

/// The Fig. 8 per-server SPT workload: `count` trains within
/// `[start, start+window]` seconds, sizes drawn from the Fig. 2(a) CDF,
/// start times spread per `spread`.
pub fn large_scale_workload<R: Rng + ?Sized>(
    rng: &mut R,
    size_dist: &EmpiricalCdf,
    count: usize,
    start: f64,
    window: f64,
    spread: SptSpread,
) -> Vec<TrainSpec> {
    let mut specs = Vec::with_capacity(count);
    let mut t = start;
    for i in 0..count {
        let at = match spread {
            SptSpread::Uniform => start + rng.random_range(0.0..window),
            SptSpread::Exponential => {
                t += exponential(rng, window / count as f64);
                start + (t - start) % window
            }
        };
        let bytes = size_dist.sample(rng).round() as u64;
        let _ = i;
        specs.push(TrainSpec {
            at: SimTime::from_secs_f64(at),
            bytes: bytes.max(1),
        });
    }
    specs.sort_by_key(|s| s.at);
    specs
}

/// The Fig. 12 fat-tree per-server workload: 1 MB split into small
/// objects of 2–6 KB starting at 0.1 s (spaced by `small_gap_mean`
/// exponential gaps) plus the big remainder at 0.5 s.
pub fn fat_tree_workload<R: Rng + ?Sized>(rng: &mut R, small_gap_mean: f64) -> Vec<TrainSpec> {
    let total: u64 = 1_000_000; // trim-lint: allow(no-raw-unit-literal, reason = "1 MB per-server object volume from the Fig. 12 setup; bytes, not time")
    let mut specs = Vec::new();
    let mut used = 0;
    let mut t = 0.1;
    // Small objects consume roughly 10% of the megabyte, as in the
    // paper's "some small objectives ... and a big one (the remained
    // data)".
    while used < total / 10 {
        let bytes = rng.random_range(2_000..=6_000);
        specs.push(TrainSpec::at_secs(t, bytes));
        used += bytes;
        t += exponential(rng, small_gap_mean);
    }
    specs.push(TrainSpec::at_secs(0.5, total - used));
    specs
}

/// The Fig. 13(a) testbed workload: `count` responses of sizes drawn
/// uniformly within ±10% of `mean_bytes`, spaced by `gap_mean`-second
/// exponential gaps from `start`.
pub fn testbed_responses<R: Rng + ?Sized>(
    rng: &mut R,
    count: usize,
    mean_bytes: u64,
    start: f64,
    gap_mean: f64,
) -> Vec<TrainSpec> {
    let lo = (mean_bytes as f64 * 0.9) as u64;
    let hi = (mean_bytes as f64 * 1.1) as u64;
    let mut specs = Vec::with_capacity(count);
    let mut t = start;
    for _ in 0..count {
        specs.push(TrainSpec::at_secs(t, rng.random_range(lo..=hi).max(1)));
        t += exponential(rng, gap_mean);
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::pt_size_bytes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn impairment_has_200_responses_and_one_lpt() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = impairment_workload(&mut rng);
        assert_eq!(w.len(), 201);
        for spec in &w[..200] {
            assert!(spec.bytes >= 2_000 && spec.bytes <= 10_000);
            assert!(spec.at >= SimTime::from_secs_f64(0.1));
            assert!(spec.at < SimTime::from_secs_f64(0.5));
        }
        let lpt = &w[200];
        assert_eq!(lpt.at, SimTime::from_secs_f64(0.5));
        assert!(lpt.bytes >= 128 * 1024);
    }

    #[test]
    fn spt_and_lpt_helpers() {
        let s = spt(0.3, 10, 1460);
        assert_eq!(s.bytes, 14_600);
        assert_eq!(s.at, SimTime::from_secs_f64(0.3));
        let l = lpt(0.1, 1 << 20);
        assert_eq!(l.bytes, 1 << 20);
    }

    #[test]
    fn large_scale_specs_in_window_and_sorted() {
        let mut rng = StdRng::seed_from_u64(8);
        let dist = pt_size_bytes();
        for spread in [SptSpread::Uniform, SptSpread::Exponential] {
            let specs = large_scale_workload(&mut rng, &dist, 50, 0.1, 0.5, spread);
            assert_eq!(specs.len(), 50);
            assert!(specs.windows(2).all(|w| w[0].at <= w[1].at));
            for s in &specs {
                assert!(s.at >= SimTime::from_secs_f64(0.1));
                assert!(s.at <= SimTime::from_secs_f64(0.6 + 1e-9));
                assert!(s.bytes >= 512);
            }
        }
    }

    #[test]
    fn fat_tree_totals_one_megabyte() {
        let mut rng = StdRng::seed_from_u64(2);
        let specs = fat_tree_workload(&mut rng, 0.002);
        let total: u64 = specs.iter().map(|s| s.bytes).sum();
        assert_eq!(total, 1_000_000);
        // Small objects first, big remainder last at 0.5 s.
        let last = specs.last().unwrap();
        assert_eq!(last.at, SimTime::from_secs_f64(0.5));
        assert!(last.bytes > 800_000);
        for s in &specs[..specs.len() - 1] {
            assert!(s.bytes >= 2_000 && s.bytes <= 6_000);
        }
    }

    #[test]
    fn testbed_sizes_within_ten_percent() {
        let mut rng = StdRng::seed_from_u64(4);
        let specs = testbed_responses(&mut rng, 100, 100_000, 0.0, 0.01);
        assert_eq!(specs.len(), 100);
        for s in &specs {
            assert!(s.bytes >= 90_000 && s.bytes <= 110_000);
        }
    }
}
