//! # trim-workload — HTTP ON/OFF workloads and evaluation scenarios
//!
//! The workload layer of the TCP-TRIM reproduction:
//!
//! - [`distributions`] — the paper's published packet-train size and
//!   inter-train gap CDFs (Fig. 2), sampled reproducibly;
//! - [`trace`] — packet-train extraction (the Jain & Routhier definition
//!   used in Section II.A) and synthetic trace generation standing in for
//!   the proprietary campus trace;
//! - [`http`] — schedule generators for each evaluation workload
//!   (impairment, SPT/LPT concurrency, large-scale, fat-tree, testbed);
//! - [`scenario`] — the runnable many-to-one scenario with reports, plus
//!   generic flow-wiring helpers for arbitrary topologies;
//! - [`incast`] — partition/aggregate query fan-in with query-completion
//!   metrics (an extension beyond the paper's figures);
//! - [`scale`] — engine-scale incast (up to 100k flows) backing the
//!   `trim-perf` macro-benchmarks and the `large_scale_100k` campaign;
//! - [`metrics`] — completion-time summaries (ACT/ARCT, tails, CDFs).
//!
//! ```
//! use trim_workload::scenario::{ScenarioBuilder, TrainSpec};
//!
//! // Two senders, TCP-TRIM, one 64 KB response each.
//! let mut sc = ScenarioBuilder::many_to_one(2).trim().build();
//! sc.send_train(0, TrainSpec::at_secs(0.01, 64 * 1024));
//! sc.send_train(1, TrainSpec::at_secs(0.01, 64 * 1024));
//! let report = sc.run_for_secs(0.5);
//! assert_eq!(report.completed_trains(), 2);
//! assert_eq!(report.total_timeouts(), 0);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod distributions;
pub mod http;
pub mod incast;
pub mod metrics;
pub mod scale;
pub mod scenario;
pub mod spec;
pub mod trace;

pub use distributions::EmpiricalCdf;
pub use metrics::Summary;
pub use scenario::{Report, Scenario, ScenarioBuilder, SenderReport, TrainSpec};
pub use spec::{ScenarioSpec, SpecCc, SpecFault, SpecOutcome, SpecTrain};
