//! Completion-time metrics: the ACT/ARCT summaries and CDFs the paper
//! reports.

use netsim::time::Dur;

/// Summary statistics over a set of completion times.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Mean in seconds (the paper's ACT/ARCT).
    pub mean: f64,
    /// Minimum in seconds.
    pub min: f64,
    /// Maximum in seconds (the paper's tail metric).
    pub max: f64,
    /// Median in seconds.
    pub p50: f64,
    /// 99th percentile in seconds.
    pub p99: f64,
    /// 99.9th percentile in seconds (the SLO tail metric).
    pub p999: f64,
}

impl Summary {
    /// Summarizes a set of durations. Returns the zero summary when the
    /// input is empty.
    pub fn of(samples: &[Dur]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let mut secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
        secs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite")); // trim-lint: allow(no-panic-in-library, reason = "Dur::as_secs_f64 is always finite")
        let count = secs.len();
        Summary {
            count,
            mean: secs.iter().sum::<f64>() / count as f64,
            min: secs[0],
            max: secs[count - 1],
            p50: percentile_sorted(&secs, 0.50),
            p99: percentile_sorted(&secs, 0.99),
            p999: percentile_sorted(&secs, 0.999),
        }
    }
}

/// The `p`-th percentile (0..=1) of an ascending-sorted slice, by the
/// nearest-rank method.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample set");
    assert!((0.0..=1.0).contains(&p), "percentile {p} out of range");
    // Nearest-rank wants ceil of the *exact* product p·n, but the f64
    // product can land one ulp above an integer (0.07 · 100 =
    // 7.000000000000001), and ceiling that overshoots by a whole rank —
    // an off-by-one that matters exactly at the small sample counts SLO
    // reports see. Snap near-integer products back before ceiling.
    let product = p * sorted.len() as f64;
    let nearest = product.round();
    let rank = if (product - nearest).abs() < 1e-9 * nearest.max(1.0) {
        nearest as usize
    } else {
        product.ceil() as usize
    };
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Empirical CDF points `(value_seconds, cumulative_fraction)` suitable
/// for plotting (Fig. 13(e)).
pub fn cdf_points(samples: &[Dur]) -> Vec<(f64, f64)> {
    let mut secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite")); // trim-lint: allow(no-panic-in-library, reason = "Dur::as_secs_f64 is always finite")
    let n = secs.len();
    secs.into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// The fraction of samples at or below `threshold`.
pub fn fraction_below(samples: &[Dur], threshold: Dur) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&d| d <= threshold).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Dur {
        Dur::from_millis(v)
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[ms(10), ms(20), ms(30), ms(40)]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 0.025).abs() < 1e-12);
        assert_eq!(s.min, 0.010);
        assert_eq!(s.max, 0.040);
        assert_eq!(s.p50, 0.020);
        assert_eq!(s.p99, 0.040);
    }

    #[test]
    fn summary_empty() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn summary_single() {
        let s = Summary::of(&[ms(7)]);
        assert_eq!(s.count, 1);
        assert_eq!(s.min, s.max);
        assert_eq!(s.p50, 0.007);
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 0.2), 1.0);
        assert_eq!(percentile_sorted(&sorted, 0.21), 2.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 5.0);
    }

    #[test]
    fn percentile_snaps_float_products_to_exact_rank() {
        // 0.07 * 100 = 7.000000000000001 in f64; exact nearest-rank is
        // rank 7 (value 7.0), not rank 8. This regressed before the
        // near-integer snap.
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile_sorted(&sorted, 0.07), 7.0);
        // 0.07 * 200 = 14.000000000000002: rank 14.
        let sorted: Vec<f64> = (1..=200).map(|v| v as f64).collect();
        assert_eq!(percentile_sorted(&sorted, 0.07), 14.0);
        // Just-above-integer percentiles must still round up.
        assert_eq!(percentile_sorted(&sorted, 0.0701), 15.0);
    }

    #[test]
    fn percentile_known_answers_p50_p99_p999() {
        // n = 10, values 1..=10: p50 -> ceil(5) = rank 5; p99 ->
        // ceil(9.9) = rank 10; p999 -> ceil(9.99) = rank 10.
        let ten: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        assert_eq!(percentile_sorted(&ten, 0.50), 5.0);
        assert_eq!(percentile_sorted(&ten, 0.99), 10.0);
        assert_eq!(percentile_sorted(&ten, 0.999), 10.0);
        // n = 1000, values 1..=1000: p50 -> rank 500; p99 -> rank 990;
        // p999 -> rank 999 exactly.
        let k: Vec<f64> = (1..=1000).map(|v| v as f64).collect();
        assert_eq!(percentile_sorted(&k, 0.50), 500.0);
        assert_eq!(percentile_sorted(&k, 0.99), 990.0);
        assert_eq!(percentile_sorted(&k, 0.999), 999.0);
        // n = 101 (not a multiple of anything convenient): p50 ->
        // ceil(50.5) = rank 51; p99 -> ceil(99.99) = rank 100; p999 ->
        // ceil(100.899) = rank 101.
        let odd: Vec<f64> = (1..=101).map(|v| v as f64).collect();
        assert_eq!(percentile_sorted(&odd, 0.50), 51.0);
        assert_eq!(percentile_sorted(&odd, 0.99), 100.0);
        assert_eq!(percentile_sorted(&odd, 0.999), 101.0);
    }

    #[test]
    fn summary_reports_p999() {
        let samples: Vec<Dur> = (1..=1000).map(ms).collect();
        let s = Summary::of(&samples);
        assert_eq!(s.p50, 0.500);
        assert_eq!(s.p99, 0.990);
        assert_eq!(s.p999, 0.999);
        // Small sample sets degrade to the max, never past it.
        let s = Summary::of(&[ms(10), ms(20), ms(30), ms(40)]);
        assert_eq!(s.p999, 0.040);
    }

    #[test]
    fn cdf_points_cover_unit_interval() {
        let pts = cdf_points(&[ms(3), ms(1), ms(2)]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (0.001, 1.0 / 3.0));
        assert_eq!(pts[2], (0.003, 1.0));
        // Sorted ascending by value.
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn fraction_below_threshold() {
        let samples = [ms(10), ms(20), ms(30)];
        assert_eq!(fraction_below(&samples, ms(20)), 2.0 / 3.0);
        assert_eq!(fraction_below(&samples, ms(5)), 0.0);
        assert_eq!(fraction_below(&[], ms(5)), 0.0);
    }
}
