//! Completion-time metrics: the ACT/ARCT summaries and CDFs the paper
//! reports.

use netsim::time::Dur;

/// Summary statistics over a set of completion times.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Mean in seconds (the paper's ACT/ARCT).
    pub mean: f64,
    /// Minimum in seconds.
    pub min: f64,
    /// Maximum in seconds (the paper's tail metric).
    pub max: f64,
    /// Median in seconds.
    pub p50: f64,
    /// 99th percentile in seconds.
    pub p99: f64,
}

impl Summary {
    /// Summarizes a set of durations. Returns the zero summary when the
    /// input is empty.
    pub fn of(samples: &[Dur]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let mut secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
        secs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite")); // trim-lint: allow(no-panic-in-library, reason = "Dur::as_secs_f64 is always finite")
        let count = secs.len();
        Summary {
            count,
            mean: secs.iter().sum::<f64>() / count as f64,
            min: secs[0],
            max: secs[count - 1],
            p50: percentile_sorted(&secs, 0.50),
            p99: percentile_sorted(&secs, 0.99),
        }
    }
}

/// The `p`-th percentile (0..=1) of an ascending-sorted slice, by the
/// nearest-rank method.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample set");
    assert!((0.0..=1.0).contains(&p), "percentile {p} out of range");
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Empirical CDF points `(value_seconds, cumulative_fraction)` suitable
/// for plotting (Fig. 13(e)).
pub fn cdf_points(samples: &[Dur]) -> Vec<(f64, f64)> {
    let mut secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite")); // trim-lint: allow(no-panic-in-library, reason = "Dur::as_secs_f64 is always finite")
    let n = secs.len();
    secs.into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// The fraction of samples at or below `threshold`.
pub fn fraction_below(samples: &[Dur], threshold: Dur) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&d| d <= threshold).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Dur {
        Dur::from_millis(v)
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[ms(10), ms(20), ms(30), ms(40)]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 0.025).abs() < 1e-12);
        assert_eq!(s.min, 0.010);
        assert_eq!(s.max, 0.040);
        assert_eq!(s.p50, 0.020);
        assert_eq!(s.p99, 0.040);
    }

    #[test]
    fn summary_empty() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn summary_single() {
        let s = Summary::of(&[ms(7)]);
        assert_eq!(s.count, 1);
        assert_eq!(s.min, s.max);
        assert_eq!(s.p50, 0.007);
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 0.2), 1.0);
        assert_eq!(percentile_sorted(&sorted, 0.21), 2.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 5.0);
    }

    #[test]
    fn cdf_points_cover_unit_interval() {
        let pts = cdf_points(&[ms(3), ms(1), ms(2)]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (0.001, 1.0 / 3.0));
        assert_eq!(pts[2], (0.003, 1.0));
        // Sorted ascending by value.
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn fraction_below_threshold() {
        let samples = [ms(10), ms(20), ms(30)];
        assert_eq!(fraction_below(&samples, ms(20)), 2.0 / 3.0);
        assert_eq!(fraction_below(&samples, ms(5)), 0.0);
        assert_eq!(fraction_below(&[], ms(5)), 0.0);
    }
}
