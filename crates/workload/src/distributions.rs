//! Empirical distributions for HTTP packet-train workloads.
//!
//! The paper characterizes its 2 TB campus trace only through two CDFs
//! (Fig. 2): packet-train size and inter-train gap. [`EmpiricalCdf`]
//! reproduces a published CDF by inverse-transform sampling with
//! log-linear interpolation between the published points;
//! [`pt_size_bytes`] and [`pt_interval`] encode the paper's curves.

use rand::Rng;

/// An empirical distribution defined by `(value, cumulative probability)`
/// points, sampled by inverse transform with log-linear interpolation
/// (appropriate for the paper's log-scaled axes).
///
/// ```
/// use rand::SeedableRng;
/// use trim_workload::distributions::EmpiricalCdf;
///
/// let cdf = EmpiricalCdf::new(vec![(1.0, 0.0), (10.0, 0.5), (100.0, 1.0)])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = cdf.sample(&mut rng);
/// assert!((1.0..=100.0).contains(&x));
/// assert!((cdf.quantile(0.5) - 10.0).abs() < 1e-9);
/// # Ok::<(), String>(())
/// ```
#[derive(Clone, Debug)]
pub struct EmpiricalCdf {
    points: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Creates a distribution from CDF points.
    ///
    /// # Errors
    ///
    /// Returns a message when fewer than two points are given, values are
    /// not positive and strictly increasing, probabilities are not
    /// non-decreasing, or the first/last probabilities are not 0 and 1.
    // `!(x > 0.0)` deliberately rejects NaN, unlike `x <= 0.0`.
    // Endpoint equality is exact on purpose: 0.0 and 1.0 are the only
    // acceptable CDF boundaries and both are exactly representable.
    #[allow(clippy::neg_cmp_op_on_partial_ord, clippy::float_cmp)]
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, String> {
        if points.len() < 2 {
            return Err("need at least two CDF points".into());
        }
        for w in points.windows(2) {
            if !(w[0].0 > 0.0) || !(w[1].0 > w[0].0) {
                return Err(format!(
                    "values must be positive and strictly increasing: {} then {}",
                    w[0].0, w[1].0
                ));
            }
            if w[1].1 < w[0].1 {
                return Err("probabilities must be non-decreasing".into());
            }
        }
        let first = points.first().expect("checked").1; // trim-lint: allow(no-panic-in-library, reason = "new() rejected empty point sets above")
        let last = points.last().expect("checked").1; // trim-lint: allow(no-panic-in-library, reason = "new() rejected empty point sets above")

        // trim-lint: allow(no-float-eq, reason = "CDF endpoints must be exactly 0 and 1; the literals are representable")
        if first != 0.0 || last != 1.0 {
            return Err(format!(
                "CDF must start at 0 and end at 1, got {first} and {last}"
            ));
        }
        Ok(EmpiricalCdf { points })
    }

    /// The value at cumulative probability `p`, by log-linear
    /// interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    // `c1 == c0` guards the division below; only exact equality divides
    // by zero, so an epsilon comparison would be wrong here.
    #[allow(clippy::float_cmp)]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        let i = self
            .points
            .partition_point(|&(_, c)| c < p)
            .clamp(1, self.points.len() - 1);
        let (v0, c0) = self.points[i - 1];
        let (v1, c1) = self.points[i];
        if c1 == c0 {
            return v1;
        }
        let t = ((p - c0) / (c1 - c0)).clamp(0.0, 1.0);
        (v0.ln() + t * (v1.ln() - v0.ln())).exp()
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.random::<f64>())
    }

    /// The smallest representable value.
    pub fn min_value(&self) -> f64 {
        self.points.first().expect("validated non-empty").0 // trim-lint: allow(no-panic-in-library, reason = "the constructor rejects empty point sets")
    }

    /// The largest representable value.
    pub fn max_value(&self) -> f64 {
        self.points.last().expect("validated non-empty").0 // trim-lint: allow(no-panic-in-library, reason = "the constructor rejects empty point sets")
    }
}

/// The packet-train size distribution of Fig. 2(a): sizes from 0.5 KB to
/// 256 KB, with ~20% at or below 4 KB, ~70% between 4 KB and 128 KB, and
/// ~10% above 128 KB.
pub fn pt_size_bytes() -> EmpiricalCdf {
    EmpiricalCdf::new(vec![
        (512.0, 0.0),
        (4.0 * 1024.0, 0.20),
        (16.0 * 1024.0, 0.50),
        (64.0 * 1024.0, 0.78),
        (128.0 * 1024.0, 0.90),
        (256.0 * 1024.0, 1.0),
    ])
    .expect("static points are valid") // trim-lint: allow(no-panic-in-library, reason = "compile-time constant table; a typo fails every test")
}

/// The inter-train gap distribution of Fig. 2(b): hundreds of microseconds
/// to several milliseconds, in nanoseconds.
pub fn pt_interval() -> EmpiricalCdf {
    EmpiricalCdf::new(vec![
        (100_000.0, 0.0),    // 100 us
        (500_000.0, 0.35),   // 500 us
        (1_000_000.0, 0.60), // 1 ms
        (3_000_000.0, 0.85), // 3 ms
        (10_000_000.0, 1.0), // 10 ms
    ])
    .expect("static points are valid") // trim-lint: allow(no-panic-in-library, reason = "compile-time constant table; a typo fails every test")
}

/// A sample from the exponential distribution with the given mean, via
/// inverse transform. Used for the paper's "exponential distribution" SPT
/// start times (Fig. 8) and 1 ms-mean response intervals (Section II.B).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "mean must be positive");
    let u = rng.random::<f64>();
    // Guard the log: u in [0,1) -> use 1-u in (0,1].
    -(1.0 - u).ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantile_interpolates_in_log_space() {
        let cdf = EmpiricalCdf::new(vec![(1.0, 0.0), (100.0, 1.0)]).unwrap();
        // Halfway in log space between 1 and 100 is 10.
        assert!((cdf.quantile(0.5) - 10.0).abs() < 1e-9);
        assert!((cdf.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!((cdf.quantile(1.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn samples_stay_in_support() {
        let cdf = pt_size_bytes();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = cdf.sample(&mut rng);
            assert!((512.0..=262_144.0).contains(&v), "sample {v}");
        }
    }

    #[test]
    fn pt_size_matches_paper_proportions() {
        let cdf = pt_size_bytes();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mut tiny = 0; // <= 4 KB
        let mut large = 0; // >= 128 KB
        for _ in 0..n {
            let v = cdf.sample(&mut rng);
            if v <= 4096.0 {
                tiny += 1;
            }
            if v >= 131_072.0 {
                large += 1;
            }
        }
        let tiny_frac = tiny as f64 / n as f64;
        let large_frac = large as f64 / n as f64;
        assert!((tiny_frac - 0.20).abs() < 0.02, "tiny fraction {tiny_frac}");
        assert!(
            (large_frac - 0.10).abs() < 0.02,
            "large fraction {large_frac}"
        );
    }

    #[test]
    fn interval_range_matches_paper() {
        let cdf = pt_interval();
        assert_eq!(cdf.min_value(), 100_000.0);
        assert_eq!(cdf.max_value(), 10_000_000.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..5000).map(|_| cdf.sample(&mut rng)).sum::<f64>() / 5000.0;
        // Mean gap on the order of a millisecond.
        assert!(mean > 500_000.0 && mean < 3_000_000.0, "mean {mean}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..20_000).map(|_| exponential(&mut rng, 2.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn invalid_cdfs_rejected() {
        assert!(EmpiricalCdf::new(vec![(1.0, 0.0)]).is_err());
        assert!(EmpiricalCdf::new(vec![(1.0, 0.0), (1.0, 1.0)]).is_err());
        assert!(EmpiricalCdf::new(vec![(2.0, 0.0), (1.0, 1.0)]).is_err());
        assert!(EmpiricalCdf::new(vec![(1.0, 0.5), (2.0, 1.0)]).is_err());
        assert!(EmpiricalCdf::new(vec![(1.0, 0.0), (2.0, 0.9)]).is_err());
        assert!(EmpiricalCdf::new(vec![(1.0, 0.0), (2.0, 0.5), (3.0, 0.2)]).is_err());
    }

    /// Same seed, same draw sequence — bit-identical, not merely close.
    /// The fuzzer and the campaign engine both lean on this: a scenario
    /// is its seed, so any platform- or run-dependent drift here would
    /// silently break replayable corpora.
    #[test]
    fn same_seed_yields_bit_identical_streams() {
        for seed in [0u64, 7, 42, u64::MAX] {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let sizes = pt_size_bytes();
            let gaps = pt_interval();
            for i in 0..500 {
                let (x, y) = (sizes.sample(&mut a), sizes.sample(&mut b));
                assert_eq!(x.to_bits(), y.to_bits(), "seed {seed} size draw {i}");
                let (x, y) = (gaps.sample(&mut a), gaps.sample(&mut b));
                assert_eq!(x.to_bits(), y.to_bits(), "seed {seed} gap draw {i}");
                let (x, y) = (exponential(&mut a, 1e6), exponential(&mut b, 1e6));
                assert_eq!(x.to_bits(), y.to_bits(), "seed {seed} exp draw {i}");
            }
        }
    }

    /// Different seeds must not collapse onto one stream (a degenerate
    /// seeding bug would also pass the determinism test above).
    #[test]
    fn different_seeds_diverge() {
        let cdf = pt_size_bytes();
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let distinct = (0..32)
            .filter(|_| cdf.sample(&mut a).to_bits() != cdf.sample(&mut b).to_bits())
            .count();
        assert!(distinct > 0, "seeds 1 and 2 produced identical streams");
    }

    /// Empirical means of the published CDFs are themselves stable
    /// facts of (curve, seed): pin them within a tolerance so a quiet
    /// change to interpolation or seeding shows up as a test failure,
    /// not as a shifted experiment.
    #[test]
    fn empirical_means_are_stable_across_seeds() {
        let sizes = pt_size_bytes();
        let gaps = pt_interval();
        let n = 20_000;
        for seed in [5u64, 17, 91] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mean_size: f64 = (0..n).map(|_| sizes.sample(&mut rng)).sum::<f64>() / n as f64;
            // Log-linear interpolation of Fig. 2(a) puts the mean near 40 KB.
            assert!(
                (30_000.0..55_000.0).contains(&mean_size),
                "seed {seed}: mean train size {mean_size}"
            );
            let mean_gap: f64 = (0..n).map(|_| gaps.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (1_000_000.0..2_000_000.0).contains(&mean_gap),
                "seed {seed}: mean gap {mean_gap}"
            );
        }
    }

    #[test]
    fn quantile_monotone() {
        let cdf = pt_size_bytes();
        let mut prev = 0.0;
        for i in 0..=100 {
            let q = cdf.quantile(i as f64 / 100.0);
            assert!(q >= prev);
            prev = q;
        }
    }
}
