//! Serializable scenario specifications — the fuzzer's unit of work.
//!
//! A [`ScenarioSpec`] captures a complete many-to-one scenario (fan-in,
//! link rate, delay, buffer, congestion control and its `K` setting,
//! per-sender packet trains and persistent-HTTP sessions, horizon,
//! optional injected fault) in a
//! plain-text `key = value` form that round-trips exactly, so a failing
//! fuzz case can be committed to an on-disk corpus and replayed
//! deterministically — by the `trim-fuzz` binary, or as an ordinary
//! `cargo test` case.
//!
//! [`ScenarioSpec::run`] is the replay entrypoint: it builds the
//! scenario, force-attaches the `trim-check` monitor suite (replay must
//! observe the same invariants in release builds as in debug), applies
//! the spec's fault, runs to the horizon, and returns the report
//! together with every recorded violation instead of panicking.

use netsim::time::{Dur, SimTime};
use netsim::topology::LinkSpec;
use netsim::{Bandwidth, CoDelConfig, QueueConfig, QueueDiscipline, RedConfig};
use trim_tcp::{CcKind, TcpConfig};

use crate::scenario::{Report, Scenario, ScenarioBuilder, TrainSpec};

/// Segment size assumed by spec byte accounting ([`TcpConfig`]'s
/// default MSS; specs do not vary it).
pub const SPEC_MSS_BYTES: u64 = 1460;

/// Congestion-control selection for a spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecCc {
    /// TCP Reno / NewReno (the paper's legacy baseline).
    Reno,
    /// TCP-TRIM with `K` from the Eq. 4 guideline at the bottleneck
    /// capacity.
    TrimGuideline,
    /// TCP-TRIM with an explicit `K` override in nanoseconds.
    TrimOverrideNs(u64),
}

/// Queue-discipline selection for a spec, in integer-quantized units so
/// the text form round-trips exactly (no floats in the corpus).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpecAqm {
    /// Plain drop-tail on every queue (the historical default; omitted
    /// from the text form).
    #[default]
    DropTail,
    /// RED early dropping (or ECN marking) on every queue.
    Red {
        /// Minimum threshold in packets.
        min_th: u32,
        /// Maximum threshold in packets (must exceed `min_th`).
        max_th: u32,
        /// Maximum drop probability in thousandths (1..=1000).
        max_p_milli: u32,
        /// EWMA weight in millionths (1..=1_000_000).
        wq_micro: u32,
        /// Mark ECT packets CE instead of dropping.
        ecn: bool,
    },
    /// CoDel sojourn-time dropping (or ECN marking) on every queue.
    Codel {
        /// Acceptable standing sojourn time in microseconds.
        target_us: u32,
        /// Sliding window over which the sojourn must stay above the
        /// target, in microseconds (must be >= `target_us`).
        interval_us: u32,
        /// Mark ECT packets CE instead of dropping.
        ecn: bool,
    },
}

impl SpecAqm {
    /// The runnable `netsim` discipline this selection quantizes.
    pub fn discipline(&self) -> QueueDiscipline {
        match *self {
            SpecAqm::DropTail => QueueDiscipline::DropTail,
            SpecAqm::Red {
                min_th,
                max_th,
                max_p_milli,
                wq_micro,
                ecn,
            } => QueueDiscipline::Red(RedConfig {
                min_th: f64::from(min_th),
                max_th: f64::from(max_th),
                max_p: f64::from(max_p_milli) / 1_000.0,
                wq: f64::from(wq_micro) / 1_000_000.0,
                ecn,
                ..RedConfig::default()
            }),
            SpecAqm::Codel {
                target_us,
                interval_us,
                ecn,
            } => QueueDiscipline::CoDel(CoDelConfig {
                target: Dur::from_micros(u64::from(target_us)),
                interval: Dur::from_micros(u64::from(interval_us)),
                ecn,
            }),
        }
    }

    fn to_token(self) -> Option<String> {
        match self {
            SpecAqm::DropTail => None,
            SpecAqm::Red {
                min_th,
                max_th,
                max_p_milli,
                wq_micro,
                ecn,
            } => {
                let head = if ecn { "red-ecn" } else { "red" };
                Some(format!("{head}:{min_th}:{max_th}:{max_p_milli}:{wq_micro}"))
            }
            SpecAqm::Codel {
                target_us,
                interval_us,
                ecn,
            } => {
                let head = if ecn { "codel-ecn" } else { "codel" };
                Some(format!("{head}:{target_us}:{interval_us}"))
            }
        }
    }

    fn from_token(value: &str) -> Option<SpecAqm> {
        if value == "drop-tail" {
            return Some(SpecAqm::DropTail);
        }
        let (head, rest) = value.split_once(':')?;
        let fields: Option<Vec<u32>> = rest.split(':').map(|f| f.parse::<u32>().ok()).collect();
        match (head, fields.as_deref()) {
            ("red" | "red-ecn", Some(&[min_th, max_th, max_p_milli, wq_micro])) => {
                Some(SpecAqm::Red {
                    min_th,
                    max_th,
                    max_p_milli,
                    wq_micro,
                    ecn: head == "red-ecn",
                })
            }
            ("codel" | "codel-ecn", Some(&[target_us, interval_us])) => Some(SpecAqm::Codel {
                target_us,
                interval_us,
                ecn: head == "codel-ecn",
            }),
            _ => None,
        }
    }
}

/// A deterministic fault to inject before the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecFault {
    /// Let the bottleneck queue admit `extra` packets beyond its
    /// capacity (`Simulator::inject_queue_overadmit`), which the
    /// `queue-bound` monitor must catch.
    QueueOveradmit {
        /// Packets admitted beyond capacity.
        extra: u64,
    },
}

/// One packet train: `bytes` handed to TCP on `sender` at `at_us`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecTrain {
    /// 0-based sender index.
    pub sender: usize,
    /// Injection time in microseconds.
    pub at_us: u64,
    /// Application bytes.
    pub bytes: u64,
}

/// One persistent-HTTP user session: the responses of `sizes` go out
/// sequentially on `sender`, each `think_us` after the previous one
/// completes, starting at `at_us`. At most one session per sender (a
/// sender's connection carries one response sequence), and a sender
/// with a session carries no standalone trains — interleaving both on
/// one connection would corrupt the sequence's completion tracking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecSession {
    /// 0-based sender index.
    pub sender: usize,
    /// Session start time in microseconds.
    pub at_us: u64,
    /// Think time between consecutive responses, in microseconds.
    pub think_us: u64,
    /// Application bytes of each response, in order.
    pub sizes: Vec<u64>,
}

/// A complete, serializable many-to-one scenario description.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// The fuzz seed that produced this spec (informational; replay does
    /// not use it).
    pub seed: u64,
    /// Fan-in: number of sending web servers.
    pub senders: usize,
    /// Link rate (all links) in Mbit/s.
    pub link_mbps: u64,
    /// One-way per-link propagation delay in microseconds.
    pub delay_us: u64,
    /// Switch buffer size in packets on every queue.
    pub buffer_pkts: usize,
    /// Congestion-control policy for every sender.
    pub cc: SpecCc,
    /// Minimum retransmission timeout in microseconds.
    pub min_rto_us: u64,
    /// Simulation horizon in milliseconds.
    pub horizon_ms: u64,
    /// Optional injected fault.
    pub fault: Option<SpecFault>,
    /// Queue discipline on every queue (drop-tail when omitted).
    pub aqm: SpecAqm,
    /// Attach the `trim-check` stability oracles (cwnd limit-cycle and
    /// standing-queue detectors) during [`ScenarioSpec::run`].
    pub stability: bool,
    /// Expected replay verdict for a committed corpus spec:
    /// `monitor:<name>` (a violation from that monitor must fire) or
    /// `oracle:<name>` (that post-run oracle must fail). `None` means
    /// the replay harness derives the expectation (fault implies
    /// `monitor:queue-bound`, otherwise a clean run).
    pub expect: Option<String>,
    /// The packet trains, in no particular order.
    pub trains: Vec<SpecTrain>,
    /// Persistent-HTTP sessions, at most one per sender.
    pub sessions: Vec<SpecSession>,
}

/// What a spec run produced: the scenario report plus every invariant
/// violation the monitors recorded (empty on a clean run).
#[derive(Clone, Debug)]
pub struct SpecOutcome {
    /// Results at the horizon (collected without the clean-run
    /// assertion).
    pub report: Report,
    /// Violations recorded by the attached monitors.
    pub violations: Vec<netsim::monitor::Violation>,
}

impl ScenarioSpec {
    /// Checks internal consistency; [`ScenarioSpec::run`] refuses
    /// invalid specs.
    pub fn validate(&self) -> Result<(), String> {
        if self.senders == 0 {
            return Err("senders must be >= 1".into());
        }
        if self.link_mbps == 0 {
            return Err("link_mbps must be >= 1".into());
        }
        if self.buffer_pkts == 0 {
            return Err("buffer_pkts must be >= 1".into());
        }
        if self.min_rto_us == 0 {
            return Err("min_rto_us must be >= 1".into());
        }
        if self.horizon_ms == 0 {
            return Err("horizon_ms must be >= 1".into());
        }
        if let SpecCc::TrimOverrideNs(0) = self.cc {
            return Err("trim-k override must be >= 1 ns".into());
        }
        if let Some(SpecFault::QueueOveradmit { extra: 0 }) = self.fault {
            return Err("overadmit extra must be >= 1".into());
        }
        match self.aqm {
            SpecAqm::DropTail => {}
            SpecAqm::Red {
                min_th,
                max_th,
                max_p_milli,
                wq_micro,
                ..
            } => {
                if min_th >= max_th {
                    return Err(format!("red min_th {min_th} must be < max_th {max_th}"));
                }
                if !(1..=1_000).contains(&max_p_milli) {
                    return Err("red max_p_milli must be in 1..=1000".into());
                }
                // trim-lint: allow(no-raw-unit-literal, reason = "fixed-point scale of the dimensionless EWMA weight, not a unit")
                if !(1..=1_000_000).contains(&wq_micro) {
                    return Err("red wq_micro must be in 1..=1000000".into());
                }
            }
            SpecAqm::Codel {
                target_us,
                interval_us,
                ..
            } => {
                if target_us == 0 {
                    return Err("codel target_us must be >= 1".into());
                }
                if interval_us < target_us {
                    return Err(format!(
                        "codel interval_us {interval_us} must be >= target_us {target_us}"
                    ));
                }
            }
        }
        if let Some(expect) = &self.expect {
            let valid = ["monitor:", "oracle:"]
                .iter()
                .any(|p| expect.strip_prefix(p).is_some_and(|n| !n.is_empty()));
            if !valid {
                return Err(format!(
                    "expect must be `monitor:<name>` or `oracle:<name>`, got `{expect}`"
                ));
            }
        }
        if self.trains.is_empty() && self.sessions.is_empty() {
            return Err("at least one train or session is required".into());
        }
        for t in &self.trains {
            if t.sender >= self.senders {
                return Err(format!(
                    "train on sender {} but only {} senders",
                    t.sender, self.senders
                ));
            }
            if t.bytes == 0 {
                return Err("train bytes must be >= 1".into());
            }
            if t.at_us >= self.horizon_ms * 1_000 {
                return Err(format!(
                    "train at {}us starts at or after the {}ms horizon",
                    t.at_us, self.horizon_ms
                ));
            }
        }
        for (i, s) in self.sessions.iter().enumerate() {
            if s.sender >= self.senders {
                return Err(format!(
                    "session on sender {} but only {} senders",
                    s.sender, self.senders
                ));
            }
            if s.sizes.is_empty() {
                return Err("session needs at least one response".into());
            }
            if s.sizes.contains(&0) {
                return Err("session response bytes must be >= 1".into());
            }
            if s.at_us >= self.horizon_ms * 1_000 {
                return Err(format!(
                    "session at {}us starts at or after the {}ms horizon",
                    s.at_us, self.horizon_ms
                ));
            }
            if self.sessions[..i].iter().any(|p| p.sender == s.sender) {
                return Err(format!("sender {} has more than one session", s.sender));
            }
            if self.trains.iter().any(|t| t.sender == s.sender) {
                return Err(format!(
                    "sender {} mixes a session with standalone trains",
                    s.sender
                ));
            }
        }
        Ok(())
    }

    /// The session driving `sender`, if any.
    pub fn session_for(&self, sender: usize) -> Option<&SpecSession> {
        self.sessions.iter().find(|s| s.sender == sender)
    }

    /// The bottleneck rate in bits per second.
    pub fn bottleneck_bps(&self) -> u64 {
        Bandwidth::mbps(self.link_mbps).as_bps()
    }

    /// The no-load round-trip time in nanoseconds: two links each way.
    pub fn base_rtt_ns(&self) -> u64 {
        4 * self.delay_us * 1_000
    }

    /// Offered load for `sender` in on-the-wire payload bytes: TCP sends
    /// whole segments, so each train and each session response is padded
    /// to a multiple of the MSS. For a session this is the full offered
    /// load if every response gets issued; a horizon cutting the session
    /// mid-think leaves later responses unissued.
    pub fn offered_padded_bytes(&self, sender: usize) -> u64 {
        let pad = |b: u64| b.div_ceil(SPEC_MSS_BYTES) * SPEC_MSS_BYTES;
        let trains: u64 = self
            .trains
            .iter()
            .filter(|t| t.sender == sender)
            .map(|t| pad(t.bytes))
            .sum();
        let sessions: u64 = self
            .sessions
            .iter()
            .filter(|s| s.sender == sender)
            .flat_map(|s| s.sizes.iter())
            .map(|&b| pad(b))
            .sum();
        trains + sessions
    }

    /// Builds the runnable [`Scenario`] (monitors attach per the normal
    /// `TRIM_CHECK_MONITORS` policy; [`ScenarioSpec::run`] forces them).
    pub fn build(&self) -> Scenario {
        let link = LinkSpec::new(
            Bandwidth::mbps(self.link_mbps),
            Dur::from_micros(self.delay_us),
            QueueConfig::drop_tail(self.buffer_pkts),
        );
        let tcp = TcpConfig::default().with_min_rto(Dur::from_micros(self.min_rto_us));
        let b = ScenarioBuilder::many_to_one(self.senders)
            .links(link)
            .queue_discipline(self.aqm.discipline())
            .tcp_config(tcp);
        match self.cc {
            SpecCc::Reno => b.congestion_control(CcKind::Reno),
            SpecCc::TrimGuideline => b.trim(),
            SpecCc::TrimOverrideNs(k) => {
                b.congestion_control(CcKind::Trim(trim_core::TrimConfig {
                    k_override_ns: Some(k),
                    ..Default::default()
                }))
            }
        }
        .build()
    }

    /// Replays the spec under the full monitor suite and returns the
    /// outcome without panicking on violations.
    pub fn run(&self) -> Result<SpecOutcome, String> {
        self.validate()?;
        let mut sc = self.build();
        if !sc.sim_mut().monitors_enabled() {
            trim_check::attach_standard(sc.sim_mut());
        }
        if self.stability {
            for m in trim_check::stability_monitors(trim_check::StabilityConfig::default()) {
                sc.sim_mut().attach_monitor(m);
            }
        }
        if let Some(SpecFault::QueueOveradmit { extra }) = self.fault {
            let ch = sc.net().bottleneck;
            sc.sim_mut().inject_queue_overadmit(ch, extra);
        }
        for t in &self.trains {
            sc.send_train(
                t.sender,
                TrainSpec {
                    at: SimTime::from_nanos(t.at_us * 1_000),
                    bytes: t.bytes,
                },
            );
        }
        for s in &self.sessions {
            sc.send_session(
                s.sender,
                SimTime::from_nanos(s.at_us * 1_000),
                s.sizes.clone(),
                Dur::from_micros(s.think_us),
            );
        }
        sc.sim_mut()
            .run_until(SimTime::ZERO + Dur::from_millis(self.horizon_ms));
        let violations = sc.sim_mut().violations().into_iter().cloned().collect();
        let report = sc.report_unchecked();
        Ok(SpecOutcome { report, violations })
    }

    /// Serializes to the canonical text form (exact round-trip through
    /// [`ScenarioSpec::from_text`]).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("# trim-fuzz scenario spec v1\n");
        s.push_str(&format!("seed = {}\n", self.seed));
        s.push_str(&format!("senders = {}\n", self.senders));
        s.push_str(&format!("link_mbps = {}\n", self.link_mbps));
        s.push_str(&format!("delay_us = {}\n", self.delay_us));
        s.push_str(&format!("buffer_pkts = {}\n", self.buffer_pkts));
        let cc = match self.cc {
            SpecCc::Reno => "reno".to_string(),
            SpecCc::TrimGuideline => "trim-guideline".to_string(),
            SpecCc::TrimOverrideNs(k) => format!("trim-k:{k}"),
        };
        s.push_str(&format!("cc = {cc}\n"));
        s.push_str(&format!("min_rto_us = {}\n", self.min_rto_us));
        s.push_str(&format!("horizon_ms = {}\n", self.horizon_ms));
        if let Some(SpecFault::QueueOveradmit { extra }) = self.fault {
            s.push_str(&format!("fault = overadmit:{extra}\n"));
        }
        if let Some(aqm) = self.aqm.to_token() {
            s.push_str(&format!("aqm = {aqm}\n"));
        }
        if self.stability {
            s.push_str("stability = on\n");
        }
        if let Some(expect) = &self.expect {
            s.push_str(&format!("expect = {expect}\n"));
        }
        for t in &self.trains {
            s.push_str(&format!("train = {} {} {}\n", t.sender, t.at_us, t.bytes));
        }
        for sess in &self.sessions {
            let sizes = sess
                .sizes
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            s.push_str(&format!(
                "session = {} {} {} {sizes}\n",
                sess.sender, sess.at_us, sess.think_us
            ));
        }
        s
    }

    /// Parses the text form. Unknown keys, missing required keys, and
    /// malformed values are errors — a corpus typo must not silently
    /// replay a different scenario.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut seed = None;
        let mut senders = None;
        let mut link_mbps = None;
        let mut delay_us = None;
        let mut buffer_pkts = None;
        let mut cc = None;
        let mut min_rto_us = None;
        let mut horizon_ms = None;
        let mut fault = None;
        let mut aqm = None;
        let mut stability = None;
        let mut expect = None;
        let mut trains = Vec::new();
        let mut sessions = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| format!("line {}: bad {what}: `{value}`", lineno + 1);
            match key {
                "seed" => seed = Some(value.parse::<u64>().map_err(|_| bad("seed"))?),
                "senders" => senders = Some(value.parse::<usize>().map_err(|_| bad("senders"))?),
                "link_mbps" => {
                    link_mbps = Some(value.parse::<u64>().map_err(|_| bad("link_mbps"))?)
                }
                "delay_us" => delay_us = Some(value.parse::<u64>().map_err(|_| bad("delay_us"))?),
                "buffer_pkts" => {
                    buffer_pkts = Some(value.parse::<usize>().map_err(|_| bad("buffer_pkts"))?)
                }
                "cc" => {
                    cc = Some(match value {
                        "reno" => SpecCc::Reno,
                        "trim-guideline" => SpecCc::TrimGuideline,
                        other => match other.strip_prefix("trim-k:") {
                            Some(k) => {
                                SpecCc::TrimOverrideNs(k.parse::<u64>().map_err(|_| bad("cc"))?)
                            }
                            None => return Err(bad("cc")),
                        },
                    })
                }
                "min_rto_us" => {
                    min_rto_us = Some(value.parse::<u64>().map_err(|_| bad("min_rto_us"))?)
                }
                "horizon_ms" => {
                    horizon_ms = Some(value.parse::<u64>().map_err(|_| bad("horizon_ms"))?)
                }
                "aqm" => aqm = Some(SpecAqm::from_token(value).ok_or_else(|| bad("aqm"))?),
                "stability" => {
                    stability = Some(match value {
                        "on" => true,
                        "off" => false,
                        _ => return Err(bad("stability (want `on` or `off`)")),
                    })
                }
                "expect" => expect = Some(value.to_string()),
                "fault" => match value.strip_prefix("overadmit:") {
                    Some(extra) => {
                        fault = Some(SpecFault::QueueOveradmit {
                            extra: extra.parse::<u64>().map_err(|_| bad("fault"))?,
                        })
                    }
                    None => return Err(bad("fault")),
                },
                "train" => {
                    let mut it = value.split_whitespace();
                    let parse = |field: Option<&str>| field.and_then(|f| f.parse::<u64>().ok());
                    match (
                        parse(it.next()),
                        parse(it.next()),
                        parse(it.next()),
                        it.next(),
                    ) {
                        (Some(sender), Some(at_us), Some(bytes), None) => trains.push(SpecTrain {
                            sender: sender as usize,
                            at_us,
                            bytes,
                        }),
                        _ => return Err(bad("train (want `sender at_us bytes`)")),
                    }
                }
                "session" => {
                    let fields: Option<Vec<u64>> = value
                        .split_whitespace()
                        .map(|f| f.parse::<u64>().ok())
                        .collect();
                    match fields.as_deref() {
                        Some([sender, at_us, think_us, sizes @ ..]) if !sizes.is_empty() => {
                            sessions.push(SpecSession {
                                sender: *sender as usize,
                                at_us: *at_us,
                                think_us: *think_us,
                                sizes: sizes.to_vec(),
                            })
                        }
                        _ => {
                            return Err(bad(
                                "session (want `sender at_us think_us size1 [size2 ...]`)",
                            ))
                        }
                    }
                }
                other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
            }
        }
        fn req(name: &'static str) -> impl Fn() -> String {
            move || format!("missing required key `{name}`")
        }
        let spec = ScenarioSpec {
            seed: seed.unwrap_or(0),
            senders: senders.ok_or_else(req("senders"))?,
            link_mbps: link_mbps.ok_or_else(req("link_mbps"))?,
            delay_us: delay_us.ok_or_else(req("delay_us"))?,
            buffer_pkts: buffer_pkts.ok_or_else(req("buffer_pkts"))?,
            cc: cc.ok_or_else(req("cc"))?,
            min_rto_us: min_rto_us.ok_or_else(req("min_rto_us"))?,
            horizon_ms: horizon_ms.ok_or_else(req("horizon_ms"))?,
            fault,
            aqm: aqm.unwrap_or_default(),
            stability: stability.unwrap_or(false),
            expect,
            trains,
            sessions,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioSpec {
        ScenarioSpec {
            seed: 7,
            senders: 3,
            link_mbps: 1000,
            delay_us: 50,
            buffer_pkts: 100,
            cc: SpecCc::TrimGuideline,
            min_rto_us: 200_000,
            horizon_ms: 500,
            fault: None,
            aqm: SpecAqm::DropTail,
            stability: false,
            expect: None,
            trains: vec![
                SpecTrain {
                    sender: 0,
                    at_us: 100,
                    bytes: 29_200,
                },
                SpecTrain {
                    sender: 2,
                    at_us: 350,
                    bytes: 14_601,
                },
            ],
            sessions: Vec::new(),
        }
    }

    fn session_sample() -> ScenarioSpec {
        let mut spec = sample();
        spec.trains = vec![SpecTrain {
            sender: 0,
            at_us: 100,
            bytes: 29_200,
        }];
        spec.sessions = vec![SpecSession {
            sender: 1,
            at_us: 200,
            think_us: 5_000,
            sizes: vec![14_600, 2_920, 29_200],
        }];
        spec
    }

    #[test]
    fn text_round_trips_exactly() {
        for cc in [
            SpecCc::Reno,
            SpecCc::TrimGuideline,
            SpecCc::TrimOverrideNs(275_000),
        ] {
            for fault in [None, Some(SpecFault::QueueOveradmit { extra: 3 })] {
                let mut spec = sample();
                spec.cc = cc;
                spec.fault = fault;
                let text = spec.to_text();
                let parsed = ScenarioSpec::from_text(&text).unwrap();
                assert_eq!(parsed, spec);
                assert_eq!(parsed.to_text(), text);
            }
        }
    }

    #[test]
    fn session_specs_round_trip_and_enforce_their_rules() {
        let spec = session_sample();
        spec.validate().unwrap();
        let text = spec.to_text();
        assert!(text.contains("session = 1 200 5000 14600 2920 29200\n"));
        let parsed = ScenarioSpec::from_text(&text).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.to_text(), text);
        assert_eq!(parsed.session_for(1).unwrap().sizes.len(), 3);
        assert!(parsed.session_for(0).is_none());
        // Session responses count toward offered load, padded.
        assert_eq!(spec.offered_padded_bytes(1), 14_600 + 2_920 + 29_200);

        // A session on the same sender as a train is rejected.
        let mut mixed = spec.clone();
        mixed.sessions[0].sender = 0;
        assert!(mixed.validate().is_err());
        // Two sessions on one sender are rejected.
        let mut dup = spec.clone();
        dup.sessions.push(dup.sessions[0].clone());
        assert!(dup.validate().is_err());
        // Out-of-range sender, empty sizes, zero-byte response, late start.
        let mut bad = spec.clone();
        bad.sessions[0].sender = 99;
        assert!(bad.validate().is_err());
        let mut bad = spec.clone();
        bad.sessions[0].sizes.clear();
        assert!(bad.validate().is_err());
        let mut bad = spec.clone();
        bad.sessions[0].sizes[1] = 0;
        assert!(bad.validate().is_err());
        let mut bad = spec.clone();
        bad.sessions[0].at_us = bad.horizon_ms * 1_000;
        assert!(bad.validate().is_err());
        // A session alone satisfies the at-least-one-workload rule.
        let mut alone = spec.clone();
        alone.trains.clear();
        alone.validate().unwrap();
    }

    #[test]
    fn session_spec_replays_sequentially_and_deterministically() {
        let spec = session_sample();
        let out = spec.run().unwrap();
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        let sess = &out.report.senders[1];
        // Every response completed, in order, separated by the think.
        assert_eq!(sess.trains.len(), 3);
        for pair in sess.trains.windows(2) {
            let think = pair[1].enqueued_at.saturating_since(pair[0].completed_at);
            assert_eq!(think, Dur::from_micros(5_000));
        }
        assert_eq!(sess.goodput_bytes, spec.offered_padded_bytes(1));
        let again = spec.run().unwrap();
        assert_eq!(
            out.report.completion_times(),
            again.report.completion_times()
        );
    }

    #[test]
    fn aqm_and_stability_specs_round_trip_exactly() {
        let red = SpecAqm::Red {
            min_th: 10,
            max_th: 30,
            max_p_milli: 200,
            wq_micro: 2_000,
            ecn: false,
        };
        let red_ecn = SpecAqm::Red {
            min_th: 15,
            max_th: 45,
            max_p_milli: 100,
            wq_micro: 2_000,
            ecn: true,
        };
        let codel = SpecAqm::Codel {
            target_us: 50,
            interval_us: 1_000,
            ecn: false,
        };
        let codel_ecn = SpecAqm::Codel {
            target_us: 50,
            interval_us: 1_000,
            ecn: true,
        };
        for aqm in [SpecAqm::DropTail, red, red_ecn, codel, codel_ecn] {
            for stability in [false, true] {
                let mut spec = sample();
                spec.aqm = aqm;
                spec.stability = stability;
                if stability {
                    spec.expect = Some("monitor:cwnd-limit-cycle".into());
                }
                let text = spec.to_text();
                let parsed = ScenarioSpec::from_text(&text).unwrap();
                assert_eq!(parsed, spec);
                assert_eq!(parsed.to_text(), text);
            }
        }
        // Canonical token spellings.
        let mut spec = sample();
        spec.aqm = red;
        assert!(spec.to_text().contains("aqm = red:10:30:200:2000\n"));
        spec.aqm = codel_ecn;
        assert!(spec.to_text().contains("aqm = codel-ecn:50:1000\n"));
        // Defaults stay omitted, so pre-AQM corpus text is unchanged.
        let legacy = sample().to_text();
        assert!(!legacy.contains("aqm"));
        assert!(!legacy.contains("stability"));
        assert!(!legacy.contains("expect"));
    }

    #[test]
    fn aqm_validation_rejects_degenerate_parameters() {
        let with_aqm = |aqm| ScenarioSpec { aqm, ..sample() };
        // Inverted RED band, out-of-range probability and weight.
        for (min_th, max_th, max_p_milli, wq_micro) in [
            (30, 30, 200, 2_000),
            (40, 30, 200, 2_000),
            (10, 30, 0, 2_000),
            (10, 30, 1_001, 2_000),
            (10, 30, 200, 0),
            (10, 30, 200, 1_000_001),
        ] {
            let spec = with_aqm(SpecAqm::Red {
                min_th,
                max_th,
                max_p_milli,
                wq_micro,
                ecn: false,
            });
            assert!(
                spec.validate().is_err(),
                "red {min_th}/{max_th}/{max_p_milli}/{wq_micro} must be rejected"
            );
        }
        // CoDel: zero target, interval below target.
        for (target_us, interval_us) in [(0, 1_000), (100, 50)] {
            let spec = with_aqm(SpecAqm::Codel {
                target_us,
                interval_us,
                ecn: false,
            });
            assert!(spec.validate().is_err());
        }
        // Malformed expect strings.
        for expect in ["cwnd-limit-cycle", "monitor:", "oracle:", "watch:x"] {
            let mut spec = sample();
            spec.expect = Some(expect.into());
            assert!(
                spec.validate().is_err(),
                "expect `{expect}` must be rejected"
            );
        }
        for expect in ["monitor:cwnd-limit-cycle", "oracle:goodput-conservation"] {
            let mut spec = sample();
            spec.expect = Some(expect.into());
            spec.validate().unwrap();
        }
    }

    #[test]
    fn red_spec_replays_deterministically_with_early_drops() {
        let mut spec = sample();
        spec.buffer_pkts = 16;
        spec.aqm = SpecAqm::Red {
            min_th: 2,
            max_th: 6,
            max_p_milli: 500,
            wq_micro: 500_000,
            ecn: false,
        };
        spec.trains = (0..spec.senders)
            .map(|s| SpecTrain {
                sender: s,
                at_us: 100,
                bytes: 146_000,
            })
            .collect();
        let a = spec.run().unwrap();
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(
            a.report.bottleneck.dropped > 0,
            "a tight RED band over synchronized trains must drop early"
        );
        let b = spec.run().unwrap();
        assert_eq!(a.report.bottleneck.dropped, b.report.bottleneck.dropped);
        assert_eq!(a.report.completion_times(), b.report.completion_times());
    }

    #[test]
    fn codel_spec_replays_cleanly_under_monitors() {
        let mut spec = sample();
        spec.buffer_pkts = 16;
        spec.aqm = SpecAqm::Codel {
            target_us: 50,
            interval_us: 1_000,
            ecn: false,
        };
        spec.stability = true;
        spec.trains = (0..spec.senders)
            .map(|s| SpecTrain {
                sender: s,
                at_us: 100,
                bytes: 73_000,
            })
            .collect();
        let out = spec.run().unwrap();
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.report.completed_trains(), spec.senders);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        let base = sample().to_text();
        for (needle, replacement, why) in [
            ("senders = 3", "senders = 0", "zero senders"),
            ("senders = 3", "sneders = 3", "unknown key"),
            ("cc = trim-guideline", "cc = vegas", "unknown cc"),
            ("train = 0 100 29200", "train = 9 100 29200", "sender range"),
            ("train = 0 100 29200", "train = 0 100", "short train"),
            ("horizon_ms = 500", "horizon_ms = 0", "train after horizon"),
        ] {
            let text = base.replace(needle, replacement);
            assert!(
                ScenarioSpec::from_text(&text).is_err(),
                "expected parse failure for {why}"
            );
        }
        // Dropping a required key is also an error.
        let text = base.replace("link_mbps = 1000\n", "");
        assert!(ScenarioSpec::from_text(&text).is_err());
        // Malformed aqm tokens, stability flags, and expect values.
        for bad_line in [
            "aqm = red:10:30:200",
            "aqm = red:10:30:200:2000:9",
            "aqm = codel:50",
            "aqm = fq-codel:50:1000",
            "aqm = red:ten:30:200:2000",
            "stability = maybe",
            "expect = cwnd-limit-cycle",
        ] {
            let text = format!("{base}{bad_line}\n");
            assert!(
                ScenarioSpec::from_text(&text).is_err(),
                "expected parse failure for `{bad_line}`"
            );
        }
        // Session lines need a sender, start, think, and >= 1 size.
        for bad_line in ["session = 1 200 5000", "session = 1 200 x 14600"] {
            let text = format!("{base}{bad_line}\n");
            assert!(
                ScenarioSpec::from_text(&text).is_err(),
                "expected parse failure for `{bad_line}`"
            );
        }
    }

    #[test]
    fn padded_offered_load_rounds_to_whole_segments() {
        let spec = sample();
        assert_eq!(spec.offered_padded_bytes(0), 29_200); // 20 segments
        assert_eq!(spec.offered_padded_bytes(2), 14_600 + 1_460); // 11 segments
        assert_eq!(spec.offered_padded_bytes(1), 0);
        assert_eq!(spec.base_rtt_ns(), 200_000);
        assert_eq!(spec.bottleneck_bps(), 1_000_000_000);
    }

    #[test]
    fn clean_spec_runs_monitored_and_conserves_goodput() {
        let spec = sample();
        let out = spec.run().unwrap();
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        for s in &out.report.senders {
            assert!(s.goodput_bytes <= spec.offered_padded_bytes(s.sender));
            if !s.unfinished {
                assert_eq!(s.goodput_bytes, spec.offered_padded_bytes(s.sender));
            }
        }
        assert_eq!(out.report.completed_trains(), 2);
    }

    #[test]
    fn overadmit_fault_spec_is_caught_by_the_queue_bound_monitor() {
        let mut spec = sample();
        // Enough synchronized traffic to overflow a small buffer.
        spec.buffer_pkts = 8;
        spec.fault = Some(SpecFault::QueueOveradmit { extra: 3 });
        spec.trains = (0..spec.senders)
            .map(|s| SpecTrain {
                sender: s,
                at_us: 100,
                bytes: 58_400,
            })
            .collect();
        let out = spec.run().unwrap();
        assert!(
            out.violations.iter().any(|v| v.monitor == "queue-bound"),
            "expected a queue-bound violation, got {:?}",
            out.violations
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let spec = sample();
        let a = spec.run().unwrap();
        let b = spec.run().unwrap();
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.report.at, b.report.at);
        assert_eq!(a.report.completion_times(), b.report.completion_times());
        for (x, y) in a.report.senders.iter().zip(&b.report.senders) {
            assert_eq!(x.goodput_bytes, y.goodput_bytes);
            assert_eq!(x.stats, y.stats);
        }
    }
}
