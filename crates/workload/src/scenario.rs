//! Ready-made evaluation scenarios.
//!
//! [`ScenarioBuilder`] assembles the paper's workhorse many-to-one setup —
//! N web servers sending packet trains to one front-end across a single
//! switch — into a runnable [`Scenario`] with per-train completion
//! records, per-connection statistics, and bottleneck-queue measurements.
//! For other topologies, [`wire_flow`] and [`schedule_train`] wire TCP
//! connections over any `netsim` topology built with empty
//! [`TcpHost`] agents.

use netsim::prelude::*;
use netsim::time::SimTime;
use netsim::topology::{self, LinkSpec, ManyToOne};
use trim_tcp::conn::TrainRecord;
use trim_tcp::{CcKind, ConnStats, Segment, TcpConfig, TcpHost};

use crate::metrics::Summary;

/// A train to inject: `bytes` handed to TCP at absolute time `at`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainSpec {
    /// Injection time.
    pub at: SimTime,
    /// Application bytes.
    pub bytes: u64,
}

impl TrainSpec {
    /// A train of `bytes` at `t` seconds.
    pub fn at_secs(t: f64, bytes: u64) -> Self {
        TrainSpec {
            at: SimTime::from_secs_f64(t),
            bytes,
        }
    }
}

/// Registers a sender on `src` and a receiver on `dst` for `flow`, over
/// any topology whose hosts are [`TcpHost`]s. Returns the sender's local
/// index on `src` (needed by [`schedule_train`]).
///
/// # Panics
///
/// Panics if either node is not a [`TcpHost`] or the flow is already
/// wired there.
pub fn wire_flow(
    sim: &mut Simulator<Segment>,
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    cfg: TcpConfig,
    cc: &CcKind,
) -> usize {
    sim.host_mut::<TcpHost>(dst).add_receiver(flow, cfg);
    sim.host_mut::<TcpHost>(src).add_sender(flow, dst, cfg, cc)
}

/// Schedules a train on a sender previously wired with [`wire_flow`].
///
/// # Panics
///
/// Panics if `src` is not a [`TcpHost`] or `sender_idx` is out of range.
pub fn schedule_train(
    sim: &mut Simulator<Segment>,
    src: NodeId,
    sender_idx: usize,
    spec: TrainSpec,
) {
    sim.host_mut::<TcpHost>(src)
        .schedule_train(sender_idx, spec.at, spec.bytes);
}

/// Schedules a persistent-HTTP user session on a sender previously wired
/// with [`wire_flow`]: the responses of `sizes` go out sequentially, each
/// handed to TCP `think` after the previous one completes, starting at
/// `start`.
///
/// # Panics
///
/// Panics if `src` is not a [`TcpHost`], `sender_idx` is out of range,
/// `sizes` is empty, or the sender already has a session.
pub fn schedule_session(
    sim: &mut Simulator<Segment>,
    src: NodeId,
    sender_idx: usize,
    start: SimTime,
    sizes: Vec<u64>,
    think: Dur,
) {
    sim.host_mut::<TcpHost>(src)
        .schedule_response_sequence(sender_idx, start, sizes, think);
}

/// Builder for the many-to-one scenario (Sections II.B and IV.A/B).
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    senders: usize,
    cc: CcKind,
    tcp: TcpConfig,
    sender_link: LinkSpec,
    front_end_link: LinkSpec,
    record_cwnd: bool,
    throughput_bin: Option<Dur>,
    record_queue: bool,
}

impl ScenarioBuilder {
    /// Starts a many-to-one scenario with `senders` web servers and the
    /// paper's defaults: 1 Gbps links, 50 µs latency, 100-packet switch
    /// buffer, Reno.
    pub fn many_to_one(senders: usize) -> Self {
        let link = LinkSpec::new(
            Bandwidth::gbps(1),
            Dur::from_micros(50),
            QueueConfig::drop_tail(100),
        );
        ScenarioBuilder {
            senders,
            cc: CcKind::Reno,
            tcp: TcpConfig::default(),
            sender_link: link,
            front_end_link: link,
            record_cwnd: false,
            throughput_bin: None,
            record_queue: false,
        }
    }

    /// Selects the congestion-control policy for every sender.
    pub fn congestion_control(mut self, cc: CcKind) -> Self {
        self.cc = cc;
        self
    }

    /// Uses TCP-TRIM with `K` derived from this scenario's bottleneck.
    pub fn trim(self) -> Self {
        let bw = self.front_end_link.bandwidth.as_bps();
        let mss = self.tcp.mss_bytes;
        self.congestion_control(CcKind::trim_with_capacity(bw, mss))
    }

    /// Overrides the TCP configuration (RTO bounds, MSS, windows).
    pub fn tcp_config(mut self, cfg: TcpConfig) -> Self {
        self.tcp = cfg;
        self
    }

    /// Overrides both link specs at once.
    pub fn links(mut self, link: LinkSpec) -> Self {
        self.sender_link = link;
        self.front_end_link = link;
        self
    }

    /// Overrides the sender-side links (for the asymmetric convergence
    /// test, Fig. 10).
    pub fn sender_links(mut self, link: LinkSpec) -> Self {
        self.sender_link = link;
        self
    }

    /// Overrides the front-end link (the bottleneck).
    pub fn front_end_link(mut self, link: LinkSpec) -> Self {
        self.front_end_link = link;
        self
    }

    /// Sets the switch buffer size in packets on every queue.
    pub fn buffer_pkts(mut self, pkts: usize) -> Self {
        self.sender_link.queue = QueueConfig {
            capacity: QueueCapacity::Packets(pkts),
            ..self.sender_link.queue
        };
        self.front_end_link.queue = QueueConfig {
            capacity: QueueCapacity::Packets(pkts),
            ..self.front_end_link.queue
        };
        self
    }

    /// Selects the queue discipline (drop-tail, RED, or CoDel) on every
    /// queue. Per-link overrides go through [`ScenarioBuilder::sender_links`]
    /// / [`ScenarioBuilder::front_end_link`] with a discipline already set
    /// on the [`LinkSpec`]'s queue config.
    pub fn queue_discipline(mut self, aqm: netsim::QueueDiscipline) -> Self {
        self.sender_link.queue.aqm = aqm;
        self.front_end_link.queue.aqm = aqm;
        self
    }

    /// Enables ECN marking above `pkts` on every queue (for DCTCP/L2DCT).
    pub fn ecn_threshold(mut self, pkts: usize) -> Self {
        self.sender_link.queue.ecn_threshold = Some(pkts);
        self.front_end_link.queue.ecn_threshold = Some(pkts);
        self
    }

    /// Records every sender's congestion-window evolution.
    pub fn record_cwnd(mut self) -> Self {
        self.record_cwnd = true;
        self
    }

    /// Meters per-flow goodput at the front-end in bins of `bin`.
    pub fn throughput_bin(mut self, bin: Dur) -> Self {
        self.throughput_bin = Some(bin);
        self
    }

    /// Records the bottleneck queue-length time series (Fig. 9(a)).
    pub fn record_queue(mut self) -> Self {
        self.record_queue = true;
        self
    }

    /// Assembles the simulator, topology and connections.
    pub fn build(self) -> Scenario {
        let mut sim: Simulator<Segment> = Simulator::new();
        let net = topology::many_to_one_asym(
            &mut sim,
            self.senders,
            self.sender_link,
            self.front_end_link,
            |_role| Box::new(TcpHost::new()),
        );
        for (i, &s) in net.senders.iter().enumerate() {
            let flow = FlowId(i as u64);
            let idx = wire_flow(&mut sim, flow, s, net.front_end, self.tcp, &self.cc);
            debug_assert_eq!(idx, 0, "one sender per host");
            if self.record_cwnd {
                sim.host_mut::<TcpHost>(s)
                    .connection_mut(0)
                    .enable_cwnd_recording();
            }
            if let Some(bin) = self.throughput_bin {
                sim.host_mut::<TcpHost>(net.front_end)
                    .receiver_mut(i)
                    .enable_throughput_meter(bin);
            }
        }
        if self.record_queue {
            sim.enable_queue_recording(net.bottleneck);
        }
        // Runtime invariant monitors, per the TRIM_CHECK_MONITORS policy
        // (default: on in debug builds, off in release). Observe-only, so
        // the event stream — and therefore every artifact — is identical
        // either way.
        trim_check::attach_standard_if_enabled(&mut sim);
        Scenario { sim, net }
    }
}

/// A built many-to-one scenario, ready to receive trains and run.
pub struct Scenario {
    sim: Simulator<Segment>,
    net: ManyToOne,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("senders", &self.net.senders.len())
            .field("now", &self.sim.now())
            .finish_non_exhaustive()
    }
}

impl Scenario {
    /// Schedules a train on sender `sender` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range or the simulation has already
    /// started.
    pub fn send_train(&mut self, sender: usize, spec: TrainSpec) {
        let node = self.net.senders[sender];
        schedule_train(&mut self.sim, node, 0, spec);
    }

    /// Schedules many trains at once.
    pub fn send_trains(&mut self, sender: usize, specs: impl IntoIterator<Item = TrainSpec>) {
        for s in specs {
            self.send_train(sender, s);
        }
    }

    /// Schedules a persistent-HTTP session on sender `sender`: the
    /// responses of `sizes` go out sequentially, each `think` after the
    /// previous one completes, starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range, `sizes` is empty, or the
    /// sender already has a session.
    pub fn send_session(&mut self, sender: usize, start: SimTime, sizes: Vec<u64>, think: Dur) {
        let node = self.net.senders[sender];
        schedule_session(&mut self.sim, node, 0, start, sizes, think);
    }

    /// The underlying simulator, for custom instrumentation.
    pub fn sim_mut(&mut self) -> &mut Simulator<Segment> {
        &mut self.sim
    }

    /// The topology handle.
    pub fn net(&self) -> &ManyToOne {
        &self.net
    }

    /// Runs until `secs` of simulated time and collects the report.
    pub fn run_for_secs(&mut self, secs: f64) -> Report {
        self.sim.run_until(SimTime::from_secs_f64(secs));
        self.report()
    }

    /// Collects the report at the current simulated time without running
    /// further.
    ///
    /// # Panics
    ///
    /// Panics if any attached invariant monitor recorded a violation —
    /// a monitored run must be clean before its results are read. Tools
    /// that want the report *and* the violations (the fuzzer's failure
    /// path) use [`Scenario::report_unchecked`] instead.
    pub fn report(&mut self) -> Report {
        self.sim.assert_no_violations();
        self.report_unchecked()
    }

    /// [`Scenario::report`] without the clean-monitors assertion: still
    /// collects results when invariant monitors recorded violations, so
    /// a caller can pair the report with `sim_mut().violations()`.
    pub fn report_unchecked(&mut self) -> Report {
        let bottleneck = self.sim.queue_stats(self.net.bottleneck);
        let queue_series = self
            .sim
            .queue_samples(self.net.bottleneck)
            .map(|s| s.to_vec());
        let mut senders = Vec::new();
        for (i, &node) in self.net.senders.iter().enumerate() {
            let host: &TcpHost = self.sim.host(node);
            let conn = host.connection(0);
            let fe: &TcpHost = self.sim.host(self.net.front_end);
            let meter = fe.receiver(i).meter().cloned();
            senders.push(SenderReport {
                sender: i,
                cc: conn.cc_name(),
                trains: conn.completed_trains().to_vec(),
                stats: conn.stats(),
                unfinished: !conn.is_idle(),
                cwnd: conn.cwnd_series().cloned(),
                goodput_bytes: fe.receiver(i).goodput_bytes(),
                throughput: meter,
            });
        }
        Report {
            at: self.sim.now(),
            senders,
            bottleneck,
            queue_series,
        }
    }
}

/// Per-sender results.
#[derive(Clone, Debug)]
pub struct SenderReport {
    /// Sender index.
    pub sender: usize,
    /// Congestion-control name.
    pub cc: &'static str,
    /// Completed trains in completion order.
    pub trains: Vec<TrainRecord>,
    /// Connection counters.
    pub stats: ConnStats,
    /// Whether data was still outstanding at report time.
    pub unfinished: bool,
    /// Window evolution, when recorded.
    pub cwnd: Option<Series>,
    /// In-order bytes delivered at the front-end.
    pub goodput_bytes: u64,
    /// Binned goodput at the front-end, when metered.
    pub throughput: Option<ThroughputMeter>,
}

/// Results of a many-to-one run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Simulated time of the report.
    pub at: SimTime,
    /// One entry per sender.
    pub senders: Vec<SenderReport>,
    /// Bottleneck queue statistics.
    pub bottleneck: netsim::QueueStats,
    /// Bottleneck queue-length series, when recorded.
    pub queue_series: Option<Vec<netsim::QueueSample>>,
}

impl Report {
    /// Total trains completed across all senders.
    pub fn completed_trains(&self) -> usize {
        self.senders.iter().map(|s| s.trains.len()).sum()
    }

    /// Total retransmission timeouts across all senders.
    pub fn total_timeouts(&self) -> u64 {
        self.senders.iter().map(|s| s.stats.timeouts).sum()
    }

    /// All completion times across all senders.
    pub fn completion_times(&self) -> Vec<Dur> {
        self.senders
            .iter()
            .flat_map(|s| s.trains.iter().map(|t| t.completion_time()))
            .collect()
    }

    /// Summary of all completion times (the paper's ACT is `.mean`).
    pub fn act(&self) -> Summary {
        Summary::of(&self.completion_times())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_runs_the_motivating_example() {
        let mut sc = ScenarioBuilder::many_to_one(3).build();
        for s in 0..3 {
            sc.send_train(s, TrainSpec::at_secs(0.01, 50_000));
        }
        let report = sc.run_for_secs(1.0);
        assert_eq!(report.completed_trains(), 3);
        assert_eq!(report.total_timeouts(), 0);
        assert!(report.act().mean > 0.0);
        for s in &report.senders {
            assert_eq!(s.cc, "reno");
            assert!(!s.unfinished);
            assert_eq!(s.goodput_bytes % 1460, 0);
        }
    }

    #[test]
    fn trim_builder_configures_capacity() {
        let mut sc = ScenarioBuilder::many_to_one(2).trim().record_cwnd().build();
        sc.send_train(0, TrainSpec::at_secs(0.001, 20_000));
        sc.send_train(1, TrainSpec::at_secs(0.001, 20_000));
        let report = sc.run_for_secs(0.5);
        assert_eq!(report.completed_trains(), 2);
        assert_eq!(report.senders[0].cc, "trim");
        assert!(report.senders[0].cwnd.is_some());
    }

    #[test]
    fn queue_and_throughput_instrumentation() {
        let mut sc = ScenarioBuilder::many_to_one(2)
            .record_queue()
            .throughput_bin(Dur::from_millis(1))
            .build();
        sc.send_train(0, TrainSpec::at_secs(0.0, 100_000));
        sc.send_train(1, TrainSpec::at_secs(0.0, 100_000));
        let report = sc.run_for_secs(0.5);
        assert!(report.queue_series.is_some());
        let m = report.senders[0].throughput.as_ref().unwrap();
        assert_eq!(m.total_bytes(), report.senders[0].goodput_bytes);
        assert!(report.bottleneck.enqueued > 0);
    }

    #[test]
    fn asymmetric_links_build() {
        let sc = ScenarioBuilder::many_to_one(5)
            .sender_links(LinkSpec::new(
                Bandwidth::bps(1_100_000_000),
                Dur::from_micros(50),
                QueueConfig::drop_tail(100),
            ))
            .build();
        assert_eq!(sc.net().senders.len(), 5);
    }
}
