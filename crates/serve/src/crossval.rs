//! Cross-validation of the mean-field fast path against the packet
//! simulator.
//!
//! The fluid model ([`trim_core::fluid`]) buys its million-session speed
//! by abstracting packets away, so it must earn trust the only way an
//! abstraction can: by agreeing with the packet-level simulator where
//! both can run. [`cross_validate`] runs the same saturated
//! persistent-connection workload through both — N senders over the
//! paper's many-to-one bottleneck, each serving a long session of
//! back-to-back responses — and compares the mean per-request completion
//! time (ARCT). The committed differential test gates the relative error
//! at 10 % on every instance of [`instances`].
//!
//! Methodology notes:
//!
//! - The packet side measures only the stationary window: it opens once
//!   every connection has finished its first few responses (slow-start
//!   warm-up) and closes when the first session drains (after that the
//!   survivors split the freed capacity and the population no longer
//!   matches the model's N). The fluid model integrates to steady state
//!   and averages over the second half of its horizon, so only the
//!   stationary regimes are compared.
//! - The packet mean ARCT is estimated as `N·T / completions`: every
//!   backlogged connection always has exactly one response in service,
//!   so connection-time divided by responses is the mean time per
//!   response. Averaging the completion times of responses that *finish*
//!   inside the window would be biased low — responses still in flight
//!   at the cutoff are preferentially the long ones (length-biased
//!   truncation) — while this occupancy estimator has no boundary bias.
//! - Think time is 1 µs, keeping every connection backlogged — the
//!   regime where the mean-field rate balance `N·W = C·RTT` holds.
//! - The fluid `K` uses the Eq. 22 lower bound for the same `C` and `D`;
//!   the packet TRIM derives its threshold from the same guideline.

use netsim::time::{Dur, SimTime};
use trim_core::fluid::{self, FluidCc, FluidClass, FluidConfig};
use trim_core::kmodel;
use trim_workload::scenario::ScenarioBuilder;

/// Congestion control of a cross-validation instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CvCc {
    /// TCP Reno (the paper's legacy baseline).
    Reno,
    /// TCP-TRIM with the Eq. 22 threshold.
    Trim,
}

/// One cross-validation instance, runnable by both simulators.
#[derive(Clone, Copy, Debug)]
pub struct Instance {
    /// Short identifier for reports.
    pub name: &'static str,
    /// Concurrent persistent connections sharing the bottleneck.
    pub senders: usize,
    /// Responses per session.
    pub requests: usize,
    /// Bytes per response.
    pub response_bytes: u64,
    /// Congestion control on every sender.
    pub cc: CvCc,
}

/// Outcome of one instance: both predictions and their disagreement.
#[derive(Clone, Copy, Debug)]
pub struct CrossVal {
    /// The instance name.
    pub name: &'static str,
    /// Concurrent connections.
    pub senders: usize,
    /// Mean steady-state ARCT from the packet simulator, in seconds.
    pub packet_arct: f64,
    /// Mean ARCT predicted by the fluid model, in seconds.
    pub fluid_arct: f64,
    /// `|packet - fluid| / packet`.
    pub rel_err: f64,
}

/// Responses discarded per connection before averaging (slow-start and
/// initial convergence).
const WARMUP_RESPONSES: usize = 5;

/// Base round-trip time of the many-to-one topology: four 50 µs hops.
const BASE_RTT_NS: u64 = 200_000;

/// Bottleneck buffer of the paper's default switch, in packets.
const BUFFER_PKTS: f64 = 100.0;

/// Bottleneck capacity in 1460-byte packets per second (data packets
/// occupy exactly one MSS on the wire, so this is exact).
fn capacity_pps() -> f64 {
    1e9 / (1460.0 * 8.0)
}

/// The committed cross-validation suite: TRIM at three concurrency
/// levels plus a Reno baseline.
pub fn instances() -> Vec<Instance> {
    vec![
        Instance {
            name: "trim_n4",
            senders: 4,
            requests: 40,
            response_bytes: 200_000,
            cc: CvCc::Trim,
        },
        Instance {
            name: "trim_n8",
            senders: 8,
            requests: 40,
            response_bytes: 200_000,
            cc: CvCc::Trim,
        },
        Instance {
            name: "trim_n16",
            senders: 16,
            requests: 40,
            response_bytes: 200_000,
            cc: CvCc::Trim,
        },
        Instance {
            name: "reno_n8",
            senders: 8,
            requests: 40,
            response_bytes: 200_000,
            cc: CvCc::Reno,
        },
    ]
}

/// Runs `inst` through both simulators and reports the disagreement.
///
/// # Panics
///
/// Panics if any packet-level session fails to finish within the run's
/// horizon — an unfinished session would silently bias the mean.
pub fn cross_validate(inst: &Instance) -> CrossVal {
    let packet_arct = packet_mean_arct(inst);
    let fluid_arct = fluid_mean_arct(inst);
    CrossVal {
        name: inst.name,
        senders: inst.senders,
        packet_arct,
        fluid_arct,
        rel_err: (packet_arct - fluid_arct).abs() / packet_arct,
    }
}

fn packet_mean_arct(inst: &Instance) -> f64 {
    let mut builder = ScenarioBuilder::many_to_one(inst.senders);
    if inst.cc == CvCc::Trim {
        builder = builder.trim();
    }
    let mut sc = builder.build();
    let sizes = vec![inst.response_bytes; inst.requests];
    for s in 0..inst.senders {
        sc.send_session(
            s,
            SimTime::from_secs_f64(0.001),
            sizes.clone(),
            Dur::from_micros(1),
        );
    }
    let report = sc.run_for_secs(5.0);
    for sender in &report.senders {
        assert_eq!(
            sender.trains.len(),
            inst.requests,
            "{}: sender {} finished {} of {} responses",
            inst.name,
            sender.sender,
            sender.trains.len(),
            inst.requests
        );
    }
    // Stationary window: opens when the slowest connection clears its
    // warm-up responses, closes when the fastest session drains.
    let window_start = report
        .senders
        .iter()
        .map(|s| s.trains[WARMUP_RESPONSES - 1].completed_at)
        .max()
        .expect("at least one sender");
    let window_end = report
        .senders
        .iter()
        .filter_map(|s| s.trains.last().map(|t| t.completed_at))
        .min()
        .expect("at least one sender");
    let span = window_end.saturating_since(window_start).as_secs_f64();
    assert!(span > 0.0, "{}: empty stationary window", inst.name);
    // Occupancy estimator: N connections, each permanently serving one
    // response, completed `completions` of them over `span` seconds.
    let completions = report
        .senders
        .iter()
        .flat_map(|s| s.trains.iter())
        .filter(|t| t.completed_at > window_start && t.completed_at <= window_end)
        .count();
    inst.senders as f64 * span / completions as f64
}

fn fluid_mean_arct(inst: &Instance) -> f64 {
    let c = capacity_pps();
    let cc = match inst.cc {
        CvCc::Reno => FluidCc::Reno,
        CvCc::Trim => FluidCc::Trim {
            k_ns: kmodel::k_lower_bound_ns(c, BASE_RTT_NS),
        },
    };
    let out = fluid::integrate(&FluidConfig::single_class(
        c,
        BUFFER_PKTS,
        FluidClass {
            n: inst.senders as f64,
            base_rtt_ns: BASE_RTT_NS,
            cc,
        },
    ));
    let pkts = (inst.response_bytes as f64 / 1460.0).ceil();
    out.predicted_arct_ns(0, pkts) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_at_least_three_instances() {
        assert!(instances().len() >= 3);
        assert!(instances().iter().any(|i| i.cc == CvCc::Reno));
    }

    #[test]
    fn fluid_matches_packet_level_within_ten_percent() {
        for inst in instances() {
            let cv = cross_validate(&inst);
            assert!(
                cv.rel_err <= 0.10,
                "{}: packet ARCT {:.6} s vs fluid {:.6} s ({:.1} % apart)",
                cv.name,
                cv.packet_arct,
                cv.fluid_arct,
                cv.rel_err * 100.0
            );
        }
    }
}
