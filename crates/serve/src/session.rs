//! Open-loop user-session generation.
//!
//! A *session* models one user on a persistent HTTP connection: it
//! arrives by a Poisson process (exponential inter-arrival times),
//! issues a small number of requests whose response sizes are drawn
//! from the configured range, and pauses for a per-session think time
//! between consecutive responses. Arrivals are open-loop: the arrival
//! process never waits for the network, which is what makes overload
//! visible instead of self-throttling (the textbook closed-loop
//! pitfall).

use netsim::time::{Dur, SimTime};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use trim_workload::distributions::exponential;

/// Parameters of the session arrival process.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionModel {
    /// Seed for every random draw (arrivals, sizes, think times).
    pub seed: u64,
    /// Total sessions to generate.
    pub sessions: usize,
    /// Sessions arrive by a Poisson process whose rate spreads them
    /// over this window on average.
    pub arrival_window: Dur,
    /// Inclusive range of requests per session.
    pub requests: (usize, usize),
    /// Inclusive range of response sizes in bytes.
    pub response_bytes: (u64, u64),
    /// Think-time floor between responses: every session waits at least
    /// this long. Keeping the floor above the arrival window guarantees
    /// every session is still open when the last one arrives, which is
    /// how the concurrency experiments pin their peak.
    pub think_min: Dur,
    /// Mean of the exponential think-time excess added to the floor.
    pub think_mean_excess: Dur,
}

impl SessionModel {
    /// A small model with serving defaults: 2–3 requests of 2–10 KB,
    /// 500 ms think floor plus a 500 ms-mean exponential excess,
    /// arrivals spread over 250 ms.
    pub fn new(seed: u64, sessions: usize) -> Self {
        SessionModel {
            seed,
            sessions,
            arrival_window: Dur::from_millis(250),
            requests: (2, 3),
            response_bytes: (2_000, 10_000),
            think_min: Dur::from_millis(500),
            think_mean_excess: Dur::from_millis(500),
        }
    }
}

/// One generated session, ready to be wired onto a connection.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionPlan {
    /// Absolute arrival time of the session (its first request).
    pub arrival: SimTime,
    /// Response size of each request, in order.
    pub sizes: Vec<u64>,
    /// The session's think time between consecutive responses.
    pub think: Dur,
}

impl SessionPlan {
    /// Total response bytes the session asks for.
    pub fn total_bytes(&self) -> u64 {
        self.sizes.iter().sum()
    }
}

/// Generates `model.sessions` sessions with Poisson arrivals.
///
/// Deterministic: a pure function of `model`.
///
/// # Panics
///
/// Panics if the model is degenerate (zero sessions, empty ranges, or
/// a zero-size response).
pub fn generate(model: &SessionModel) -> Vec<SessionPlan> {
    assert!(model.sessions > 0, "need at least one session");
    assert!(
        model.requests.0 >= 1 && model.requests.0 <= model.requests.1,
        "bad request range {:?}",
        model.requests
    );
    assert!(
        model.response_bytes.0 >= 1 && model.response_bytes.0 <= model.response_bytes.1,
        "bad response range {:?}",
        model.response_bytes
    );
    let mut rng = StdRng::seed_from_u64(model.seed);
    let mean_gap = model.arrival_window.as_secs_f64() / model.sessions as f64;
    let mut at = 0.0f64;
    let mut plans = Vec::with_capacity(model.sessions);
    for _ in 0..model.sessions {
        let n_req = rng.random_range(model.requests.0..=model.requests.1);
        let sizes = (0..n_req)
            .map(|_| rng.random_range(model.response_bytes.0..=model.response_bytes.1))
            .collect();
        let excess = exponential(&mut rng, model.think_mean_excess.as_secs_f64());
        plans.push(SessionPlan {
            arrival: SimTime::from_secs_f64(at),
            sizes,
            think: model.think_min + Dur::from_secs_f64(excess),
        });
        at += exponential(&mut rng, mean_gap);
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let m = SessionModel::new(7, 200);
        assert_eq!(generate(&m), generate(&m));
        let other = SessionModel::new(8, 200);
        assert_ne!(generate(&m), generate(&other));
    }

    #[test]
    fn sessions_match_the_model_ranges() {
        let m = SessionModel::new(3, 500);
        let plans = generate(&m);
        assert_eq!(plans.len(), 500);
        assert_eq!(plans[0].arrival, SimTime::ZERO);
        for p in &plans {
            assert!((2..=3).contains(&p.sizes.len()));
            assert!(p.sizes.iter().all(|&b| (2_000..=10_000).contains(&b)));
            assert!(p.think >= m.think_min);
            assert!(p.total_bytes() >= 4_000);
        }
        // Arrivals are sorted by construction and average near the
        // configured window.
        assert!(plans.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let last = plans.last().unwrap().arrival.as_nanos() as f64;
        let window = m.arrival_window.as_nanos() as f64;
        assert!(last > 0.5 * window && last < 2.0 * window);
    }
}
