//! # trim-serve — production web-serving workload with session SLOs
//!
//! The serving layer of the TCP-TRIM reproduction: an open-loop
//! user-session workload over a load-balanced fat-tree, with the
//! session-level service metrics an operator would watch, and a
//! mean-field fast path for fleet-scale what-if sweeps.
//!
//! - [`session`] — Poisson session arrivals, per-session think times and
//!   request-size draws, all deterministic in the seed;
//! - [`run`] — the packet-level serving run: sessions ride persistent
//!   connections across a k-ary fat-tree, and the report carries
//!   p50/p99/p999 ARCT, goodput, session accounting, peak concurrency,
//!   and last-hop queue occupancy;
//! - [`crossval`] — the differential harness that gates the
//!   [`trim_core::fluid`] mean-field model against the packet simulator
//!   (mean ARCT within 10 % on every committed instance).
//!
//! ```
//! use trim_serve::session::SessionModel;
//! use trim_serve::run::{run, ServeConfig};
//!
//! let mut model = SessionModel::new(42, 32);
//! model.arrival_window = netsim::time::Dur::from_millis(50);
//! model.think_min = netsim::time::Dur::from_millis(100);
//! model.think_mean_excess = netsim::time::Dur::from_millis(20);
//! let report = run(&ServeConfig::new(model).trim());
//! assert_eq!(report.sessions_completed, 32);
//! assert!(report.arct.p999 >= report.arct.p50);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod crossval;
pub mod run;
pub mod session;

pub use crossval::{cross_validate, instances, CrossVal, CvCc, Instance};
pub use run::{run, ServeConfig, ServeReport};
pub use session::{generate, SessionModel, SessionPlan};
