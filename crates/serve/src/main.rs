//! `trim-serve` — run the web-serving workload and print its SLO report.
//!
//! ```text
//! trim-serve                          # 2,048 sessions, Reno, 4-pod fat-tree
//! trim-serve --sessions N --seed S    # size and seed the session model
//! trim-serve --trim                   # switch every server to TCP-TRIM
//! trim-serve --pods K                 # fat-tree pod count (even)
//! trim-serve --horizon SECS           # simulated horizon
//! trim-serve --crossval               # fluid-vs-packet differential table
//! ```
//!
//! The report prints the session accounting, request percentiles
//! (p50/p99/p999 ARCT), goodput, and last-hop queue occupancy that the
//! `serve_*` campaigns persist as CSV artifacts.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use trim_serve::run::{run, ServeConfig};
use trim_serve::session::SessionModel;
use trim_serve::{cross_validate, instances};

struct Options {
    sessions: usize,
    seed: u64,
    trim: bool,
    pods: usize,
    horizon: f64,
    crossval: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        sessions: 2_048,
        seed: 1,
        trim: false,
        pods: 4,
        horizon: 3.0,
        crossval: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--sessions" => {
                opts.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--trim" => opts.trim = true,
            "--pods" => {
                opts.pods = value("--pods")?
                    .parse()
                    .map_err(|e| format!("--pods: {e}"))?
            }
            "--horizon" => {
                opts.horizon = value("--horizon")?
                    .parse()
                    .map_err(|e| format!("--horizon: {e}"))?
            }
            "--crossval" => opts.crossval = true,
            "--help" | "-h" => {
                println!(
                    "usage: trim-serve [--sessions N] [--seed S] [--trim] [--pods K] \
                     [--horizon SECS] [--crossval]\n\
                     Runs the web-serving workload and prints its SLO report."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}' (see --help)")),
        }
    }
    Ok(opts)
}

fn crossval_table() -> ExitCode {
    println!(
        "{:<10} {:>7} {:>14} {:>14} {:>9}",
        "instance", "senders", "packet ARCT s", "fluid ARCT s", "rel err"
    );
    let mut worst = 0.0f64;
    for inst in instances() {
        let cv = cross_validate(&inst);
        worst = worst.max(cv.rel_err);
        println!(
            "{:<10} {:>7} {:>14.6} {:>14.6} {:>8.1}%",
            cv.name,
            cv.senders,
            cv.packet_arct,
            cv.fluid_arct,
            cv.rel_err * 100.0
        );
    }
    println!("worst relative error: {:.1}% (gate: 10%)", worst * 100.0);
    if worst <= 0.10 {
        ExitCode::SUCCESS
    } else {
        eprintln!("trim-serve: mean-field model out of tolerance");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("trim-serve: {msg}");
            return ExitCode::from(2);
        }
    };
    if opts.crossval {
        return crossval_table();
    }
    let mut cfg = ServeConfig::new(SessionModel::new(opts.seed, opts.sessions));
    cfg.pods = opts.pods;
    cfg.horizon_secs = opts.horizon;
    if opts.trim {
        cfg = cfg.trim();
    }
    let report = run(&cfg);
    println!(
        "serve: {} sessions over a {}-pod fat-tree ({})",
        report.sessions_planned,
        opts.pods,
        if opts.trim { "trim" } else { "reno" },
    );
    println!(
        "  sessions   completed {:>8}  open-at-horizon {:>8}  peak concurrent {:>8}",
        report.sessions_completed, report.sessions_open_at_horizon, report.peak_concurrent_sessions
    );
    println!(
        "  requests   issued {:>11}  completed {:>14}  in-flight {:>6}",
        report.requests_issued, report.requests_completed, report.requests_in_flight
    );
    println!(
        "  ARCT       mean {:>10.6}s  p50 {:>10.6}s  p99 {:>10.6}s  p999 {:>10.6}s",
        report.arct.mean, report.arct.p50, report.arct.p99, report.arct.p999
    );
    println!(
        "  transport  goodput {:>9.2} Mbit/s  timeouts {:>6}  downlink drops {:>6}",
        report.goodput_mbps, report.timeouts, report.downlink_dropped
    );
    println!(
        "  queues     downlink mean occupancy {:>7.3} pkt  max {:>4} pkt",
        report.downlink_mean_occupancy, report.downlink_max_occupancy
    );
    println!(
        "  engine     events {:>12}  horizon {:>6.2}s",
        report.events_processed, opts.horizon
    );
    ExitCode::SUCCESS
}
