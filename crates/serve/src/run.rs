//! Packet-level serving runs with session-level SLO reporting.
//!
//! [`run`] drives the sessions of a [`SessionModel`] over a load-balanced
//! k-ary fat-tree: the first half of the hosts serve, the second half are
//! front-end clients, and each session's persistent connection is
//! assigned server and client round-robin. The outcome is a
//! [`ServeReport`] with the SLO numbers an operator would watch: request
//! completion-time percentiles (p50/p99/p999 ARCT), goodput, session
//! accounting, peak session concurrency, and last-hop queue occupancy.

use netsim::prelude::*;
use netsim::time::SimTime;
use netsim::topology::{self, LinkSpec};
use trim_tcp::{CcKind, Segment, TcpConfig, TcpHost};
use trim_workload::metrics::Summary;
use trim_workload::scenario::{schedule_session, wire_flow};

use crate::session::{generate, SessionModel, SessionPlan};

/// Configuration of one serving run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The user-session arrival process.
    pub model: SessionModel,
    /// Pod count of the fat-tree (`k`); hosts = `k^3/4`.
    pub pods: usize,
    /// Link spec shared by every fat-tree link.
    pub link: LinkSpec,
    /// TCP configuration for every connection.
    pub tcp: TcpConfig,
    /// Congestion control for every server.
    pub cc: CcKind,
    /// Simulated horizon in seconds.
    pub horizon_secs: f64,
}

impl ServeConfig {
    /// A serving run over the paper's 4-pod fat-tree with 1 Gbps /
    /// 50 µs / 100-packet links, Reno senders, and a 3 s horizon.
    pub fn new(model: SessionModel) -> Self {
        ServeConfig {
            model,
            pods: 4,
            link: LinkSpec::new(
                Bandwidth::gbps(1),
                Dur::from_micros(50),
                QueueConfig::drop_tail(100),
            ),
            tcp: TcpConfig::default(),
            cc: CcKind::Reno,
            horizon_secs: 3.0,
        }
    }

    /// Switches every server to TCP-TRIM with `K` derived from the link
    /// bandwidth.
    pub fn trim(mut self) -> Self {
        self.cc = CcKind::trim_with_capacity(self.link.bandwidth.as_bps(), self.tcp.mss_bytes);
        self
    }
}

/// SLO report of one serving run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Simulated time of the report.
    pub at: SimTime,
    /// Sessions the model planned.
    pub sessions_planned: usize,
    /// Sessions whose every response completed.
    pub sessions_completed: usize,
    /// Sessions still open (mid-request or mid-think) at the horizon.
    pub sessions_open_at_horizon: usize,
    /// Requests handed to TCP (completed plus in flight).
    pub requests_issued: u64,
    /// Requests whose response was fully acknowledged.
    pub requests_completed: u64,
    /// Requests with response data still outstanding at the horizon.
    pub requests_in_flight: u64,
    /// Most sessions simultaneously open at any instant.
    pub peak_concurrent_sessions: usize,
    /// Per-request completion times (the paper's ARCT), in seconds;
    /// `p50`/`p99`/`p999` are the SLO tail metrics.
    pub arct: Summary,
    /// Completed response bytes per simulated second, in Mbit/s.
    pub goodput_mbps: f64,
    /// Time-averaged queue length, averaged over the client-facing
    /// host downlinks (the last hop of every response).
    pub downlink_mean_occupancy: f64,
    /// Largest instantaneous queue length over the client downlinks.
    pub downlink_max_occupancy: usize,
    /// Packets dropped anywhere on the client downlinks.
    pub downlink_dropped: u64,
    /// Retransmission timeouts across all connections.
    pub timeouts: u64,
    /// Events the engine processed.
    pub events_processed: u64,
}

struct SessionOutcome {
    arrival: SimTime,
    completed: usize,
    in_flight: bool,
    end: Option<SimTime>,
    completions: Vec<Dur>,
    completed_bytes: u64,
    timeouts: u64,
}

/// Runs the serving workload and collects its SLO report.
///
/// Deterministic: a pure function of `cfg`.
///
/// # Panics
///
/// Panics if the fat-tree is degenerate, the horizon is not positive, or
/// an attached invariant monitor records a violation.
pub fn run(cfg: &ServeConfig) -> ServeReport {
    assert!(cfg.horizon_secs > 0.0, "horizon must be positive");
    let plans = generate(&cfg.model);
    let mut sim: Simulator<Segment> = Simulator::new();
    let net = topology::fat_tree(&mut sim, cfg.pods, cfg.link, |_| Box::new(TcpHost::new()));
    let half = net.hosts.len() / 2;
    assert!(half >= 1, "fat-tree too small to split into tiers");
    let servers = &net.hosts[..half];
    let clients = &net.hosts[half..];

    // Round-robin placement: session i serves from servers[i % S] to
    // clients[(i / S) % C], so load spreads across both tiers and most
    // responses cross pods.
    let mut placed: Vec<(NodeId, usize)> = Vec::with_capacity(plans.len());
    for (i, plan) in plans.iter().enumerate() {
        let server = servers[i % servers.len()];
        let client = clients[(i / servers.len()) % clients.len()];
        let flow = FlowId(i as u64);
        let idx = wire_flow(&mut sim, flow, server, client, cfg.tcp, &cfg.cc);
        schedule_session(
            &mut sim,
            server,
            idx,
            plan.arrival,
            plan.sizes.clone(),
            plan.think,
        );
        placed.push((server, idx));
    }
    trim_check::attach_standard_if_enabled(&mut sim);
    sim.run_until(SimTime::from_secs_f64(cfg.horizon_secs));
    sim.assert_no_violations();

    let horizon = sim.now();
    let outcomes: Vec<SessionOutcome> = plans
        .iter()
        .zip(&placed)
        .map(|(plan, &(server, idx))| session_outcome(&sim, plan, server, idx))
        .collect();

    let mut completions: Vec<Dur> = Vec::new();
    let mut completed_bytes = 0u64;
    let mut requests_completed = 0u64;
    let mut requests_in_flight = 0u64;
    let mut sessions_completed = 0usize;
    let mut timeouts = 0u64;
    for o in &outcomes {
        completions.extend_from_slice(&o.completions);
        completed_bytes += o.completed_bytes;
        requests_completed += o.completed as u64;
        requests_in_flight += u64::from(o.in_flight);
        sessions_completed += usize::from(o.end.is_some());
        timeouts += o.timeouts;
    }

    let mut downlink_mean = 0.0;
    let mut downlink_max = 0usize;
    let mut downlink_dropped = 0u64;
    let span = horizon.saturating_since(SimTime::ZERO);
    for ci in 0..clients.len() {
        let stats = sim.queue_stats(net.host_downlinks[half + ci]);
        downlink_mean += stats.average_len(span);
        downlink_max = downlink_max.max(stats.max_len);
        downlink_dropped += stats.dropped;
    }
    downlink_mean /= clients.len() as f64;

    ServeReport {
        at: horizon,
        sessions_planned: plans.len(),
        sessions_completed,
        sessions_open_at_horizon: plans.len() - sessions_completed,
        requests_issued: requests_completed + requests_in_flight,
        requests_completed,
        requests_in_flight,
        peak_concurrent_sessions: peak_concurrency(&outcomes, horizon),
        arct: Summary::of(&completions),
        goodput_mbps: completed_bytes as f64 * 8.0 / cfg.horizon_secs / 1e6,
        downlink_mean_occupancy: downlink_mean,
        downlink_max_occupancy: downlink_max,
        downlink_dropped,
        timeouts,
        events_processed: sim.events_processed(),
    }
}

fn session_outcome(
    sim: &Simulator<Segment>,
    plan: &SessionPlan,
    server: NodeId,
    idx: usize,
) -> SessionOutcome {
    let host: &TcpHost = sim.host(server);
    let conn = host.connection(idx);
    let trains = conn.completed_trains();
    let completed = trains.len();
    let end = (completed == plan.sizes.len()).then(|| {
        trains
            .last()
            .map(|t| t.completed_at)
            .unwrap_or(plan.arrival)
    });
    SessionOutcome {
        arrival: plan.arrival,
        completed,
        in_flight: !conn.is_idle(),
        end,
        completions: trains.iter().map(|t| t.completion_time()).collect(),
        completed_bytes: trains.iter().map(|t| t.bytes).sum(),
        timeouts: conn.stats().timeouts,
    }
}

/// Sweeps the session intervals for the most sessions simultaneously
/// open. Sessions still open at `horizon` close there; at a shared
/// timestamp ends are processed before starts, so back-to-back sessions
/// never inflate the peak.
fn peak_concurrency(outcomes: &[SessionOutcome], horizon: SimTime) -> usize {
    let mut events: Vec<(SimTime, i8)> = Vec::with_capacity(outcomes.len() * 2);
    for o in outcomes {
        events.push((o.arrival, 1));
        events.push((o.end.unwrap_or(horizon), -1));
    }
    // Ends (-1) sort before starts (+1) at equal times.
    events.sort_by_key(|&(t, delta)| (t, delta));
    let mut open = 0i64;
    let mut peak = 0i64;
    for (_, delta) in events {
        open += i64::from(delta);
        peak = peak.max(open);
    }
    peak as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64, sessions: usize) -> ServeConfig {
        let mut model = SessionModel::new(seed, sessions);
        model.arrival_window = Dur::from_millis(50);
        // Short thinks keep the whole run inside the 4 s horizon even
        // deep into the exponential tail.
        model.think_min = Dur::from_millis(100);
        model.think_mean_excess = Dur::from_millis(20);
        ServeConfig {
            horizon_secs: 4.0,
            ..ServeConfig::new(model)
        }
    }

    #[test]
    fn small_run_completes_every_session() {
        let report = run(&small_config(11, 64));
        assert_eq!(report.sessions_planned, 64);
        assert_eq!(report.sessions_completed, 64);
        assert_eq!(report.sessions_open_at_horizon, 0);
        assert_eq!(report.requests_in_flight, 0);
        assert_eq!(report.requests_issued, report.requests_completed);
        assert!(report.requests_completed >= 128, "at least 2 requests each");
        assert_eq!(report.arct.count as u64, report.requests_completed);
        assert!(report.arct.p999 >= report.arct.p99);
        assert!(report.arct.p99 >= report.arct.p50);
        assert!(report.goodput_mbps > 0.0);
        assert_eq!(report.timeouts, 0);
    }

    #[test]
    fn all_sessions_overlap_when_think_exceeds_the_arrival_window() {
        // Arrivals span ~50 ms, every think is >= 100 ms: all 64 sessions
        // are open together just after the last arrival.
        let report = run(&small_config(12, 64));
        assert_eq!(report.peak_concurrent_sessions, 64);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&small_config(13, 32));
        let b = run(&small_config(13, 32));
        assert_eq!(a, b);
        let c = run(&small_config(14, 32));
        assert_ne!(a, c);
    }

    #[test]
    fn trim_config_switches_congestion_control() {
        let cfg = small_config(15, 16).trim();
        let report = run(&cfg);
        assert_eq!(report.sessions_completed, 16);
        assert_eq!(report.timeouts, 0);
    }

    #[test]
    fn open_sessions_are_accounted_at_the_horizon() {
        // A horizon shorter than the think floor cuts every session off
        // between its first and second request.
        let mut cfg = ServeConfig {
            horizon_secs: 0.3,
            ..small_config(16, 16)
        };
        cfg.model.think_min = Dur::from_millis(500);
        let report = run(&cfg);
        assert_eq!(report.sessions_completed, 0);
        assert_eq!(report.sessions_open_at_horizon, 16);
        assert_eq!(report.requests_completed, 16);
        assert_eq!(report.peak_concurrent_sessions, 16);
    }
}
