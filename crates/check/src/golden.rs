//! Field-by-field CSV comparison with explicit tolerances, for the
//! golden-trace regression suite.
//!
//! Campaign CSVs are deterministic functions of `(campaign seed, job
//! key)`, so a re-run should reproduce the committed goldens exactly;
//! the tolerance exists to document the contract (and to absorb a
//! last-digit formatting difference should float formatting ever
//! change) rather than to hide real drift. Cells that parse as `f64`
//! on both sides compare numerically under [`Tolerance`]; all other
//! cells must match as strings.

use core::fmt;
use std::io;
use std::path::Path;

/// Numeric comparison tolerance: cells `x` (expected) and `y` (actual)
/// match when `|x - y| <= abs + rel * max(|x|, |y|)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// Relative tolerance.
    pub rel: f64,
    /// Absolute tolerance.
    pub abs: f64,
}

impl Tolerance {
    /// Bit-exact comparison (still via the parsed values, so `1.0` and
    /// `1` match).
    pub const EXACT: Tolerance = Tolerance { rel: 0.0, abs: 0.0 };

    /// The documented default for golden-trace regression: relative
    /// 1e-9, absolute 1e-12 — loose enough to absorb a least-significant
    /// digit of decimal formatting, tight enough that any behavioral
    /// change in the simulator fails the suite.
    pub const GOLDEN: Tolerance = Tolerance {
        rel: 1e-9,
        abs: 1e-12,
    };

    /// Whether two already-parsed numbers match under this tolerance.
    // Exact equality IS the identity fast path of the tolerance itself
    // (it also makes inf == inf match, which the epsilon form cannot).
    #[allow(clippy::float_cmp)]
    pub fn matches(&self, x: f64, y: f64) -> bool {
        if x == y {
            return true;
        }
        (x - y).abs() <= self.abs + self.rel * x.abs().max(y.abs())
    }
}

/// One cell (or structural) difference between an expected and an
/// actual CSV.
#[derive(Clone, Debug, PartialEq)]
pub struct Mismatch {
    /// Which table (file stem or caller-supplied name).
    pub name: String,
    /// 0-based line number (0 is the header row).
    pub line: usize,
    /// 0-based column, when the difference is cell-level.
    pub col: Option<usize>,
    /// The golden value (or shape).
    pub expected: String,
    /// The re-run value (or shape).
    pub actual: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} line {}", self.name, self.line)?;
        if let Some(col) = self.col {
            write!(f, " col {col}")?;
        }
        write!(f, ": expected '{}', got '{}'", self.expected, self.actual)
    }
}

fn cell_matches(expected: &str, actual: &str, tol: Tolerance) -> bool {
    if expected == actual {
        return true;
    }
    match (expected.parse::<f64>(), actual.parse::<f64>()) {
        (Ok(x), Ok(y)) => tol.matches(x, y),
        _ => false,
    }
}

/// Compares two CSV bodies field by field. `name` labels mismatches.
pub fn compare_csv_text(name: &str, expected: &str, actual: &str, tol: Tolerance) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let exp_lines: Vec<&str> = expected.lines().collect();
    let act_lines: Vec<&str> = actual.lines().collect();
    if exp_lines.len() != act_lines.len() {
        out.push(Mismatch {
            name: name.to_string(),
            line: exp_lines.len().min(act_lines.len()),
            col: None,
            expected: format!("{} lines", exp_lines.len()),
            actual: format!("{} lines", act_lines.len()),
        });
    }
    for (i, (e_line, a_line)) in exp_lines.iter().zip(&act_lines).enumerate() {
        let e_cells: Vec<&str> = e_line.split(',').collect();
        let a_cells: Vec<&str> = a_line.split(',').collect();
        if e_cells.len() != a_cells.len() {
            out.push(Mismatch {
                name: name.to_string(),
                line: i,
                col: None,
                expected: format!("{} cells", e_cells.len()),
                actual: format!("{} cells", a_cells.len()),
            });
            continue;
        }
        for (j, (e, a)) in e_cells.iter().zip(&a_cells).enumerate() {
            if !cell_matches(e, a, tol) {
                out.push(Mismatch {
                    name: name.to_string(),
                    line: i,
                    col: Some(j),
                    expected: e.to_string(),
                    actual: a.to_string(),
                });
            }
        }
    }
    out
}

/// Compares two CSV files field by field; the expected file's stem
/// labels any mismatches.
///
/// # Errors
///
/// Propagates filesystem errors (e.g. a missing file) — an absent
/// golden is an error, not a mismatch.
pub fn compare_csv_files(
    expected: &Path,
    actual: &Path,
    tol: Tolerance,
) -> io::Result<Vec<Mismatch>> {
    let name = expected
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let exp = std::fs::read_to_string(expected)?;
    let act = std::fs::read_to_string(actual)?;
    Ok(compare_csv_text(&name, &exp, &act, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_text_matches() {
        assert!(compare_csv_text("t", "a,b\n1,2\n", "a,b\n1,2\n", Tolerance::EXACT).is_empty());
    }

    #[test]
    fn numeric_cells_compare_within_tolerance() {
        let tol = Tolerance {
            rel: 1e-9,
            abs: 0.0,
        };
        assert!(compare_csv_text("t", "x\n1000000000\n", "x\n1000000000.5\n", tol).is_empty());
        let far = compare_csv_text("t", "x\n1.0\n", "x\n1.1\n", tol);
        assert_eq!(far.len(), 1);
        assert_eq!(far[0].col, Some(0));
    }

    #[test]
    fn exact_tolerance_still_equates_formatting_variants() {
        // "1.0" vs "1" parse to the same value.
        assert!(compare_csv_text("t", "x\n1.0\n", "x\n1\n", Tolerance::EXACT).is_empty());
    }

    #[test]
    fn string_cells_must_match_exactly() {
        let d = compare_csv_text("t", "proto\nTRIM\n", "proto\nTCP\n", Tolerance::GOLDEN);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].expected, "TRIM");
        // Percent-suffixed cells are strings, so precision changes are
        // caught even though they contain digits.
        let p = compare_csv_text("t", "u\n80.5%\n", "u\n80.50%\n", Tolerance::GOLDEN);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn structural_differences_are_reported() {
        let rows = compare_csv_text("t", "x\n1\n2\n", "x\n1\n", Tolerance::GOLDEN);
        assert!(rows.iter().any(|m| m.col.is_none()));
        let cols = compare_csv_text("t", "x,y\n1,2\n", "x,y\n1\n", Tolerance::GOLDEN);
        assert!(cols.iter().any(|m| m.col.is_none()));
    }

    #[test]
    fn nan_never_matches() {
        let d = compare_csv_text("t", "x\nNaN\n", "x\nNaN\n", Tolerance::GOLDEN);
        // NaN == NaN textually — accepted as identical strings.
        assert!(d.is_empty());
        let d2 = compare_csv_text("t", "x\nNaN\n", "x\n1\n", Tolerance::GOLDEN);
        assert_eq!(d2.len(), 1);
    }

    #[test]
    fn file_comparison_round_trips() {
        let dir = std::env::temp_dir().join("trim_check_golden_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("g.csv"), "a,b\n1,2\n").unwrap();
        std::fs::write(dir.join("r.csv"), "a,b\n1,2\n").unwrap();
        let d =
            compare_csv_files(&dir.join("g.csv"), &dir.join("r.csv"), Tolerance::GOLDEN).unwrap();
        assert!(d.is_empty());
        assert!(compare_csv_files(
            &dir.join("missing.csv"),
            &dir.join("r.csv"),
            Tolerance::GOLDEN
        )
        .is_err());
    }

    #[test]
    fn mismatch_display_names_the_cell() {
        let m = Mismatch {
            name: "fig1".into(),
            line: 3,
            col: Some(2),
            expected: "1.5".into(),
            actual: "1.6".into(),
        };
        let s = m.to_string();
        assert!(s.contains("fig1 line 3 col 2"));
        assert!(s.contains("'1.5'"));
    }
}
