//! # trim-check — correctness layer for the TCP-TRIM reproduction
//!
//! Two independent facilities:
//!
//! - [`monitors`]: the built-in runtime [`InvariantMonitor`]s for the
//!   `netsim` engine — packet conservation, queue bounds, per-port FIFO
//!   order, clock monotonicity, congestion-window range, and TRIM
//!   probe state-machine legality — plus [`attach_standard`] and the
//!   [`monitors_enabled`] policy used by the scenario builders.
//! - [`golden`]: field-by-field CSV comparison with explicit tolerances,
//!   used by the golden-trace regression suite (`trim-check` binary in
//!   `trim-experiments`) to prove that re-running the canonical
//!   campaigns reproduces the CSVs committed under `results/`.
//!
//! Monitoring policy: monitors are attached when the
//! `TRIM_CHECK_MONITORS` environment variable says so (`1`/`true`/`yes`/
//! `on` to force on, `0`/`false`/`no`/`off` to force off), and default
//! to on in debug builds and off in release builds. Every tier-1
//! simulation test therefore runs fully monitored, while release-mode
//! experiment campaigns pay only a disabled-check branch per event.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod golden;
pub mod monitors;

pub use golden::{compare_csv_files, compare_csv_text, Mismatch, Tolerance};
pub use monitors::{
    stability_monitors, standard_monitors, AckReductionBound, CwndLimitCycle, CwndRange, FifoOrder,
    MonotonicTime, PacketConservation, ProbeLegality, ProbeWindow, QueueBound, RedStability,
    SessionConservation, StabilityConfig, StandingQueue,
};

use netsim::{InvariantMonitor, Payload, Simulator};

/// Whether the standard monitors should be attached, per the
/// `TRIM_CHECK_MONITORS` policy: the environment variable wins when set
/// (`1`/`true`/`yes`/`on` vs `0`/`false`/`no`/`off`); otherwise debug
/// builds monitor and release builds do not.
pub fn monitors_enabled() -> bool {
    match std::env::var("TRIM_CHECK_MONITORS") {
        Ok(v) => matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "1" | "true" | "yes" | "on"
        ),
        Err(_) => cfg!(debug_assertions),
    }
}

/// Attaches every [`standard_monitors`] instance to `sim`.
/// Attach before the first `run_until`: the monitors assume they see
/// the event stream from the beginning of the simulation.
pub fn attach_standard<P: Payload>(sim: &mut Simulator<P>) {
    for m in standard_monitors() {
        sim.attach_monitor(m);
    }
}

/// [`attach_standard`] gated by [`monitors_enabled`]; returns whether
/// monitors were attached. This is the one-liner scenario builders call.
pub fn attach_standard_if_enabled<P: Payload>(sim: &mut Simulator<P>) -> bool {
    let enabled = monitors_enabled();
    if enabled {
        attach_standard(sim);
    }
    enabled
}

/// A boxed monitor list's total violation count — convenience for tests
/// that drive monitors directly rather than through a simulator.
pub fn violation_count(monitors: &[Box<dyn InvariantMonitor>]) -> usize {
    monitors.iter().map(|m| m.violations().len()).sum()
}

/// One failed oracle check: which oracle, and what it saw.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleFailure {
    /// Name of the oracle that failed.
    pub oracle: &'static str,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// A post-run differential oracle: where an [`InvariantMonitor`] watches
/// the live event stream, an oracle inspects a finished run's summary
/// (`S` is whatever the caller can produce — a scenario report, a trace,
/// a measured utilization) and reports every disagreement with the
/// model's predictions. Oracles must not panic; return one
/// [`OracleFailure`] per independent problem so a single run surfaces
/// them all.
pub trait Oracle<S> {
    /// A short stable name, used in failure reports.
    fn name(&self) -> &'static str;
    /// Checks `subject`, appending one failure per disagreement.
    fn check(&self, subject: &S, failures: &mut Vec<OracleFailure>);
}

/// Runs every oracle against `subject` and collects the failures.
pub fn run_oracles<S>(subject: &S, oracles: &[&dyn Oracle<S>]) -> Vec<OracleFailure> {
    let mut failures = Vec::new();
    for o in oracles {
        o.check(subject, &mut failures);
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::prelude::*;

    #[test]
    fn standard_monitors_cover_the_documented_invariants() {
        let names: Vec<&str> = standard_monitors().iter().map(|m| m.name()).collect();
        for expected in [
            "packet-conservation",
            "queue-bound",
            "fifo-order",
            "monotonic-time",
            "cwnd-range",
            "probe-legality",
            "ack-reduction-bound",
            "probe-window",
            "session-conservation",
        ] {
            assert!(names.contains(&expected), "missing monitor {expected}");
        }
    }

    #[test]
    fn run_oracles_collects_failures_from_every_oracle() {
        struct AtMost(u32);
        impl Oracle<u32> for AtMost {
            fn name(&self) -> &'static str {
                "at-most"
            }
            fn check(&self, subject: &u32, failures: &mut Vec<OracleFailure>) {
                if *subject > self.0 {
                    failures.push(OracleFailure {
                        oracle: self.name(),
                        detail: format!("{subject} > {}", self.0),
                    });
                }
            }
        }
        let (lo, hi) = (AtMost(3), AtMost(100));
        assert!(run_oracles(&2, &[&lo, &hi]).is_empty());
        let failures = run_oracles(&7, &[&lo, &hi]);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].oracle, "at-most");
        assert!(failures[0].to_string().contains("7 > 3"));
    }

    #[test]
    fn attach_standard_monitors_a_clean_sim_without_violations() {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let sw = sim.add_switch();
        let dst = sim.add_host(Box::new(SinkAgent::default()));
        sim.connect(
            dst,
            sw,
            Bandwidth::gbps(1),
            Dur::from_micros(50),
            QueueConfig::drop_tail(10),
        );
        let mut senders = Vec::new();
        for _ in 0..4 {
            let h = sim.add_host(Box::new(SinkAgent::default()));
            sim.connect(
                h,
                sw,
                Bandwidth::gbps(1),
                Dur::from_micros(50),
                QueueConfig::default(),
            );
            senders.push(h);
        }
        attach_standard(&mut sim);
        assert!(sim.monitors_enabled());
        for (i, &s) in senders.iter().enumerate() {
            for _ in 0..25 {
                sim.inject(
                    s,
                    Packet::new(s, dst, FlowId(i as u64), 1460, TagPayload(0)),
                );
            }
        }
        sim.run();
        // The 10-packet bottleneck drops traffic; conservation and FIFO
        // must still hold exactly.
        assert!(sim.audit_stats().dropped > 0);
        sim.assert_no_violations();
    }

    #[test]
    fn overadmit_fault_is_caught_with_time_and_flow() {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let sw = sim.add_switch();
        let dst = sim.add_host(Box::new(SinkAgent::default()));
        let (_, sw_to_dst) = sim.connect(
            dst,
            sw,
            Bandwidth::gbps(1),
            Dur::from_micros(50),
            QueueConfig::drop_tail(5),
        );
        let mut senders = Vec::new();
        for _ in 0..4 {
            let h = sim.add_host(Box::new(SinkAgent::default()));
            sim.connect(
                h,
                sw,
                Bandwidth::gbps(1),
                Dur::from_micros(50),
                QueueConfig::default(),
            );
            senders.push(h);
        }
        attach_standard(&mut sim);
        sim.inject_queue_overadmit(sw_to_dst, 3);
        for (i, &s) in senders.iter().enumerate() {
            for _ in 0..25 {
                sim.inject(
                    s,
                    Packet::new(s, dst, FlowId(i as u64), 1460, TagPayload(0)),
                );
            }
        }
        sim.run();
        let violations = sim.violations();
        assert!(
            !violations.is_empty(),
            "queue-bound monitor must catch the injected over-admission"
        );
        let v = violations
            .iter()
            .find(|v| v.monitor == "queue-bound")
            .expect("violation attributed to the queue-bound monitor");
        assert!(v.at > SimTime::ZERO, "violation carries simulation time");
        assert!(v.flow.is_some(), "violation carries the offending flow");
        assert!(v.detail.contains("cap"), "detail names the capacity: {v}");
    }

    /// One client/server pair exchanging a two-response session over a
    /// switch, with monitors attached. Returns the simulator after the
    /// run; `faulty` injects the early session end on the server.
    fn run_session_pair(faulty: bool) -> Simulator<trim_tcp::Segment> {
        use trim_tcp::{CcKind, TcpConfig, TcpHost};
        let mut sim: Simulator<trim_tcp::Segment> = Simulator::new();
        let sw = sim.add_switch();
        let mut client = TcpHost::new();
        client.add_receiver(FlowId(1), TcpConfig::default());
        let client = sim.add_host(Box::new(client));
        let mut server = TcpHost::new();
        let idx = server.add_sender(FlowId(1), client, TcpConfig::default(), &CcKind::Reno);
        server.schedule_response_sequence(
            idx,
            SimTime::from_secs_f64(0.001),
            vec![8_000, 8_000],
            Dur::from_millis(2),
        );
        if faulty {
            server.inject_session_early_end(idx);
        }
        let server = sim.add_host(Box::new(server));
        for h in [client, server] {
            sim.connect(
                h,
                sw,
                Bandwidth::gbps(1),
                Dur::from_micros(50),
                QueueConfig::drop_tail(100),
            );
        }
        attach_standard(&mut sim);
        sim.run_until(SimTime::from_secs_f64(0.5));
        sim
    }

    #[test]
    fn clean_session_lifecycle_is_violation_free() {
        let sim = run_session_pair(false);
        assert_eq!(sim.audit_stats().dropped, 0);
        sim.assert_no_violations();
    }

    #[test]
    fn early_session_end_fault_is_caught() {
        let sim = run_session_pair(true);
        let violations = sim.violations();
        let v = violations
            .iter()
            .find(|v| v.monitor == "session-conservation")
            .expect("session-conservation catches the injected early end");
        assert_eq!(v.flow, Some(FlowId(1)));
        assert!(v.detail.contains("in flight"), "detail explains: {v}");
    }

    #[test]
    fn env_policy_parses_common_spellings() {
        // Can't set the process environment safely in a parallel test
        // run; exercise the default path only.
        let default = monitors_enabled();
        assert_eq!(
            default,
            std::env::var("TRIM_CHECK_MONITORS")
                .map(|v| matches!(
                    v.trim().to_ascii_lowercase().as_str(),
                    "1" | "true" | "yes" | "on"
                ))
                .unwrap_or(cfg!(debug_assertions))
        );
    }
}
