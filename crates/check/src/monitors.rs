//! The built-in invariant monitors.
//!
//! Each monitor derives its own view of the world from the
//! [`MonitorEvent`] stream and records a [`Violation`] — never panics —
//! when an invariant breaks, so a single run surfaces every problem at
//! once. See the crate docs for the attach policy.

use std::collections::VecDeque;

use netsim::hash::FastHashMap;
use netsim::monitor::{AuditStats, InvariantMonitor, MonitorEvent, ProbeTransition, Violation};
use netsim::{ChannelId, Dur, FlowId, SimTime};

/// Slack for floating-point window comparisons: windows are `f64`
/// arithmetic, so equality at the clamp boundaries is approximate.
const CWND_EPS: f64 = 1e-9;

/// Every built-in monitor, freshly constructed.
pub fn standard_monitors() -> Vec<Box<dyn InvariantMonitor>> {
    vec![
        Box::new(PacketConservation::new()),
        Box::new(QueueBound::new()),
        Box::new(FifoOrder::new()),
        Box::new(MonotonicTime::new()),
        Box::new(CwndRange::new()),
        Box::new(ProbeLegality::new()),
        Box::new(AckReductionBound::new()),
        Box::new(ProbeWindow::new()),
        Box::new(SessionConservation::new()),
    ]
}

/// Checks packet conservation: at every instant
/// `delivered + dropped <= injected`, and at the end of each run
/// `injected == delivered + dropped + in_flight` — cross-checked
/// against the engine's own [`AuditStats`], so a miscounted event
/// stream and a miscounting engine are both caught.
#[derive(Debug, Default)]
pub struct PacketConservation {
    injected: u64,
    delivered: u64,
    dropped: u64,
    violations: Vec<Violation>,
}

impl PacketConservation {
    /// Creates the monitor.
    pub fn new() -> Self {
        Self::default()
    }

    fn violate(&mut self, at: SimTime, flow: Option<FlowId>, detail: String) {
        self.violations.push(Violation {
            at,
            monitor: "packet-conservation",
            flow,
            detail,
        });
    }
}

impl InvariantMonitor for PacketConservation {
    fn name(&self) -> &'static str {
        "packet-conservation"
    }

    fn observe(&mut self, at: SimTime, ev: &MonitorEvent) {
        let (flow, accounted) = match ev {
            MonitorEvent::Injected { flow, .. } => {
                self.injected += 1;
                (*flow, false)
            }
            MonitorEvent::Delivered { flow, .. } => {
                self.delivered += 1;
                (*flow, true)
            }
            MonitorEvent::Dropped { flow, .. } => {
                self.dropped += 1;
                (*flow, true)
            }
            _ => return,
        };
        if accounted && self.delivered + self.dropped > self.injected {
            let (i, d, x) = (self.injected, self.delivered, self.dropped);
            self.violate(
                at,
                Some(flow),
                format!("delivered {d} + dropped {x} exceeds injected {i}"),
            );
        }
    }

    fn finalize(&mut self, at: SimTime, audit: &AuditStats) {
        if self.injected != audit.injected
            || self.delivered != audit.delivered
            || self.dropped != audit.dropped
        {
            let (i, d, x) = (self.injected, self.delivered, self.dropped);
            self.violate(
                at,
                None,
                format!(
                    "event stream tallies (injected {i}, delivered {d}, dropped {x}) \
                     disagree with engine counters {audit:?}"
                ),
            );
        }
        if audit.injected != audit.delivered + audit.dropped + audit.in_flight() {
            self.violate(
                at,
                None,
                format!(
                    "injected {} != delivered {} + dropped {} + in-flight {}",
                    audit.injected,
                    audit.delivered,
                    audit.dropped,
                    audit.in_flight()
                ),
            );
        }
        // Arena leak check: the engine's packet arena holds exactly the
        // packets with a pending Arrival event, so any difference is a
        // leaked (or double-freed) slab slot. In particular a drained
        // run (pending_arrivals == 0) must leave the arena empty.
        if audit.arena_live != audit.pending_arrivals {
            self.violate(
                at,
                None,
                format!(
                    "packet arena holds {} packet(s) but {} arrival(s) are pending \
                     — the engine leaked arena slots",
                    audit.arena_live, audit.pending_arrivals
                ),
            );
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Checks that no packet-capacity queue ever holds more packets than
/// its configured capacity (byte-capacity queues carry no packet cap
/// and are skipped), and that every AQM early-drop decision carries a
/// sane average-queue estimate: the RED EWMA averages a bounded
/// occupancy, so a finite estimate can never exceed the physical packet
/// cap the queue itself enforces.
#[derive(Debug, Default)]
pub struct QueueBound {
    /// Packet caps learned from `Enqueued` events, per channel.
    caps: FastHashMap<ChannelId, usize>,
    violations: Vec<Violation>,
}

impl QueueBound {
    /// Creates the monitor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InvariantMonitor for QueueBound {
    fn name(&self) -> &'static str {
        "queue-bound"
    }

    fn observe(&mut self, at: SimTime, ev: &MonitorEvent) {
        match ev {
            MonitorEvent::Enqueued {
                channel,
                flow,
                len_after,
                cap_pkts: Some(cap),
                ..
            } => {
                self.caps.insert(*channel, *cap);
                if len_after > cap {
                    self.violations.push(Violation {
                        at,
                        monitor: "queue-bound",
                        flow: Some(*flow),
                        detail: format!("{channel} occupancy {len_after} exceeds cap {cap}"),
                    });
                }
            }
            MonitorEvent::AqmEarlyDrop {
                channel,
                flow,
                avg_queue,
                ..
            } => {
                if !avg_queue.is_finite() || *avg_queue < 0.0 {
                    self.violations.push(Violation {
                        at,
                        monitor: "queue-bound",
                        flow: Some(*flow),
                        detail: format!(
                            "{channel} AQM average-queue estimate {avg_queue} is not a \
                             finite non-negative value — the EWMA estimator is corrupt"
                        ),
                    });
                } else if let Some(cap) = self.caps.get(channel) {
                    if *avg_queue > *cap as f64 {
                        self.violations.push(Violation {
                            at,
                            monitor: "queue-bound",
                            flow: Some(*flow),
                            detail: format!(
                                "{channel} AQM average-queue estimate {avg_queue} exceeds \
                                 the physical cap {cap} — an EWMA of a bounded occupancy \
                                 cannot pass the bound"
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Checks per-port FIFO order: each channel must dequeue packets in
/// exactly the order it enqueued them, tracked by engine-unique packet
/// ids.
#[derive(Debug, Default)]
pub struct FifoOrder {
    queues: FastHashMap<ChannelId, VecDeque<(u64, FlowId)>>,
    violations: Vec<Violation>,
}

impl FifoOrder {
    /// Creates the monitor. Attach before the first run: a queue that
    /// already holds packets would make every later dequeue look
    /// out of order.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InvariantMonitor for FifoOrder {
    fn name(&self) -> &'static str {
        "fifo-order"
    }

    fn observe(&mut self, at: SimTime, ev: &MonitorEvent) {
        match ev {
            MonitorEvent::Enqueued {
                channel, flow, uid, ..
            } => {
                self.queues
                    .entry(*channel)
                    .or_default()
                    .push_back((*uid, *flow));
            }
            MonitorEvent::Dequeued { channel, flow, uid } => {
                match self.queues.entry(*channel).or_default().pop_front() {
                    Some((head_uid, _)) if head_uid == *uid => {}
                    Some((head_uid, head_flow)) => self.violations.push(Violation {
                        at,
                        monitor: "fifo-order",
                        flow: Some(*flow),
                        detail: format!(
                            "{channel} dequeued pkt#{uid} but head of queue \
                             is pkt#{head_uid} ({head_flow})"
                        ),
                    }),
                    None => self.violations.push(Violation {
                        at,
                        monitor: "fifo-order",
                        flow: Some(*flow),
                        detail: format!("{channel} dequeued pkt#{uid} from an empty queue"),
                    }),
                }
            }
            // A CoDel sojourn drop removes the *head* of the queue
            // without a matching `Dequeued`: consume it here so later
            // dequeues still line up.
            MonitorEvent::SojournDrop {
                channel, flow, uid, ..
            } => match self.queues.entry(*channel).or_default().pop_front() {
                Some((head_uid, _)) if head_uid == *uid => {}
                Some((head_uid, head_flow)) => self.violations.push(Violation {
                    at,
                    monitor: "fifo-order",
                    flow: Some(*flow),
                    detail: format!(
                        "{channel} sojourn-dropped pkt#{uid} but head of queue \
                         is pkt#{head_uid} ({head_flow})"
                    ),
                }),
                None => self.violations.push(Violation {
                    at,
                    monitor: "fifo-order",
                    flow: Some(*flow),
                    detail: format!("{channel} sojourn-dropped pkt#{uid} from an empty queue"),
                }),
            },
            _ => {}
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Checks that the event clock never runs backwards.
///
/// Note on "strictly monotonic": distinct events legitimately share a
/// timestamp (the engine breaks ties by insertion sequence), so the
/// enforceable invariant is *non-decreasing* event time; a strictly
/// decreasing step is a scheduler bug.
#[derive(Debug, Default)]
pub struct MonotonicTime {
    last: Option<SimTime>,
    violations: Vec<Violation>,
}

impl MonotonicTime {
    /// Creates the monitor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InvariantMonitor for MonotonicTime {
    fn name(&self) -> &'static str {
        "monotonic-time"
    }

    fn observe(&mut self, at: SimTime, ev: &MonitorEvent) {
        if let MonitorEvent::Clock { to } = ev {
            if let Some(last) = self.last {
                if *to < last {
                    self.violations.push(Violation {
                        at,
                        monitor: "monotonic-time",
                        flow: None,
                        detail: format!(
                            "clock stepped backwards: {}ns after {}ns",
                            to.as_nanos(),
                            last.as_nanos()
                        ),
                    });
                }
            }
            self.last = Some(*to);
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Checks that every reported congestion window stays within the
/// connection's configured `[min_cwnd, max_cwnd]` segment range (the
/// paper's `[2, cwnd_max]`) and is a finite number.
#[derive(Debug, Default)]
pub struct CwndRange {
    violations: Vec<Violation>,
}

impl CwndRange {
    /// Creates the monitor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InvariantMonitor for CwndRange {
    fn name(&self) -> &'static str {
        "cwnd-range"
    }

    fn observe(&mut self, at: SimTime, ev: &MonitorEvent) {
        if let MonitorEvent::CwndUpdate {
            flow,
            cwnd,
            min_cwnd,
            max_cwnd,
        } = ev
        {
            if !cwnd.is_finite() || *cwnd < min_cwnd - CWND_EPS || *cwnd > max_cwnd + CWND_EPS {
                self.violations.push(Violation {
                    at,
                    monitor: "cwnd-range",
                    flow: Some(*flow),
                    detail: format!("cwnd {cwnd} outside [{min_cwnd}, {max_cwnd}]"),
                });
            }
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ProbePhase {
    Idle,
    Probing,
    Suspended,
}

/// Checks TCP-TRIM's Algorithm-1 probe state machine per flow: `Start`
/// only from idle, `Suspend` only while probing, and `Resolve` /
/// `Timeout` / `Abort` only while a probe is outstanding.
#[derive(Debug, Default)]
pub struct ProbeLegality {
    phases: FastHashMap<FlowId, ProbePhase>,
    violations: Vec<Violation>,
}

impl ProbeLegality {
    /// Creates the monitor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InvariantMonitor for ProbeLegality {
    fn name(&self) -> &'static str {
        "probe-legality"
    }

    fn observe(&mut self, at: SimTime, ev: &MonitorEvent) {
        let MonitorEvent::ProbeTransition { flow, transition } = ev else {
            return;
        };
        let phase = self.phases.entry(*flow).or_insert(ProbePhase::Idle);
        let next = match (*phase, transition) {
            (ProbePhase::Idle, ProbeTransition::Start) => Some(ProbePhase::Probing),
            (ProbePhase::Probing, ProbeTransition::Suspend) => Some(ProbePhase::Suspended),
            (
                ProbePhase::Probing | ProbePhase::Suspended,
                ProbeTransition::Resolve | ProbeTransition::Timeout | ProbeTransition::Abort,
            ) => Some(ProbePhase::Idle),
            _ => None,
        };
        match next {
            Some(next) => *phase = next,
            None => {
                let detail = format!("illegal transition {transition} in phase {phase:?}");
                self.violations.push(Violation {
                    at,
                    monitor: "probe-legality",
                    flow: Some(*flow),
                    detail,
                });
            }
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Differential bound on per-ACK window reductions (paper Eq. 2–3):
/// processing a single ACK may never cut the congestion window below
/// legacy TCP's halving of the pre-ACK window.
///
/// TRIM's delay-based scale factor `1 - ep/2` is strictly greater than
/// 1/2 for any finite RTT, DCTCP cuts by at most `alpha/2 <= 1/2`, and
/// L2DCT by at most `alpha * b_c / 2 <= 1/2`, so `after >= before / 2`
/// holds for every controller in the workspace. Probe-echo ACKs are
/// exempt: Algorithm-1 probe resolution *restores* an inherited window
/// from the suspended floor, which is not a congestion reduction.
#[derive(Debug, Default)]
pub struct AckReductionBound {
    violations: Vec<Violation>,
}

impl AckReductionBound {
    /// Creates the monitor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InvariantMonitor for AckReductionBound {
    fn name(&self) -> &'static str {
        "ack-reduction-bound"
    }

    fn observe(&mut self, at: SimTime, ev: &MonitorEvent) {
        if let MonitorEvent::AckWindow {
            flow,
            before,
            after,
            probe_echo: false,
        } = ev
        {
            if !after.is_finite() || *after < before / 2.0 - CWND_EPS {
                self.violations.push(Violation {
                    at,
                    monitor: "ack-reduction-bound",
                    flow: Some(*flow),
                    detail: format!(
                        "one ACK cut cwnd {before} -> {after}, below the \
                         legacy-TCP halving floor {}",
                        before / 2.0
                    ),
                });
            }
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Checks Algorithm 1's probe window: when a flow enters the probe
/// phase (`ProbeTransition::Start`), the very next window report from
/// that flow must sit at the configured floor (`cwnd == min_cwnd`, the
/// paper's 2 segments) — probing is done with the minimum window, never
/// with leftover congestion window.
///
/// Only the first `CwndUpdate` after `Start` is checked: the transport
/// reports the collapsed window synchronously with the transition, while
/// later updates during the probing/suspended phases may legitimately
/// reflect ACKs for pre-probe data.
#[derive(Debug, Default)]
pub struct ProbeWindow {
    awaiting: FastHashMap<FlowId, bool>,
    violations: Vec<Violation>,
}

impl ProbeWindow {
    /// Creates the monitor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InvariantMonitor for ProbeWindow {
    fn name(&self) -> &'static str {
        "probe-window"
    }

    fn observe(&mut self, at: SimTime, ev: &MonitorEvent) {
        match ev {
            MonitorEvent::ProbeTransition {
                flow,
                transition: ProbeTransition::Start,
            } => {
                self.awaiting.insert(*flow, true);
            }
            MonitorEvent::CwndUpdate {
                flow,
                cwnd,
                min_cwnd,
                ..
            } if self.awaiting.remove(flow) == Some(true)
                && (*cwnd - min_cwnd).abs() > CWND_EPS =>
            {
                self.violations.push(Violation {
                    at,
                    monitor: "probe-window",
                    flow: Some(*flow),
                    detail: format!(
                        "probe started with cwnd {cwnd}, expected the \
                         window floor {min_cwnd}"
                    ),
                });
            }
            _ => {}
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Per-flow session bookkeeping for [`SessionConservation`].
#[derive(Clone, Copy, Debug, Default)]
struct SessionState {
    planned: u32,
    issued: u32,
    completed: u32,
    ended: bool,
}

/// Checks session/request conservation for the serve workload's
/// application lifecycle: requests are issued in order on a started
/// session, every response matches an outstanding request
/// (`completed < issued` at completion time), and a session may only
/// end once all issued requests have completed — so at any horizon
/// `issued == completed + in-flight` holds per session and every
/// started session is either ended or accounted open.
#[derive(Debug, Default)]
pub struct SessionConservation {
    sessions: FastHashMap<FlowId, SessionState>,
    violations: Vec<Violation>,
}

impl SessionConservation {
    /// Creates the monitor.
    pub fn new() -> Self {
        Self::default()
    }

    fn violate(&mut self, at: SimTime, flow: FlowId, detail: String) {
        self.violations.push(Violation {
            at,
            monitor: "session-conservation",
            flow: Some(flow),
            detail,
        });
    }
}

impl InvariantMonitor for SessionConservation {
    fn name(&self) -> &'static str {
        "session-conservation"
    }

    fn observe(&mut self, at: SimTime, ev: &MonitorEvent) {
        match *ev {
            MonitorEvent::SessionStarted {
                flow,
                planned_requests,
            } => {
                if self.sessions.contains_key(&flow) {
                    self.violate(at, flow, "session started twice".into());
                    return;
                }
                self.sessions.insert(
                    flow,
                    SessionState {
                        planned: planned_requests,
                        ..SessionState::default()
                    },
                );
            }
            MonitorEvent::RequestIssued { flow, index, bytes } => {
                let Some(s) = self.sessions.get(&flow).copied() else {
                    self.violate(at, flow, format!("request #{index} on unstarted session"));
                    return;
                };
                if s.ended {
                    self.violate(at, flow, format!("request #{index} after session end"));
                    return;
                }
                if index != s.issued {
                    self.violate(
                        at,
                        flow,
                        format!("request #{index} out of order, expected #{}", s.issued),
                    );
                } else if s.issued >= s.planned {
                    self.violate(
                        at,
                        flow,
                        format!(
                            "request #{index} exceeds the session's {} planned request(s)",
                            s.planned
                        ),
                    );
                }
                let _ = bytes;
                // trim-lint: allow(no-panic-in-library, reason = "key checked present just above")
                self.sessions.get_mut(&flow).expect("present above").issued += 1;
            }
            MonitorEvent::ResponseCompleted { flow, index } => {
                let Some(s) = self.sessions.get(&flow).copied() else {
                    self.violate(at, flow, format!("response #{index} on unstarted session"));
                    return;
                };
                if s.completed >= s.issued {
                    self.violate(
                        at,
                        flow,
                        format!(
                            "response #{index} without an outstanding request \
                             (issued {}, completed {})",
                            s.issued, s.completed
                        ),
                    );
                    return;
                }
                if index != s.completed {
                    self.violate(
                        at,
                        flow,
                        format!("response #{index} out of order, expected #{}", s.completed),
                    );
                }
                self.sessions
                    .get_mut(&flow)
                    .expect("present above") // trim-lint: allow(no-panic-in-library, reason = "key checked present just above")
                    .completed += 1;
            }
            MonitorEvent::SessionEnded {
                flow,
                issued,
                completed,
            } => {
                let Some(s) = self.sessions.get(&flow).copied() else {
                    self.violate(at, flow, "unstarted session ended".into());
                    return;
                };
                if s.ended {
                    self.violate(at, flow, "session ended twice".into());
                    return;
                }
                if s.issued != issued || s.completed != completed {
                    self.violate(
                        at,
                        flow,
                        format!(
                            "session-end tallies (issued {issued}, completed {completed}) \
                             disagree with the event stream (issued {}, completed {})",
                            s.issued, s.completed
                        ),
                    );
                }
                if s.issued != s.completed {
                    self.violate(
                        at,
                        flow,
                        format!(
                            "session ended with {} request(s) still in flight \
                             (issued {}, completed {})",
                            s.issued - s.completed,
                            s.issued,
                            s.completed
                        ),
                    );
                }
                // trim-lint: allow(no-panic-in-library, reason = "key checked present just above")
                self.sessions.get_mut(&flow).expect("present above").ended = true;
            }
            _ => {}
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

// ---------------------------------------------------------------------
// Stability oracle family (AQM & tiny-buffer scenarios).
//
// These monitors are deliberately NOT part of [`standard_monitors`]:
// a legacy Reno sender on a drop-tail bottleneck oscillates by design
// (the sawtooth is a legitimate limit cycle), so the detectors below
// would false-positive on perfectly healthy baseline scenarios. Attach
// them explicitly — via [`stability_monitors`] or the workload spec's
// `stability = on` switch — on the AQM scenarios whose whole point is
// that the control loop should converge.
// ---------------------------------------------------------------------

/// Tuning for the stability oracle family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StabilityConfig {
    /// Minimum peak-to-trough cwnd swing (in segments) for a reversal to
    /// count as part of an oscillation.
    pub min_amplitude: f64,
    /// Minimum swing relative to the oscillation midpoint; filters slow
    /// drift around a large window.
    pub min_rel_amplitude: f64,
    /// Full oscillation cycles (two reversals each) that must fall
    /// inside the sliding window before the limit-cycle detector fires.
    pub min_cycles: usize,
    /// Sliding window for the limit-cycle detector.
    pub window: Dur,
    /// Queue occupancy (as a fraction of the per-packet capacity) above
    /// which the queue counts as "standing".
    pub queue_floor: f64,
    /// Fraction of the observed span the occupancy must spend above the
    /// floor for the standing-queue detector to fire.
    pub queue_dwell: f64,
}

impl Default for StabilityConfig {
    /// Conservative defaults sized to datacenter scenarios: a swing of
    /// at least 4 segments and 25% of the midpoint, 4 full cycles inside
    /// 200 ms; a standing queue is ≥ half the buffer for ≥ 90% of the
    /// run.
    fn default() -> Self {
        StabilityConfig {
            min_amplitude: 4.0,
            min_rel_amplitude: 0.25,
            min_cycles: 4,
            window: Dur::from_millis(200),
            queue_floor: 0.5,
            queue_dwell: 0.9,
        }
    }
}

/// The stability oracle family, freshly constructed: the cwnd
/// limit-cycle detector and the standing-queue detector. (The RED
/// mean-field cross-check [`RedStability`] needs scenario parameters
/// and is constructed explicitly.)
pub fn stability_monitors(cfg: StabilityConfig) -> Vec<Box<dyn InvariantMonitor>> {
    vec![
        Box::new(CwndLimitCycle::new(cfg)),
        Box::new(StandingQueue::new(cfg)),
    ]
}

#[derive(Clone, Debug, Default)]
struct CycleState {
    /// Last observed window, and whether any observation happened yet.
    prev: Option<f64>,
    /// +1 rising, -1 falling, 0 unknown.
    dir: i8,
    /// Window value at the last reversal (or the first observation).
    last_ext: f64,
    /// Qualified reversals: (time, peak-to-trough swing).
    turns: VecDeque<(SimTime, f64)>,
    fired: bool,
}

/// Detects a sustained congestion-window limit cycle: reversals of the
/// cwnd trajectory whose swing clears both the absolute and the
/// relative amplitude floor, recurring often enough that
/// `2·min_cycles` of them fall inside the sliding window. Fires at
/// most once per flow, reporting the simulation time, flow, mean
/// amplitude, and estimated period.
///
/// A converged controller (flat cwnd) never reverses; ACK-granularity
/// noise reverses constantly but below the amplitude floors; a true
/// limit cycle — e.g. Reno bouncing off a steep RED band — reverses
/// with large swings every couple of RTTs and is caught within a few
/// windows.
#[derive(Debug, Default)]
pub struct CwndLimitCycle {
    cfg: Option<StabilityConfig>,
    flows: FastHashMap<FlowId, CycleState>,
    violations: Vec<Violation>,
}

impl CwndLimitCycle {
    /// Creates the detector with the given tuning.
    pub fn new(cfg: StabilityConfig) -> Self {
        CwndLimitCycle {
            cfg: Some(cfg),
            flows: FastHashMap::default(),
            violations: Vec::new(),
        }
    }

    fn config(&self) -> StabilityConfig {
        self.cfg.unwrap_or_default()
    }
}

impl InvariantMonitor for CwndLimitCycle {
    fn name(&self) -> &'static str {
        "cwnd-limit-cycle"
    }

    fn observe(&mut self, at: SimTime, ev: &MonitorEvent) {
        let MonitorEvent::CwndUpdate { flow, cwnd, .. } = ev else {
            return;
        };
        let cfg = self.config();
        let s = self.flows.entry(*flow).or_default();
        let Some(prev) = s.prev else {
            s.prev = Some(*cwnd);
            s.last_ext = *cwnd;
            return;
        };
        let d: i8 = if *cwnd > prev {
            1
        } else if *cwnd < prev {
            -1
        } else {
            0
        };
        if d != 0 {
            if s.dir != 0 && d != s.dir {
                // `prev` was a local extremum: measure the swing since
                // the previous extremum.
                let swing = (prev - s.last_ext).abs();
                let mid = 0.5 * (prev + s.last_ext);
                if swing >= cfg.min_amplitude && swing >= cfg.min_rel_amplitude * mid {
                    s.turns.push_back((at, swing));
                }
                s.last_ext = prev;
            }
            s.dir = d;
        }
        s.prev = Some(*cwnd);
        // Prune reversals that slid out of the window, then test.
        let cutoff = at.saturating_since(SimTime::ZERO);
        let window_start = if cutoff > cfg.window {
            SimTime::ZERO + (cutoff - cfg.window)
        } else {
            SimTime::ZERO
        };
        while s
            .turns
            .front()
            .is_some_and(|&(turn_at, _)| turn_at < window_start)
        {
            s.turns.pop_front();
        }
        let needed = 2 * cfg.min_cycles;
        if !s.fired && s.turns.len() >= needed {
            s.fired = true;
            let span = at.saturating_since(s.turns.front().map(|&(t0, _)| t0).unwrap_or(at));
            let mean_amp = s.turns.iter().map(|&(_, a)| a).sum::<f64>() / s.turns.len() as f64;
            let cycles = s.turns.len() as f64 / 2.0;
            let period_us = span.as_nanos() as f64 / cycles / 1_000.0;
            self.violations.push(Violation {
                at,
                monitor: "cwnd-limit-cycle",
                flow: Some(*flow),
                detail: format!(
                    "sustained cwnd oscillation: {} reversals in {}us \
                     (mean amplitude {:.1} segments, period ~{:.0}us)",
                    s.turns.len(),
                    span.as_nanos() / 1_000,
                    mean_amp,
                    period_us
                ),
            });
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct ChannelOccupancy {
    cap_pkts: Option<usize>,
    len: usize,
    last: Option<SimTime>,
    above_ns: u128,
    total_ns: u128,
}

/// Detects a standing queue: time-average occupancy that stays above
/// `queue_floor · capacity` for at least `queue_dwell` of the observed
/// span despite an AQM whose job is to drain it. Evaluated per packet-
/// capacity channel at finalize; spans shorter than the limit-cycle
/// window are ignored (too little evidence).
///
/// This is the Briscoe/De Schepper failure mode: at datacenter RTTs TCP
/// overrides the AQM and rebuilds the standing queue, so latency stays
/// pinned at the buffer ceiling even though the AQM keeps dropping.
#[derive(Debug, Default)]
pub struct StandingQueue {
    cfg: Option<StabilityConfig>,
    /// Per-channel occupancy accounting, in channel-id order of first
    /// appearance (kept in a `Vec` so finalize iterates deterministically).
    channels: Vec<(ChannelId, ChannelOccupancy)>,
    violations: Vec<Violation>,
    fired: bool,
}

impl StandingQueue {
    /// Creates the detector with the given tuning.
    pub fn new(cfg: StabilityConfig) -> Self {
        StandingQueue {
            cfg: Some(cfg),
            channels: Vec::new(),
            violations: Vec::new(),
            fired: false,
        }
    }

    fn config(&self) -> StabilityConfig {
        self.cfg.unwrap_or_default()
    }

    fn state(&mut self, ch: ChannelId) -> &mut ChannelOccupancy {
        if let Some(i) = self.channels.iter().position(|&(c, _)| c == ch) {
            return &mut self.channels[i].1;
        }
        self.channels.push((ch, ChannelOccupancy::default()));
        // trim-lint: allow(no-panic-in-library, reason = "entry pushed on the line above")
        &mut self.channels.last_mut().expect("just pushed").1
    }

    fn advance(state: &mut ChannelOccupancy, floor: f64, at: SimTime) {
        if let Some(last) = state.last {
            let span = at.saturating_since(last).as_nanos() as u128;
            state.total_ns += span;
            if state.len as f64 > floor {
                state.above_ns += span;
            }
        }
        state.last = Some(at);
    }
}

impl InvariantMonitor for StandingQueue {
    fn name(&self) -> &'static str {
        "standing-queue"
    }

    fn observe(&mut self, at: SimTime, ev: &MonitorEvent) {
        let cfg = self.config();
        match ev {
            MonitorEvent::Enqueued {
                channel,
                len_after,
                cap_pkts,
                ..
            } => {
                let (len_after, cap_pkts) = (*len_after, *cap_pkts);
                let floor_of = |s: &ChannelOccupancy| {
                    s.cap_pkts
                        .map_or(f64::INFINITY, |c| cfg.queue_floor * c as f64)
                };
                let s = self.state(*channel);
                s.cap_pkts = cap_pkts.or(s.cap_pkts);
                let floor = floor_of(s);
                Self::advance(s, floor, at);
                s.len = len_after;
            }
            MonitorEvent::Dequeued { channel, .. } | MonitorEvent::SojournDrop { channel, .. } => {
                let cfg_floor = cfg.queue_floor;
                let s = self.state(*channel);
                let floor = s.cap_pkts.map_or(f64::INFINITY, |c| cfg_floor * c as f64);
                Self::advance(s, floor, at);
                s.len = s.len.saturating_sub(1);
            }
            _ => {}
        }
    }

    fn finalize(&mut self, at: SimTime, _audit: &AuditStats) {
        if self.fired {
            return;
        }
        let cfg = self.config();
        let min_span_ns = cfg.window.as_nanos() as u128;
        for &(ch, ref s) in &self.channels {
            let Some(cap) = s.cap_pkts else { continue };
            if s.total_ns < min_span_ns || s.total_ns == 0 {
                continue;
            }
            let dwell = s.above_ns as f64 / s.total_ns as f64;
            if dwell >= cfg.queue_dwell {
                self.fired = true;
                self.violations.push(Violation {
                    at,
                    monitor: "standing-queue",
                    flow: None,
                    detail: format!(
                        "{ch} occupancy above {:.0}% of the {cap}-packet buffer \
                         for {:.0}% of the observed {}us",
                        cfg.queue_floor * 100.0,
                        dwell * 100.0,
                        s.total_ns / 1_000
                    ),
                });
            }
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Cross-checks the *measured* cwnd behavior of a RED scenario against
/// the mean-field stability predicate
/// ([`trim_core::fluid::red_stability`], Reynier's condition): a
/// scenario whose fluid model says "stable" must not exhibit a
/// sustained limit cycle in the packet simulation, and one whose model
/// says "unstable" must. Fires one violation on disagreement.
///
/// Construct with the scenario's bottleneck parameters; internally it
/// runs a [`CwndLimitCycle`] as the measurement instrument.
#[derive(Debug)]
pub struct RedStability {
    verdict: trim_core::fluid::RedStabilityVerdict,
    cycle: CwndLimitCycle,
    violations: Vec<Violation>,
    fired: bool,
}

impl RedStability {
    /// Creates the cross-check for one RED bottleneck scenario:
    /// capacity in packets per second, base RTT, flow population, the
    /// RED parameters, and the limit-cycle tuning used to measure the
    /// packet-level behavior.
    pub fn new(
        capacity_pps: f64,
        base_rtt_ns: u64,
        n_flows: f64,
        red: &trim_core::fluid::RedFluid,
        cfg: StabilityConfig,
    ) -> Self {
        RedStability {
            verdict: trim_core::fluid::red_stability(capacity_pps, base_rtt_ns, n_flows, red),
            cycle: CwndLimitCycle::new(cfg),
            violations: Vec::new(),
            fired: false,
        }
    }

    /// The mean-field verdict being checked against.
    pub fn verdict(&self) -> trim_core::fluid::RedStabilityVerdict {
        self.verdict
    }

    /// Whether the packet-level measurement saw a sustained limit cycle
    /// so far.
    pub fn measured_unstable(&self) -> bool {
        !self.cycle.violations().is_empty()
    }
}

impl InvariantMonitor for RedStability {
    fn name(&self) -> &'static str {
        "red-stability"
    }

    fn observe(&mut self, at: SimTime, ev: &MonitorEvent) {
        self.cycle.observe(at, ev);
    }

    fn finalize(&mut self, at: SimTime, _audit: &AuditStats) {
        if self.fired {
            return;
        }
        self.fired = true;
        let measured = self.measured_unstable();
        let predicted = !self.verdict.stable;
        if measured != predicted {
            let v = &self.verdict;
            self.violations.push(Violation {
                at,
                monitor: "red-stability",
                flow: None,
                detail: format!(
                    "measured {} but the mean-field predicate says {} \
                     (W* = {:.2}, q* = {:.1}, p* = {:.4}, margin = {:.3})",
                    if measured {
                        "a sustained limit cycle"
                    } else {
                        "convergence"
                    },
                    if predicted { "unstable" } else { "stable" },
                    v.w_star,
                    v.q_star,
                    v.p_star,
                    v.margin
                ),
            });
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::prelude::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// Real (node, channel) ids out of a throwaway two-host network —
    /// the id types are deliberately opaque outside `netsim`.
    fn ids() -> (NodeId, ChannelId) {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let a = sim.add_host(Box::new(SinkAgent::default()));
        let b = sim.add_host(Box::new(SinkAgent::default()));
        let (ab, _) = sim.connect(
            a,
            b,
            Bandwidth::gbps(1),
            Dur::from_micros(1),
            QueueConfig::default(),
        );
        (a, ab)
    }

    #[test]
    fn conservation_flags_excess_delivery() {
        let (node, _) = ids();
        let mut m = PacketConservation::new();
        m.observe(
            t(1),
            &MonitorEvent::Injected {
                node,
                flow: FlowId(1),
                uid: 1,
                size: 100,
            },
        );
        m.observe(
            t(2),
            &MonitorEvent::Delivered {
                node,
                flow: FlowId(1),
                uid: 1,
                size: 100,
            },
        );
        assert!(m.violations().is_empty());
        // A second delivery of a never-injected packet breaks the running
        // inequality.
        m.observe(
            t(3),
            &MonitorEvent::Delivered {
                node,
                flow: FlowId(1),
                uid: 99,
                size: 100,
            },
        );
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].flow, Some(FlowId(1)));
    }

    #[test]
    fn conservation_finalize_cross_checks_the_engine() {
        let mut m = PacketConservation::new();
        let bad = AuditStats {
            injected: 5,
            delivered: 2,
            dropped: 1,
            queued_pkts: 1,
            pending_arrivals: 0,
            arena_live: 0,
        };
        // Event tallies are all zero, so both finalize checks fire: the
        // engine disagreement and (5 != 2+1+1) the identity itself.
        m.finalize(t(10), &bad);
        assert_eq!(m.violations().len(), 2);
    }

    #[test]
    fn conservation_finalize_flags_arena_leaks() {
        // Counters and the conservation identity are consistent, but the
        // arena still holds a packet with no pending arrival: a leak.
        let leaked = AuditStats {
            injected: 4,
            delivered: 4,
            dropped: 0,
            queued_pkts: 0,
            pending_arrivals: 0,
            arena_live: 1,
        };
        // Align the event tallies with the engine counters so only the
        // arena check can fire.
        let mut m = PacketConservation::new();
        for uid in 1..=4u64 {
            m.observe(
                t(1),
                &MonitorEvent::Injected {
                    node: ids().0,
                    flow: FlowId(1),
                    uid,
                    size: 100,
                },
            );
            m.observe(
                t(2),
                &MonitorEvent::Delivered {
                    node: ids().0,
                    flow: FlowId(1),
                    uid,
                    size: 100,
                },
            );
        }
        m.finalize(t(10), &leaked);
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].detail.contains("leaked arena slots"));
    }

    #[test]
    fn queue_bound_flags_over_capacity() {
        let (_, ch) = ids();
        let mut m = QueueBound::new();
        m.observe(
            t(5),
            &MonitorEvent::Enqueued {
                channel: ch,
                flow: FlowId(3),
                uid: 1,
                len_after: 101,
                cap_pkts: Some(100),
            },
        );
        assert_eq!(m.violations().len(), 1);
        let v = &m.violations()[0];
        assert_eq!(v.at, t(5));
        assert_eq!(v.flow, Some(FlowId(3)));
    }

    #[test]
    fn queue_bound_flags_impossible_aqm_average() {
        let (_, ch) = ids();
        let mut m = QueueBound::new();
        // Learn the cap from a legal enqueue, then report an AQM drop
        // whose EWMA claims more packets than the queue can even hold.
        m.observe(
            t(1),
            &MonitorEvent::Enqueued {
                channel: ch,
                flow: FlowId(0),
                uid: 1,
                len_after: 1,
                cap_pkts: Some(100),
            },
        );
        m.observe(
            t(2),
            &MonitorEvent::AqmEarlyDrop {
                channel: ch,
                flow: FlowId(0),
                uid: 2,
                size: 100,
                avg_queue: 250.0,
            },
        );
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].detail.contains("exceeds"));
        // A non-finite estimate is flagged even before any cap is known.
        let mut m2 = QueueBound::new();
        m2.observe(
            t(3),
            &MonitorEvent::AqmEarlyDrop {
                channel: ch,
                flow: FlowId(1),
                uid: 3,
                size: 100,
                avg_queue: f64::NAN,
            },
        );
        assert_eq!(m2.violations().len(), 1);
        assert!(m2.violations()[0].detail.contains("corrupt"));
    }

    #[test]
    fn queue_bound_accepts_sane_aqm_average() {
        let (_, ch) = ids();
        let mut m = QueueBound::new();
        m.observe(
            t(1),
            &MonitorEvent::Enqueued {
                channel: ch,
                flow: FlowId(0),
                uid: 1,
                len_after: 40,
                cap_pkts: Some(100),
            },
        );
        m.observe(
            t(2),
            &MonitorEvent::AqmEarlyDrop {
                channel: ch,
                flow: FlowId(0),
                uid: 2,
                size: 100,
                avg_queue: 42.5,
            },
        );
        assert!(m.violations().is_empty());
    }

    #[test]
    fn fifo_flags_out_of_order_dequeue() {
        let (_, ch) = ids();
        let mut m = FifoOrder::new();
        for uid in [1u64, 2] {
            m.observe(
                t(1),
                &MonitorEvent::Enqueued {
                    channel: ch,
                    flow: FlowId(0),
                    uid,
                    len_after: uid as usize,
                    cap_pkts: Some(10),
                },
            );
        }
        m.observe(
            t(2),
            &MonitorEvent::Dequeued {
                channel: ch,
                flow: FlowId(0),
                uid: 2,
            },
        );
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].detail.contains("pkt#2"));
    }

    #[test]
    fn monotonic_time_flags_backwards_clock() {
        let mut m = MonotonicTime::new();
        m.observe(t(5), &MonitorEvent::Clock { to: t(10) });
        m.observe(t(10), &MonitorEvent::Clock { to: t(10) }); // equal: fine
        m.observe(t(10), &MonitorEvent::Clock { to: t(9) });
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn cwnd_range_flags_out_of_band_windows() {
        let mut m = CwndRange::new();
        let ev = |cwnd: f64| MonitorEvent::CwndUpdate {
            flow: FlowId(1),
            cwnd,
            min_cwnd: 2.0,
            max_cwnd: 900.0,
        };
        m.observe(t(1), &ev(2.0));
        m.observe(t(2), &ev(900.0));
        m.observe(t(3), &ev(450.5));
        assert!(m.violations().is_empty());
        m.observe(t(4), &ev(1.5));
        m.observe(t(5), &ev(901.0));
        m.observe(t(6), &ev(f64::NAN));
        assert_eq!(m.violations().len(), 3);
    }

    #[test]
    fn probe_machine_accepts_the_legal_lifecycles() {
        let mut m = ProbeLegality::new();
        let ev = |tr| MonitorEvent::ProbeTransition {
            flow: FlowId(1),
            transition: tr,
        };
        // Full lifecycle with suspension, then resolve-before-suspend,
        // then timeout and abort endings.
        for tr in [
            ProbeTransition::Start,
            ProbeTransition::Suspend,
            ProbeTransition::Resolve,
            ProbeTransition::Start,
            ProbeTransition::Resolve,
            ProbeTransition::Start,
            ProbeTransition::Suspend,
            ProbeTransition::Timeout,
            ProbeTransition::Start,
            ProbeTransition::Abort,
        ] {
            m.observe(t(1), &ev(tr));
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn ack_reduction_bound_allows_halving_but_not_deeper_cuts() {
        let mut m = AckReductionBound::new();
        let ev = |before: f64, after: f64, probe_echo: bool| MonitorEvent::AckWindow {
            flow: FlowId(1),
            before,
            after,
            probe_echo,
        };
        m.observe(t(1), &ev(10.0, 11.0, false)); // growth
        m.observe(t(2), &ev(10.0, 5.0, false)); // exact halving (DCTCP alpha=1)
        m.observe(t(3), &ev(10.0, 7.5, false)); // TRIM-style partial cut
        m.observe(t(4), &ev(64.0, 2.0, true)); // probe resolution is exempt
        assert!(m.violations().is_empty());
        m.observe(t(5), &ev(10.0, 4.9, false));
        m.observe(t(6), &ev(10.0, f64::NAN, false));
        assert_eq!(m.violations().len(), 2);
        assert!(m.violations()[0].detail.contains("halving floor"));
    }

    #[test]
    fn probe_window_requires_the_floor_at_probe_start() {
        let mut m = ProbeWindow::new();
        let start = MonitorEvent::ProbeTransition {
            flow: FlowId(1),
            transition: ProbeTransition::Start,
        };
        let cwnd = |cwnd: f64| MonitorEvent::CwndUpdate {
            flow: FlowId(1),
            cwnd,
            min_cwnd: 2.0,
            max_cwnd: 900.0,
        };
        // Normal updates while idle are never checked.
        m.observe(t(1), &cwnd(64.0));
        // Probe start followed by the collapsed window: clean.
        m.observe(t(2), &start);
        m.observe(t(2), &cwnd(2.0));
        // Later updates (stray ACKs for pre-probe data) are exempt.
        m.observe(t(3), &cwnd(3.0));
        assert!(m.violations().is_empty());
        // A probe that keeps its old window is a violation.
        m.observe(t(4), &start);
        m.observe(t(4), &cwnd(64.0));
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].detail.contains("window floor"));
    }

    #[test]
    fn session_conservation_accepts_a_clean_lifecycle() {
        let mut m = SessionConservation::new();
        let f = FlowId(1);
        m.observe(
            t(1),
            &MonitorEvent::SessionStarted {
                flow: f,
                planned_requests: 2,
            },
        );
        for i in 0..2u32 {
            m.observe(
                t(2 + u64::from(i)),
                &MonitorEvent::RequestIssued {
                    flow: f,
                    index: i,
                    bytes: 4_000,
                },
            );
            m.observe(
                t(5 + u64::from(i)),
                &MonitorEvent::ResponseCompleted { flow: f, index: i },
            );
        }
        m.observe(
            t(9),
            &MonitorEvent::SessionEnded {
                flow: f,
                issued: 2,
                completed: 2,
            },
        );
        assert!(m.violations().is_empty(), "{:?}", m.violations());
    }

    #[test]
    fn session_conservation_accounts_open_sessions_at_horizon() {
        // A session with a request still in flight at the horizon is
        // legal as long as it never claims to have ended.
        let mut m = SessionConservation::new();
        let f = FlowId(2);
        m.observe(
            t(1),
            &MonitorEvent::SessionStarted {
                flow: f,
                planned_requests: 3,
            },
        );
        m.observe(
            t(2),
            &MonitorEvent::RequestIssued {
                flow: f,
                index: 0,
                bytes: 1_000,
            },
        );
        m.finalize(
            t(10),
            &AuditStats {
                injected: 0,
                delivered: 0,
                dropped: 0,
                queued_pkts: 0,
                pending_arrivals: 0,
                arena_live: 0,
            },
        );
        assert!(m.violations().is_empty());
    }

    #[test]
    fn session_conservation_flags_broken_lifecycles() {
        let mut m = SessionConservation::new();
        // Request on a session that never started.
        m.observe(
            t(1),
            &MonitorEvent::RequestIssued {
                flow: FlowId(1),
                index: 0,
                bytes: 100,
            },
        );
        // Response with no outstanding request.
        m.observe(
            t(2),
            &MonitorEvent::SessionStarted {
                flow: FlowId(2),
                planned_requests: 1,
            },
        );
        m.observe(
            t(3),
            &MonitorEvent::ResponseCompleted {
                flow: FlowId(2),
                index: 0,
            },
        );
        // Session ends while a request is still in flight.
        m.observe(
            t(4),
            &MonitorEvent::SessionStarted {
                flow: FlowId(3),
                planned_requests: 2,
            },
        );
        m.observe(
            t(5),
            &MonitorEvent::RequestIssued {
                flow: FlowId(3),
                index: 0,
                bytes: 100,
            },
        );
        m.observe(
            t(6),
            &MonitorEvent::SessionEnded {
                flow: FlowId(3),
                issued: 1,
                completed: 0,
            },
        );
        assert_eq!(m.violations().len(), 3, "{:?}", m.violations());
        assert!(m.violations()[2].detail.contains("in flight"));
    }

    #[test]
    fn probe_machine_flags_illegal_transitions() {
        let mut m = ProbeLegality::new();
        let ev = |flow, tr| MonitorEvent::ProbeTransition {
            flow: FlowId(flow),
            transition: tr,
        };
        // Suspend without a probe outstanding.
        m.observe(t(1), &ev(1, ProbeTransition::Suspend));
        // Double start.
        m.observe(t(2), &ev(2, ProbeTransition::Start));
        m.observe(t(3), &ev(2, ProbeTransition::Start));
        // Resolve when idle.
        m.observe(t(4), &ev(3, ProbeTransition::Resolve));
        assert_eq!(m.violations().len(), 3);
        assert!(m.violations().iter().all(|v| v.flow.is_some()));
    }

    // --- stability oracle family ---

    fn t_ms(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn cwnd_ev(flow: u64, cwnd: f64) -> MonitorEvent {
        MonitorEvent::CwndUpdate {
            flow: FlowId(flow),
            cwnd,
            min_cwnd: 2.0,
            max_cwnd: 1000.0,
        }
    }

    /// Injected limit-cycle fault: a 4 ↔ 40 square wave must trip the
    /// detector, and the violation must carry the sim time and flow id
    /// plus amplitude/period diagnostics.
    #[test]
    fn limit_cycle_fires_on_square_wave() {
        let mut m = CwndLimitCycle::new(StabilityConfig::default());
        for i in 0..30u64 {
            let w = if i % 2 == 0 { 4.0 } else { 40.0 };
            m.observe(t_ms(2 * i), &cwnd_ev(7, w));
        }
        assert_eq!(m.violations().len(), 1, "{:?}", m.violations());
        let v = &m.violations()[0];
        assert_eq!(v.flow, Some(FlowId(7)), "violation names the flow");
        assert!(v.at > SimTime::ZERO, "violation carries the sim time");
        assert!(v.detail.contains("amplitude"), "{}", v.detail);
        assert!(v.detail.contains("period"), "{}", v.detail);
        // Square-wave swing is 36 segments.
        assert!(v.detail.contains("36.0"), "{}", v.detail);
    }

    /// A converged trace — slow-start ramp, then flat forever — must
    /// stay silent: there are no reversals at all.
    #[test]
    fn limit_cycle_silent_on_converged_trace() {
        let mut m = CwndLimitCycle::new(StabilityConfig::default());
        for (i, w) in [2.0, 4.0, 8.0, 16.0, 24.0].into_iter().enumerate() {
            m.observe(t_ms(i as u64), &cwnd_ev(1, w));
        }
        for i in 5..300u64 {
            m.observe(t_ms(i), &cwnd_ev(1, 24.0));
        }
        assert!(m.violations().is_empty(), "{:?}", m.violations());
    }

    /// ACK-granularity noise — constant reversals of ±1 segment around
    /// a stable operating point — must stay silent: the swings never
    /// clear the amplitude floor.
    #[test]
    fn limit_cycle_silent_on_noisy_but_stable_trace() {
        let mut m = CwndLimitCycle::new(StabilityConfig::default());
        for i in 0..500u64 {
            let w = 20.0 + if i % 2 == 0 { 0.0 } else { 1.0 };
            m.observe(t_ms(i), &cwnd_ev(1, w));
        }
        assert!(m.violations().is_empty(), "{:?}", m.violations());
    }

    /// Reversals must be *sustained*: a handful of large swings that
    /// then damp out (converging oscillation) never accumulates the
    /// required count inside the window.
    #[test]
    fn limit_cycle_needs_sustained_reversals() {
        let mut m = CwndLimitCycle::new(StabilityConfig::default());
        // Three big reversals (6 turns < 8 needed), then convergence.
        let trace = [10.0, 40.0, 10.0, 40.0, 10.0, 40.0, 25.0, 25.0, 25.0];
        for (i, w) in trace.into_iter().enumerate() {
            m.observe(t_ms(2 * i as u64), &cwnd_ev(1, w));
        }
        for i in 20..400u64 {
            m.observe(t_ms(i), &cwnd_ev(1, 25.0));
        }
        assert!(m.violations().is_empty(), "{:?}", m.violations());
    }

    /// The detector fires once per flow, and separately per flow.
    #[test]
    fn limit_cycle_fires_once_per_flow() {
        let mut m = CwndLimitCycle::new(StabilityConfig::default());
        for i in 0..60u64 {
            let w = if i % 2 == 0 { 4.0 } else { 40.0 };
            m.observe(t_ms(2 * i), &cwnd_ev(1, w));
            m.observe(t_ms(2 * i), &cwnd_ev(2, w));
        }
        assert_eq!(m.violations().len(), 2, "{:?}", m.violations());
        let flows: Vec<_> = m.violations().iter().map(|v| v.flow).collect();
        assert!(flows.contains(&Some(FlowId(1))));
        assert!(flows.contains(&Some(FlowId(2))));
    }

    fn enq_ev(ch: ChannelId, len_after: usize, cap: usize) -> MonitorEvent {
        MonitorEvent::Enqueued {
            channel: ch,
            flow: FlowId(0),
            uid: 0,
            len_after,
            cap_pkts: Some(cap),
        }
    }

    /// A queue pinned near its ceiling for the whole run is a standing
    /// queue; one that oscillates across the floor is not.
    #[test]
    fn standing_queue_fires_on_pinned_occupancy() {
        let (_, ch) = ids();
        let mut m = StandingQueue::new(StabilityConfig::default());
        // Occupancy 13..15 of 16 for 500 ms.
        for i in 0..500u64 {
            let len = 13 + (i % 3) as usize;
            m.observe(t_ms(i), &enq_ev(ch, len, 16));
        }
        let audit = AuditStats {
            injected: 0,
            delivered: 0,
            dropped: 0,
            queued_pkts: 0,
            pending_arrivals: 0,
            arena_live: 0,
        };
        m.finalize(t_ms(500), &audit);
        assert_eq!(m.violations().len(), 1, "{:?}", m.violations());
        assert!(m.violations()[0].detail.contains("16-packet"));
    }

    #[test]
    fn standing_queue_silent_when_queue_drains() {
        let (_, ch) = ids();
        let mut m = StandingQueue::new(StabilityConfig::default());
        // Occupancy swings 1..16: above the 8-packet floor only half
        // the time.
        for i in 0..500u64 {
            let len = 1 + (i % 16) as usize;
            m.observe(t_ms(i), &enq_ev(ch, len, 16));
        }
        let audit = AuditStats {
            injected: 0,
            delivered: 0,
            dropped: 0,
            queued_pkts: 0,
            pending_arrivals: 0,
            arena_live: 0,
        };
        m.finalize(t_ms(500), &audit);
        assert!(m.violations().is_empty(), "{:?}", m.violations());
    }

    #[test]
    fn standing_queue_ignores_short_spans() {
        let (_, ch) = ids();
        let mut m = StandingQueue::new(StabilityConfig::default());
        // Pinned, but only observed for 50 ms < the 200 ms window.
        for i in 0..50u64 {
            m.observe(t_ms(i), &enq_ev(ch, 15, 16));
        }
        let audit = AuditStats {
            injected: 0,
            delivered: 0,
            dropped: 0,
            queued_pkts: 0,
            pending_arrivals: 0,
            arena_live: 0,
        };
        m.finalize(t_ms(50), &audit);
        assert!(m.violations().is_empty(), "{:?}", m.violations());
    }

    /// The RED cross-check agrees in both directions and fires on
    /// either kind of disagreement.
    #[test]
    fn red_stability_cross_check_fires_only_on_disagreement() {
        use trim_core::fluid::RedFluid;
        const C: f64 = 1e9 / (1460.0 * 8.0);
        let steep = RedFluid {
            min_th: 10.0,
            max_th: 20.0,
            max_p: 1.0,
            wq: 0.01,
        };
        let gentle = RedFluid {
            min_th: 15.0,
            max_th: 45.0,
            max_p: 0.1,
            wq: 0.002,
        };
        let audit = AuditStats {
            injected: 0,
            delivered: 0,
            dropped: 0,
            queued_pkts: 0,
            pending_arrivals: 0,
            arena_live: 0,
        };
        let square = |m: &mut RedStability| {
            for i in 0..30u64 {
                let w = if i % 2 == 0 { 4.0 } else { 40.0 };
                m.observe(t_ms(2 * i), &cwnd_ev(1, w));
            }
        };
        let flat = |m: &mut RedStability| {
            for i in 0..300u64 {
                m.observe(t_ms(i), &cwnd_ev(1, 20.0));
            }
        };
        let cfg = StabilityConfig::default();

        // Unstable predicate + oscillating measurement: agreement.
        let mut m = RedStability::new(C, 1_000_000, 4.0, &steep, cfg);
        assert!(!m.verdict().stable);
        square(&mut m);
        m.finalize(t_ms(600), &audit);
        assert!(m.violations().is_empty(), "{:?}", m.violations());

        // Stable predicate + converged measurement: agreement.
        let mut m = RedStability::new(C, 100_000, 8.0, &gentle, cfg);
        assert!(m.verdict().stable);
        flat(&mut m);
        m.finalize(t_ms(600), &audit);
        assert!(m.violations().is_empty(), "{:?}", m.violations());

        // Stable predicate + oscillating measurement: disagreement.
        let mut m = RedStability::new(C, 100_000, 8.0, &gentle, cfg);
        square(&mut m);
        m.finalize(t_ms(600), &audit);
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].detail.contains("limit cycle"));

        // Unstable predicate + converged measurement: disagreement.
        let mut m = RedStability::new(C, 1_000_000, 4.0, &steep, cfg);
        flat(&mut m);
        m.finalize(t_ms(600), &audit);
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].detail.contains("margin"));
    }
}
