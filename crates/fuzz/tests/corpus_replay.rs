//! Replays every committed `corpus/*.spec` as an ordinary test case:
//! a spec with an `expect = monitor:<name>` / `oracle:<name>` line must
//! reproduce exactly that verdict, fault-carrying repros must still trip
//! `queue-bound`, clean specs must stay clean under the full monitor +
//! oracle suite, and replays must be deterministic.

use std::path::PathBuf;

use trim_fuzz::check_spec;
use trim_workload::spec::ScenarioSpec;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

fn load(name: &str) -> ScenarioSpec {
    let path = corpus_dir().join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    ScenarioSpec::from_text(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

#[test]
fn every_corpus_spec_replays_with_its_expected_outcome() {
    let mut seen = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus directory exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "spec") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = ScenarioSpec::from_text(&text)
            .unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
        let verdict = check_spec(&spec).unwrap();
        let expected: Option<String> = spec
            .expect
            .clone()
            .or_else(|| spec.fault.map(|_| "monitor:queue-bound".to_string()));
        match expected {
            Some(key) => assert_eq!(
                verdict.key().as_deref(),
                Some(key.as_str()),
                "{}: repro no longer produces its expected verdict: {}",
                path.display(),
                verdict.headline()
            ),
            None => assert!(
                !verdict.failed(),
                "{}: clean spec now fails: {}",
                path.display(),
                verdict.headline()
            ),
        }
    }
    assert!(
        seen >= 5,
        "expected the committed corpus, found {seen} specs"
    );
}

#[test]
fn shrunk_overadmit_repro_replays_deterministically() {
    let spec = load("overadmit_min.spec");
    assert!(spec.senders <= 4, "repro must stay minimal");
    let a = spec.run().unwrap();
    let b = spec.run().unwrap();
    assert!(!a.violations.is_empty());
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.report.at, b.report.at);
    for (x, y) in a.report.senders.iter().zip(&b.report.senders) {
        assert_eq!(x.goodput_bytes, y.goodput_bytes);
        assert_eq!(x.stats, y.stats);
    }
    // The violation the shrinker preserved is the injected over-admission.
    assert!(a.violations.iter().all(|v| v.monitor == "queue-bound"));
}

#[test]
fn probe_gap_spec_actually_probes() {
    let spec = load("probe_gap_trim.spec");
    let out = spec.run().unwrap();
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    let probes: u64 = out.report.senders.iter().map(|s| s.stats.probes_sent).sum();
    assert!(
        probes > 0,
        "the idle gaps must trigger Algorithm-1 probes for the \
         probe-window monitor to be exercised"
    );
}

#[test]
fn session_spec_exercises_the_mid_think_cutoff() {
    let spec = load("session_mixed.spec");
    let out = spec.run().unwrap();
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    // Sender 1's think gap outlasts the horizon: the second response is
    // never issued, leaving the connection idle with partial goodput —
    // exactly the case the session-aware goodput rule must tolerate.
    let s1 = &out.report.senders[1];
    assert_eq!(s1.trains.len(), 1, "the long think must cut response 2");
    assert!(!s1.unfinished, "mid-think means idle at the horizon");
    assert!(s1.goodput_bytes < spec.offered_padded_bytes(1));
    // Sender 0's full sequence completes; conservation is exact there.
    let s0 = &out.report.senders[0];
    assert_eq!(s0.trains.len(), 3);
    assert_eq!(s0.goodput_bytes, spec.offered_padded_bytes(0));
}

#[test]
fn saturation_spec_exercises_the_utilization_oracle() {
    let spec = load("saturate_trim_guideline.spec");
    assert!(trim_fuzz::oracle::KFullUtilization::qualifies(&spec));
    let out = spec.run().unwrap();
    let u = trim_fuzz::oracle::KFullUtilization::measured_utilization(&spec, &out);
    assert!(
        u >= trim_fuzz::oracle::UTILIZATION_FLOOR,
        "utilization {u} under the oracle floor"
    );
}

#[test]
fn aqm_instability_repro_fires_the_stability_oracle_deterministically() {
    let spec = load("aqm_red_limit_cycle.spec");
    assert!(spec.stability, "repro must attach the stability oracles");
    assert_eq!(spec.expect.as_deref(), Some("monitor:cwnd-limit-cycle"));
    assert!(
        !matches!(spec.aqm, trim_workload::spec::SpecAqm::DropTail),
        "repro must keep its AQM discipline"
    );
    let a = spec.run().unwrap();
    let v = a
        .violations
        .iter()
        .find(|v| v.monitor == "cwnd-limit-cycle")
        .unwrap_or_else(|| panic!("limit cycle no longer detected: {:?}", a.violations));
    // The oracle's report is actionable: it names the oscillating flow
    // and the simulation time the cycle qualified.
    assert!(v.flow.is_some(), "violation carries the flow: {v}");
    assert!(
        v.at > netsim::SimTime::ZERO,
        "violation carries sim time: {v}"
    );
    // No other invariant breaks: the oscillation is the only finding.
    assert!(
        a.violations
            .iter()
            .all(|v| v.monitor == "cwnd-limit-cycle" || v.monitor == "standing-queue"),
        "unexpected violations: {:?}",
        a.violations
    );
    let b = spec.run().unwrap();
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.report.completion_times(), b.report.completion_times());
}
