//! End-to-end fuzzer checks: a bounded clean run finds nothing, and the
//! detector self-test re-finds the injected over-admission and shrinks
//! it to a minimal spec — the debug-mode twin of CI's release-mode
//! `trim-fuzz --iterations 200 --seed 7` smoke.

use trim_fuzz::{check_spec, run_fuzz, FuzzConfig, GenConfig};

#[test]
fn bounded_clean_fuzz_finds_nothing() {
    // The same deterministic prefix CI covers at release scale.
    let report = run_fuzz(&FuzzConfig {
        iterations: 12,
        seed: 7,
        ..Default::default()
    });
    assert_eq!(report.iterations_run, 12);
    assert!(
        report.failures.is_empty(),
        "unexpected failure: {}",
        report.failures[0].verdict.headline()
    );
}

#[test]
fn injected_overadmit_is_refound_and_shrunk_to_a_minimal_spec() {
    // Seed 4 hits the fault on iteration 3 of the burst family.
    let report = run_fuzz(&FuzzConfig {
        iterations: 10,
        seed: 4,
        gen: GenConfig {
            fault_overadmit: true,
            saturate_every: 0,
            ..Default::default()
        },
        max_failures: 1,
        store: None,
        quiet: true,
    });
    assert_eq!(report.failures.len(), 1, "detector self-test found nothing");
    let f = &report.failures[0];
    assert_eq!(f.verdict.key().as_deref(), Some("monitor:queue-bound"));
    assert!(
        f.shrunk.senders <= 4,
        "shrunk repro has {} senders, want <= 4",
        f.shrunk.senders
    );
    assert!(f.shrunk.senders <= f.original.senders);
    assert!(f.shrunk.trains.len() <= f.original.trains.len());
    assert!(f.stats.accepted > 0, "shrinker made no progress");

    // The minimal repro is stable: text round-trip plus two replays
    // agree on the verdict.
    let text = f.shrunk.to_text();
    let reparsed = trim_workload::spec::ScenarioSpec::from_text(&text).unwrap();
    assert_eq!(reparsed, f.shrunk);
    let a = check_spec(&f.shrunk).unwrap();
    let b = check_spec(&reparsed).unwrap();
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.key().as_deref(), Some("monitor:queue-bound"));
}

#[test]
fn shrunk_repro_is_locally_minimal_in_fan_in() {
    // Dropping to half the senders (the shrinker's own first move) must
    // no longer reproduce — otherwise the shrinker stopped early.
    let report = run_fuzz(&FuzzConfig {
        iterations: 10,
        seed: 4,
        gen: GenConfig {
            fault_overadmit: true,
            saturate_every: 0,
            ..Default::default()
        },
        max_failures: 1,
        store: None,
        quiet: true,
    });
    let shrunk = &report.failures[0].shrunk;
    if shrunk.senders > 1 {
        let mut fewer = shrunk.clone();
        fewer.senders /= 2;
        fewer.trains.retain(|t| t.sender < fewer.senders);
        if !fewer.trains.is_empty() {
            let v = check_spec(&fewer).unwrap();
            assert_ne!(
                v.key().as_deref(),
                Some("monitor:queue-bound"),
                "half the fan-in still reproduces; shrinker should have taken it"
            );
        }
    }
}
