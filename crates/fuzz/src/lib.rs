//! # trim-fuzz — differential scenario fuzzer for the TCP-TRIM
//! reproduction
//!
//! Generates randomized many-to-one scenarios ([`gen`]) from a
//! serializable [`ScenarioSpec`], runs each under the full `trim-check`
//! monitor suite plus the post-run differential oracles ([`oracle`]),
//! and on failure shrinks the spec to a minimal repro ([`shrink`])
//! written to a replayable corpus through the harness
//! [`ResultStore`](trim_harness::ResultStore).
//!
//! Everything is deterministic: a `(seed, iteration)` pair names a
//! scenario, replaying a corpus `.spec` file re-runs it bit-for-bit,
//! and the shrinker's passes are a fixed ordered list. See
//! `EXPERIMENTS.md` ("Fuzzing & differential oracles") for the triage
//! workflow.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gen;
pub mod oracle;
pub mod shrink;

use netsim::monitor::Violation;
use trim_check::OracleFailure;
use trim_harness::ResultStore;
use trim_workload::spec::ScenarioSpec;

pub use gen::{gen_spec, GenConfig};
pub use shrink::{shrink, ShrinkStats};

/// The full judgment on one spec: monitor violations plus oracle
/// failures (either non-empty means the spec fails).
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Violations recorded by the attached invariant monitors.
    pub violations: Vec<Violation>,
    /// Failures reported by the differential oracles.
    pub oracle_failures: Vec<OracleFailure>,
}

impl Verdict {
    /// Whether anything went wrong.
    pub fn failed(&self) -> bool {
        !self.violations.is_empty() || !self.oracle_failures.is_empty()
    }

    /// A stable key naming the *first* problem — used as the shrink
    /// predicate so a spec never shrinks into a different bug, and as
    /// the corpus file name stem.
    pub fn key(&self) -> Option<String> {
        if let Some(v) = self.violations.first() {
            return Some(format!("monitor:{}", v.monitor));
        }
        self.oracle_failures
            .first()
            .map(|f| format!("oracle:{}", f.oracle))
    }

    /// One-line summary of the first problem.
    pub fn headline(&self) -> String {
        if let Some(v) = self.violations.first() {
            return v.to_string();
        }
        match self.oracle_failures.first() {
            Some(f) => f.to_string(),
            None => "clean".into(),
        }
    }
}

/// Runs `spec` under monitors + oracles. A spec the engine refuses to
/// run (invalid after a bad hand-edit) is reported as an `Err`.
pub fn check_spec(spec: &ScenarioSpec) -> Result<Verdict, String> {
    let outcome = spec.run()?;
    let oracle_failures = oracle::check_oracles(spec, &outcome);
    Ok(Verdict {
        violations: outcome.violations,
        oracle_failures,
    })
}

/// One failing fuzz case, before and after shrinking.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The iteration that produced it.
    pub iteration: u64,
    /// The spec as generated.
    pub original: ScenarioSpec,
    /// The minimal spec that still fails with the same [`Verdict::key`].
    pub shrunk: ScenarioSpec,
    /// The shrunk spec's verdict.
    pub verdict: Verdict,
    /// Shrinking effort.
    pub stats: ShrinkStats,
    /// Corpus path the shrunk spec was written to, when an output store
    /// was configured.
    pub artifact: Option<String>,
}

/// Fuzzer configuration.
#[derive(Debug)]
pub struct FuzzConfig {
    /// Number of `(seed, iteration)` scenarios to try.
    pub iterations: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Generator bounds.
    pub gen: GenConfig,
    /// Stop after this many failures (each one is shrunk, which costs
    /// many re-runs).
    pub max_failures: usize,
    /// Where to write shrunk repros (`fuzz/<key>_s<seed>_i<iter>.spec`),
    /// if anywhere.
    pub store: Option<ResultStore>,
    /// Suppress per-iteration progress on stderr.
    pub quiet: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iterations: 200,
            seed: 7,
            gen: GenConfig::default(),
            max_failures: 3,
            store: None,
            quiet: true,
        }
    }
}

/// What a fuzz campaign found.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Iterations actually run.
    pub iterations_run: u64,
    /// Every failure found (shrunk), in discovery order.
    pub failures: Vec<FuzzFailure>,
}

/// Runs the campaign: generate, judge, shrink, persist.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    for iteration in 0..cfg.iterations {
        report.iterations_run = iteration + 1;
        let spec = gen_spec(cfg.seed, iteration, &cfg.gen);
        let verdict = match check_spec(&spec) {
            Ok(v) => v,
            Err(e) => {
                // A generator bug, not a scenario bug: surface loudly.
                panic!("generated spec failed to run at iteration {iteration}: {e}");
            }
        };
        if !verdict.failed() {
            continue;
        }
        let key = verdict.key().expect("failed verdict has a key");
        if !cfg.quiet {
            eprintln!(
                "iteration {iteration}: FAIL [{key}] {} — shrinking...",
                verdict.headline()
            );
        }
        let (shrunk, stats) = shrink(&spec, |candidate| {
            check_spec(candidate)
                .map(|v| v.key().as_deref() == Some(key.as_str()))
                .unwrap_or(false)
        });
        let mut shrunk = shrunk;
        let verdict = check_spec(&shrunk).expect("shrunk spec must run");
        // Stamp the expected verdict into the spec so a committed corpus
        // file carries its own replay expectation (`expect = monitor:...`
        // / `oracle:...`) instead of the harness inferring one.
        shrunk.expect = verdict.key();
        let artifact = cfg.store.as_ref().map(|store| {
            let stem = key.replace(':', "_");
            let rel = format!("fuzz/{stem}_s{}_i{iteration}.spec", cfg.seed);
            let header = format!(
                "# shrunk repro: {}\n# found by trim-fuzz --seed {} (iteration {iteration}); \
                 shrink accepted {} / rejected {}\n",
                verdict.headline(),
                cfg.seed,
                stats.accepted,
                stats.rejected
            );
            store
                .write_text_artifact(&rel, &format!("{header}{}", shrunk.to_text()))
                .expect("corpus write");
            rel
        });
        report.failures.push(FuzzFailure {
            iteration,
            original: spec,
            shrunk,
            verdict,
            stats,
            artifact,
        });
        if report.failures.len() >= cfg.max_failures {
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_key_prefers_monitor_violations() {
        let v = Verdict {
            violations: vec![Violation {
                at: netsim::SimTime::from_nanos(5),
                monitor: "queue-bound",
                flow: None,
                detail: "x".into(),
            }],
            oracle_failures: vec![OracleFailure {
                oracle: "goodput-conservation",
                detail: "y".into(),
            }],
        };
        assert!(v.failed());
        assert_eq!(v.key().as_deref(), Some("monitor:queue-bound"));
        let clean = Verdict {
            violations: vec![],
            oracle_failures: vec![],
        };
        assert!(!clean.failed());
        assert_eq!(clean.key(), None);
        assert_eq!(clean.headline(), "clean");
    }
}
