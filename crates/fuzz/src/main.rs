//! `trim-fuzz` — the scenario fuzzer's command-line front end.
//!
//! Modes:
//!
//! - **fuzz** (default): `trim-fuzz --iterations 200 --seed 7` runs the
//!   campaign under monitors + oracles. Exit 0 when every scenario is
//!   clean; exit 1 with shrunk repros written to `<out>/fuzz/` when any
//!   fails.
//! - **detector self-test**: `--fault overadmit` injects the
//!   `inject_queue_overadmit` fault into every generated scenario; the
//!   fuzzer must re-find it (as a `queue-bound` violation) and shrink
//!   it. Exit 0 when found, exit 2 when the detector missed it.
//! - **replay**: `--replay <file-or-dir>` re-runs committed corpus
//!   specs: a spec with an `expect = monitor:<name>` / `oracle:<name>`
//!   line must reproduce exactly that verdict; lacking one, specs with
//!   a `fault` line must trip `queue-bound` and clean specs must stay
//!   clean. Exit 0/1.
//!
//! `--family burst|session|saturate|aqm` restricts generation to one
//! scenario family (default: the mixed schedule); `--stability`
//! additionally attaches the stability oracles (cwnd limit-cycle,
//! standing queue) to every generated scenario — the instability-hunting
//! mode, whose findings are often legitimate Reno sawtooths rather than
//! engine bugs, so it is not part of the clean-run CI gate.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use trim_fuzz::{check_spec, run_fuzz, FuzzConfig, GenConfig};
use trim_harness::ResultStore;
use trim_workload::spec::ScenarioSpec;

struct Options {
    iterations: u64,
    seed: u64,
    out: PathBuf,
    fault_overadmit: bool,
    family: Option<String>,
    stability: bool,
    replay: Option<PathBuf>,
    max_failures: usize,
    quiet: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            iterations: 200,
            seed: 7,
            out: PathBuf::from("results"),
            fault_overadmit: false,
            family: None,
            stability: false,
            replay: None,
            max_failures: 3,
            quiet: false,
        }
    }
}

const USAGE: &str = "usage: trim-fuzz [--iterations N] [--seed S] [--out DIR] \
                     [--fault overadmit] [--family burst|session|saturate|aqm] [--stability] \
                     [--replay FILE|DIR] [--max-failures M] [--quiet]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--iterations" => {
                opts.iterations = value("--iterations")?
                    .parse()
                    .map_err(|e| format!("--iterations: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => opts.out = PathBuf::from(value("--out")?),
            "--fault" => match value("--fault")?.as_str() {
                "overadmit" => opts.fault_overadmit = true,
                other => return Err(format!("unknown fault `{other}` (want: overadmit)")),
            },
            "--family" => {
                let family = value("--family")?;
                match family.as_str() {
                    "burst" | "session" | "saturate" | "aqm" => opts.family = Some(family),
                    other => {
                        return Err(format!(
                            "unknown family `{other}` (want: burst, session, saturate, aqm)"
                        ))
                    }
                }
            }
            "--stability" => opts.stability = true,
            "--replay" => opts.replay = Some(PathBuf::from(value("--replay")?)),
            "--max-failures" => {
                opts.max_failures = value("--max-failures")?
                    .parse()
                    .map_err(|e| format!("--max-failures: {e}"))?
            }
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    // Replay and fuzzing must observe the same invariants in release
    // builds as in debug: force the monitor suite on for scenarios built
    // through ScenarioBuilder as well (ScenarioSpec::run forces its own).
    std::env::set_var("TRIM_CHECK_MONITORS", "1");
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("trim-fuzz: {e}");
            return ExitCode::from(64);
        }
    };
    if let Some(path) = &opts.replay {
        return replay(path, opts.quiet);
    }
    fuzz(&opts)
}

fn fuzz(opts: &Options) -> ExitCode {
    let mut gen = GenConfig {
        fault_overadmit: opts.fault_overadmit,
        stability: opts.stability,
        ..GenConfig::default()
    };
    if opts.fault_overadmit {
        // The detector self-test only makes sense on burst specs.
        gen.saturate_every = 0;
        gen.session_every = 0;
        gen.aqm_every = 0;
    }
    match opts.family.as_deref() {
        None => {}
        Some("burst") => (gen.saturate_every, gen.session_every, gen.aqm_every) = (0, 0, 0),
        Some("session") => (gen.saturate_every, gen.session_every, gen.aqm_every) = (0, 1, 0),
        Some("saturate") => (gen.saturate_every, gen.session_every, gen.aqm_every) = (1, 0, 0),
        Some("aqm") => (gen.saturate_every, gen.session_every, gen.aqm_every) = (0, 0, 1),
        Some(_) => unreachable!("families validated at parse time"),
    }
    let cfg = FuzzConfig {
        iterations: opts.iterations,
        seed: opts.seed,
        gen,
        max_failures: if opts.fault_overadmit {
            1
        } else {
            opts.max_failures
        },
        store: Some(ResultStore::new(&opts.out)),
        quiet: opts.quiet,
    };
    let report = run_fuzz(&cfg);
    println!(
        "trim-fuzz: {} iteration(s), {} failure(s) (seed {})",
        report.iterations_run,
        report.failures.len(),
        opts.seed
    );
    for f in &report.failures {
        println!(
            "  iteration {}: {} — shrunk {} -> {} sender(s), {} -> {} train(s){}",
            f.iteration,
            f.verdict.headline(),
            f.original.senders,
            f.shrunk.senders,
            f.original.trains.len(),
            f.shrunk.trains.len(),
            match &f.artifact {
                Some(rel) => format!(", repro: {}/{rel}", opts.out.display()),
                None => String::new(),
            }
        );
    }
    if opts.fault_overadmit {
        let found = report
            .failures
            .iter()
            .any(|f| f.verdict.key().as_deref() == Some("monitor:queue-bound"));
        if found {
            println!("trim-fuzz: injected over-admission re-found and shrunk");
            ExitCode::SUCCESS
        } else {
            eprintln!("trim-fuzz: detector self-test FAILED: fault never caught");
            ExitCode::from(2)
        }
    } else if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn replay(path: &Path, quiet: bool) -> ExitCode {
    let mut files: Vec<PathBuf> = if path.is_dir() {
        match std::fs::read_dir(path) {
            Ok(rd) => rd
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "spec"))
                .collect(),
            Err(e) => {
                eprintln!("trim-fuzz: cannot read {}: {e}", path.display());
                return ExitCode::from(66);
            }
        }
    } else {
        vec![path.to_path_buf()]
    };
    files.sort();
    if files.is_empty() {
        eprintln!("trim-fuzz: no .spec files under {}", path.display());
        return ExitCode::from(66);
    }
    let mut bad = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trim-fuzz: {}: {e}", file.display());
                bad += 1;
                continue;
            }
        };
        let outcome = ScenarioSpec::from_text(&text).and_then(|spec| {
            let verdict = check_spec(&spec)?;
            Ok((spec, verdict))
        });
        let (spec, verdict) = match outcome {
            Ok(x) => x,
            Err(e) => {
                eprintln!("trim-fuzz: {}: {e}", file.display());
                bad += 1;
                continue;
            }
        };
        // A spec carrying an `expect` line must reproduce exactly that
        // verdict. Lacking one, an injected fault is a regression repro
        // that must trip `queue-bound`, and a clean spec must stay clean.
        let expected: Option<String> = spec
            .expect
            .clone()
            .or_else(|| spec.fault.map(|_| "monitor:queue-bound".to_string()));
        let ok = match &expected {
            Some(key) => verdict.key().as_deref() == Some(key.as_str()),
            None => !verdict.failed(),
        };
        if ok {
            if !quiet {
                println!("replay ok: {} ({})", file.display(), verdict.headline());
            }
        } else {
            eprintln!(
                "replay FAILED: {} — expected {}, got: {}",
                file.display(),
                match &expected {
                    Some(key) => format!("`{key}`"),
                    None => "a clean run".to_string(),
                },
                verdict.headline()
            );
            bad += 1;
        }
    }
    println!(
        "trim-fuzz: replayed {} spec(s), {} problem(s)",
        files.len(),
        bad
    );
    if bad == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
