//! Greedy structural shrinking of failing scenario specs.
//!
//! Unlike a generic integer shrinker (see the compat `proptest` shim,
//! which deliberately ships none), this shrinker is domain-aware: each
//! pass proposes a *valid* simpler spec — halve the fan-in, drop trains
//! and sessions, shorten response sequences, shorten the horizon, align
//! start jitter, round parameters toward the paper's defaults — and
//! keeps it only if the failure predicate still holds. Validity floors
//! (at least one sender, one train or session, one segment, one
//! response) mean shrinking terminates on a minimal reproducible
//! scenario, never on a degenerate all-zeros spec.
//!
//! Termination: every accepted candidate strictly shrinks a bounded
//! quantity (sender count, train count, session count, response count,
//! byte totals, think times, horizon, jitter sum, fault magnitude) or
//! is an idempotent rounding no later pass undoes, so the pass loop
//! reaches a fixpoint; a hard cap on accepted steps backstops the
//! argument.

use trim_workload::spec::{
    ScenarioSpec, SpecAqm, SpecFault, SpecSession, SpecTrain, SPEC_MSS_BYTES,
};

/// How a shrink run went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Candidates accepted (each one re-ran the scenario and still
    /// failed).
    pub accepted: usize,
    /// Candidates rejected (ran but no longer failed).
    pub rejected: usize,
}

/// Hard cap on accepted shrink steps; reaching it would indicate a
/// non-terminating pass, so shrinking stops there regardless.
const MAX_ACCEPTED: usize = 1_000;

/// Shrinks `spec` while `still_fails` keeps returning `true` for the
/// candidate, returning the smallest failing spec found and the
/// accept/reject counts. `still_fails` is only called with valid specs.
pub fn shrink(
    spec: &ScenarioSpec,
    mut still_fails: impl FnMut(&ScenarioSpec) -> bool,
) -> (ScenarioSpec, ShrinkStats) {
    let mut best = spec.clone();
    let mut stats = ShrinkStats::default();
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            debug_assert!(candidate.validate().is_ok());
            if candidate == best {
                continue;
            }
            if still_fails(&candidate) {
                best = candidate;
                stats.accepted += 1;
                improved = true;
                if stats.accepted >= MAX_ACCEPTED {
                    return (best, stats);
                }
                // Restart the pass list: earlier, coarser passes may
                // apply again to the smaller spec.
                break;
            }
            stats.rejected += 1;
        }
        if !improved {
            return (best, stats);
        }
    }
}

/// The ordered shrink candidates for `spec`, coarsest first. Every
/// returned spec is valid; candidates equal to `spec` are filtered by
/// the caller.
fn candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();

    // 1. Halve the fan-in: keep the first half of the senders and their
    //    trains.
    if spec.senders > 1 {
        out.extend(keep_senders(spec, spec.senders / 2));
        // 2. Then inch down one sender at a time, so the minimum isn't
        //    limited to powers of two.
        out.extend(keep_senders(spec, spec.senders - 1));
    }

    // 3. Compact away senders with no trains: hosts are symmetric, so
    //    renumbering the used senders down to 0..n preserves behavior.
    out.extend(compact_senders(spec));

    // 4. Drop the second half of the trains, then individual trains.
    if !spec.trains.is_empty() {
        out.extend(without_trains(
            spec,
            spec.trains.len() / 2..spec.trains.len(),
        ));
        for i in (0..spec.trains.len()).rev() {
            out.extend(without_trains(spec, i..i + 1));
        }
    }

    // 5. Drop the second half of the sessions, then individual sessions.
    if !spec.sessions.is_empty() {
        out.extend(without_sessions(
            spec,
            spec.sessions.len() / 2..spec.sessions.len(),
        ));
        for i in (0..spec.sessions.len()).rev() {
            out.extend(without_sessions(spec, i..i + 1));
        }
    }

    // 6. Shorten response sequences: keep the first half of every
    //    session's sizes (floor: one response).
    if spec.sessions.iter().any(|s| s.sizes.len() > 1) {
        let mut s = spec.clone();
        for sess in &mut s.sessions {
            sess.sizes.truncate((sess.sizes.len() / 2).max(1));
        }
        out.push(s);
    }

    // 7. Shorten the horizon (floor: past the last train/session start).
    if spec.horizon_ms > 1 {
        let mut s = spec.clone();
        let last_start_ms = spec
            .trains
            .iter()
            .map(|t| t.at_us)
            .chain(spec.sessions.iter().map(|sess| sess.at_us))
            .max()
            .unwrap_or(0)
            / 1_000;
        s.horizon_ms = (spec.horizon_ms / 2).max(last_start_ms + 1);
        out.push(s);
    }

    // 8. Halve train and response sizes, rounded to whole segments
    //    (floor: one MSS).
    let halve = |b: u64| ((b / 2).div_ceil(SPEC_MSS_BYTES) * SPEC_MSS_BYTES).max(SPEC_MSS_BYTES);
    if spec.trains.iter().any(|t| t.bytes > SPEC_MSS_BYTES)
        || spec
            .sessions
            .iter()
            .any(|s| s.sizes.iter().any(|&b| b > SPEC_MSS_BYTES))
    {
        let mut s = spec.clone();
        for t in &mut s.trains {
            t.bytes = halve(t.bytes);
        }
        for sess in &mut s.sessions {
            for b in &mut sess.sizes {
                *b = halve(*b);
            }
        }
        out.push(s);
    }

    // 9. Halve think times (floor: zero — back-to-back responses).
    if spec.sessions.iter().any(|s| s.think_us > 0) {
        let mut s = spec.clone();
        for sess in &mut s.sessions {
            sess.think_us /= 2;
        }
        out.push(s);
    }

    // 10. Remove start jitter: align every train and session to the
    //     earliest start.
    let min_at = spec
        .trains
        .iter()
        .map(|t| t.at_us)
        .chain(spec.sessions.iter().map(|s| s.at_us))
        .min()
        .unwrap_or(0);
    if spec.trains.iter().any(|t| t.at_us != min_at)
        || spec.sessions.iter().any(|s| s.at_us != min_at)
    {
        let mut s = spec.clone();
        for t in &mut s.trains {
            t.at_us = min_at;
        }
        for sess in &mut s.sessions {
            sess.at_us = min_at;
        }
        out.push(s);
    }

    // 11. Round link parameters toward the paper's defaults (idempotent).
    for f in [
        |s: &mut ScenarioSpec| s.delay_us = 50,
        |s: &mut ScenarioSpec| s.link_mbps = 1000,
        |s: &mut ScenarioSpec| s.min_rto_us = 200_000,
    ] {
        let mut s = spec.clone();
        f(&mut s);
        out.push(s);
    }

    // 12. Canonicalize AQM parameters toward the defaults (idempotent
    //     roundings, like pass 11). The discipline itself is never
    //     shrunk to drop-tail: an AQM repro must stay an AQM repro, and
    //     removing the discipline would usually erase the failure.
    if let SpecAqm::Red {
        min_th,
        max_th,
        max_p_milli,
        wq_micro,
        ecn,
    } = spec.aqm
    {
        for aqm in [
            SpecAqm::Red {
                min_th,
                max_th,
                max_p_milli: 100,
                wq_micro,
                ecn,
            },
            SpecAqm::Red {
                min_th,
                max_th,
                max_p_milli,
                wq_micro: 2_000,
                ecn,
            },
            SpecAqm::Red {
                min_th,
                max_th,
                max_p_milli,
                wq_micro,
                ecn: false,
            },
        ] {
            let mut s = spec.clone();
            s.aqm = aqm;
            out.push(s);
        }
    }
    if let SpecAqm::Codel {
        target_us,
        interval_us,
        ecn,
    } = spec.aqm
    {
        for aqm in [
            SpecAqm::Codel {
                target_us: 50,
                interval_us: interval_us.max(50),
                ecn,
            },
            SpecAqm::Codel {
                target_us,
                interval_us: target_us.saturating_mul(20),
                ecn,
            },
            SpecAqm::Codel {
                target_us,
                interval_us,
                ecn: false,
            },
        ] {
            let mut s = spec.clone();
            s.aqm = aqm;
            out.push(s);
        }
    }

    // 13. Weaken the fault to the smallest over-admission.
    if let Some(SpecFault::QueueOveradmit { extra }) = spec.fault {
        if extra > 1 {
            let mut s = spec.clone();
            s.fault = Some(SpecFault::QueueOveradmit { extra: 1 });
            out.push(s);
        }
    }

    out.retain(|s| s.validate().is_ok());
    out
}

/// `spec` restricted to its first `keep` senders, or `None` if that
/// leaves no workload at all.
fn keep_senders(spec: &ScenarioSpec, keep: usize) -> Option<ScenarioSpec> {
    let keep = keep.max(1);
    let trains: Vec<SpecTrain> = spec
        .trains
        .iter()
        .filter(|t| t.sender < keep)
        .copied()
        .collect();
    let sessions: Vec<SpecSession> = spec
        .sessions
        .iter()
        .filter(|s| s.sender < keep)
        .cloned()
        .collect();
    if trains.is_empty() && sessions.is_empty() {
        return None;
    }
    let mut s = spec.clone();
    s.senders = keep;
    s.trains = trains;
    s.sessions = sessions;
    Some(s)
}

/// `spec` with unused sender slots removed and the workload renumbered
/// onto `0..n_used`, or `None` when every sender already has a train or
/// session.
fn compact_senders(spec: &ScenarioSpec) -> Option<ScenarioSpec> {
    let mut used: Vec<usize> = spec
        .trains
        .iter()
        .map(|t| t.sender)
        .chain(spec.sessions.iter().map(|s| s.sender))
        .collect();
    used.sort_unstable();
    used.dedup();
    if used.len() == spec.senders {
        return None;
    }
    let mut s = spec.clone();
    s.senders = used.len();
    for t in &mut s.trains {
        t.sender = used.binary_search(&t.sender).expect("sender is used");
    }
    for sess in &mut s.sessions {
        sess.sender = used.binary_search(&sess.sender).expect("sender is used");
    }
    Some(s)
}

/// `spec` without the trains at `range`, or `None` if that leaves no
/// workload at all.
fn without_trains(spec: &ScenarioSpec, range: std::ops::Range<usize>) -> Option<ScenarioSpec> {
    if range.len() >= spec.trains.len() && spec.sessions.is_empty() {
        return None;
    }
    let mut s = spec.clone();
    s.trains = spec
        .trains
        .iter()
        .enumerate()
        .filter(|(i, _)| !range.contains(i))
        .map(|(_, t)| *t)
        .collect();
    Some(s)
}

/// `spec` without the sessions at `range`, or `None` if that leaves no
/// workload at all.
fn without_sessions(spec: &ScenarioSpec, range: std::ops::Range<usize>) -> Option<ScenarioSpec> {
    if range.len() >= spec.sessions.len() && spec.trains.is_empty() {
        return None;
    }
    let mut s = spec.clone();
    s.sessions = spec
        .sessions
        .iter()
        .enumerate()
        .filter(|(i, _)| !range.contains(i))
        .map(|(_, sess)| sess.clone())
        .collect();
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trim_workload::spec::SpecCc;

    fn big_spec() -> ScenarioSpec {
        ScenarioSpec {
            seed: 1,
            senders: 16,
            link_mbps: 2000,
            delay_us: 100,
            buffer_pkts: 64,
            cc: SpecCc::Reno,
            min_rto_us: 50_000,
            horizon_ms: 800,
            fault: Some(SpecFault::QueueOveradmit { extra: 5 }),
            aqm: SpecAqm::DropTail,
            stability: false,
            expect: None,
            trains: (0..16)
                .flat_map(|sender| {
                    (0..2).map(move |j| SpecTrain {
                        sender,
                        at_us: 100 * (sender as u64) + j,
                        bytes: 29_200,
                    })
                })
                .collect(),
            sessions: Vec::new(),
        }
    }

    fn session_spec() -> ScenarioSpec {
        ScenarioSpec {
            senders: 8,
            trains: (4..8)
                .map(|sender| SpecTrain {
                    sender,
                    at_us: 500,
                    bytes: 29_200,
                })
                .collect(),
            sessions: (0..4)
                .map(|sender| SpecSession {
                    sender,
                    at_us: 100 * sender as u64,
                    think_us: 8_000,
                    sizes: vec![29_200, 14_600, 43_800, 2_920],
                })
                .collect(),
            ..big_spec()
        }
    }

    #[test]
    fn shrinks_to_the_predicate_floor_not_to_a_degenerate_spec() {
        // "Fails" whenever at least 3 senders have trains: the minimal
        // failing spec has exactly 3 senders — not 0.
        let (small, stats) = shrink(&big_spec(), |s| s.senders >= 3);
        small.validate().unwrap();
        assert_eq!(small.senders, 3);
        assert!(!small.trains.is_empty());
        assert!(stats.accepted > 0);
        assert!(stats.rejected > 0);
    }

    #[test]
    fn shrinking_canonicalizes_parameters_and_fault() {
        let (small, _) = shrink(&big_spec(), |_| true);
        // Everything shrinkable reaches its floor when the predicate
        // always holds.
        assert_eq!(small.senders, 1);
        assert_eq!(small.trains.len(), 1);
        assert_eq!(small.trains[0].bytes, SPEC_MSS_BYTES);
        assert_eq!(small.delay_us, 50);
        assert_eq!(small.link_mbps, 1000);
        assert_eq!(small.min_rto_us, 200_000);
        assert_eq!(small.fault, Some(SpecFault::QueueOveradmit { extra: 1 }));
        assert_eq!(small.trains[0].at_us, 0);
        assert_eq!(small.horizon_ms, 1);
    }

    #[test]
    fn session_specs_shrink_to_their_own_floor() {
        // Everything shrinkable reaches its floor: the trains go first
        // (sessions can carry a spec alone), then one session with one
        // MSS-sized response, zero think, zero start.
        let (small, _) = shrink(&session_spec(), |_| true);
        small.validate().unwrap();
        assert!(small.trains.is_empty());
        assert_eq!(small.senders, 1);
        assert_eq!(small.sessions.len(), 1);
        assert_eq!(small.sessions[0].sizes, vec![SPEC_MSS_BYTES]);
        assert_eq!(small.sessions[0].think_us, 0);
        assert_eq!(small.sessions[0].at_us, 0);
    }

    #[test]
    fn shrinking_preserves_a_session_predicate() {
        // "Fails" while some session still has >= 2 responses: the
        // minimum keeps exactly one such session.
        let (small, stats) = shrink(&session_spec(), |s| {
            s.sessions.iter().any(|sess| sess.sizes.len() >= 2)
        });
        small.validate().unwrap();
        assert_eq!(small.sessions.len(), 1);
        assert_eq!(small.sessions[0].sizes.len(), 2);
        assert!(stats.accepted > 0);
    }

    #[test]
    fn aqm_parameters_canonicalize_but_the_discipline_survives() {
        let mut spec = big_spec();
        spec.aqm = SpecAqm::Red {
            min_th: 3,
            max_th: 17,
            max_p_milli: 730,
            wq_micro: 123_456,
            ecn: true,
        };
        let (small, _) = shrink(&spec, |_| true);
        assert_eq!(
            small.aqm,
            SpecAqm::Red {
                min_th: 3,
                max_th: 17,
                max_p_milli: 100,
                wq_micro: 2_000,
                ecn: false,
            },
            "parameters round to defaults without losing the discipline"
        );
        let mut spec = big_spec();
        spec.aqm = SpecAqm::Codel {
            target_us: 37,
            interval_us: 9_999,
            ecn: true,
        };
        let (small, _) = shrink(&spec, |_| true);
        assert_eq!(
            small.aqm,
            SpecAqm::Codel {
                target_us: 50,
                interval_us: 1_000,
                ecn: false,
            }
        );
    }

    #[test]
    fn shrink_never_proposes_invalid_specs_and_terminates() {
        let mut calls = 0usize;
        let (small, stats) = shrink(&big_spec(), |s| {
            calls += 1;
            s.validate().unwrap();
            s.trains.len() >= 4
        });
        assert_eq!(small.trains.len(), 4);
        assert!(calls < 10_000);
        assert_eq!(calls, stats.accepted + stats.rejected);
    }

    #[test]
    fn unshrinkable_failure_returns_the_original() {
        let spec = ScenarioSpec {
            senders: 1,
            trains: vec![SpecTrain {
                sender: 0,
                at_us: 0,
                bytes: SPEC_MSS_BYTES,
            }],
            delay_us: 50,
            link_mbps: 1000,
            min_rto_us: 200_000,
            horizon_ms: 1,
            fault: None,
            ..big_spec()
        };
        let (small, stats) = shrink(&spec, |_| true);
        assert_eq!(small, spec);
        assert_eq!(stats.accepted, 0);
    }
}
