//! Seed-driven scenario generation.
//!
//! Every spec is a pure function of `(seed, iteration)` — the fuzzer is
//! fully deterministic, so a failure report of the form "seed 7,
//! iteration 132" is already a repro even before shrinking.
//!
//! Three families are generated:
//!
//! - **burst** (the default): randomized fan-in, link rate, delay,
//!   buffer, congestion control (Reno / TRIM-guideline / TRIM with a
//!   random `K` override), per-sender packet trains with start jitter.
//!   Exercises the monitor suite and the goodput-conservation oracle.
//! - **saturation** (every [`GenConfig::saturate_every`]-th iteration):
//!   TRIM with the Eq. 4 guideline `K` under persistent offered load
//!   well above the bottleneck capacity — the precondition of the
//!   full-utilization oracle.
//! - **session** (every [`GenConfig::session_every`]-th iteration,
//!   saturation taking precedence on a collision): persistent-HTTP
//!   sessions — per-sender response sequences with think times —
//!   exercising the request/response lifecycle, the think-time
//!   scheduler, and the session-aware goodput accounting.
//! - **aqm** (every [`GenConfig::aqm_every`]-th iteration, saturation
//!   and session taking precedence): RED or CoDel on every queue with
//!   randomized integer-quantized parameters over small buffers,
//!   exercising early-drop, ECN-marking, and sojourn-drop paths under
//!   the full monitor suite.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use trim_workload::spec::{
    ScenarioSpec, SpecAqm, SpecCc, SpecFault, SpecSession, SpecTrain, SPEC_MSS_BYTES,
};

/// Knobs bounding the generated scenario space. The defaults suit the
/// release-mode CI smoke run; debug-mode tests pass smaller budgets.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Upper bound on fan-in.
    pub max_senders: usize,
    /// Aggregate offered-load cap for burst specs, in bytes.
    pub max_total_bytes: u64,
    /// Generate a saturation spec every Nth iteration (0 = never).
    pub saturate_every: u64,
    /// Generate a session spec every Nth iteration (0 = never);
    /// saturation wins when an iteration matches both.
    pub session_every: u64,
    /// Generate an AQM (RED/CoDel) spec every Nth iteration (0 =
    /// never); saturation and session both win on a collision.
    pub aqm_every: u64,
    /// Attach a queue over-admission fault to every burst spec (the
    /// detector self-test mode).
    pub fault_overadmit: bool,
    /// Attach the stability oracles (cwnd limit-cycle, standing queue)
    /// to every generated scenario — the instability-hunting mode.
    pub stability: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_senders: 16,
            max_total_bytes: 600_000,
            saturate_every: 4,
            session_every: 5,
            aqm_every: 3,
            fault_overadmit: false,
            stability: false,
        }
    }
}

/// Derives the per-iteration RNG seed from the campaign seed.
fn iteration_seed(seed: u64, iteration: u64) -> u64 {
    // SplitMix64-style mix so neighbouring iterations decorrelate.
    let mut z = seed ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick<T: Copy>(rng: &mut StdRng, choices: &[T]) -> T {
    choices[rng.random_range(0..choices.len() as u64) as usize]
}

/// Generates the spec for `(seed, iteration)` under `cfg`.
pub fn gen_spec(seed: u64, iteration: u64, cfg: &GenConfig) -> ScenarioSpec {
    let mut rng = StdRng::seed_from_u64(iteration_seed(seed, iteration));
    let saturate =
        cfg.saturate_every != 0 && iteration % cfg.saturate_every == cfg.saturate_every - 1;
    let session = cfg.session_every != 0 && iteration % cfg.session_every == cfg.session_every - 1;
    let aqm = cfg.aqm_every != 0 && iteration % cfg.aqm_every == cfg.aqm_every - 1;
    let mut spec = if saturate {
        gen_saturation(&mut rng, seed, cfg)
    } else if session {
        gen_session(&mut rng, seed, cfg)
    } else if aqm {
        gen_aqm(&mut rng, seed, cfg)
    } else {
        gen_burst(&mut rng, seed, cfg)
    };
    spec.stability = cfg.stability;
    debug_assert!(spec.validate().is_ok(), "generator produced invalid spec");
    spec
}

fn gen_burst(rng: &mut StdRng, seed: u64, cfg: &GenConfig) -> ScenarioSpec {
    let senders = rng.random_range(1..=cfg.max_senders.max(1) as u64) as usize;
    let link_mbps = pick(rng, &[100, 200, 500, 1000, 2000, 10000]);
    let delay_us = pick(rng, &[10, 25, 50, 100, 250]);
    let buffer_pkts = rng.random_range(4..=200) as usize;
    let base_rtt_ns = 4 * delay_us * 1_000;
    let cc = match rng.random_range(0..3u64) {
        0 => SpecCc::Reno,
        1 => SpecCc::TrimGuideline,
        _ => SpecCc::TrimOverrideNs(rng.random_range(base_rtt_ns..=10 * base_rtt_ns)),
    };
    let min_rto_us = pick(rng, &[10_000, 50_000, 200_000]);
    let horizon_ms = rng.random_range(200..=1000);
    let fault = cfg.fault_overadmit.then(|| SpecFault::QueueOveradmit {
        extra: rng.random_range(1..=6),
    });

    let mut trains = Vec::new();
    let mut budget = cfg.max_total_bytes;
    'outer: for sender in 0..senders {
        for _ in 0..rng.random_range(1..=3u64) {
            if budget < SPEC_MSS_BYTES {
                break 'outer;
            }
            let bytes = rng
                .random_range(SPEC_MSS_BYTES..=40 * SPEC_MSS_BYTES)
                .min(budget);
            budget -= bytes;
            trains.push(SpecTrain {
                sender,
                // Start jitter within the first tenth of the horizon, so
                // every train has time to complete or at least run.
                at_us: rng.random_range(0..=horizon_ms * 100),
                bytes,
            });
        }
    }
    if trains.is_empty() {
        trains.push(SpecTrain {
            sender: 0,
            at_us: 0,
            bytes: SPEC_MSS_BYTES,
        });
    }

    ScenarioSpec {
        seed,
        senders,
        link_mbps,
        delay_us,
        buffer_pkts,
        cc,
        min_rto_us,
        horizon_ms,
        fault,
        aqm: SpecAqm::DropTail,
        stability: false,
        expect: None,
        trains,
        sessions: Vec::new(),
    }
}

/// Persistent-HTTP sessions: every sender serves one response sequence
/// with think times, under a randomized link and congestion control.
fn gen_session(rng: &mut StdRng, seed: u64, cfg: &GenConfig) -> ScenarioSpec {
    let senders = rng.random_range(1..=cfg.max_senders.clamp(1, 8) as u64) as usize;
    let link_mbps = pick(rng, &[100, 500, 1000, 2000]);
    let delay_us = pick(rng, &[25, 50, 100]);
    let buffer_pkts = rng.random_range(16..=200) as usize;
    let base_rtt_ns = 4 * delay_us * 1_000;
    let cc = match rng.random_range(0..3u64) {
        0 => SpecCc::Reno,
        1 => SpecCc::TrimGuideline,
        _ => SpecCc::TrimOverrideNs(rng.random_range(base_rtt_ns..=10 * base_rtt_ns)),
    };
    let horizon_ms = rng.random_range(300..=1000);
    let mut sessions = Vec::with_capacity(senders);
    let mut budget = cfg.max_total_bytes;
    for sender in 0..senders {
        if budget < SPEC_MSS_BYTES {
            break;
        }
        let mut sizes = Vec::new();
        for _ in 0..rng.random_range(1..=4u64) {
            if budget < SPEC_MSS_BYTES {
                break;
            }
            let bytes = rng
                .random_range(SPEC_MSS_BYTES..=20 * SPEC_MSS_BYTES)
                .min(budget);
            budget -= bytes;
            sizes.push(bytes);
        }
        if sizes.is_empty() {
            break;
        }
        sessions.push(SpecSession {
            sender,
            // Start within the first tenth of the horizon so every
            // session has time to make progress.
            at_us: rng.random_range(0..=horizon_ms * 100),
            think_us: rng.random_range(0..=20_000),
            sizes,
        });
    }
    if sessions.is_empty() {
        sessions.push(SpecSession {
            sender: 0,
            at_us: 0,
            think_us: 1_000,
            sizes: vec![SPEC_MSS_BYTES],
        });
    }
    ScenarioSpec {
        seed,
        senders,
        link_mbps,
        delay_us,
        buffer_pkts,
        cc,
        min_rto_us: pick(rng, &[10_000, 50_000, 200_000]),
        horizon_ms,
        fault: None,
        aqm: SpecAqm::DropTail,
        stability: false,
        expect: None,
        trains: Vec::new(),
        sessions,
    }
}

/// AQM bottlenecks: RED or CoDel with randomized integer-quantized
/// parameters over small buffers, under persistent synchronized trains
/// that keep the queue busy enough to exercise early drops, CE marks,
/// and sojourn-time drops.
fn gen_aqm(rng: &mut StdRng, seed: u64, cfg: &GenConfig) -> ScenarioSpec {
    let senders = rng.random_range(2..=12.min(cfg.max_senders.max(2) as u64)) as usize;
    let link_mbps: u64 = pick(rng, &[100, 1000]);
    let delay_us: u64 = pick(rng, &[50, 100, 250]);
    let buffer_pkts = rng.random_range(8..=64) as usize;
    let aqm = if rng.random_range(0..2u64) == 0 {
        let min_th = rng.random_range(1..=buffer_pkts as u64 / 2).max(1) as u32;
        let band = rng.random_range(1..=buffer_pkts as u64) as u32;
        SpecAqm::Red {
            min_th,
            max_th: min_th + band,
            max_p_milli: pick(rng, &[20, 100, 200, 500, 1000]),
            wq_micro: pick(rng, &[2_000, 10_000, 50_000, 200_000]),
            ecn: rng.random_range(0..4u64) == 0,
        }
    } else {
        let target_us = pick(rng, &[20, 50, 100, 500]);
        SpecAqm::Codel {
            target_us,
            interval_us: target_us * pick(rng, &[4, 10, 20]),
            ecn: rng.random_range(0..4u64) == 0,
        }
    };
    let base_rtt_ns = 4 * delay_us * 1_000;
    let cc = match rng.random_range(0..3u64) {
        0 => SpecCc::Reno,
        1 => SpecCc::TrimGuideline,
        _ => SpecCc::TrimOverrideNs(rng.random_range(base_rtt_ns..=10 * base_rtt_ns)),
    };
    let horizon_ms: u64 = rng.random_range(200..=600);
    // Persistent load: offer ~1.5x the bottleneck capacity over the
    // horizon so the AQM sees a standing queue worth regulating.
    let capacity_bytes = link_mbps * 125 * horizon_ms;
    let per_sender = (3 * capacity_bytes / (2 * senders as u64))
        .div_ceil(SPEC_MSS_BYTES)
        .max(1)
        * SPEC_MSS_BYTES;
    let trains = (0..senders)
        .map(|sender| SpecTrain {
            sender,
            at_us: rng.random_range(0..=200),
            bytes: per_sender,
        })
        .collect();
    ScenarioSpec {
        seed,
        senders,
        link_mbps,
        delay_us,
        buffer_pkts,
        cc,
        min_rto_us: pick(rng, &[10_000, 50_000, 200_000]),
        horizon_ms,
        fault: None,
        aqm,
        stability: false,
        expect: None,
        trains,
        sessions: Vec::new(),
    }
}

fn gen_saturation(rng: &mut StdRng, seed: u64, cfg: &GenConfig) -> ScenarioSpec {
    let senders = rng.random_range(2..=6.min(cfg.max_senders.max(2) as u64)) as usize;
    let link_mbps: u64 = pick(rng, &[100, 500, 1000]);
    let delay_us: u64 = pick(rng, &[25, 50]);
    let horizon_ms: u64 = rng.random_range(100..=250);
    // Offer twice what the bottleneck can carry over the horizon, split
    // evenly, so every sender still has data queued when the run ends.
    let capacity_bytes = link_mbps * 125 * horizon_ms; // Mbit/s -> bytes/ms
    let per_sender = (2 * capacity_bytes / senders as u64)
        .div_ceil(SPEC_MSS_BYTES)
        .max(1)
        * SPEC_MSS_BYTES;
    let trains = (0..senders)
        .map(|sender| SpecTrain {
            sender,
            at_us: rng.random_range(0..=100),
            bytes: per_sender,
        })
        .collect();
    ScenarioSpec {
        seed,
        senders,
        link_mbps,
        delay_us,
        buffer_pkts: rng.random_range(100..=200) as usize,
        cc: SpecCc::TrimGuideline,
        min_rto_us: 200_000,
        horizon_ms,
        fault: None,
        aqm: SpecAqm::DropTail,
        stability: false,
        expect: None,
        trains,
        sessions: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        let cfg = GenConfig::default();
        for i in 0..50 {
            let a = gen_spec(7, i, &cfg);
            let b = gen_spec(7, i, &cfg);
            assert_eq!(a, b, "iteration {i} not deterministic");
            assert_eq!(a.to_text(), b.to_text());
            a.validate().unwrap();
        }
    }

    #[test]
    fn different_seeds_or_iterations_diverge() {
        let cfg = GenConfig::default();
        let a = gen_spec(7, 0, &cfg);
        assert_ne!(a, gen_spec(8, 0, &cfg));
        assert_ne!(a, gen_spec(7, 1, &cfg));
    }

    #[test]
    fn saturation_family_offers_more_than_the_link_carries() {
        let cfg = GenConfig {
            saturate_every: 1,
            ..Default::default()
        };
        for i in 0..10 {
            let spec = gen_spec(42, i, &cfg);
            assert_eq!(spec.cc, SpecCc::TrimGuideline);
            let offered: u64 = (0..spec.senders)
                .map(|s| spec.offered_padded_bytes(s))
                .sum();
            let carriable = spec.link_mbps * 125 * spec.horizon_ms;
            assert!(offered >= 2 * carriable, "iteration {i} not saturating");
        }
    }

    #[test]
    fn fault_mode_attaches_the_overadmit_fault_to_burst_specs() {
        let cfg = GenConfig {
            fault_overadmit: true,
            saturate_every: 0,
            session_every: 0,
            aqm_every: 0,
            ..Default::default()
        };
        for i in 0..10 {
            let spec = gen_spec(3, i, &cfg);
            assert!(matches!(
                spec.fault,
                Some(SpecFault::QueueOveradmit { extra }) if extra >= 1
            ));
        }
    }

    #[test]
    fn burst_budget_caps_total_offered_bytes() {
        let cfg = GenConfig {
            max_total_bytes: 50_000,
            saturate_every: 0,
            aqm_every: 0,
            ..Default::default()
        };
        for i in 0..20 {
            let spec = gen_spec(9, i, &cfg);
            let total: u64 = spec.trains.iter().map(|t| t.bytes).sum::<u64>()
                + spec
                    .sessions
                    .iter()
                    .flat_map(|s| s.sizes.iter())
                    .sum::<u64>();
            assert!(total <= 50_000 + SPEC_MSS_BYTES, "iteration {i}: {total}");
        }
    }

    #[test]
    fn aqm_family_generates_red_and_codel_bottlenecks() {
        let cfg = GenConfig {
            saturate_every: 0,
            session_every: 0,
            aqm_every: 1,
            ..Default::default()
        };
        let (mut red, mut codel) = (0, 0);
        for i in 0..20 {
            let spec = gen_spec(11, i, &cfg);
            spec.validate().unwrap();
            match spec.aqm {
                SpecAqm::Red { .. } => red += 1,
                SpecAqm::Codel { .. } => codel += 1,
                SpecAqm::DropTail => panic!("iteration {i} fell back to drop-tail"),
            }
            assert!(spec.buffer_pkts <= 64, "iteration {i}: tiny buffers only");
            // The text form round-trips the discipline exactly.
            let parsed = ScenarioSpec::from_text(&spec.to_text()).unwrap();
            assert_eq!(parsed, spec);
        }
        assert!(red > 0 && codel > 0, "both disciplines generated");
    }

    #[test]
    fn session_family_generates_valid_session_specs() {
        let cfg = GenConfig {
            saturate_every: 0,
            session_every: 1,
            ..Default::default()
        };
        for i in 0..10 {
            let spec = gen_spec(21, i, &cfg);
            spec.validate().unwrap();
            assert!(spec.trains.is_empty(), "iteration {i} mixed in trains");
            assert!(!spec.sessions.is_empty(), "iteration {i} has no sessions");
            // The text form round-trips the sessions exactly.
            let parsed = ScenarioSpec::from_text(&spec.to_text()).unwrap();
            assert_eq!(parsed, spec);
        }
        // Saturation takes precedence when an iteration matches both.
        let both = GenConfig {
            saturate_every: 1,
            session_every: 1,
            ..Default::default()
        };
        let spec = gen_spec(21, 0, &both);
        assert!(spec.sessions.is_empty());
        assert_eq!(spec.cc, SpecCc::TrimGuideline);
    }
}
