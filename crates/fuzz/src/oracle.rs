//! Differential oracles: post-run checks that compare a finished
//! scenario against what the paper's model says must have happened.
//!
//! Runtime invariants (per-ACK reduction bound, probe window, queue
//! bounds, ...) live in `trim-check`'s monitor suite and watch the
//! event stream; the oracles here need the whole run — offered load vs
//! delivered goodput, measured bottleneck utilization vs the Eq. 4
//! full-utilization prediction — so they run on the [`SpecOutcome`].

use trim_check::{Oracle, OracleFailure};
use trim_core::kmodel;
use trim_workload::spec::{ScenarioSpec, SpecCc, SpecOutcome, SPEC_MSS_BYTES};

/// The subject every fuzz oracle inspects: the spec that ran and what
/// came out.
#[derive(Debug)]
pub struct SpecRun<'a> {
    /// The scenario that was run.
    pub spec: &'a ScenarioSpec,
    /// Its report and violations.
    pub outcome: &'a SpecOutcome,
}

/// Runs every fuzz oracle against a finished run via
/// [`trim_check::run_oracles`].
pub fn check_oracles(spec: &ScenarioSpec, outcome: &SpecOutcome) -> Vec<OracleFailure> {
    let run = SpecRun { spec, outcome };
    trim_check::run_oracles(&run, &[&GoodputConservation, &KFullUtilization])
}

/// Goodput conservation: the front-end can never deliver more in-order
/// payload than a sender offered (padded to whole segments), and a
/// sender that finished — no data outstanding at the horizon — must
/// have delivered exactly its offered load.
///
/// Session senders need a looser idle rule: a connection sitting in a
/// think gap is idle while later responses are still pending, so the
/// exact-equality check only applies once every response in the
/// sequence completed. Instead the completed prefix gives a floor —
/// the sender must have delivered at least the padded bytes of every
/// response it reports complete.
#[derive(Debug)]
pub struct GoodputConservation;

impl<'a> Oracle<SpecRun<'a>> for GoodputConservation {
    fn name(&self) -> &'static str {
        "goodput-conservation"
    }

    fn check(&self, run: &SpecRun<'a>, failures: &mut Vec<OracleFailure>) {
        for s in &run.outcome.report.senders {
            let offered = run.spec.offered_padded_bytes(s.sender);
            let session = run.spec.session_for(s.sender);
            // Exact equality needs the whole offered load to have been
            // issued: always true for trains, true for a session only
            // once all of its responses completed.
            let fully_issued = match session {
                None => true,
                Some(sess) => s.trains.len() == sess.sizes.len(),
            };
            if s.goodput_bytes > offered {
                failures.push(OracleFailure {
                    oracle: self.name(),
                    detail: format!(
                        "sender {} delivered {} bytes but only offered {}",
                        s.sender, s.goodput_bytes, offered
                    ),
                });
            } else if !s.unfinished && fully_issued && s.goodput_bytes != offered {
                failures.push(OracleFailure {
                    oracle: self.name(),
                    detail: format!(
                        "sender {} is idle but delivered {} of {} offered bytes",
                        s.sender, s.goodput_bytes, offered
                    ),
                });
            }
            if let Some(sess) = session {
                let pad = |b: u64| b.div_ceil(SPEC_MSS_BYTES) * SPEC_MSS_BYTES;
                let completed_floor: u64 = sess
                    .sizes
                    .iter()
                    .take(s.trains.len())
                    .map(|&b| pad(b))
                    .sum();
                if s.goodput_bytes < completed_floor {
                    failures.push(OracleFailure {
                        oracle: self.name(),
                        detail: format!(
                            "sender {} completed {} responses ({} padded bytes) \
                             but delivered only {}",
                            s.sender,
                            s.trains.len(),
                            completed_floor,
                            s.goodput_bytes
                        ),
                    });
                }
            }
            if s.goodput_bytes % SPEC_MSS_BYTES != 0 {
                failures.push(OracleFailure {
                    oracle: self.name(),
                    detail: format!(
                        "sender {} goodput {} is not whole segments",
                        s.sender, s.goodput_bytes
                    ),
                });
            }
        }
    }
}

/// Measured utilization below which the full-utilization oracle fires.
/// Saturated TRIM-guideline runs measure >= 0.97 across the generator's
/// parameter space; the slack absorbs slow-start warmup on the shortest
/// horizons.
pub const UTILIZATION_FLOOR: f64 = 0.90;

/// Eq. 4 differential: when TRIM runs with the guideline `K` under
/// persistent offered load beyond the bottleneck capacity, the paper
/// predicts full utilization. Checked twice: the closed-form
/// steady-state model must claim `full_utilization`, and the measured
/// bottleneck utilization must stay above [`UTILIZATION_FLOOR`].
///
/// Only *qualifying* specs are judged — TRIM-guideline, no injected
/// fault, every sender streaming one train from (near) time zero, and
/// aggregate offered load at least twice what the link can carry over
/// the horizon — so the oracle never flakes on bursty or underloaded
/// scenarios.
#[derive(Debug)]
pub struct KFullUtilization;

impl KFullUtilization {
    /// Whether the spec is in the oracle's jurisdiction.
    pub fn qualifies(spec: &ScenarioSpec) -> bool {
        let streaming = spec.trains.len() == spec.senders
            && (0..spec.senders).all(|s| spec.trains.iter().any(|t| t.sender == s))
            && spec.trains.iter().all(|t| t.at_us <= 1_000);
        let offered_bytes: u64 = (0..spec.senders)
            .map(|s| spec.offered_padded_bytes(s))
            .sum();
        let carriable_bytes = spec.bottleneck_bps() / 8 * spec.horizon_ms / 1_000;
        spec.cc == SpecCc::TrimGuideline
            && spec.fault.is_none()
            && spec.sessions.is_empty()
            && streaming
            && offered_bytes >= 2 * carriable_bytes
    }

    /// The measured bottleneck utilization of a run: delivered payload
    /// over what the link could carry in the horizon.
    pub fn measured_utilization(spec: &ScenarioSpec, outcome: &SpecOutcome) -> f64 {
        let delivered: u64 = outcome.report.senders.iter().map(|s| s.goodput_bytes).sum();
        let carriable = spec.bottleneck_bps() as f64 / 8.0 * spec.horizon_ms as f64 / 1_000.0;
        delivered as f64 / carriable
    }
}

impl<'a> Oracle<SpecRun<'a>> for KFullUtilization {
    fn name(&self) -> &'static str {
        "k-full-utilization"
    }

    fn check(&self, run: &SpecRun<'a>, failures: &mut Vec<OracleFailure>) {
        if !Self::qualifies(run.spec) {
            return;
        }
        let capacity_pps = run.spec.bottleneck_bps() as f64 / (8.0 * SPEC_MSS_BYTES as f64);
        let base_rtt_ns = run.spec.base_rtt_ns();
        let k_ns = kmodel::k_lower_bound_ns(capacity_pps, base_rtt_ns);
        let st = kmodel::steady_state(capacity_pps, base_rtt_ns, k_ns, run.spec.senders as u32);
        if !st.full_utilization {
            failures.push(OracleFailure {
                oracle: self.name(),
                detail: format!(
                    "steady-state model denies full utilization at the \
                     guideline K = {k_ns}ns (C = {capacity_pps:.0} pps, \
                     D = {base_rtt_ns}ns, N = {})",
                    run.spec.senders
                ),
            });
        }
        let measured = Self::measured_utilization(run.spec, run.outcome);
        if measured < UTILIZATION_FLOOR {
            failures.push(OracleFailure {
                oracle: self.name(),
                detail: format!(
                    "measured bottleneck utilization {measured:.3} below \
                     {UTILIZATION_FLOOR} despite guideline K and saturating load"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trim_workload::spec::{SpecSession, SpecTrain};

    fn saturating_spec() -> ScenarioSpec {
        ScenarioSpec {
            seed: 0,
            senders: 2,
            link_mbps: 100,
            delay_us: 50,
            buffer_pkts: 100,
            cc: SpecCc::TrimGuideline,
            min_rto_us: 200_000,
            horizon_ms: 60,
            fault: None,
            aqm: trim_workload::spec::SpecAqm::DropTail,
            stability: false,
            expect: None,
            trains: (0..2)
                .map(|sender| SpecTrain {
                    sender,
                    at_us: 0,
                    bytes: 1_000_000,
                })
                .collect(),
            sessions: Vec::new(),
        }
    }

    #[test]
    fn qualification_requires_trim_guideline_and_saturation() {
        let spec = saturating_spec();
        assert!(KFullUtilization::qualifies(&spec));
        let mut reno = spec.clone();
        reno.cc = SpecCc::Reno;
        assert!(!KFullUtilization::qualifies(&reno));
        let mut light = spec.clone();
        light.trains[0].bytes = 1_460;
        light.trains[1].bytes = 1_460;
        assert!(!KFullUtilization::qualifies(&light));
        let mut late = spec;
        late.trains[0].at_us = 30_000;
        assert!(!KFullUtilization::qualifies(&late));
    }

    #[test]
    fn saturated_trim_guideline_run_passes_both_oracles() {
        let spec = saturating_spec();
        let out = spec.run().unwrap();
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        let failures = check_oracles(&spec, &out);
        assert!(failures.is_empty(), "{failures:?}");
        let u = KFullUtilization::measured_utilization(&spec, &out);
        assert!(u > UTILIZATION_FLOOR, "utilization {u}");
    }

    #[test]
    fn goodput_oracle_fires_on_fabricated_excess_delivery() {
        let spec = saturating_spec();
        let mut out = spec.run().unwrap();
        out.report.senders[0].goodput_bytes = spec.offered_padded_bytes(0) + SPEC_MSS_BYTES;
        let failures = check_oracles(&spec, &out);
        assert!(failures
            .iter()
            .any(|f| f.oracle == "goodput-conservation" && f.detail.contains("only offered")));
    }

    /// A session whose think gaps outlast the horizon: the last
    /// response never gets issued, so the connection is idle at the
    /// report yet delivered less than the full offered load.
    fn cutoff_session_spec() -> ScenarioSpec {
        ScenarioSpec {
            horizon_ms: 8,
            trains: Vec::new(),
            sessions: vec![SpecSession {
                sender: 0,
                at_us: 0,
                think_us: 8_000,
                sizes: vec![14_600, 14_600, 14_600],
            }],
            ..saturating_spec()
        }
    }

    #[test]
    fn session_cut_mid_think_is_not_a_goodput_violation() {
        let spec = cutoff_session_spec();
        let out = spec.run().unwrap();
        let s = &out.report.senders[0];
        assert!(
            s.trains.len() < 3,
            "horizon must cut the session for this test to bite"
        );
        assert!(!s.unfinished, "cut mid-think means the connection is idle");
        assert!(s.goodput_bytes < spec.offered_padded_bytes(0));
        let failures = check_oracles(&spec, &out);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn goodput_oracle_fires_when_a_session_delivers_less_than_it_completed() {
        let spec = cutoff_session_spec();
        let mut out = spec.run().unwrap();
        out.report.senders[0].goodput_bytes = 0;
        let failures = check_oracles(&spec, &out);
        assert!(failures
            .iter()
            .any(|f| f.oracle == "goodput-conservation" && f.detail.contains("delivered only")));
    }
}
