//! Flow-slab lifecycle tests: teardown mid-run, id reuse, and leak
//! accounting cross-checked against the engine's packet-conservation
//! audit.
//!
//! One host carries several senders so the teardown path exercises the
//! shared slab: freeing a slot must cancel the flow's timers (a stale
//! RTO fire on a vacated id would panic the host), drop late ACKs
//! silently, and return the id to the freelist for reuse.

use netsim::prelude::*;
use netsim::time::SimTime;
use trim_tcp::{CcKind, Segment, SlabAudit, TcpConfig, TcpHost};

/// Builds `n` senders on ONE host, each with its own flow toward a
/// front-end with `n` receivers, over a shared switch. Returns
/// `(sim, tx node, fe node)`.
fn multi_sender(n: usize) -> (Simulator<Segment>, NodeId, NodeId) {
    let cfg = TcpConfig::default();
    let mut sim = Simulator::new();
    let sw = sim.add_switch();

    let mut fe_host = TcpHost::new();
    for i in 0..n {
        fe_host.add_receiver(FlowId(i as u64), cfg);
    }
    let fe = sim.add_host(Box::new(fe_host));
    sim.connect(
        fe,
        sw,
        Bandwidth::gbps(1),
        Dur::from_micros(50),
        QueueConfig::drop_tail(100),
    );

    let mut tx_host = TcpHost::with_sender_capacity(n);
    for i in 0..n {
        let idx = tx_host.add_sender(FlowId(i as u64), fe, cfg, &CcKind::Reno);
        assert_eq!(idx, i);
        tx_host.schedule_train(idx, SimTime::from_secs_f64(0.001), 30_000);
    }
    let tx = sim.add_host(Box::new(tx_host));
    sim.connect(
        tx,
        sw,
        Bandwidth::gbps(1),
        Dur::from_micros(50),
        QueueConfig::drop_tail(100),
    );
    (sim, tx, fe)
}

/// Teardown while the flow's data and ACKs are still in flight (its RTO
/// timer is armed): the run must complete without a stale fire — a
/// stale RTO on a vacated slot would panic the host — the slot must be
/// freed, and the engine's packet books must still balance.
#[test]
fn teardown_mid_run_frees_slot_and_books_balance() {
    let (mut sim, tx, _fe) = multi_sender(3);
    // t = 1.05 ms: the 1 ms trains have started, nothing has drained.
    sim.host_mut::<TcpHost>(tx)
        .schedule_teardown(1, SimTime::from_secs_f64(0.00105));
    sim.run();

    let host: &TcpHost = sim.host(tx);
    assert_eq!(host.sender_count(), 2);
    assert_eq!(
        host.slab_audit(),
        SlabAudit {
            allocated: 3,
            freed: 1,
            live: 2,
            high_water: 3,
        }
    );
    host.slab_leak_check().unwrap();
    // The torn-down flow is gone from iteration; survivors finished.
    let live: Vec<u64> = host.connections().map(|c| c.flow().0).collect();
    assert_eq!(live, vec![0, 2]);
    for c in host.connections() {
        assert_eq!(c.completed_trains().len(), 1, "flow {}", c.flow());
    }

    // Cross-check with the engine's packet-conservation audit: the
    // teardown dropped late ACKs at the host, not inside the network,
    // so every injected packet is still accounted for.
    let audit = sim.audit_stats();
    assert_eq!(audit.injected, audit.delivered + audit.dropped);
    assert_eq!(audit.in_flight(), 0);
    assert_eq!(audit.arena_live, 0);
}

/// A vacated flow id is handed back to the next `add_sender`, with the
/// slot's generation counter bumped as observable proof of reuse.
#[test]
fn torn_down_flow_id_is_reused_by_add_sender() {
    let (mut sim, tx, fe) = multi_sender(3);
    sim.host_mut::<TcpHost>(tx)
        .schedule_teardown(1, SimTime::from_secs_f64(0.00105));
    sim.run();

    let host = sim.host_mut::<TcpHost>(tx);
    assert_eq!(host.sender_generation(0), 0);
    assert_eq!(host.sender_generation(1), 1);

    let idx = host.add_sender(FlowId(9), fe, TcpConfig::default(), &CcKind::Reno);
    assert_eq!(idx, 1, "freed id must be reused before the slab grows");
    assert_eq!(host.sender_generation(1), 1);
    assert_eq!(host.connection(1).flow(), FlowId(9));
    let audit = host.slab_audit();
    assert_eq!((audit.allocated, audit.live, audit.high_water), (4, 3, 3));
    host.slab_leak_check().unwrap();
}

/// Fault injection: a slab slot that is dropped without returning to the
/// freelist is caught by `slab_leak_check`, while the engine's packet
/// books remain clean — proving the two audits are independent and the
/// leak detection is live.
#[test]
fn injected_slot_leak_is_caught() {
    let (mut sim, tx, _fe) = multi_sender(3);
    {
        let host = sim.host_mut::<TcpHost>(tx);
        host.inject_slot_leak();
        host.schedule_teardown(1, SimTime::from_secs_f64(0.00105));
    }
    sim.run();

    let host: &TcpHost = sim.host(tx);
    let err = host.slab_leak_check().unwrap_err();
    assert!(err.contains("leaked"), "unexpected message: {err}");
    // The allocation counters still balance — only the slot is gone.
    assert_eq!(host.slab_audit().live, 2);
    assert_eq!(host.sender_count(), 2);
    // Packet conservation is unaffected by the slab-level fault.
    let audit = sim.audit_stats();
    assert_eq!(audit.injected, audit.delivered + audit.dropped);
    assert_eq!(audit.in_flight(), 0);
}

/// Teardown after the flow has fully drained: identical books, and the
/// completed train record is discarded with the slot.
#[test]
fn teardown_after_drain_is_clean() {
    let (mut sim, tx, _fe) = multi_sender(2);
    // t = 100 ms: 30 KB at 1 Gbps finished long ago.
    sim.host_mut::<TcpHost>(tx)
        .schedule_teardown(0, SimTime::from_secs_f64(0.1));
    sim.run();

    let host: &TcpHost = sim.host(tx);
    assert_eq!(host.sender_count(), 1);
    host.slab_leak_check().unwrap();
    assert_eq!(
        host.connections().map(|c| c.flow().0).collect::<Vec<_>>(),
        vec![1]
    );
    assert_eq!(sim.audit_stats().in_flight(), 0);
}
