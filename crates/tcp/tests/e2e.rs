//! End-to-end tests: full TCP transfers over simulated networks.

use netsim::prelude::*;
use netsim::time::SimTime;
use trim_tcp::{CcKind, Segment, TcpConfig, TcpHost};

const MSS: u32 = 1460;

/// Builds a many-to-one network with one sending connection per sender
/// host, all toward a single front-end, and returns
/// `(sim, sender node ids, front-end node id, bottleneck channel)`.
fn incast(
    n: usize,
    cc: &CcKind,
    cfg: TcpConfig,
    buffer_pkts: usize,
    ecn_threshold: Option<usize>,
) -> (Simulator<Segment>, Vec<NodeId>, NodeId, ChannelId) {
    incast_with_delay(n, cc, cfg, buffer_pkts, ecn_threshold, Dur::from_micros(50))
}

/// Like [`incast`] but with a configurable per-link propagation delay.
fn incast_with_delay(
    n: usize,
    cc: &CcKind,
    cfg: TcpConfig,
    buffer_pkts: usize,
    ecn_threshold: Option<usize>,
    delay: Dur,
) -> (Simulator<Segment>, Vec<NodeId>, NodeId, ChannelId) {
    let mut sim = Simulator::new();
    let sw = sim.add_switch();

    let mut fe_host = TcpHost::new();
    for i in 0..n {
        fe_host.add_receiver(FlowId(i as u64), cfg);
    }
    let fe = sim.add_host(Box::new(fe_host));
    let mut qc = QueueConfig::drop_tail(buffer_pkts);
    if let Some(t) = ecn_threshold {
        qc = qc.with_ecn_threshold(t);
    }
    let (_, bottleneck) = sim.connect(fe, sw, Bandwidth::gbps(1), delay, qc);

    let mut senders = Vec::new();
    for i in 0..n {
        let mut h = TcpHost::new();
        h.add_sender(FlowId(i as u64), fe, cfg, cc);
        let node = sim.add_host(Box::new(h));
        sim.connect(
            node,
            sw,
            Bandwidth::gbps(1),
            delay,
            QueueConfig::drop_tail(buffer_pkts),
        );
        senders.push(node);
    }
    (sim, senders, fe, bottleneck)
}

#[test]
fn single_flow_bulk_transfer_completes() {
    let (mut sim, senders, _fe, _b) = incast(1, &CcKind::Reno, TcpConfig::default(), 100, None);
    sim.host_mut::<TcpHost>(senders[0])
        .schedule_train(0, SimTime::from_secs_f64(0.001), 1_000_000);
    sim.run_until(SimTime::from_secs(2));
    let host: &TcpHost = sim.host(senders[0]);
    let conn = host.connection(0);
    assert!(
        conn.is_idle(),
        "transfer incomplete: flight={}",
        conn.flight()
    );
    let rec = &conn.completed_trains()[0];
    assert_eq!(rec.bytes, 1_000_000);
    assert_eq!(rec.pkts, 1_000_000u64.div_ceil(MSS as u64));
    // 1 MB over ~1 Gbps should finish within ~15 ms including slow start.
    let ct = rec.completion_time().as_secs_f64();
    assert!(ct > 0.008 && ct < 0.05, "completion time {ct}s");
}

#[test]
fn throughput_close_to_line_rate() {
    let (mut sim, senders, fe, _b) = incast(1, &CcKind::Reno, TcpConfig::default(), 100, None);
    sim.host_mut::<TcpHost>(senders[0])
        .schedule_train(0, SimTime::ZERO, 10_000_000);
    sim.host_mut::<TcpHost>(fe)
        .receiver_mut(0)
        .enable_throughput_meter(Dur::from_millis(10));
    sim.run_until(SimTime::from_secs(2));
    let host: &TcpHost = sim.host(senders[0]);
    assert!(host.connection(0).is_idle());
    let rx: &TcpHost = sim.host(fe);
    let meter = rx.receiver(0).meter().unwrap();
    // Steady-state bins should carry >900 Mbps of goodput.
    let peak = meter
        .mbps_series()
        .iter()
        .map(|(_, m)| *m)
        .fold(0.0f64, f64::max);
    assert!(peak > 900.0, "peak goodput {peak} Mbps");
}

#[test]
fn no_timeouts_or_losses_for_single_flow() {
    let (mut sim, senders, fe, b) = incast(1, &CcKind::Reno, TcpConfig::default(), 100, None);
    sim.host_mut::<TcpHost>(senders[0])
        .schedule_train(0, SimTime::ZERO, 2_000_000);
    sim.run_until(SimTime::from_secs(2));
    let host: &TcpHost = sim.host(senders[0]);
    let stats = host.connection(0).stats();
    // BDP is ~9 pkts and the buffer 100: one flow in slow start will
    // eventually overfill it (cwnd doubles), so allow fast retransmits but
    // demand no RTO with NewReno recovery.
    assert_eq!(stats.timeouts, 0, "stats: {stats:?}");
    let _ = sim.queue_stats(b);
    let rx: &TcpHost = sim.host(fe);
    assert_eq!(
        rx.receiver(0).goodput_bytes() % MSS as u64,
        0,
        "whole packets delivered"
    );
}

#[test]
fn incast_reno_suffers_drops_and_recovers_all_data() {
    let cfg = TcpConfig::default();
    let (mut sim, senders, fe, b) = incast(5, &CcKind::Reno, cfg, 100, None);
    for (i, &s) in senders.iter().enumerate() {
        // All five blast 500 KB simultaneously.
        sim.host_mut::<TcpHost>(s).schedule_train(
            0,
            SimTime::from_secs_f64(0.001 + i as f64 * 1e-6),
            500_000,
        );
    }
    sim.run_until(SimTime::from_secs(5));
    let drops = sim.queue_stats(b).dropped;
    assert!(
        drops > 0,
        "five synchronized slow-starts must overflow 100 pkts"
    );
    let rx: &TcpHost = sim.host(fe);
    for i in 0..5 {
        assert_eq!(
            rx.receiver(i).goodput_bytes(),
            500_000u64.div_ceil(MSS as u64) * MSS as u64,
            "flow {i} delivered everything despite drops"
        );
    }
    for &s in &senders {
        let host: &TcpHost = sim.host(s);
        assert!(host.connection(0).is_idle(), "sender did not finish");
    }
}

#[test]
fn rto_fires_when_entire_window_is_lost() {
    // A 2-packet buffer forces tail loss that dupacks cannot repair.
    let cfg = TcpConfig::default().with_min_rto(Dur::from_millis(20));
    let (mut sim, senders, _fe, _b) = incast(4, &CcKind::Reno, cfg, 2, None);
    for &s in &senders {
        sim.host_mut::<TcpHost>(s)
            .schedule_train(0, SimTime::ZERO, 300_000);
    }
    sim.run_until(SimTime::from_secs(10));
    let total_timeouts: u64 = senders
        .iter()
        .map(|&s| sim.host::<TcpHost>(s).connection(0).stats().timeouts)
        .sum();
    assert!(total_timeouts > 0, "tiny buffer must force RTOs");
    for &s in &senders {
        let host: &TcpHost = sim.host(s);
        assert!(
            host.connection(0).is_idle(),
            "all data eventually delivered"
        );
    }
}

#[test]
fn dctcp_keeps_queue_short_with_ecn() {
    let cfg = TcpConfig::default();
    // DCTCP marking threshold ~20 pkts at 1 Gbps (per the DCTCP paper).
    let (mut sim, senders, _fe, b) = incast(5, &CcKind::Dctcp, cfg, 100, Some(20));
    for &s in &senders {
        sim.host_mut::<TcpHost>(s)
            .schedule_train(0, SimTime::ZERO, 1_000_000);
    }
    sim.run_until(SimTime::from_secs(2));
    let stats = sim.queue_stats(b);
    assert_eq!(stats.dropped, 0, "ECN should prevent overflow");
    // The initial synchronized slow start overshoots while alpha converges;
    // steady state must hold the *average* queue near the marking point.
    let aql = stats.average_len(sim.now().saturating_since(SimTime::ZERO));
    assert!(aql < 40.0, "DCTCP bounds the average queue, aql={aql}");
    for &s in &senders {
        let host: &TcpHost = sim.host(s);
        assert!(host.connection(0).is_idle());
    }
}

#[test]
fn trim_avoids_timeouts_in_onoff_incast() {
    // The paper's core claim (Fig. 6/7): ON/OFF trains + a big LPT burst
    // cause Reno timeouts but not TRIM timeouts.
    let run = |cc: &CcKind| -> (u64, u64) {
        let cfg = TcpConfig::default();
        let (mut sim, senders, _fe, b) = incast(5, cc, cfg, 100, None);
        for &s in &senders {
            let host = sim.host_mut::<TcpHost>(s);
            // 200 small responses, 1 ms apart, from t=0.1s...
            for r in 0..200 {
                host.schedule_train(0, SimTime::from_secs_f64(0.1 + r as f64 * 0.001), 6_000);
            }
            // ...then a long train at t=0.5s.
            host.schedule_train(0, SimTime::from_secs_f64(0.5), 150_000);
        }
        sim.run_until(SimTime::from_secs(3));
        let timeouts = senders
            .iter()
            .map(|&s| sim.host::<TcpHost>(s).connection(0).stats().timeouts)
            .sum();
        (timeouts, sim.queue_stats(b).dropped)
    };
    let (reno_timeouts, reno_drops) = run(&CcKind::Reno);
    let trim = CcKind::trim_with_capacity(1_000_000_000, MSS);
    let (trim_timeouts, trim_drops) = run(&trim);
    assert!(
        reno_timeouts > 0,
        "Reno must hit timeouts in this scenario (got {reno_timeouts}, {reno_drops} drops)"
    );
    assert_eq!(
        trim_timeouts, 0,
        "TRIM must avoid timeouts ({trim_drops} drops)"
    );
    assert!(trim_drops < reno_drops, "TRIM drops fewer packets");
}

#[test]
fn trim_probes_fire_on_train_gaps() {
    let trim = CcKind::trim_with_capacity(1_000_000_000, MSS);
    let (mut sim, senders, _fe, _b) = incast(1, &trim, TcpConfig::default(), 100, None);
    let host = sim.host_mut::<TcpHost>(senders[0]);
    for r in 0..10 {
        host.schedule_train(0, SimTime::from_secs_f64(0.01 + r as f64 * 0.005), 30_000);
    }
    sim.run_until(SimTime::from_secs(1));
    let host: &TcpHost = sim.host(senders[0]);
    let stats = host.connection(0).stats();
    assert!(host.connection(0).is_idle());
    assert!(
        stats.probes_sent >= 8,
        "each 5 ms gap should probe (sent {})",
        stats.probes_sent
    );
    assert_eq!(stats.timeouts, 0);
}

#[test]
fn gip_restarts_slow_next_train() {
    // GIP restarts at cwnd=2, paying slow start on every train; when the
    // network has capacity for the inherited window (BDP-dominated path,
    // train smaller than BDP+buffer), TRIM's tuned inheritance wins —
    // the paper's related-work argument against fixed restart.
    let run = |cc: &CcKind| -> f64 {
        let (mut sim, senders, _fe, _b) = incast_with_delay(
            1,
            cc,
            TcpConfig::default(),
            100,
            None,
            Dur::from_micros(500),
        );
        let host = sim.host_mut::<TcpHost>(senders[0]);
        host.schedule_train(0, SimTime::from_secs_f64(0.001), 200_000);
        host.schedule_train(0, SimTime::from_secs_f64(0.1), 60_000);
        sim.run_until(SimTime::from_secs(1));
        let host: &TcpHost = sim.host(senders[0]);
        let recs = host.connection(0).completed_trains();
        assert_eq!(recs.len(), 2);
        recs[1].completion_time().as_secs_f64()
    };
    let trim_ct = run(&CcKind::trim_with_capacity(1_000_000_000, MSS));
    let gip_ct = run(&CcKind::Gip);
    assert!(
        trim_ct < gip_ct,
        "TRIM ({trim_ct}s) should beat GIP restart ({gip_ct}s) on an idle link"
    );
}

#[test]
fn cubic_completes_and_competes() {
    let (mut sim, senders, _fe, _b) = incast(2, &CcKind::Cubic, TcpConfig::default(), 100, None);
    for &s in &senders {
        sim.host_mut::<TcpHost>(s)
            .schedule_train(0, SimTime::ZERO, 2_000_000);
    }
    sim.run_until(SimTime::from_secs(3));
    for &s in &senders {
        let host: &TcpHost = sim.host(s);
        assert!(host.connection(0).is_idle());
    }
}

#[test]
fn l2dct_short_flow_finishes_quicker_than_long_started_together() {
    let cfg = TcpConfig::default();
    let (mut sim, senders, _fe, _b) = incast(2, &CcKind::L2dct, cfg, 100, Some(20));
    sim.host_mut::<TcpHost>(senders[0])
        .schedule_train(0, SimTime::ZERO, 5_000_000);
    sim.host_mut::<TcpHost>(senders[1])
        .schedule_train(0, SimTime::from_secs_f64(0.02), 100_000);
    sim.run_until(SimTime::from_secs(3));
    let long: &TcpHost = sim.host(senders[0]);
    let short: &TcpHost = sim.host(senders[1]);
    assert!(long.connection(0).is_idle() && short.connection(0).is_idle());
    let short_ct = short.connection(0).completed_trains()[0]
        .completion_time()
        .as_secs_f64();
    assert!(
        short_ct < 0.05,
        "LAS weighting should let the short flow cut through, took {short_ct}s"
    );
}

#[test]
fn persistent_connection_reuses_sequence_space() {
    let (mut sim, senders, fe, _b) = incast(1, &CcKind::Reno, TcpConfig::default(), 100, None);
    let host = sim.host_mut::<TcpHost>(senders[0]);
    for r in 0..50 {
        host.schedule_train(0, SimTime::from_secs_f64(r as f64 * 0.002), 4_000);
    }
    sim.run_until(SimTime::from_secs(1));
    let host: &TcpHost = sim.host(senders[0]);
    assert_eq!(host.connection(0).completed_trains().len(), 50);
    // Train ids are sequential and completion times ordered.
    for (i, rec) in host.connection(0).completed_trains().iter().enumerate() {
        assert_eq!(rec.id, i as u64);
        assert!(rec.completed_at >= rec.enqueued_at);
    }
    let rx: &TcpHost = sim.host(fe);
    let delivered = rx.receiver(0).stats().delivered_pkts;
    let expected: u64 = 50 * 4_000u64.div_ceil(MSS as u64);
    assert_eq!(delivered, expected);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let (mut sim, senders, _fe, b) = incast(5, &CcKind::Reno, TcpConfig::default(), 50, None);
        for &s in &senders {
            sim.host_mut::<TcpHost>(s)
                .schedule_train(0, SimTime::ZERO, 300_000);
        }
        sim.run_until(SimTime::from_secs(3));
        let timeouts: u64 = senders
            .iter()
            .map(|&s| sim.host::<TcpHost>(s).connection(0).stats().timeouts)
            .sum();
        (
            timeouts,
            sim.queue_stats(b).dropped,
            sim.delivered_packets(),
        )
    };
    assert_eq!(run(), run());
}
