//! White-box tests of the TCP mechanisms, using deterministic fault
//! injection to construct exact loss patterns: fast retransmit, NewReno
//! partial ACKs, tail-loss RTO, go-back-N recovery, ACK loss tolerance,
//! and TRIM probe loss.

use netsim::prelude::*;
use netsim::time::SimTime;
use trim_tcp::{CcKind, ConnStats, Segment, TcpConfig, TcpHost};

const MSS: u32 = 1460;

/// One sender directly linked to one receiver; returns the simulator,
/// the sender node, the data channel (tx -> rx) and the ACK channel
/// (rx -> tx).
fn pair(
    cc: &CcKind,
    cfg: TcpConfig,
    bytes: u64,
) -> (Simulator<Segment>, NodeId, ChannelId, ChannelId) {
    let mut sim: Simulator<Segment> = Simulator::new();
    let mut rx = TcpHost::new();
    rx.add_receiver(FlowId(0), cfg);
    let rx_node = sim.add_host(Box::new(rx));
    let mut tx = TcpHost::new();
    let idx = tx.add_sender(FlowId(0), rx_node, cfg, cc);
    tx.schedule_train(idx, SimTime::from_secs_f64(0.001), bytes);
    let tx_node = sim.add_host(Box::new(tx));
    let (data_ch, ack_ch) = sim.connect(
        tx_node,
        rx_node,
        Bandwidth::gbps(1),
        Dur::from_micros(50),
        QueueConfig::drop_tail(1000),
    );
    (sim, tx_node, data_ch, ack_ch)
}

fn finish(sim: &mut Simulator<Segment>, tx: NodeId, expect_pkts: u64) -> ConnStats {
    sim.run_until(SimTime::from_secs(10));
    let host: &TcpHost = sim.host(tx);
    let conn = host.connection(0);
    assert!(conn.is_idle(), "transfer incomplete: {:?}", conn.stats());
    assert_eq!(conn.completed_trains()[0].pkts, expect_pkts);
    conn.stats()
}

#[test]
fn clean_transfer_has_no_retransmissions() {
    let (mut sim, tx, _, _) = pair(&CcKind::Reno, TcpConfig::default(), 20 * MSS as u64);
    let stats = finish(&mut sim, tx, 20);
    assert_eq!(stats.rtx_sent, 0);
    assert_eq!(stats.timeouts, 0);
    assert_eq!(stats.fast_retransmits, 0);
    assert_eq!(stats.pkts_sent, 20);
}

#[test]
fn single_loss_repaired_by_fast_retransmit() {
    let (mut sim, tx, data_ch, _) = pair(&CcKind::Reno, TcpConfig::default(), 30 * MSS as u64);
    // Lose the 6th data packet: plenty of later packets generate dupacks.
    sim.inject_channel_drops(data_ch, [5]);
    let stats = finish(&mut sim, tx, 30);
    assert_eq!(stats.fast_retransmits, 1, "{stats:?}");
    assert_eq!(stats.timeouts, 0, "dupacks repair without RTO: {stats:?}");
    assert_eq!(stats.rtx_sent, 1, "exactly the lost packet resent");
    // Completion well under the 200 ms RTO proves the repair was fast.
    let host: &TcpHost = sim.host(tx);
    let ct = host.connection(0).completed_trains()[0]
        .completion_time()
        .as_secs_f64();
    assert!(ct < 0.05, "completed in {ct}s");
}

#[test]
fn two_separated_losses_use_newreno_partial_ack() {
    let (mut sim, tx, data_ch, _) = pair(&CcKind::Reno, TcpConfig::default(), 40 * MSS as u64);
    // Two holes in the same window: the partial ACK after repairing the
    // first hole triggers the second retransmission without leaving
    // recovery (one fast-retransmit event, two retransmissions, no RTO).
    sim.inject_channel_drops(data_ch, [6, 12]);
    let stats = finish(&mut sim, tx, 40);
    assert_eq!(stats.fast_retransmits, 1, "{stats:?}");
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(stats.rtx_sent, 2, "{stats:?}");
}

#[test]
fn tail_loss_needs_the_rto() {
    let cfg = TcpConfig::default().with_min_rto(Dur::from_millis(20));
    let (mut sim, tx, data_ch, _) = pair(&CcKind::Reno, cfg, 10 * MSS as u64);
    // Lose the last three packets: at most two dupacks can come back, so
    // fast retransmit never fires and the RTO must recover.
    sim.inject_channel_drops(data_ch, [7, 8, 9]);
    let stats = finish(&mut sim, tx, 10);
    assert_eq!(stats.fast_retransmits, 0, "{stats:?}");
    assert!(stats.timeouts >= 1, "{stats:?}");
    assert!(stats.rtx_sent >= 3, "the tail is retransmitted: {stats:?}");
}

#[test]
fn go_back_n_resends_the_outstanding_window() {
    let cfg = TcpConfig::default().with_min_rto(Dur::from_millis(20));
    let (mut sim, tx, data_ch, _) = pair(&CcKind::Reno, cfg, 12 * MSS as u64);
    // Slow start sends 2, then 4, ... Drop everything from packet 3 on
    // within the first two windows: the whole window is lost, RTO fires,
    // go-back-N resends from the last cumulative ACK.
    sim.inject_channel_drops(data_ch, [2, 3, 4, 5]);
    let stats = finish(&mut sim, tx, 12);
    assert!(stats.timeouts >= 1, "{stats:?}");
    assert!(stats.rtx_sent >= 4, "{stats:?}");
    // Reliability invariant regardless of pattern: receiver got 12
    // distinct packets (checked by finish via the train record).
}

#[test]
fn lost_acks_are_absorbed_by_cumulative_acking() {
    let (mut sim, tx, _, ack_ch) = pair(&CcKind::Reno, TcpConfig::default(), 30 * MSS as u64);
    // Drop a third of the ACKs: later cumulative ACKs cover the holes,
    // so no retransmission and no timeout may occur.
    sim.inject_channel_drops(ack_ch, [2, 5, 8, 11, 14, 17, 20, 23]);
    let stats = finish(&mut sim, tx, 30);
    assert_eq!(stats.rtx_sent, 0, "{stats:?}");
    assert_eq!(stats.timeouts, 0, "{stats:?}");
}

#[test]
fn lost_trim_probes_fall_back_and_recover() {
    let cfg = TcpConfig::default().with_min_rto(Dur::from_millis(20));
    let trim = CcKind::trim_with_capacity(1_000_000_000, MSS);
    let mut sim: Simulator<Segment> = Simulator::new();
    let mut rx = TcpHost::new();
    rx.add_receiver(FlowId(0), cfg);
    let rx_node = sim.add_host(Box::new(rx));
    let mut tx = TcpHost::new();
    let idx = tx.add_sender(FlowId(0), rx_node, cfg, &trim);
    // First train warms the estimators (5 packets: arrivals 0..4); the
    // second train, 50 ms later, starts with two probes (arrivals 5, 6).
    tx.schedule_train(idx, SimTime::from_secs_f64(0.001), 5 * MSS as u64);
    tx.schedule_train(idx, SimTime::from_secs_f64(0.05), 10 * MSS as u64);
    let tx_node = sim.add_host(Box::new(tx));
    let (data_ch, _) = sim.connect(
        tx_node,
        rx_node,
        Bandwidth::gbps(1),
        Dur::from_micros(50),
        QueueConfig::drop_tail(1000),
    );
    sim.inject_channel_drops(data_ch, [5, 6]); // both probes vanish
    sim.run_until(SimTime::from_secs(5));
    let host: &TcpHost = sim.host(tx_node);
    let conn = host.connection(0);
    assert!(conn.is_idle(), "{:?}", conn.stats());
    assert_eq!(conn.completed_trains().len(), 2);
    let stats = conn.stats();
    assert_eq!(stats.probes_sent, 2, "{stats:?}");
    // With both probes lost, the deadline falls back to cwnd = 2 and the
    // RTO retransmits the probes; everything still completes exactly once.
    assert!(stats.timeouts >= 1, "{stats:?}");
    assert!(stats.rtx_sent >= 2, "{stats:?}");
}

#[test]
fn karns_rule_takes_no_sample_from_a_retransmit_echo() {
    // A one-packet train whose only packet is lost: the retransmission's
    // echo is the sole ACK, and Karn's rule forbids sampling it — the
    // estimator must end the transfer with no RTT estimate at all.
    let cfg = TcpConfig::default().with_min_rto(Dur::from_millis(20));
    let (mut sim, tx, data_ch, _) = pair(&CcKind::Reno, cfg, MSS as u64);
    sim.inject_channel_drops(data_ch, [0]);
    let stats = finish(&mut sim, tx, 1);
    assert_eq!(stats.timeouts, 1, "{stats:?}");
    assert_eq!(stats.rtx_sent, 1, "{stats:?}");
    let host: &TcpHost = sim.host(tx);
    assert_eq!(
        host.connection(0).srtt(),
        None,
        "retransmit echo must not produce an RTT sample"
    );
    // Control: the clean transfer does sample.
    let (mut sim, tx, _, _) = pair(&CcKind::Reno, TcpConfig::default(), MSS as u64);
    finish(&mut sim, tx, 1);
    let host: &TcpHost = sim.host(tx);
    assert!(host.connection(0).srtt().is_some());
}

#[test]
fn rto_backoff_doubles_and_caps_at_64() {
    // Lose the first 10 transmissions of a one-packet train. With a 2 ms
    // base RTO the successive timeouts fire after 2, 4, 8, 16, 32, 64,
    // 128, 128, 128, 128 ms (the exponential backoff caps at 64x), so
    // the packet finally lands ~638 ms in. Without the cap the total
    // would exceed 2 s; without doubling it would be ~20 ms.
    let cfg = TcpConfig::default().with_min_rto(Dur::from_millis(2));
    let (mut sim, tx, data_ch, _) = pair(&CcKind::Reno, cfg, MSS as u64);
    sim.inject_channel_drops(data_ch, 0..10);
    let stats = finish(&mut sim, tx, 1);
    assert_eq!(stats.timeouts, 10, "{stats:?}");
    assert_eq!(stats.rtx_sent, 10, "{stats:?}");
    let host: &TcpHost = sim.host(tx);
    let ct = host.connection(0).completed_trains()[0]
        .completion_time()
        .as_secs_f64();
    assert!(ct > 0.6, "backoff must grow exponentially: {ct}s");
    assert!(ct < 0.8, "backoff must cap at 64x: {ct}s");
}

#[test]
fn loss_patterns_are_reproducible() {
    let run = || {
        let cfg = TcpConfig::default().with_min_rto(Dur::from_millis(20));
        let (mut sim, tx, data_ch, _) = pair(&CcKind::Reno, cfg, 50 * MSS as u64);
        sim.inject_channel_drops(data_ch, [3, 9, 27]);
        let stats = finish(&mut sim, tx, 50);
        (
            stats.pkts_sent,
            stats.rtx_sent,
            stats.timeouts,
            stats.fast_retransmits,
        )
    };
    assert_eq!(run(), run());
}

// ---- SACK ----
//
// These tests give the connection a large initial window so the whole
// train is transmitted in one burst: channel arrival indices then equal
// packet sequence numbers exactly, and the injected losses hit the
// intended packets even after retransmissions begin.

fn one_burst(mut cfg: TcpConfig) -> TcpConfig {
    cfg.init_cwnd = 128.0;
    cfg
}

#[test]
fn sack_repairs_many_holes_without_rto() {
    let cfg = one_burst(
        TcpConfig::default()
            .with_min_rto(Dur::from_millis(20))
            .with_sack(),
    );
    let (mut sim, tx, data_ch, _) = pair(&CcKind::Reno, cfg, 60 * MSS as u64);
    // Five scattered losses in flight: NewReno would need one RTT per
    // hole (or an RTO); SACK repairs them all within recovery.
    sim.inject_channel_drops(data_ch, [6, 11, 16, 21, 26]);
    let stats = finish(&mut sim, tx, 60);
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(stats.rtx_sent, 5, "exactly the holes: {stats:?}");
    assert_eq!(stats.fast_retransmits, 1, "{stats:?}");
}

#[test]
fn sack_never_retransmits_delivered_data() {
    let cfg = one_burst(
        TcpConfig::default()
            .with_min_rto(Dur::from_millis(20))
            .with_sack(),
    );
    let (mut sim, tx, data_ch, _) = pair(&CcKind::Reno, cfg, 40 * MSS as u64);
    sim.inject_channel_drops(data_ch, [5, 6, 7]); // one contiguous hole
    let stats = finish(&mut sim, tx, 40);
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(
        stats.rtx_sent, 3,
        "only the hole is repaired, nothing sacked is resent: {stats:?}"
    );
}

#[test]
fn sack_and_newreno_deliver_identical_data() {
    let run = |sack: bool| {
        let mut cfg = one_burst(TcpConfig::default().with_min_rto(Dur::from_millis(20)));
        if sack {
            cfg = cfg.with_sack();
        }
        let (mut sim, tx, data_ch, _) = pair(&CcKind::Reno, cfg, 80 * MSS as u64);
        sim.inject_channel_drops(data_ch, [4, 9, 14, 40, 41, 42, 70]);
        finish(&mut sim, tx, 80)
    };
    let newreno = run(false);
    let sack = run(true);
    // Same data delivered either way; SACK needs no more (usually fewer)
    // retransmissions and no more timeouts.
    assert!(
        sack.rtx_sent <= newreno.rtx_sent + 1,
        "{sack:?} vs {newreno:?}"
    );
    assert!(sack.timeouts <= newreno.timeouts, "{sack:?} vs {newreno:?}");
}

#[test]
fn trim_composes_with_sack() {
    let cfg = one_burst(
        TcpConfig::default()
            .with_min_rto(Dur::from_millis(20))
            .with_sack(),
    );
    let trim = CcKind::trim_with_capacity(1_000_000_000, MSS);
    let (mut sim, tx, data_ch, _) = pair(&trim, cfg, 50 * MSS as u64);
    sim.inject_channel_drops(data_ch, [8, 9, 20]);
    let stats = finish(&mut sim, tx, 50);
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(stats.rtx_sent, 3, "{stats:?}");
}

// ---- Delayed ACKs ----

#[test]
fn delayed_acks_halve_the_ack_count() {
    let run = |delack: bool| {
        let mut cfg = TcpConfig::default();
        if delack {
            cfg = cfg.with_delayed_ack(Dur::from_millis(40));
        }
        let (mut sim, tx, _, _) = pair(&CcKind::Reno, cfg, 100 * MSS as u64);
        sim.run_until(SimTime::from_secs(10));
        let host: &TcpHost = sim.host(tx);
        assert!(host.connection(0).is_idle());
        host.connection(0).stats().acks_received
    };
    let every = run(false);
    let delayed = run(true);
    assert_eq!(every, 100, "ACK-per-packet baseline");
    assert!(
        delayed < 60,
        "coalescing should roughly halve ACKs: {delayed}"
    );
}

#[test]
fn delayed_acks_do_not_delay_loss_recovery() {
    let cfg = TcpConfig::default()
        .with_min_rto(Dur::from_millis(200))
        .with_delayed_ack(Dur::from_millis(40));
    let (mut sim, tx, data_ch, _) = pair(&CcKind::Reno, cfg, 30 * MSS as u64);
    sim.inject_channel_drops(data_ch, [5]);
    let stats = finish(&mut sim, tx, 30);
    // Out-of-order arrivals are acked immediately, so fast retransmit
    // still fires and no RTO is needed.
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(stats.fast_retransmits, 1, "{stats:?}");
    let host: &TcpHost = sim.host(tx);
    let ct = host.connection(0).completed_trains()[0]
        .completion_time()
        .as_secs_f64();
    assert!(ct < 0.1, "no delack stall: {ct}s");
}

#[test]
fn trim_probes_bypass_ack_delay() {
    let cfg = TcpConfig::default().with_delayed_ack(Dur::from_millis(40));
    let trim = CcKind::trim_with_capacity(1_000_000_000, MSS);
    let mut sim: Simulator<Segment> = Simulator::new();
    let mut rx = TcpHost::new();
    rx.add_receiver(FlowId(0), cfg);
    let rx_node = sim.add_host(Box::new(rx));
    let mut tx = TcpHost::new();
    let idx = tx.add_sender(FlowId(0), rx_node, cfg, &trim);
    tx.schedule_train(idx, SimTime::from_secs_f64(0.001), 10 * MSS as u64);
    tx.schedule_train(idx, SimTime::from_secs_f64(0.1), 10 * MSS as u64);
    let tx_node = sim.add_host(Box::new(tx));
    sim.connect(
        tx_node,
        rx_node,
        Bandwidth::gbps(1),
        Dur::from_micros(50),
        QueueConfig::drop_tail(1000),
    );
    sim.run_until(SimTime::from_secs(2));
    let host: &TcpHost = sim.host(tx_node);
    let conn = host.connection(0);
    assert!(conn.is_idle());
    assert_eq!(conn.completed_trains().len(), 2);
    let stats = conn.stats();
    assert_eq!(stats.probes_sent, 2, "{stats:?}");
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    // The second train completes quickly: the probe ACKs were not held
    // for the 40 ms delack timer (which would exceed the probe deadline).
    let second = conn.completed_trains()[1].completion_time().as_secs_f64();
    assert!(second < 0.01, "probe ACKs immediate: {second}s");
}
