//! Property-based tests for the TCP stack: reliability under arbitrary
//! loss patterns, estimator bounds, and controller invariants.

use proptest::prelude::*;

use netsim::prelude::*;
use netsim::time::SimTime;
use trim_tcp::rto::RtoEstimator;
use trim_tcp::{CcKind, Segment, TcpConfig, TcpHost};

/// Exactly-once delivery: whatever the buffer size, fan-in, and train
/// schedule, every byte handed to TCP is eventually delivered in order,
/// exactly once.
fn reliability_case(
    cc: CcKind,
    n_senders: usize,
    buffer: usize,
    trains: &[(f64, u64)],
) -> Result<(), TestCaseError> {
    let mut sim: Simulator<Segment> = Simulator::new();
    let sw = sim.add_switch();
    let mut fe = TcpHost::new();
    for i in 0..n_senders {
        fe.add_receiver(FlowId(i as u64), TcpConfig::default());
    }
    let fe = sim.add_host(Box::new(fe));
    sim.connect(
        fe,
        sw,
        Bandwidth::gbps(1),
        Dur::from_micros(20),
        QueueConfig::drop_tail(buffer),
    );
    let cfg = TcpConfig::default().with_min_rto(Dur::from_millis(10));
    let mut senders = Vec::new();
    for i in 0..n_senders {
        let mut h = TcpHost::new();
        let idx = h.add_sender(FlowId(i as u64), fe, cfg, &cc);
        for &(at, bytes) in trains {
            h.schedule_train(idx, SimTime::from_secs_f64(at), bytes);
        }
        let node = sim.add_host(Box::new(h));
        sim.connect(
            node,
            sw,
            Bandwidth::gbps(1),
            Dur::from_micros(20),
            QueueConfig::drop_tail(buffer.max(32)),
        );
        senders.push(node);
    }
    sim.run_until(SimTime::from_secs(30));

    let total_pkts: u64 = trains.iter().map(|&(_, b)| b.div_ceil(1460)).sum();
    for (i, &s) in senders.iter().enumerate() {
        let host: &TcpHost = sim.host(s);
        let conn = host.connection(0);
        prop_assert!(
            conn.is_idle(),
            "sender {i} incomplete: flight={} stats={:?}",
            conn.flight(),
            conn.stats()
        );
        prop_assert_eq!(conn.completed_trains().len(), trains.len());
        let rx: &TcpHost = sim.host(fe);
        let delivered = rx.receiver(i).stats().delivered_pkts;
        prop_assert_eq!(delivered, total_pkts, "sender {} delivery", i);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reno delivers everything exactly once through lossy bottlenecks.
    #[test]
    fn reno_is_reliable_under_loss(
        n_senders in 1usize..5,
        buffer in 2usize..40,
        trains in proptest::collection::vec(
            (0.0f64..0.2, 1_000u64..200_000), 1..6),
    ) {
        reliability_case(CcKind::Reno, n_senders, buffer, &trains)?;
    }

    /// TCP-TRIM preserves TCP's reliability: probing and delay back-off
    /// never lose or duplicate data.
    #[test]
    fn trim_is_reliable_under_loss(
        n_senders in 1usize..5,
        buffer in 2usize..40,
        trains in proptest::collection::vec(
            (0.0f64..0.2, 1_000u64..200_000), 1..6),
    ) {
        let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
        reliability_case(trim, n_senders, buffer, &trains)?;
    }

    /// DCTCP under ECN marking also delivers exactly once.
    #[test]
    fn dctcp_is_reliable_under_marking(
        n_senders in 1usize..4,
        trains in proptest::collection::vec(
            (0.0f64..0.1, 10_000u64..300_000), 1..4),
    ) {
        reliability_case(CcKind::Dctcp, n_senders, 30, &trains)?;
    }

    /// The RTO estimate is always within its configured bounds, for any
    /// sample sequence.
    #[test]
    fn rto_respects_bounds(
        samples in proptest::collection::vec(1u64..10_000_000_000, 0..200),
        min_ms in 1u64..100,
    ) {
        let min = Dur::from_millis(min_ms);
        let max = Dur::from_millis(min_ms * 10);
        let mut e = RtoEstimator::new(min, max);
        for &s in &samples {
            e.observe(Dur::from_nanos(s));
            let rto = e.rto();
            prop_assert!(rto >= min && rto <= max, "rto {rto} out of bounds");
        }
    }

    /// Window state clamps always hold after arbitrary controller input.
    #[test]
    fn cwnd_never_leaves_its_bounds(
        acks in proptest::collection::vec(
            (1u64..1_000_000, 0u64..5, any::<bool>(), any::<bool>()), 1..300),
    ) {
        use trim_tcp::cc::{AckInfo, WindowState};
        for kind in [
            CcKind::Reno,
            CcKind::Cubic,
            CcKind::Dctcp,
            CcKind::L2dct,
            CcKind::trim_with_capacity(1_000_000_000, 1460),
            CcKind::Gip,
        ] {
            let mut cc = kind.build();
            let mut w = WindowState::new(2.0, 64.0, 2.0, 1000.0);
            let mut now_ns = 0;
            let mut seq = 0u64;
            for &(rtt_ns, newly, ece, probe) in &acks {
                now_ns += rtt_ns / 4 + 1;
                seq += newly;
                cc.on_ack(&mut w, &AckInfo {
                    now: SimTime::from_nanos(now_ns),
                    rtt: Some(Dur::from_nanos(rtt_ns)),
                    newly_acked: newly,
                    ack_seq: seq,
                    next_seq: seq + 10,
                    flight: 10,
                    ece,
                    probe_echo: probe,
                });
                w.clamp_cwnd();
                prop_assert!(
                    w.cwnd >= 2.0 && w.cwnd <= 1000.0,
                    "{}: cwnd {} escaped bounds",
                    cc.name(),
                    w.cwnd
                );
                prop_assert!(w.cwnd.is_finite());
            }
            // Loss handling also stays in bounds.
            cc.on_fast_retransmit(&mut w, 10, SimTime::from_nanos(now_ns));
            w.clamp_cwnd();
            prop_assert!(w.cwnd >= 2.0);
            cc.on_timeout(&mut w, 10, SimTime::from_nanos(now_ns));
            w.clamp_cwnd();
            prop_assert!(w.cwnd >= 2.0 && w.ssthresh >= 2.0);
        }
    }
}
