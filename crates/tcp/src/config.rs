//! TCP connection configuration.

use netsim::time::Dur;

/// Parameters of a simulated TCP connection.
///
/// Defaults match the paper's NS2 setup: 1460-byte packets, minimum
/// congestion window of 2, an initial retransmission timeout of 200 ms, and
/// ACK-per-packet receivers.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Data packet wire size in bytes (the paper sets 1460).
    pub mss_bytes: u32,
    /// ACK wire size in bytes.
    pub ack_bytes: u32,
    /// Initial congestion window in packets.
    pub init_cwnd: f64,
    /// Floor for the congestion window in packets.
    pub min_cwnd: f64,
    /// Congestion window used when restarting after a retransmission
    /// timeout.
    pub restart_cwnd: f64,
    /// Ceiling for the congestion window in packets.
    pub max_cwnd: f64,
    /// Initial slow-start threshold in packets.
    pub init_ssthresh: f64,
    /// Retransmission timeout before any RTT sample, and also the RTO
    /// floor (the paper varies this per experiment: 200 ms, 20 ms, 1 ms).
    pub min_rto: Dur,
    /// Upper bound on the backed-off RTO.
    pub max_rto: Dur,
    /// Duplicate-ACK threshold for fast retransmit.
    pub dupack_threshold: u32,
    /// Enable selective acknowledgments (RFC 2018-style): the receiver
    /// reports out-of-order blocks and the sender repairs exactly the
    /// holes instead of relying on NewReno partial ACKs / go-back-N.
    /// Off by default to match the paper's NS2 Reno substrate.
    pub sack: bool,
    /// Delayed acknowledgments: coalesce ACKs for up to two in-order
    /// packets or this timeout, whichever first (RFC 1122). Out-of-order
    /// data, duplicates, CE-marked packets (DCTCP) and TRIM probe packets
    /// are always acknowledged immediately. `None` (the default) ACKs
    /// every packet, matching NS2.
    pub delayed_ack: Option<Dur>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss_bytes: 1460,
            ack_bytes: 40,
            init_cwnd: 2.0,
            min_cwnd: 2.0,
            restart_cwnd: 2.0,
            max_cwnd: 1e9,
            init_ssthresh: 1e9,
            min_rto: Dur::from_millis(200),
            max_rto: Dur::from_secs(60),
            dupack_threshold: 3,
            sack: false,
            delayed_ack: None,
        }
    }
}

impl TcpConfig {
    /// Sets the minimum retransmission timeout (also the pre-sample RTO).
    pub fn with_min_rto(mut self, rto: Dur) -> Self {
        self.min_rto = rto;
        self
    }

    /// Enables selective acknowledgments.
    pub fn with_sack(mut self) -> Self {
        self.sack = true;
        self
    }

    /// Enables delayed acknowledgments with the given timeout.
    pub fn with_delayed_ack(mut self, timeout: Dur) -> Self {
        self.delayed_ack = Some(timeout);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field when a parameter is
    /// out of range.
    // `!(x >= 1.0)` deliberately rejects NaN, unlike `x < 1.0`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if self.mss_bytes == 0 {
            return Err("mss_bytes must be positive".into());
        }
        if self.ack_bytes == 0 {
            return Err("ack_bytes must be positive".into());
        }
        if !(self.min_cwnd >= 1.0) {
            return Err(format!("min_cwnd must be >= 1, got {}", self.min_cwnd));
        }
        if self.init_cwnd < self.min_cwnd || self.restart_cwnd < 1.0 {
            return Err("initial/restart windows must respect the floor".into());
        }
        if self.max_cwnd < self.init_cwnd {
            return Err("max_cwnd below init_cwnd".into());
        }
        if self.min_rto == Dur::ZERO || self.max_rto < self.min_rto {
            return Err("RTO bounds invalid".into());
        }
        if self.dupack_threshold == 0 {
            return Err("dupack_threshold must be positive".into());
        }
        if self.delayed_ack == Some(Dur::ZERO) {
            return Err("delayed_ack timeout must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_valid() {
        TcpConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_fields() {
        let mut c = TcpConfig {
            mss_bytes: 0,
            ..TcpConfig::default()
        };
        assert!(c.validate().is_err());
        c.mss_bytes = 1460;
        c.min_cwnd = 0.0;
        assert!(c.validate().is_err());
        c.min_cwnd = 2.0;
        c.max_rto = Dur::from_millis(1);
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_min_rto_builder() {
        let c = TcpConfig::default().with_min_rto(Dur::from_millis(20));
        assert_eq!(c.min_rto, Dur::from_millis(20));
    }
}
