//! The flat flow slab: struct-of-arrays storage for the hot half of
//! every sending connection on a host, keyed by dense flow id.
//!
//! At million-flow scale the old `Vec<Connection>` layout paid a cache
//! miss per field: one ACK walks the window, the RTO estimator, and the
//! sequence cursors, each buried in a ~300-byte struct next to cold
//! train queues and controller boxes. The slab stores those per-ACK
//! fields in parallel vectors (`cwnd`, `ssthresh`, `srtt`, `rttvar`,
//! sequence cursors — inflight is `next_seq - high_ack`), so an event
//! touches a handful of dense columns; everything else stays behind one
//! `Box<ColdConn>` per flow.
//!
//! [`checkout`](FlowSlab::checkout) gathers a [`HotFlow`] record from
//! the columns and [`writeback`](FlowSlab::writeback) scatters it back —
//! both are exact copies (f64 values move verbatim, the RTO estimator
//! roundtrips via [`RtoEstimator::parts`]), so the split is
//! observationally identical to the old layout and committed goldens
//! stay byte-identical.
//!
//! Slots are recycled through a freelist with generation counters and
//! allocated/freed accounting, so teardown at scale reuses ids instead
//! of growing the columns, and [`leak_check`](FlowSlab::leak_check)
//! catches any slot that is neither live nor free.

use netsim::sim::TimerId;
use netsim::time::Dur;

use crate::cc::WindowState;
use crate::conn::ColdConn;
use crate::rto::RtoEstimator;

/// The per-event working set of one sending connection, gathered from
/// the slab's columns. Plain `Copy` data: gather, mutate, scatter.
#[derive(Clone, Copy, Debug)]
pub struct HotFlow {
    /// Congestion window state (cwnd/ssthresh/bounds/suspended).
    pub win: WindowState,
    /// RFC 6298 estimator (srtt/rttvar plus the configured clamp).
    pub rto_est: RtoEstimator,
    /// Next fresh sequence to transmit.
    pub next_seq: u64,
    /// Highest cumulative ACK received.
    pub high_ack: u64,
    /// Highest sequence ever transmitted (fresh data high-water mark).
    pub max_seq_sent: u64,
    /// Total packets handed over by the application so far.
    pub total_pkts: u64,
    /// NewReno recovery point: recovery ends at this sequence.
    pub recover: u64,
    /// Consecutive duplicate ACKs seen.
    pub dup_acks: u32,
    /// Karn backoff multiplier (doubles per RTO, capped at 64).
    pub backoff: u32,
    /// Whether fast recovery is in progress.
    pub in_recovery: bool,
    /// The armed retransmission timer, if any.
    pub rto_timer: Option<TimerId>,
}

/// Lifecycle accounting for a [`FlowSlab`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlabAudit {
    /// Flows ever inserted.
    pub allocated: u64,
    /// Flows removed (including leaked removals).
    pub freed: u64,
    /// Currently live flows (`allocated - freed`).
    pub live: u64,
    /// Peak concurrent live flows.
    pub high_water: u64,
}

/// Struct-of-arrays slab of sender state, keyed by dense flow id.
#[derive(Debug, Default)]
pub struct FlowSlab {
    // Hot columns, one entry per slot, parallel by construction.
    cwnd: Vec<f64>,
    ssthresh: Vec<f64>,
    min_cwnd: Vec<f64>,
    max_cwnd: Vec<f64>,
    suspended: Vec<bool>,
    srtt: Vec<f64>,
    has_srtt: Vec<bool>,
    rttvar: Vec<f64>,
    next_seq: Vec<u64>,
    high_ack: Vec<u64>,
    max_seq_sent: Vec<u64>,
    total_pkts: Vec<u64>,
    recover: Vec<u64>,
    dup_acks: Vec<u32>,
    backoff: Vec<u32>,
    in_recovery: Vec<bool>,
    rto_timer: Vec<Option<TimerId>>,
    // RTO clamp bounds, duplicated from the cold config so checkout
    // never touches the cold box.
    min_rto: Vec<Dur>,
    max_rto: Vec<Dur>,

    /// The cold half; `None` marks a vacant (or leaked) slot.
    cold: Vec<Option<Box<ColdConn>>>,
    /// Slot birth count: bumped on every removal, so tests can observe
    /// id reuse.
    generation: Vec<u32>,
    /// Vacant slot ids available for reuse.
    freelist: Vec<usize>,

    allocated: u64,
    freed: u64,
    high_water: u64,
    /// Fault injection: leak the next removed slot (drop the cold half
    /// but never return the id to the freelist).
    leak_next_remove: bool,
}

impl FlowSlab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        FlowSlab::default()
    }

    /// Creates an empty slab with column capacity for `n` flows.
    pub fn with_capacity(n: usize) -> Self {
        let mut s = FlowSlab::default();
        s.cwnd.reserve(n);
        s.ssthresh.reserve(n);
        s.min_cwnd.reserve(n);
        s.max_cwnd.reserve(n);
        s.suspended.reserve(n);
        s.srtt.reserve(n);
        s.has_srtt.reserve(n);
        s.rttvar.reserve(n);
        s.next_seq.reserve(n);
        s.high_ack.reserve(n);
        s.max_seq_sent.reserve(n);
        s.total_pkts.reserve(n);
        s.recover.reserve(n);
        s.dup_acks.reserve(n);
        s.backoff.reserve(n);
        s.in_recovery.reserve(n);
        s.rto_timer.reserve(n);
        s.min_rto.reserve(n);
        s.max_rto.reserve(n);
        s.cold.reserve(n);
        s.generation.reserve(n);
        s
    }

    /// Live flows.
    pub fn len(&self) -> usize {
        (self.allocated - self.freed) as usize
    }

    /// Whether no flows are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever created (live + vacant + leaked).
    pub fn capacity(&self) -> usize {
        self.cold.len()
    }

    /// Whether `id` names a live flow.
    pub fn contains(&self, id: usize) -> bool {
        self.cold.get(id).is_some_and(Option::is_some)
    }

    /// The slot's birth count: 0 for a first occupant, +1 per removal.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never allocated.
    pub fn generation(&self, id: usize) -> u32 {
        self.generation[id]
    }

    /// Lifecycle accounting so far.
    pub fn audit(&self) -> SlabAudit {
        SlabAudit {
            allocated: self.allocated,
            freed: self.freed,
            live: self.allocated - self.freed,
            high_water: self.high_water,
        }
    }

    /// Inserts a connection's split state; returns its dense flow id and
    /// stamps it into the cold half's `local_idx` (timer tokens embed
    /// it). Vacated ids are reused before the columns grow.
    pub(crate) fn insert(&mut self, hot: HotFlow, mut cold: Box<ColdConn>) -> usize {
        self.allocated += 1;
        self.high_water = self.high_water.max(self.allocated - self.freed);
        if let Some(id) = self.freelist.pop() {
            cold.local_idx = id as u64;
            self.cold[id] = Some(cold);
            self.writeback(id, &hot);
            id
        } else {
            let id = self.cold.len();
            cold.local_idx = id as u64;
            self.cwnd.push(hot.win.cwnd);
            self.ssthresh.push(hot.win.ssthresh);
            self.min_cwnd.push(hot.win.min_cwnd);
            self.max_cwnd.push(hot.win.max_cwnd);
            self.suspended.push(hot.win.suspended);
            let (srtt, rttvar) = hot.rto_est.parts();
            self.srtt.push(srtt.unwrap_or(0.0));
            self.has_srtt.push(srtt.is_some());
            self.rttvar.push(rttvar);
            self.next_seq.push(hot.next_seq);
            self.high_ack.push(hot.high_ack);
            self.max_seq_sent.push(hot.max_seq_sent);
            self.total_pkts.push(hot.total_pkts);
            self.recover.push(hot.recover);
            self.dup_acks.push(hot.dup_acks);
            self.backoff.push(hot.backoff);
            self.in_recovery.push(hot.in_recovery);
            self.rto_timer.push(hot.rto_timer);
            self.min_rto.push(cold.cfg.min_rto);
            self.max_rto.push(cold.cfg.max_rto);
            self.cold.push(Some(cold));
            self.generation.push(0);
            id
        }
    }

    /// Removes a live flow, returning its cold half. The caller must
    /// have cancelled the flow's timers first (`ColdConn::cancel_timers`)
    /// so a recycled id cannot receive stale fires.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub(crate) fn remove(&mut self, id: usize) -> Box<ColdConn> {
        let cold = self.cold[id].take().expect("removed a vacant flow slot"); // trim-lint: allow(no-panic-in-library, reason = "double-free of a flow id is a host bug, not a recoverable state")
        self.freed += 1;
        self.generation[id] += 1;
        if self.leak_next_remove {
            // Fault: forget the slot instead of freeing it. leak_check()
            // must notice the id is neither live nor on the freelist.
            self.leak_next_remove = false;
        } else {
            self.freelist.push(id);
        }
        cold
    }

    /// Fault injection: the next [`Self::remove`] drops the cold half
    /// but never returns the id to the freelist, simulating a lifecycle
    /// bug. Exists to prove [`Self::leak_check`] catches it.
    pub fn inject_slot_leak(&mut self) {
        self.leak_next_remove = true;
    }

    /// Verifies the lifecycle books balance: occupied slots match
    /// `allocated - freed`, and every slot is either live or on the
    /// freelist (exactly once).
    pub fn leak_check(&self) -> Result<(), String> {
        let occupied = self.cold.iter().filter(|c| c.is_some()).count() as u64;
        let live = self.allocated - self.freed;
        if occupied != live {
            return Err(format!(
                "slab books disagree: {occupied} occupied slots vs {} allocated - {} freed",
                self.allocated, self.freed
            ));
        }
        let mut seen = vec![false; self.cold.len()];
        for &id in &self.freelist {
            if self.cold[id].is_some() {
                return Err(format!("freelist holds live flow id {id}"));
            }
            if seen[id] {
                return Err(format!("freelist holds flow id {id} twice"));
            }
            seen[id] = true;
        }
        let reachable = occupied as usize + self.freelist.len();
        if reachable != self.cold.len() {
            return Err(format!(
                "{} slab slot(s) leaked: {} total, {occupied} live, {} free",
                self.cold.len() - reachable,
                self.cold.len(),
                self.freelist.len()
            ));
        }
        Ok(())
    }

    /// Gathers the hot record for flow `id` from the columns.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never allocated.
    pub fn checkout(&self, id: usize) -> HotFlow {
        HotFlow {
            win: WindowState {
                cwnd: self.cwnd[id],
                ssthresh: self.ssthresh[id],
                min_cwnd: self.min_cwnd[id],
                max_cwnd: self.max_cwnd[id],
                suspended: self.suspended[id],
            },
            rto_est: RtoEstimator::from_parts(
                self.min_rto[id],
                self.max_rto[id],
                self.has_srtt[id].then(|| self.srtt[id]),
                self.rttvar[id],
            ),
            next_seq: self.next_seq[id],
            high_ack: self.high_ack[id],
            max_seq_sent: self.max_seq_sent[id],
            total_pkts: self.total_pkts[id],
            recover: self.recover[id],
            dup_acks: self.dup_acks[id],
            backoff: self.backoff[id],
            in_recovery: self.in_recovery[id],
            rto_timer: self.rto_timer[id],
        }
    }

    /// Scatters a hot record back into the columns.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never allocated.
    pub fn writeback(&mut self, id: usize, hot: &HotFlow) {
        self.cwnd[id] = hot.win.cwnd;
        self.ssthresh[id] = hot.win.ssthresh;
        self.min_cwnd[id] = hot.win.min_cwnd;
        self.max_cwnd[id] = hot.win.max_cwnd;
        self.suspended[id] = hot.win.suspended;
        let (srtt, rttvar) = hot.rto_est.parts();
        self.srtt[id] = srtt.unwrap_or(0.0);
        self.has_srtt[id] = srtt.is_some();
        self.rttvar[id] = rttvar;
        self.next_seq[id] = hot.next_seq;
        self.high_ack[id] = hot.high_ack;
        self.max_seq_sent[id] = hot.max_seq_sent;
        self.total_pkts[id] = hot.total_pkts;
        self.recover[id] = hot.recover;
        self.dup_acks[id] = hot.dup_acks;
        self.backoff[id] = hot.backoff;
        self.in_recovery[id] = hot.in_recovery;
        self.rto_timer[id] = hot.rto_timer;
    }

    /// Borrows the cold half of flow `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub(crate) fn cold(&self, id: usize) -> &ColdConn {
        self.cold[id].as_deref().expect("vacant flow slot") // trim-lint: allow(no-panic-in-library, reason = "reading a freed flow id is a host bug")
    }

    /// Mutably borrows the cold half of flow `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub(crate) fn cold_mut(&mut self, id: usize) -> &mut ColdConn {
        self.cold[id].as_deref_mut().expect("vacant flow slot") // trim-lint: allow(no-panic-in-library, reason = "reading a freed flow id is a host bug")
    }

    /// Ids of live flows, ascending.
    pub fn live_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.cold
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::CcKind;
    use crate::config::TcpConfig;
    use crate::conn::new_conn;
    use crate::segment::Segment;
    use netsim::prelude::FlowId;
    use netsim::sim::Simulator;

    /// Any valid `NodeId` works as a destination; borrow one from a
    /// throwaway simulator.
    fn dst() -> netsim::packet::NodeId {
        let mut sim: Simulator<Segment> = Simulator::new();
        sim.add_switch()
    }

    fn entry(flow: u64, cfg: TcpConfig) -> (HotFlow, Box<ColdConn>) {
        new_conn(FlowId(flow), dst(), cfg, CcKind::Reno.build())
    }

    fn filled(n: u64) -> FlowSlab {
        let mut s = FlowSlab::new();
        for f in 0..n {
            let (hot, cold) = entry(f, TcpConfig::default());
            s.insert(hot, cold);
        }
        s
    }

    #[test]
    fn insert_assigns_dense_ids_and_counts() {
        let mut s = FlowSlab::with_capacity(4);
        for f in 0..3u64 {
            let (hot, cold) = entry(f, TcpConfig::default());
            assert_eq!(s.insert(hot, cold), f as usize);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.capacity(), 3);
        assert!(s.contains(2) && !s.contains(3));
        assert_eq!(s.cold(1).flow, FlowId(1));
        assert_eq!(s.cold(1).local_idx, 1);
        assert_eq!(
            s.audit(),
            SlabAudit {
                allocated: 3,
                freed: 0,
                live: 3,
                high_water: 3,
            }
        );
        assert_eq!(s.live_ids().collect::<Vec<_>>(), vec![0, 1, 2]);
        s.leak_check().unwrap();
    }

    #[test]
    fn removed_id_is_reused_with_bumped_generation() {
        let mut s = filled(2);
        assert_eq!(s.generation(0), 0);
        let cold = s.remove(0);
        assert_eq!(cold.flow, FlowId(0));
        assert!(!s.contains(0));
        assert_eq!(s.generation(0), 1);
        s.leak_check().unwrap();

        // The vacated id is reused before the columns grow, and the new
        // occupant's local_idx is restamped.
        let (hot, cold) = entry(9, TcpConfig::default());
        assert_eq!(s.insert(hot, cold), 0);
        assert_eq!(s.cold(0).flow, FlowId(9));
        assert_eq!(s.cold(0).local_idx, 0);
        assert_eq!(s.capacity(), 2, "reuse must not grow the columns");
        assert_eq!(
            s.audit(),
            SlabAudit {
                allocated: 3,
                freed: 1,
                live: 2,
                high_water: 2,
            }
        );
        s.leak_check().unwrap();
    }

    #[test]
    fn checkout_writeback_roundtrip_is_bit_exact() {
        let mut s = filled(2);
        let mut hot = s.checkout(1);
        // Deliberately awkward values: non-dyadic floats, the Karn
        // backoff cap, recovery flags, a large sequence cursor.
        hot.win.cwnd = 0.1 + 0.2;
        hot.win.ssthresh = 37.25;
        hot.win.suspended = true;
        hot.rto_est.observe(Dur::from_nanos(123_457));
        hot.rto_est.observe(Dur::from_nanos(7_654_321));
        hot.next_seq = u64::MAX - 3;
        hot.high_ack = 1 << 40;
        hot.max_seq_sent = u64::MAX - 3;
        hot.total_pkts = 99;
        hot.recover = (1 << 40) + 17;
        hot.dup_acks = 3;
        hot.backoff = 64;
        hot.in_recovery = true;
        s.writeback(1, &hot);

        let back = s.checkout(1);
        assert_eq!(back.win.cwnd.to_bits(), hot.win.cwnd.to_bits());
        assert_eq!(back.win.ssthresh.to_bits(), hot.win.ssthresh.to_bits());
        assert!(back.win.suspended);
        let (srtt_a, rttvar_a) = hot.rto_est.parts();
        let (srtt_b, rttvar_b) = back.rto_est.parts();
        assert_eq!(srtt_b.map(f64::to_bits), srtt_a.map(f64::to_bits));
        assert_eq!(rttvar_b.to_bits(), rttvar_a.to_bits());
        assert_eq!(back.rto_est.rto(), hot.rto_est.rto());
        assert_eq!(back.next_seq, hot.next_seq);
        assert_eq!(back.high_ack, hot.high_ack);
        assert_eq!(back.max_seq_sent, hot.max_seq_sent);
        assert_eq!(back.total_pkts, hot.total_pkts);
        assert_eq!(back.recover, hot.recover);
        assert_eq!(back.dup_acks, hot.dup_acks);
        assert_eq!(back.backoff, hot.backoff);
        assert!(back.in_recovery);
        assert_eq!(back.rto_timer, hot.rto_timer);

        // The no-sample estimator state also survives (srtt None).
        let fresh = s.checkout(0);
        assert_eq!(fresh.rto_est.parts().0, None);
        assert_eq!(fresh.rto_est.rto(), TcpConfig::default().min_rto);
    }

    /// Satellite proof for the migration: the RFC 6298 recurrence holds
    /// bit-for-bit when the estimator lives in slab columns and is
    /// gathered/scattered around every sample, exactly like the per-event
    /// checkout in `TcpHost`.
    #[test]
    fn slab_backed_rfc6298_matches_direct_estimator() {
        const MS: u64 = 1_000_000;
        let streams: [&[u64]; 4] = [
            &[10 * MS],
            &[10 * MS, 20 * MS, 20 * MS],
            &[100_000, 5 * MS, 123_457, 90 * MS],
            &[3 * MS, 3 * MS, 3 * MS, 3 * MS, 3 * MS, 50 * MS],
        ];
        for (i, samples) in streams.iter().enumerate() {
            let cfg = TcpConfig {
                min_rto: Dur::from_millis(1),
                max_rto: Dur::from_millis(40),
                ..TcpConfig::default()
            };
            let mut direct = RtoEstimator::new(cfg.min_rto, cfg.max_rto);
            let mut s = FlowSlab::new();
            let (hot, cold) = entry(i as u64, cfg);
            let id = s.insert(hot, cold);
            for &ns in *samples {
                direct.observe(Dur::from_nanos(ns));
                let mut hot = s.checkout(id);
                hot.rto_est.observe(Dur::from_nanos(ns));
                s.writeback(id, &hot);
                let stored = s.checkout(id).rto_est;
                assert_eq!(stored.rto(), direct.rto(), "stream {i}");
                assert_eq!(
                    stored.parts().0.map(f64::to_bits),
                    direct.parts().0.map(f64::to_bits),
                    "stream {i}"
                );
                assert_eq!(
                    stored.parts().1.to_bits(),
                    direct.parts().1.to_bits(),
                    "stream {i}"
                );
            }
        }
    }

    #[test]
    fn injected_slot_leak_is_caught() {
        let mut s = filled(3);
        s.inject_slot_leak();
        let _ = s.remove(1);
        // The books still count the free, but the id is gone: neither
        // live nor on the freelist.
        assert_eq!(s.audit().freed, 1);
        let err = s.leak_check().unwrap_err();
        assert!(err.contains("leaked"), "unexpected message: {err}");

        // The leaked id must never be handed out again: the next insert
        // grows the columns instead.
        let (hot, cold) = entry(9, TcpConfig::default());
        assert_eq!(s.insert(hot, cold), 3);
        // The fault is one-shot: a later remove frees normally.
        let _ = s.remove(2);
        let (hot, cold) = entry(10, TcpConfig::default());
        assert_eq!(s.insert(hot, cold), 2);
    }

    #[test]
    fn leak_check_flags_corrupt_freelists() {
        // White-box: corrupt the freelist directly to prove the checks
        // are live (a live id on the freelist, then a duplicate entry).
        let mut s = filled(2);
        s.freelist.push(1);
        let err = s.leak_check().unwrap_err();
        assert!(err.contains("live flow id 1"), "unexpected message: {err}");

        let mut s = filled(2);
        let _ = s.remove(0);
        s.freelist.push(0);
        let err = s.leak_check().unwrap_err();
        assert!(err.contains("twice"), "unexpected message: {err}");
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn double_remove_panics() {
        let mut s = filled(1);
        let _ = s.remove(0);
        let _ = s.remove(0);
    }
}
