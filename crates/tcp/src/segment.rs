//! TCP segments as `netsim` payloads.
//!
//! Sequence numbers count packets (not bytes), matching the NS2 TCP model
//! the paper evaluates on. Every data packet carries a timestamp that the
//! receiver echoes, giving the sender per-ACK RTT samples (needed by
//! TCP-TRIM's delay-based control and by DCTCP-style accounting).

use netsim::time::SimTime;
use netsim::Payload;

/// Up to three selective-acknowledgment blocks, each `[start, end)` in
/// packet sequence numbers, most recently changed block first (RFC 2018).
pub type SackBlocks = [Option<(u64, u64)>; 3];

/// The transport header of a simulated packet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Kind-specific header fields.
    pub kind: SegKind,
    /// ECN-Capable Transport: eligible for CE marking at switches.
    pub ect: bool,
    /// Congestion Experienced: set by a switch queue above its marking
    /// threshold.
    pub ce: bool,
}

/// Data or acknowledgment header.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SegKind {
    /// A data packet.
    Data {
        /// Packet sequence number (0-based, counts packets).
        seq: u64,
        /// Set on TCP-TRIM probe packets (Algorithm 1); echoed by the
        /// receiver so the sender recognizes probe ACKs.
        is_probe: bool,
        /// Set on retransmissions; the echo is then ignored for RTT
        /// sampling (Karn's rule).
        is_rtx: bool,
        /// Sender timestamp, echoed in the ACK.
        ts: SimTime,
    },
    /// A cumulative acknowledgment.
    Ack {
        /// The next packet sequence number the receiver expects.
        ack_seq: u64,
        /// Echo of the triggering data packet's `ts`.
        echo_ts: SimTime,
        /// Echo of the triggering data packet's `is_probe`.
        echo_probe: bool,
        /// Echo of the triggering data packet's `is_rtx`.
        echo_rtx: bool,
        /// ECN Echo: the triggering data packet arrived CE-marked.
        ece: bool,
        /// Selective-acknowledgment blocks (empty when SACK is off).
        sack: SackBlocks,
    },
}

impl Segment {
    /// Creates a data segment.
    pub fn data(seq: u64, is_probe: bool, is_rtx: bool, ts: SimTime, ect: bool) -> Self {
        Segment {
            kind: SegKind::Data {
                seq,
                is_probe,
                is_rtx,
                ts,
            },
            ect,
            ce: false,
        }
    }

    /// Creates an ACK segment echoing the fields of a received data
    /// segment.
    pub fn ack(
        ack_seq: u64,
        echo_ts: SimTime,
        echo_probe: bool,
        echo_rtx: bool,
        ece: bool,
    ) -> Self {
        Segment::ack_with_sack(ack_seq, echo_ts, echo_probe, echo_rtx, ece, [None; 3])
    }

    /// Creates an ACK segment carrying selective-acknowledgment blocks.
    pub fn ack_with_sack(
        ack_seq: u64,
        echo_ts: SimTime,
        echo_probe: bool,
        echo_rtx: bool,
        ece: bool,
        sack: SackBlocks,
    ) -> Self {
        Segment {
            kind: SegKind::Ack {
                ack_seq,
                echo_ts,
                echo_probe,
                echo_rtx,
                ece,
                sack,
            },
            ect: false,
            ce: false,
        }
    }

    /// Whether this is a data segment.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, SegKind::Data { .. })
    }
}

impl Payload for Segment {
    fn ecn_capable(&self) -> bool {
        self.ect && self.is_data()
    }

    fn mark_ce(&mut self) {
        self.ce = true;
    }

    fn is_ce(&self) -> bool {
        self.ce
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_is_ecn_capable_only_when_ect() {
        let d = Segment::data(0, false, false, SimTime::ZERO, true);
        assert!(d.ecn_capable());
        let d2 = Segment::data(0, false, false, SimTime::ZERO, false);
        assert!(!d2.ecn_capable());
    }

    #[test]
    fn acks_are_never_marked() {
        let a = Segment::ack(5, SimTime::ZERO, false, false, false);
        assert!(!a.ecn_capable());
        assert!(!a.is_data());
    }

    #[test]
    fn ce_marking_round_trip() {
        let mut d = Segment::data(3, true, false, SimTime::from_secs(1), true);
        assert!(!d.is_ce());
        d.mark_ce();
        assert!(d.is_ce());
    }
}
