//! GIP-style baseline (Zhang et al., ICNP 2013, as discussed in the
//! paper's related work): every packet train restarts at the minimum
//! congestion window, with no probing. The paper argues this conservative
//! restart underutilizes the bottleneck when capacity is plentiful —
//! this controller exists to reproduce that ablation.

use netsim::time::SimTime;
use trim_core::estimator::RttTracker;

use super::{reno_halve, reno_increase, AckInfo, CcAlgo, PreSendAction, WindowState};

/// Fixed-restart controller: on an inter-train gap, set `cwnd` to the
/// floor and continue (no probes, no suspension).
#[derive(Debug)]
pub struct Gip {
    rtt: RttTracker,
    last_send_ns: Option<u64>,
}

impl Gip {
    /// Creates the controller with the paper's smoothing weight (0.25).
    pub fn new() -> Self {
        Gip {
            rtt: RttTracker::new(0.25),
            last_send_ns: None,
        }
    }
}

impl Default for Gip {
    fn default() -> Self {
        Gip::new()
    }
}

impl CcAlgo for Gip {
    fn name(&self) -> &'static str {
        "gip"
    }

    fn on_ack(&mut self, w: &mut WindowState, info: &AckInfo) {
        if let Some(rtt) = info.rtt {
            self.rtt.observe(rtt.as_nanos());
        }
        reno_increase(w, info.newly_acked);
    }

    fn on_fast_retransmit(&mut self, w: &mut WindowState, flight: u64, _now: SimTime) {
        reno_halve(w, flight);
    }

    fn on_timeout(&mut self, w: &mut WindowState, flight: u64, _now: SimTime) {
        w.ssthresh = (flight as f64 / 2.0).max(w.min_cwnd);
    }

    fn pre_send(&mut self, w: &mut WindowState, now: SimTime, _available: u64) -> PreSendAction {
        if let (Some(last), Some(smooth)) = (self.last_send_ns, self.rtt.smooth_ns()) {
            if now.as_nanos().saturating_sub(last) > smooth && w.cwnd > w.min_cwnd {
                // Restart conservatively; slow start will rebuild.
                w.ssthresh = (w.cwnd / 2.0).max(w.min_cwnd);
                w.cwnd = w.min_cwnd;
            }
        }
        PreSendAction::Continue
    }

    fn note_sent(&mut self, now: SimTime) {
        self.last_send_ns = Some(now.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::Dur;

    fn ack(rtt_us: u64, newly: u64) -> AckInfo {
        AckInfo {
            now: SimTime::ZERO,
            rtt: Some(Dur::from_micros(rtt_us)),
            newly_acked: newly,
            ack_seq: 0,
            next_seq: 0,
            flight: 0,
            ece: false,
            probe_echo: false,
        }
    }

    #[test]
    fn restart_on_gap_without_probe() {
        let mut w = WindowState::new(100.0, 1e9, 2.0, 1e9);
        let mut c = Gip::new();
        c.on_ack(&mut w, &ack(100, 0));
        c.note_sent(SimTime::from_nanos(0));
        let act = c.pre_send(&mut w, SimTime::from_nanos(10_000_000), 50);
        assert_eq!(act, PreSendAction::Continue, "GIP never probes");
        assert_eq!(w.cwnd, 2.0, "window restarted at floor");
        assert_eq!(w.ssthresh, 50.0);
    }

    #[test]
    fn no_restart_within_smooth_rtt() {
        let mut w = WindowState::new(100.0, 1e9, 2.0, 1e9);
        let mut c = Gip::new();
        c.on_ack(&mut w, &ack(100, 0));
        c.note_sent(SimTime::from_nanos(0));
        let _ = c.pre_send(&mut w, SimTime::from_nanos(50_000), 50);
        assert_eq!(w.cwnd, 100.0);
    }
}
