//! TCP Reno: slow start, congestion avoidance, halving on loss. This is
//! the "TCP" baseline of every figure in the paper.

use netsim::time::SimTime;

use super::{reno_halve, reno_increase, AckInfo, CcAlgo, WindowState};

/// Classic Reno congestion control.
#[derive(Debug, Default)]
pub struct Reno {
    _private: (),
}

impl Reno {
    /// Creates a Reno controller.
    pub fn new() -> Self {
        Reno::default()
    }
}

impl CcAlgo for Reno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn on_ack(&mut self, w: &mut WindowState, info: &AckInfo) {
        reno_increase(w, info.newly_acked);
    }

    fn on_fast_retransmit(&mut self, w: &mut WindowState, flight: u64, _now: SimTime) {
        reno_halve(w, flight);
    }

    fn on_timeout(&mut self, w: &mut WindowState, flight: u64, _now: SimTime) {
        w.ssthresh = (flight as f64 / 2.0).max(w.min_cwnd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::Dur;

    fn info(newly_acked: u64) -> AckInfo {
        AckInfo {
            now: SimTime::ZERO,
            rtt: Some(Dur::from_micros(100)),
            newly_acked,
            ack_seq: 0,
            next_seq: 0,
            flight: 0,
            ece: false,
            probe_echo: false,
        }
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut w = WindowState::new(2.0, 1e9, 2.0, 1e9);
        let mut cc = Reno::new();
        cc.on_ack(&mut w, &info(2));
        assert_eq!(w.cwnd, 4.0);
        cc.on_ack(&mut w, &info(4));
        assert_eq!(w.cwnd, 8.0);
    }

    #[test]
    fn congestion_avoidance_linear() {
        let mut w = WindowState::new(10.0, 5.0, 2.0, 1e9);
        let mut cc = Reno::new();
        // 10 acks of one window: cwnd grows by ~1.
        for _ in 0..10 {
            cc.on_ack(&mut w, &info(1));
        }
        assert!((w.cwnd - 11.0).abs() < 0.06);
    }

    #[test]
    fn loss_halves_window() {
        let mut w = WindowState::new(64.0, 1e9, 2.0, 1e9);
        let mut cc = Reno::new();
        cc.on_fast_retransmit(&mut w, 64, SimTime::ZERO);
        assert_eq!(w.cwnd, 32.0);
        assert_eq!(w.ssthresh, 32.0);
    }

    #[test]
    fn timeout_sets_ssthresh_only() {
        let mut w = WindowState::new(64.0, 1e9, 2.0, 1e9);
        let mut cc = Reno::new();
        cc.on_timeout(&mut w, 40, SimTime::ZERO);
        assert_eq!(w.ssthresh, 20.0);
        // The connection resets cwnd to restart_cwnd itself.
        assert_eq!(w.cwnd, 64.0);
    }
}
