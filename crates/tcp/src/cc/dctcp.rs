//! DCTCP (Alizadeh et al., SIGCOMM 2010): ECN-fraction-proportional window
//! reduction. One of the paper's two data-center comparison protocols
//! (Fig. 12, Table I); parameters follow the DCTCP paper as the text
//! states.

use netsim::time::SimTime;

use super::{reno_increase, AckInfo, CcAlgo, WindowState};

/// EWMA gain for the marked fraction (the DCTCP paper's `g = 1/16`).
const G: f64 = 1.0 / 16.0;

/// DCTCP congestion control.
#[derive(Debug)]
pub struct Dctcp {
    /// Smoothed fraction of CE-marked packets.
    alpha: f64,
    /// Packets acked since the current observation window began.
    acked: u64,
    /// Of those, packets whose ACKs carried ECE.
    marked: u64,
    /// End of the current observation window (one window of data).
    window_end: u64,
    /// Whether a reduction was already applied in this window.
    reduced_this_window: bool,
}

impl Dctcp {
    /// Creates a DCTCP controller with `alpha = 1` (conservative start,
    /// per the DCTCP paper).
    pub fn new() -> Self {
        Dctcp {
            alpha: 1.0,
            acked: 0,
            marked: 0,
            window_end: 0,
            reduced_this_window: false,
        }
    }

    /// The smoothed marked fraction.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Default for Dctcp {
    fn default() -> Self {
        Dctcp::new()
    }
}

impl CcAlgo for Dctcp {
    fn name(&self) -> &'static str {
        "dctcp"
    }

    fn uses_ecn(&self) -> bool {
        true
    }

    fn on_ack(&mut self, w: &mut WindowState, info: &AckInfo) {
        self.acked += info.newly_acked;
        if info.ece {
            self.marked += info.newly_acked.max(1);
            if !self.reduced_this_window {
                // Cut once per window by alpha/2 (DCTCP Eq. 2).
                w.cwnd *= 1.0 - self.alpha / 2.0;
                w.ssthresh = w.cwnd;
                w.clamp_cwnd();
                self.reduced_this_window = true;
            }
        } else {
            reno_increase(w, info.newly_acked);
        }
        if info.ack_seq >= self.window_end {
            // One window of data acknowledged: fold the observed fraction
            // into alpha and start the next observation window.
            let f = if self.acked > 0 {
                (self.marked as f64 / self.acked as f64).min(1.0)
            } else {
                0.0
            };
            self.alpha = (1.0 - G) * self.alpha + G * f;
            self.acked = 0;
            self.marked = 0;
            self.window_end = info.next_seq;
            self.reduced_this_window = false;
        }
    }

    fn on_fast_retransmit(&mut self, w: &mut WindowState, flight: u64, _now: SimTime) {
        super::reno_halve(w, flight);
    }

    fn on_timeout(&mut self, w: &mut WindowState, flight: u64, _now: SimTime) {
        w.ssthresh = (flight as f64 / 2.0).max(w.min_cwnd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::Dur;

    fn info(newly: u64, ack_seq: u64, next_seq: u64, ece: bool) -> AckInfo {
        AckInfo {
            now: SimTime::ZERO,
            rtt: Some(Dur::from_micros(100)),
            newly_acked: newly,
            ack_seq,
            next_seq,
            flight: 0,
            ece,
            probe_echo: false,
        }
    }

    #[test]
    fn no_marks_behaves_like_reno() {
        let mut w = WindowState::new(2.0, 1e9, 2.0, 1e9);
        let mut cc = Dctcp::new();
        cc.on_ack(&mut w, &info(2, 2, 4, false));
        assert_eq!(w.cwnd, 4.0);
    }

    #[test]
    fn alpha_decays_without_marks() {
        let mut w = WindowState::new(10.0, 1e9, 2.0, 1e9);
        let mut cc = Dctcp::new();
        let mut seq = 0;
        for _ in 0..100 {
            seq += 10;
            cc.on_ack(&mut w, &info(10, seq, seq + 10, false));
        }
        assert!(cc.alpha() < 0.01, "alpha should decay, got {}", cc.alpha());
    }

    #[test]
    fn persistent_marks_drive_alpha_to_one_and_halve() {
        let mut w = WindowState::new(100.0, 50.0, 2.0, 1e9);
        let mut cc = Dctcp::new();
        let before = w.cwnd;
        cc.on_ack(&mut w, &info(1, 1, 100, true));
        // alpha starts at 1: full halving on first mark.
        assert!((w.cwnd - before / 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_reduction_per_window() {
        let mut w = WindowState::new(100.0, 50.0, 2.0, 1e9);
        let mut cc = Dctcp::new();
        cc.window_end = 1000; // keep the whole test inside one window
        cc.on_ack(&mut w, &info(1, 1, 100, true));
        let after_first = w.cwnd;
        cc.on_ack(&mut w, &info(1, 2, 100, true));
        assert_eq!(w.cwnd, after_first, "second mark in same window ignored");
    }

    #[test]
    fn fractional_marking_gives_gentle_cut() {
        let mut w = WindowState::new(100.0, 50.0, 2.0, 1e9);
        let mut cc = Dctcp::new();
        // Drive alpha down first with many unmarked windows.
        let mut seq = 0;
        for _ in 0..60 {
            seq += 10;
            cc.on_ack(&mut w, &info(10, seq, seq + 10, false));
        }
        let alpha = cc.alpha();
        assert!(alpha < 0.05);
        w.cwnd = 100.0;
        w.ssthresh = 100.0;
        cc.on_ack(&mut w, &info(1, seq + 1, seq + 200, true));
        let expected = 100.0 * (1.0 - alpha / 2.0);
        assert!(
            (w.cwnd - expected).abs() < 1.0,
            "gentle cut: {} vs {}",
            w.cwnd,
            expected
        );
    }
}
