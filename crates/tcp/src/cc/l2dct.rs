//! L2DCT (Munir et al., INFOCOM 2013): DCTCP-style ECN control whose
//! aggressiveness follows Least-Attained-Service — short flows grow faster
//! and back off less than long flows. The paper's second data-center
//! comparison protocol (Fig. 12, Table I).
//!
//! The weight schedule follows the L2DCT paper's shape: the increase
//! weight `w_c` decays from `W_MAX` to `W_MIN` as the flow's attained
//! service grows, and the decrease penalty `b_c` grows with attained
//! service toward full DCTCP back-off.

use netsim::time::SimTime;

use super::{AckInfo, CcAlgo, WindowState};

const G: f64 = 1.0 / 16.0;
/// Maximum additive-increase weight (short flows).
const W_MAX: f64 = 2.5;
/// Minimum additive-increase weight (long flows).
const W_MIN: f64 = 0.125;
/// Attained service (in packets) at which a flow is considered "long";
/// 1 MB of 1460-byte packets, matching the evaluation's flow sizes.
const SERVICE_SCALE_PKTS: f64 = 700.0;

/// L2DCT congestion control.
#[derive(Debug)]
pub struct L2dct {
    alpha: f64,
    acked: u64,
    marked: u64,
    window_end: u64,
    reduced_this_window: bool,
    /// Packets acknowledged over the flow's lifetime (attained service).
    attained_pkts: u64,
}

impl L2dct {
    /// Creates an L2DCT controller.
    pub fn new() -> Self {
        L2dct {
            alpha: 1.0,
            acked: 0,
            marked: 0,
            window_end: 0,
            reduced_this_window: false,
            attained_pkts: 0,
        }
    }

    /// The smoothed marked fraction.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The current additive-increase weight `w_c` in `[W_MIN, W_MAX]`.
    pub fn increase_weight(&self) -> f64 {
        let frac = (self.attained_pkts as f64 / SERVICE_SCALE_PKTS).min(1.0);
        W_MAX - (W_MAX - W_MIN) * frac
    }

    /// The current decrease penalty `b_c` in `[0.5, 1]`.
    pub fn decrease_penalty(&self) -> f64 {
        let frac = (self.attained_pkts as f64 / SERVICE_SCALE_PKTS).min(1.0);
        0.5 + 0.5 * frac
    }
}

impl Default for L2dct {
    fn default() -> Self {
        L2dct::new()
    }
}

impl CcAlgo for L2dct {
    fn name(&self) -> &'static str {
        "l2dct"
    }

    fn uses_ecn(&self) -> bool {
        true
    }

    fn on_ack(&mut self, w: &mut WindowState, info: &AckInfo) {
        self.attained_pkts += info.newly_acked;
        self.acked += info.newly_acked;
        if info.ece {
            self.marked += info.newly_acked.max(1);
            if !self.reduced_this_window {
                let cut = self.alpha * self.decrease_penalty() / 2.0;
                w.cwnd *= 1.0 - cut;
                w.ssthresh = w.cwnd;
                w.clamp_cwnd();
                self.reduced_this_window = true;
            }
        } else {
            let wc = self.increase_weight();
            for _ in 0..info.newly_acked {
                if w.cwnd < w.ssthresh {
                    w.cwnd += 1.0;
                } else {
                    w.cwnd += wc / w.cwnd;
                }
            }
            w.clamp_cwnd();
        }
        if info.ack_seq >= self.window_end {
            let f = if self.acked > 0 {
                (self.marked as f64 / self.acked as f64).min(1.0)
            } else {
                0.0
            };
            self.alpha = (1.0 - G) * self.alpha + G * f;
            self.acked = 0;
            self.marked = 0;
            self.window_end = info.next_seq;
            self.reduced_this_window = false;
        }
    }

    fn on_fast_retransmit(&mut self, w: &mut WindowState, flight: u64, _now: SimTime) {
        super::reno_halve(w, flight);
    }

    fn on_timeout(&mut self, w: &mut WindowState, flight: u64, _now: SimTime) {
        w.ssthresh = (flight as f64 / 2.0).max(w.min_cwnd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::Dur;

    fn info(newly: u64, ack_seq: u64, next_seq: u64, ece: bool) -> AckInfo {
        AckInfo {
            now: SimTime::ZERO,
            rtt: Some(Dur::from_micros(100)),
            newly_acked: newly,
            ack_seq,
            next_seq,
            flight: 0,
            ece,
            probe_echo: false,
        }
    }

    #[test]
    fn short_flows_grow_faster_than_long() {
        let mut short = L2dct::new();
        let mut long = L2dct::new();
        long.attained_pkts = 10_000;
        assert!(short.increase_weight() > long.increase_weight());
        assert_eq!(long.increase_weight(), W_MIN);
        // In congestion avoidance, the short flow gains more per ACK.
        let mut w_short = WindowState::new(10.0, 5.0, 2.0, 1e9);
        let mut w_long = w_short;
        short.on_ack(&mut w_short, &info(1, 1, 10, false));
        long.on_ack(&mut w_long, &info(1, 1, 10, false));
        assert!(w_short.cwnd > w_long.cwnd);
    }

    #[test]
    fn long_flows_back_off_harder() {
        let mut short = L2dct::new();
        let mut long = L2dct::new();
        long.attained_pkts = 10_000;
        assert!(short.decrease_penalty() < long.decrease_penalty());
        assert_eq!(long.decrease_penalty(), 1.0);
        let mut w_short = WindowState::new(100.0, 50.0, 2.0, 1e9);
        let mut w_long = w_short;
        short.on_ack(&mut w_short, &info(1, 1, 100, true));
        long.on_ack(&mut w_long, &info(1, 1, 100, true));
        assert!(w_short.cwnd > w_long.cwnd);
    }

    #[test]
    fn weight_bounds() {
        let mut cc = L2dct::new();
        assert_eq!(cc.increase_weight(), W_MAX);
        cc.attained_pkts = u64::MAX / 2;
        assert_eq!(cc.increase_weight(), W_MIN);
        assert!(cc.decrease_penalty() <= 1.0);
    }

    #[test]
    fn alpha_updates_per_window() {
        let mut w = WindowState::new(10.0, 1e9, 2.0, 1e9);
        let mut cc = L2dct::new();
        let mut seq = 0;
        for _ in 0..50 {
            seq += 10;
            cc.on_ack(&mut w, &info(10, seq, seq + 10, false));
        }
        assert!(cc.alpha() < 0.05);
    }
}
