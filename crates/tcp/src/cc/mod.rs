//! Pluggable congestion control.
//!
//! A [`CcAlgo`] owns the *policy* — how the window grows and shrinks —
//! while the [`Connection`](crate::conn::Connection) owns the *mechanism*:
//! sequencing, loss detection, retransmission, and timers. The two
//! communicate through the shared [`WindowState`].

use std::fmt;

use netsim::time::{Dur, SimTime};

pub mod cubic;
pub mod dctcp;
pub mod gip;
pub mod l2dct;
pub mod reno;
pub mod trim;

pub use cubic::Cubic;
pub use dctcp::Dctcp;
pub use gip::Gip;
pub use l2dct::L2dct;
pub use reno::Reno;
pub use trim::TrimCc;

/// Window variables shared between a connection and its congestion
/// controller.
#[derive(Clone, Copy, Debug)]
pub struct WindowState {
    /// Congestion window in packets.
    pub cwnd: f64,
    /// Slow-start threshold in packets.
    pub ssthresh: f64,
    /// Floor for `cwnd`.
    pub min_cwnd: f64,
    /// Ceiling for `cwnd`.
    pub max_cwnd: f64,
    /// While `true`, the connection sends no new data (TCP-TRIM's probe
    /// suspension, Algorithm 1 line 6). Cleared by the controller when the
    /// probe phase resolves.
    pub suspended: bool,
}

impl WindowState {
    /// Creates the initial window state.
    pub fn new(init_cwnd: f64, init_ssthresh: f64, min_cwnd: f64, max_cwnd: f64) -> Self {
        WindowState {
            cwnd: init_cwnd,
            ssthresh: init_ssthresh,
            min_cwnd,
            max_cwnd,
            suspended: false,
        }
    }

    /// Clamps `cwnd` into `[min_cwnd, max_cwnd]`.
    pub fn clamp_cwnd(&mut self) {
        self.cwnd = self.cwnd.clamp(self.min_cwnd, self.max_cwnd);
    }
}

/// Everything a controller may want to know about an arriving ACK.
#[derive(Clone, Copy, Debug)]
pub struct AckInfo {
    /// Arrival time.
    pub now: SimTime,
    /// Round-trip sample from the echoed timestamp; `None` when the echo
    /// came from a retransmission (Karn's rule).
    pub rtt: Option<Dur>,
    /// How many packets this cumulative ACK newly acknowledged (0 for a
    /// duplicate ACK).
    pub newly_acked: u64,
    /// The cumulative acknowledgment (next expected packet).
    pub ack_seq: u64,
    /// Highest sequence sent so far plus one.
    pub next_seq: u64,
    /// Packets in flight after this ACK.
    pub flight: u64,
    /// ECN Echo flag.
    pub ece: bool,
    /// The ACK echoes a TCP-TRIM probe packet.
    pub probe_echo: bool,
}

/// Decision returned by [`CcAlgo::pre_send`] before a new data packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PreSendAction {
    /// Transmit normally.
    Continue,
    /// TCP-TRIM detected an inter-train gap: send `probes` probe packets,
    /// then suspend until the controller resumes the window or `deadline`
    /// elapses (the connection then calls
    /// [`CcAlgo::on_probe_deadline`]).
    StartProbe {
        /// Number of probe packets to flag.
        probes: u32,
        /// Deadline for the probe ACKs.
        deadline: Dur,
    },
}

/// A congestion-control policy.
///
/// Implementations mutate the shared [`WindowState`]; the connection
/// enforces the floor/ceiling afterwards via [`WindowState::clamp_cwnd`].
pub trait CcAlgo: fmt::Debug + 'static {
    /// Short name for reports ("reno", "dctcp", "trim", ...).
    fn name(&self) -> &'static str;

    /// A new cumulative ACK arrived outside fast recovery: grow (or, for
    /// delay/ECN-based policies, shrink) the window.
    fn on_ack(&mut self, w: &mut WindowState, info: &AckInfo);

    /// Entering fast recovery after the duplicate-ACK threshold: apply the
    /// multiplicative decrease. The connection adds the standard window
    /// inflation afterwards.
    fn on_fast_retransmit(&mut self, w: &mut WindowState, flight: u64, now: SimTime);

    /// A retransmission timeout fired: collapse the window.
    fn on_timeout(&mut self, w: &mut WindowState, flight: u64, now: SimTime);

    /// Called before transmitting each *new* (non-retransmitted) data
    /// packet; lets TCP-TRIM interpose its inter-train gap probe.
    /// `available` is the number of unsent packets queued.
    fn pre_send(&mut self, _w: &mut WindowState, _now: SimTime, _available: u64) -> PreSendAction {
        PreSendAction::Continue
    }

    /// Called after each data packet actually leaves the host.
    fn note_sent(&mut self, _now: SimTime) {}

    /// The probe deadline armed by [`PreSendAction::StartProbe`] elapsed.
    fn on_probe_deadline(&mut self, _w: &mut WindowState) {}

    /// Whether data packets should be sent ECN-capable (DCTCP family).
    fn uses_ecn(&self) -> bool {
        false
    }
}

/// Selects and configures a congestion-control policy; the factory for
/// [`CcAlgo`] trait objects.
#[derive(Clone, Debug)]
pub enum CcKind {
    /// TCP Reno / NewReno — the paper's "TCP" baseline.
    Reno,
    /// CUBIC, the Linux default the testbed compares against (Fig. 13).
    Cubic,
    /// DCTCP with ECN fraction estimation (comparison protocol, Fig. 12).
    Dctcp,
    /// L2DCT: DCTCP-style control weighted by attained service (Fig. 12).
    L2dct,
    /// TCP-TRIM with the given algorithm configuration.
    Trim(trim_core::TrimConfig),
    /// GIP-style baseline: restart every packet train at the minimum
    /// window without probing (related-work ablation).
    Gip,
}

impl CcKind {
    /// TCP-TRIM with defaults and the bottleneck capacity of Eq. 22.
    pub fn trim_with_capacity(bits_per_sec: u64, packet_bytes: u32) -> Self {
        CcKind::Trim(trim_core::TrimConfig::default().with_capacity(bits_per_sec, packet_bytes))
    }

    /// Instantiates the policy.
    ///
    /// # Panics
    ///
    /// Panics if a [`CcKind::Trim`] configuration fails validation.
    pub fn build(&self) -> Box<dyn CcAlgo> {
        match self {
            CcKind::Reno => Box::new(Reno::new()),
            CcKind::Cubic => Box::new(Cubic::new()),
            CcKind::Dctcp => Box::new(Dctcp::new()),
            CcKind::L2dct => Box::new(L2dct::new()),
            CcKind::Trim(cfg) => Box::new(TrimCc::new(*cfg).expect("invalid TRIM config")), // trim-lint: allow(no-panic-in-library, reason = "configs are validated when the experiment spec is built")
            CcKind::Gip => Box::new(Gip::new()),
        }
    }

    /// The policy's report name without building it.
    pub fn name(&self) -> &'static str {
        match self {
            CcKind::Reno => "reno",
            CcKind::Cubic => "cubic",
            CcKind::Dctcp => "dctcp",
            CcKind::L2dct => "l2dct",
            CcKind::Trim(_) => "trim",
            CcKind::Gip => "gip",
        }
    }
}

/// Standard Reno multiplicative decrease shared by several policies.
pub(crate) fn reno_halve(w: &mut WindowState, flight: u64) {
    w.ssthresh = (flight as f64 / 2.0).max(w.min_cwnd);
    w.cwnd = w.ssthresh;
    w.clamp_cwnd();
}

/// Standard Reno additive increase shared by several policies.
pub(crate) fn reno_increase(w: &mut WindowState, newly_acked: u64) {
    for _ in 0..newly_acked {
        if w.cwnd < w.ssthresh {
            w.cwnd += 1.0; // slow start
        } else {
            w.cwnd += 1.0 / w.cwnd; // congestion avoidance
        }
    }
    w.clamp_cwnd();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_names() {
        for kind in [
            CcKind::Reno,
            CcKind::Cubic,
            CcKind::Dctcp,
            CcKind::L2dct,
            CcKind::Trim(trim_core::TrimConfig::default()),
            CcKind::Gip,
        ] {
            let algo = kind.build();
            assert_eq!(algo.name(), kind.name());
        }
    }

    #[test]
    fn trim_with_capacity_sets_c() {
        let kind = CcKind::trim_with_capacity(1_000_000_000, 1460);
        match kind {
            CcKind::Trim(cfg) => assert!(cfg.capacity_pps.unwrap() > 0.0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn ecn_usage_by_family() {
        assert!(!CcKind::Reno.build().uses_ecn());
        assert!(CcKind::Dctcp.build().uses_ecn());
        assert!(CcKind::L2dct.build().uses_ecn());
        assert!(!CcKind::Trim(trim_core::TrimConfig::default())
            .build()
            .uses_ecn());
    }

    #[test]
    fn reno_helpers() {
        let mut w = WindowState::new(10.0, 8.0, 2.0, 100.0);
        // CA: cwnd >= ssthresh, +1/cwnd per ack.
        reno_increase(&mut w, 1);
        assert!((w.cwnd - 10.1).abs() < 1e-9);
        reno_halve(&mut w, 10);
        assert_eq!(w.cwnd, 5.0);
        assert_eq!(w.ssthresh, 5.0);
        // Slow start below ssthresh.
        w.cwnd = 2.0;
        reno_increase(&mut w, 2);
        assert_eq!(w.cwnd, 4.0);
        // Floor respected.
        reno_halve(&mut w, 1);
        assert_eq!(w.cwnd, 2.0);
    }
}
