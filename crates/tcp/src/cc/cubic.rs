//! CUBIC congestion control (RFC 8312 shape, simplified: no HyStart), used
//! for the testbed comparison of Fig. 13 where the paper pits TCP-TRIM
//! against Linux's default CUBIC.

use netsim::time::SimTime;

use super::{AckInfo, CcAlgo, WindowState};

const C_CUBIC: f64 = 0.4;
const BETA: f64 = 0.7;

/// CUBIC window growth with a TCP-friendly region.
#[derive(Debug)]
pub struct Cubic {
    w_max: f64,
    epoch_start: Option<SimTime>,
    k: f64,
    w_est: f64,
    acked_in_epoch: f64,
}

impl Cubic {
    /// Creates a CUBIC controller.
    pub fn new() -> Self {
        Cubic {
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            acked_in_epoch: 0.0,
        }
    }

    fn reset_epoch(&mut self, now: SimTime, cwnd: f64) {
        self.epoch_start = Some(now);
        if cwnd < self.w_max {
            self.k = ((self.w_max - cwnd) / C_CUBIC).cbrt();
        } else {
            self.k = 0.0;
            self.w_max = cwnd;
        }
        self.w_est = cwnd;
        self.acked_in_epoch = 0.0;
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Cubic::new()
    }
}

impl CcAlgo for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn on_ack(&mut self, w: &mut WindowState, info: &AckInfo) {
        if info.newly_acked == 0 {
            return;
        }
        if w.cwnd < w.ssthresh {
            // Standard slow start until the first loss event.
            w.cwnd += info.newly_acked as f64;
            w.clamp_cwnd();
            return;
        }
        if self.epoch_start.is_none() {
            self.reset_epoch(info.now, w.cwnd);
        }
        let start = self.epoch_start.expect("epoch initialized above"); // trim-lint: allow(no-panic-in-library, reason = "reset_epoch on the previous line set it")
        let t = info.now.saturating_since(start).as_secs_f64();
        let target = C_CUBIC * (t - self.k).powi(3) + self.w_max;
        // TCP-friendly estimate: Reno-equivalent growth within the epoch.
        self.acked_in_epoch += info.newly_acked as f64;
        let rtt = info.rtt.map(|r| r.as_secs_f64()).unwrap_or(0.0);
        if rtt > 0.0 {
            // W_est per RFC 8312: grows 3(1-beta)/(1+beta) segments per RTT.
            self.w_est += 3.0 * (1.0 - BETA) / (1.0 + BETA) * info.newly_acked as f64 / w.cwnd;
        }
        let next = target.max(self.w_est);
        if next > w.cwnd {
            // Approach the target over roughly one RTT of ACKs.
            w.cwnd += (next - w.cwnd).min(info.newly_acked as f64) / w.cwnd.max(1.0)
                * info.newly_acked as f64;
            if w.cwnd < next {
                w.cwnd += (next - w.cwnd) / w.cwnd.max(1.0);
            }
        }
        w.clamp_cwnd();
    }

    fn on_fast_retransmit(&mut self, w: &mut WindowState, _flight: u64, now: SimTime) {
        self.w_max = w.cwnd;
        w.cwnd = (w.cwnd * BETA).max(w.min_cwnd);
        w.ssthresh = w.cwnd;
        self.reset_epoch(now, w.cwnd);
        w.clamp_cwnd();
    }

    fn on_timeout(&mut self, w: &mut WindowState, _flight: u64, _now: SimTime) {
        self.w_max = w.cwnd;
        w.ssthresh = (w.cwnd * BETA).max(w.min_cwnd);
        self.epoch_start = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::Dur;

    fn info_at(ms: u64, acked: u64) -> AckInfo {
        AckInfo {
            now: SimTime::from_nanos(ms * 1_000_000),
            rtt: Some(Dur::from_micros(100)),
            newly_acked: acked,
            ack_seq: 0,
            next_seq: 0,
            flight: 0,
            ece: false,
            probe_echo: false,
        }
    }

    #[test]
    fn slow_start_before_first_loss() {
        let mut w = WindowState::new(2.0, 1e9, 2.0, 1e9);
        let mut cc = Cubic::new();
        cc.on_ack(&mut w, &info_at(0, 2));
        assert_eq!(w.cwnd, 4.0);
    }

    #[test]
    fn loss_reduces_by_beta() {
        let mut w = WindowState::new(100.0, 1e9, 2.0, 1e9);
        let mut cc = Cubic::new();
        cc.on_fast_retransmit(&mut w, 100, SimTime::ZERO);
        assert!((w.cwnd - 70.0).abs() < 1e-9);
        assert!((cc.w_max - 100.0).abs() < 1e-9);
        assert!(cc.k > 0.0);
    }

    #[test]
    fn concave_growth_toward_w_max() {
        let mut w = WindowState::new(100.0, 1e9, 2.0, 1e9);
        let mut cc = Cubic::new();
        cc.on_fast_retransmit(&mut w, 100, SimTime::ZERO);
        let after_loss = w.cwnd;
        // Feed steady ACKs for ~2 simulated seconds.
        for ms in 1..2000 {
            cc.on_ack(&mut w, &info_at(ms, 1));
        }
        assert!(w.cwnd > after_loss, "window should recover");
        assert!(
            w.cwnd >= 95.0,
            "after K seconds cwnd approaches w_max, got {}",
            w.cwnd
        );
    }

    #[test]
    fn timeout_clears_epoch() {
        let mut w = WindowState::new(50.0, 25.0, 2.0, 1e9);
        let mut cc = Cubic::new();
        cc.on_ack(&mut w, &info_at(0, 1));
        assert!(cc.epoch_start.is_some());
        cc.on_timeout(&mut w, 50, SimTime::from_secs(1));
        assert!(cc.epoch_start.is_none());
        assert!((w.ssthresh - 35.0).abs() < 0.1, "ssthresh={}", w.ssthresh);
    }
}
