//! The TCP-TRIM controller: Reno-style growth plus the two TRIM
//! mechanisms from `trim-core` — probe-based window inheritance on
//! inter-train gaps (Algorithm 1) and delay-based queuing control
//! (Algorithm 2).

use netsim::time::{Dur, SimTime};
use trim_core::{SendDecision, Trim, TrimConfig, WindowAction};

use super::{reno_halve, reno_increase, AckInfo, CcAlgo, PreSendAction, WindowState};

/// TCP-TRIM congestion control.
#[derive(Debug)]
pub struct TrimCc {
    trim: Trim,
}

impl TrimCc {
    /// Creates a TRIM controller.
    ///
    /// # Errors
    ///
    /// Returns the validation message when `cfg` is out of range.
    pub fn new(cfg: TrimConfig) -> Result<Self, String> {
        Ok(TrimCc {
            trim: Trim::new(cfg)?,
        })
    }

    /// The underlying algorithm state (for diagnostics and tests).
    pub fn state(&self) -> &Trim {
        &self.trim
    }

    fn apply(&self, w: &mut WindowState, action: WindowAction) {
        match action {
            WindowAction::None => {}
            WindowAction::SetAndResume(cwnd) => {
                w.cwnd = cwnd;
                w.suspended = false;
                w.clamp_cwnd();
                // The tuned window is a congestion-derived operating
                // point: continue in congestion avoidance, not slow
                // start (as every TCP reduction moves ssthresh).
                w.ssthresh = w.cwnd;
            }
            WindowAction::FallbackAndResume(cwnd) => {
                // Deadline miss: collapse the window but keep ssthresh so
                // the connection slow-starts back, as after an RTO.
                w.cwnd = cwnd;
                w.suspended = false;
                w.clamp_cwnd();
            }
            WindowAction::Scale(f) => {
                w.cwnd *= f;
                w.clamp_cwnd();
                w.ssthresh = w.cwnd;
            }
        }
    }
}

impl CcAlgo for TrimCc {
    fn name(&self) -> &'static str {
        "trim"
    }

    fn on_ack(&mut self, w: &mut WindowState, info: &AckInfo) {
        // Normal Reno growth first; TRIM's delay-based reduction then
        // applies on top (probe ACKs skip growth — the probe result sets
        // the window outright).
        if !info.probe_echo {
            reno_increase(w, info.newly_acked);
        }
        if let Some(rtt) = info.rtt {
            let action = self
                .trim
                .on_ack(info.now.as_nanos(), rtt.as_nanos(), info.probe_echo);
            self.apply(w, action);
        }
    }

    fn on_fast_retransmit(&mut self, w: &mut WindowState, flight: u64, _now: SimTime) {
        reno_halve(w, flight);
    }

    fn on_timeout(&mut self, w: &mut WindowState, flight: u64, _now: SimTime) {
        w.ssthresh = (flight as f64 / 2.0).max(w.min_cwnd);
        self.trim.on_rto();
        w.suspended = false;
    }

    fn pre_send(&mut self, w: &mut WindowState, now: SimTime, available: u64) -> PreSendAction {
        match self.trim.on_send_attempt(now.as_nanos(), w.cwnd) {
            SendDecision::Continue => PreSendAction::Continue,
            SendDecision::StartProbe {
                probe_cwnd,
                deadline_ns,
            } => {
                let probes = (self.trim.config().probe_packets as u64).min(available.max(1)) as u32;
                self.trim.begin_probe(w.cwnd, probes);
                w.cwnd = probe_cwnd;
                w.clamp_cwnd();
                PreSendAction::StartProbe {
                    probes,
                    deadline: Dur::from_nanos(deadline_ns),
                }
            }
        }
    }

    fn note_sent(&mut self, now: SimTime) {
        self.trim.note_sent(now.as_nanos());
    }

    fn on_probe_deadline(&mut self, w: &mut WindowState) {
        let action = self.trim.on_probe_deadline();
        self.apply(w, action);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc() -> TrimCc {
        TrimCc::new(TrimConfig::default().with_capacity(1_000_000_000, 1460)).unwrap()
    }

    fn win() -> WindowState {
        WindowState::new(2.0, 1e9, 2.0, 1e9)
    }

    fn ack_at(now_us: u64, rtt_us: u64, newly: u64, probe: bool) -> AckInfo {
        AckInfo {
            now: SimTime::from_nanos(now_us * 1000),
            rtt: Some(Dur::from_micros(rtt_us)),
            newly_acked: newly,
            ack_seq: 0,
            next_seq: 0,
            flight: 0,
            ece: false,
            probe_echo: probe,
        }
    }

    #[test]
    fn grows_like_reno_without_congestion() {
        let mut w = win();
        let mut c = cc();
        c.on_ack(&mut w, &ack_at(100, 100, 2, false));
        assert_eq!(w.cwnd, 4.0);
    }

    #[test]
    fn full_probe_cycle_through_trait() {
        let mut w = win();
        let mut c = cc();
        w.cwnd = 500.0;
        w.ssthresh = 1.0; // avoid slow-start noise
                          // Seed the estimators.
        c.on_ack(&mut w, &ack_at(100, 100, 0, false));
        c.note_sent(SimTime::from_nanos(200_000));
        // 10ms later: gap.
        let act = c.pre_send(&mut w, SimTime::from_nanos(10_200_000), 100);
        match act {
            PreSendAction::StartProbe { probes, deadline } => {
                assert_eq!(probes, 2);
                assert_eq!(deadline, Dur::from_micros(100));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(w.cwnd, 2.0, "window shrunk for probing");
        w.suspended = true; // connection does this after sending the probes
                            // First probe ACK: still suspended.
        c.on_ack(&mut w, &ack_at(10_400, 110, 1, true));
        assert!(w.suspended);
        // Second probe ACK: resumed with the tuned window (factor 0.9).
        c.on_ack(&mut w, &ack_at(10_500, 110, 1, true));
        assert!(!w.suspended);
        assert!((w.cwnd - 450.0).abs() < 1.0, "cwnd={}", w.cwnd);
    }

    #[test]
    fn probe_deadline_resumes_at_floor() {
        let mut w = win();
        let mut c = cc();
        w.cwnd = 300.0;
        c.on_ack(&mut w, &ack_at(100, 100, 0, false));
        c.note_sent(SimTime::from_nanos(200_000));
        let _ = c.pre_send(&mut w, SimTime::from_nanos(50_200_000), 100);
        w.suspended = true;
        c.on_probe_deadline(&mut w);
        assert!(!w.suspended);
        assert_eq!(w.cwnd, 2.0);
    }

    #[test]
    fn delay_backoff_applies_after_growth() {
        let mut w = win();
        let mut c = cc();
        w.cwnd = 100.0;
        w.ssthresh = 1.0;
        // min_RTT = 100us -> K ~ 275us; a 1000us RTT triggers back-off.
        c.on_ack(&mut w, &ack_at(100, 100, 0, false));
        c.on_ack(&mut w, &ack_at(500, 1000, 1, false));
        // Growth: 100 + 1/100 = 100.01, then scaled by (1 - ep/2) < 1.
        assert!(w.cwnd < 100.0, "cwnd={}", w.cwnd);
        assert!(w.cwnd > 50.0, "no more than halving");
        assert_eq!(c.state().queue_backoffs(), 1);
    }

    #[test]
    fn timeout_aborts_probe_and_unsuspends() {
        let mut w = win();
        let mut c = cc();
        w.cwnd = 300.0;
        c.on_ack(&mut w, &ack_at(100, 100, 0, false));
        c.note_sent(SimTime::from_nanos(200_000));
        let _ = c.pre_send(&mut w, SimTime::from_nanos(50_200_000), 100);
        w.suspended = true;
        c.on_timeout(&mut w, 2, SimTime::from_nanos(60_000_000));
        assert!(!w.suspended);
        assert!(!c.state().is_probing());
    }

    #[test]
    fn delay_reduction_never_drops_cwnd_below_floor() {
        let mut w = win();
        let mut c = cc();
        w.cwnd = 2.1; // just above the floor of 2 packets
        w.ssthresh = 1.0;
        c.on_ack(&mut w, &ack_at(100, 100, 0, false));
        // A pathological RTT drives ep toward 1, so the raw scale would
        // land near 1.05 — below min_cwnd. The clamp must hold the floor.
        c.on_ack(&mut w, &ack_at(500, 100_000, 0, false));
        assert_eq!(c.state().queue_backoffs(), 1, "back-off must have fired");
        assert_eq!(w.cwnd, 2.0, "delay-based reduction broke the cwnd floor");
        assert_eq!(w.ssthresh, 2.0, "ssthresh follows the clamped window");
    }

    #[test]
    fn no_probe_without_gap() {
        let mut w = win();
        let mut c = cc();
        w.cwnd = 100.0;
        c.on_ack(&mut w, &ack_at(100, 100, 0, false));
        c.note_sent(SimTime::from_nanos(200_000));
        // 50us later, well within smooth RTT.
        let act = c.pre_send(&mut w, SimTime::from_nanos(250_000), 100);
        assert_eq!(act, PreSendAction::Continue);
    }
}
