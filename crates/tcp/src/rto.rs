//! RFC 6298-style retransmission-timeout estimation.

use netsim::time::Dur;

/// SRTT/RTTVAR estimator with the standard gains (1/8, 1/4) and a
/// configurable floor and ceiling.
#[derive(Clone, Copy, Debug)]
pub struct RtoEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    min: Dur,
    max: Dur,
}

impl RtoEstimator {
    /// Creates an estimator; before any sample [`Self::rto`] returns the
    /// floor `min`.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or `max < min`.
    pub fn new(min: Dur, max: Dur) -> Self {
        assert!(min > Dur::ZERO, "RTO floor must be positive");
        assert!(max >= min, "RTO ceiling below floor");
        RtoEstimator {
            srtt: None,
            rttvar: 0.0,
            min,
            max,
        }
    }

    /// Feeds a round-trip sample.
    pub fn observe(&mut self, rtt: Dur) {
        let r = rtt.as_nanos() as f64;
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
    }

    /// The current retransmission timeout: `SRTT + 4*RTTVAR`, clamped to
    /// `[min, max]`.
    pub fn rto(&self) -> Dur {
        match self.srtt {
            None => self.min,
            Some(srtt) => {
                let raw = srtt + 4.0 * self.rttvar;
                Dur::from_nanos(raw.round() as u64)
                    .max(self.min)
                    .min(self.max)
            }
        }
    }

    /// The smoothed RTT, if any sample has arrived.
    pub fn srtt(&self) -> Option<Dur> {
        self.srtt.map(|s| Dur::from_nanos(s.round() as u64))
    }

    /// Decomposes the estimator into its raw `(srtt, rttvar)` state for
    /// struct-of-arrays storage. The values are the exact f64 internals,
    /// so `from_parts(min, max, parts)` is a bit-identical roundtrip.
    pub fn parts(&self) -> (Option<f64>, f64) {
        (self.srtt, self.rttvar)
    }

    /// Rebuilds an estimator from [`Self::parts`] output plus the clamp
    /// bounds it was created with.
    pub fn from_parts(min: Dur, max: Dur, srtt: Option<f64>, rttvar: f64) -> Self {
        debug_assert!(min > Dur::ZERO && max >= min);
        RtoEstimator {
            srtt,
            rttvar,
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RtoEstimator {
        RtoEstimator::new(Dur::from_millis(1), Dur::from_secs(60))
    }

    #[test]
    fn initial_rto_is_floor() {
        assert_eq!(est().rto(), Dur::from_millis(1));
    }

    #[test]
    fn first_sample_sets_srtt_and_var() {
        let mut e = est();
        e.observe(Dur::from_millis(10));
        assert_eq!(e.srtt(), Some(Dur::from_millis(10)));
        // RTO = 10ms + 4*5ms = 30ms.
        assert_eq!(e.rto(), Dur::from_millis(30));
    }

    #[test]
    fn converges_on_steady_input() {
        let mut e = est();
        for _ in 0..200 {
            e.observe(Dur::from_micros(100));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_nanos() as i64 - 100_000).abs() < 100);
        // Variance decays, so RTO approaches the floor.
        assert_eq!(e.rto(), Dur::from_millis(1));
    }

    #[test]
    fn jitter_raises_rto() {
        let mut e = est();
        for i in 0..100 {
            let us = if i % 2 == 0 { 100 } else { 10_000 };
            e.observe(Dur::from_micros(us));
        }
        assert!(e.rto() > Dur::from_millis(10));
    }

    #[test]
    fn respects_ceiling() {
        let mut e = RtoEstimator::new(Dur::from_millis(1), Dur::from_millis(5));
        e.observe(Dur::from_secs(10));
        assert_eq!(e.rto(), Dur::from_millis(5));
    }

    #[test]
    #[should_panic]
    fn zero_floor_rejected() {
        let _ = RtoEstimator::new(Dur::ZERO, Dur::from_secs(1));
    }

    /// The slab stores estimators decomposed into parallel `srtt` and
    /// `rttvar` vectors; a checkout/writeback roundtrip must be
    /// bit-exact or RTO arithmetic would drift from the goldens.
    #[test]
    fn parts_roundtrip_is_bit_exact() {
        let mut e = est();
        for i in 1..50u64 {
            e.observe(Dur::from_micros(100 + 37 * i));
        }
        let (srtt, rttvar) = e.parts();
        let r = RtoEstimator::from_parts(Dur::from_millis(1), Dur::from_secs(60), srtt, rttvar);
        assert_eq!(r.rto(), e.rto());
        assert_eq!(r.srtt(), e.srtt());
        assert_eq!(r.parts().0.map(f64::to_bits), srtt.map(f64::to_bits));
        assert_eq!(r.parts().1.to_bits(), rttvar.to_bits());
    }

    /// The RFC 6298 recurrence, hand-computed: first sample sets
    /// `SRTT = R, RTTVAR = R/2`; later samples use gains 1/8 and 1/4;
    /// RTO = SRTT + 4*RTTVAR clamped to `[min, max]`. All inputs are
    /// dyadic, so the f64 arithmetic is exact.
    #[test]
    fn rfc6298_recurrence_table() {
        struct Case {
            name: &'static str,
            min_ns: u64,
            max_ns: u64,
            samples: &'static [u64],
            srtt_ns: u64,
            rto_ns: u64,
        }
        const MS: u64 = 1_000_000;
        let cases = [
            Case {
                name: "first sample: srtt = R, rttvar = R/2",
                min_ns: MS,
                max_ns: 60_000 * MS,
                samples: &[10 * MS],
                srtt_ns: 10 * MS,
                rto_ns: 30 * MS,
            },
            Case {
                name: "steady input decays the variance",
                min_ns: MS,
                max_ns: 60_000 * MS,
                samples: &[10 * MS, 10 * MS],
                srtt_ns: 10 * MS,
                rto_ns: 25 * MS, // rttvar = 0.75 * 5 ms
            },
            Case {
                name: "one jump: gains 1/8 (srtt) and 1/4 (rttvar)",
                min_ns: MS,
                max_ns: 60_000 * MS,
                samples: &[10 * MS, 20 * MS],
                srtt_ns: 11_250_000,
                rto_ns: 36_250_000,
            },
            Case {
                name: "two jumps",
                min_ns: MS,
                max_ns: 60_000 * MS,
                samples: &[10 * MS, 20 * MS, 20 * MS],
                srtt_ns: 12_343_750,
                rto_ns: 39_843_750,
            },
            Case {
                name: "floor clamps a small raw RTO",
                min_ns: MS,
                max_ns: 60_000 * MS,
                samples: &[100_000],
                srtt_ns: 100_000,
                rto_ns: MS, // raw 300 us < 1 ms floor
            },
            Case {
                name: "ceiling clamps a large raw RTO",
                min_ns: MS,
                max_ns: 5 * MS,
                samples: &[10_000 * MS],
                srtt_ns: 10_000 * MS,
                rto_ns: 5 * MS,
            },
        ];
        for c in &cases {
            let mut e = RtoEstimator::new(Dur::from_nanos(c.min_ns), Dur::from_nanos(c.max_ns));
            for &s in c.samples {
                e.observe(Dur::from_nanos(s));
            }
            assert_eq!(e.srtt(), Some(Dur::from_nanos(c.srtt_ns)), "{}", c.name);
            assert_eq!(e.rto(), Dur::from_nanos(c.rto_ns), "{}", c.name);
        }
    }
}
