//! # trim-tcp — packet-level TCP for `netsim`
//!
//! A NS2-style TCP implementation used to evaluate TCP-TRIM:
//!
//! - packet-granularity sequencing with cumulative ACKs, timestamp echo,
//!   duplicate-ACK fast retransmit, NewReno partial-ACK recovery, and
//!   go-back-N RTO recovery ([`conn`]);
//! - per-packet-ACK receivers with ECN echo ([`receiver`]);
//! - a host agent multiplexing many connections ([`host`]), their hot
//!   state packed in a struct-of-arrays flow slab ([`slab`]) for
//!   million-flow runs;
//! - pluggable congestion control ([`cc`]): Reno, CUBIC, DCTCP, L2DCT, the
//!   GIP-style restart baseline, and **TCP-TRIM** (embedding
//!   [`trim_core::Trim`]).
//!
//! See the [`host::TcpHost`] example for end-to-end usage.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cc;
pub mod config;
pub mod conn;
pub mod host;
pub mod receiver;
pub mod rto;
pub mod segment;
pub mod slab;

pub use cc::{AckInfo, CcAlgo, CcKind, PreSendAction, WindowState};
pub use config::TcpConfig;
pub use conn::{ConnRef, ConnStats, TrainRecord};
pub use host::{ConnMut, TcpHost};
pub use receiver::{Receiver, ReceiverStats};
pub use segment::{SegKind, Segment};
pub use slab::{FlowSlab, HotFlow, SlabAudit};
