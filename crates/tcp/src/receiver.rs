//! The TCP receiver: cumulative ACK generation with timestamp, probe-flag
//! and ECN echo, plus delivery accounting for goodput and throughput
//! metrics.

use std::collections::BTreeSet;

use netsim::prelude::*;
use netsim::time::Dur;

use crate::config::TcpConfig;
use crate::conn::KIND_BITS;
use crate::conn::KIND_DELACK;
use crate::segment::{SackBlocks, SegKind, Segment};
use netsim::time::Dur as NsDur;

/// Delivery counters for one receiving flow.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReceiverStats {
    /// Data packets received (including duplicates).
    pub pkts_received: u64,
    /// Duplicate data packets (already delivered).
    pub dup_pkts: u64,
    /// Packets delivered in order to the application.
    pub delivered_pkts: u64,
    /// ACK segments transmitted.
    pub acks_sent: u64,
}

#[derive(Debug)]
struct PendingAck {
    peer: NodeId,
    echo_ts: netsim::time::SimTime,
    echo_probe: bool,
    echo_rtx: bool,
    ece: bool,
    timer: TimerId,
}

/// Receiving side of one flow, owned by a `TcpHost`.
#[derive(Debug)]
pub struct Receiver {
    flow: FlowId,
    ack_bytes: u32,
    rcv_next: u64,
    out_of_order: BTreeSet<u64>,
    stats: ReceiverStats,
    meter: Option<ThroughputMeter>,
    mss_bytes: u32,
    sack_enabled: bool,
    delayed_ack: Option<NsDur>,
    local_idx: u64,
    pending: Option<PendingAck>,
}

impl Receiver {
    /// Creates a receiver for `flow` with the connection's configuration
    /// (ACK size, MSS for goodput scaling, SACK, delayed ACKs).
    /// `local_idx` is the receiver's index within its host, used for
    /// delayed-ACK timer tokens.
    pub fn new(flow: FlowId, cfg: TcpConfig, local_idx: u64) -> Self {
        Receiver {
            flow,
            ack_bytes: cfg.ack_bytes,
            rcv_next: 0,
            out_of_order: BTreeSet::new(),
            stats: ReceiverStats::default(),
            meter: None,
            mss_bytes: cfg.mss_bytes,
            sack_enabled: cfg.sack,
            delayed_ack: cfg.delayed_ack,
            local_idx,
            pending: None,
        }
    }

    /// Builds up to three SACK blocks from the out-of-order set, with the
    /// block containing `latest` (the just-arrived packet) first, per
    /// RFC 2018.
    fn sack_blocks(&self, latest: Option<u64>) -> SackBlocks {
        let mut blocks: SackBlocks = [None; 3];
        if !self.sack_enabled || self.out_of_order.is_empty() {
            return blocks;
        }
        // Contiguous runs of the ordered set.
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for &seq in &self.out_of_order {
            match runs.last_mut() {
                Some((_, end)) if *end == seq => *end = seq + 1,
                _ => runs.push((seq, seq + 1)),
            }
        }
        let mut out = Vec::with_capacity(3);
        if let Some(l) = latest {
            if let Some(&run) = runs.iter().find(|&&(s, e)| s <= l && l < e) {
                out.push(run);
            }
        }
        for &run in &runs {
            if out.len() >= 3 {
                break;
            }
            if !out.contains(&run) {
                out.push(run);
            }
        }
        for (i, run) in out.into_iter().enumerate() {
            blocks[i] = Some(run);
        }
        blocks
    }

    /// The flow this receiver serves.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Delivery counters.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// In-order bytes delivered to the application so far.
    pub fn goodput_bytes(&self) -> u64 {
        self.stats.delivered_pkts * self.mss_bytes as u64
    }

    /// Starts metering delivered bytes into bins of `bin` width.
    pub fn enable_throughput_meter(&mut self, bin: Dur) {
        if self.meter.is_none() {
            self.meter = Some(ThroughputMeter::new(bin));
        }
    }

    /// The throughput meter, if enabled.
    pub fn meter(&self) -> Option<&ThroughputMeter> {
        self.meter.as_ref()
    }

    /// Handles an arriving data packet and sends the cumulative ACK.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not a data segment.
    pub fn on_data(&mut self, ctx: &mut Ctx<'_, Segment>, pkt: Packet<Segment>) {
        let SegKind::Data {
            seq,
            is_probe,
            is_rtx,
            ts,
        } = pkt.payload.kind
        else {
            panic!("receiver got a non-data segment"); // trim-lint: allow(no-panic-in-library, reason = "the sender only ever addresses the receiver with data; anything else is corruption")
        };
        let now = ctx.now();
        self.stats.pkts_received += 1;
        // Classify before mutating: a clean in-order arrival with no
        // reassembly gap outstanding is the only case eligible for ACK
        // delay (RFC 1122: ack immediately when an arrival fills a gap or
        // out-of-order data is buffered).
        let clean_in_order = seq == self.rcv_next && self.out_of_order.is_empty();
        if seq < self.rcv_next || self.out_of_order.contains(&seq) {
            self.stats.dup_pkts += 1;
        } else if seq == self.rcv_next {
            self.rcv_next += 1;
            let mut delivered = 1;
            while self.out_of_order.remove(&self.rcv_next) {
                self.rcv_next += 1;
                delivered += 1;
            }
            self.stats.delivered_pkts += delivered;
            if let Some(m) = &mut self.meter {
                m.record(now, delivered * self.mss_bytes as u64);
            }
        } else {
            self.out_of_order.insert(seq);
        }
        // For the SACK blocks: the block containing this packet leads,
        // when the packet sits above the cumulative point.
        let latest = if seq >= self.rcv_next {
            Some(seq)
        } else {
            None
        };

        // Delayed-ACK policy (RFC 1122 + DCTCP/TRIM requirements):
        // immediate on out-of-order or duplicate data, CE marks, and TRIM
        // probe packets; otherwise coalesce up to two in-order packets or
        // the delack timeout.
        let immediate = self.delayed_ack.is_none()
            || !clean_in_order
            || pkt.payload.is_ce()
            || is_probe
            || self.pending.is_some();
        if immediate {
            if let Some(p) = self.pending.take() {
                ctx.cancel_timer(p.timer);
            }
            self.send_ack(
                ctx,
                pkt.src,
                ts,
                is_probe,
                is_rtx,
                pkt.payload.is_ce(),
                latest,
            );
        } else {
            let delay = self.delayed_ack.expect("immediate covers None"); // trim-lint: allow(no-panic-in-library, reason = "the immediate branch above handled delayed_ack == None")
            let timer = ctx.set_timer(delay, (self.local_idx << KIND_BITS) | KIND_DELACK);
            self.pending = Some(PendingAck {
                peer: pkt.src,
                echo_ts: ts,
                echo_probe: is_probe,
                echo_rtx: is_rtx,
                ece: false,
                timer,
            });
        }
    }

    /// The delayed-ACK timer fired: flush the pending acknowledgment.
    pub fn on_delack_timer(&mut self, ctx: &mut Ctx<'_, Segment>) {
        if let Some(p) = self.pending.take() {
            self.send_ack(
                ctx,
                p.peer,
                p.echo_ts,
                p.echo_probe,
                p.echo_rtx,
                p.ece,
                None,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn send_ack(
        &mut self,
        ctx: &mut Ctx<'_, Segment>,
        peer: NodeId,
        echo_ts: netsim::time::SimTime,
        echo_probe: bool,
        echo_rtx: bool,
        ece: bool,
        latest: Option<u64>,
    ) {
        let ack = Segment::ack_with_sack(
            self.rcv_next,
            echo_ts,
            echo_probe,
            echo_rtx,
            ece,
            self.sack_blocks(latest),
        );
        let reply = Packet::new(ctx.node(), peer, self.flow, self.ack_bytes, ack);
        ctx.send(reply);
        self.stats.acks_sent += 1;
    }
}
