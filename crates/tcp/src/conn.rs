//! The TCP sender state machine: sequencing, loss detection (duplicate
//! ACKs and RTO), NewReno-style recovery, go-back-N timeout recovery, and
//! the application-side packet-train queue.
//!
//! The policy half (window growth/shrink, TRIM probing) lives in the
//! pluggable [`CcAlgo`]; this module is the mechanism half. Sequence
//! numbers count packets, as in NS2.
//!
//! ## State layout
//!
//! A sender's state is split for the million-flow engine:
//!
//! - [`HotFlow`](crate::slab::HotFlow) — the per-ACK working set (window,
//!   RTO estimator, sequence cursors, recovery flags), a `Copy` record
//!   gathered from / scattered to the [`FlowSlab`](crate::slab::FlowSlab)
//!   struct-of-arrays columns;
//! - [`ColdConn`] — everything touched rarely or only at the ends of a
//!   run (config, controller box, SACK scoreboard, train queue, stats),
//!   boxed per flow.
//!
//! [`ConnCore`] borrows one of each and carries the whole state machine;
//! [`ConnRef`] is the read-only public view returned by
//! [`TcpHost::connection`](crate::TcpHost::connection).

use std::collections::{BTreeSet, VecDeque};

use netsim::prelude::*;
use netsim::time::{Dur, SimTime};

use crate::cc::{AckInfo, CcAlgo, PreSendAction, WindowState};
use crate::config::TcpConfig;
use crate::rto::RtoEstimator;
use crate::segment::{SackBlocks, Segment};
use crate::slab::HotFlow;

/// Timer-token kind for retransmission timeouts (dispatched by `TcpHost`).
pub(crate) const KIND_RTO: u64 = 0;
/// Timer-token kind for TRIM probe deadlines.
pub(crate) const KIND_PROBE: u64 = 1;
/// Timer-token kind for scheduled application trains.
pub(crate) const KIND_APP: u64 = 2;
/// Timer-token kind for the next train in a response sequence.
pub(crate) const KIND_SEQ: u64 = 3;
/// Timer-token kind for a receiver's delayed-ACK timeout.
pub(crate) const KIND_DELACK: u64 = 4;
/// Width of the kind field in timer tokens.
pub(crate) const KIND_BITS: u64 = 3;

/// Counters exposed by a connection after a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Data packets transmitted (including retransmissions).
    pub pkts_sent: u64,
    /// Retransmitted data packets.
    pub rtx_sent: u64,
    /// TRIM probe packets transmitted.
    pub probes_sent: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Fast-retransmit events entered.
    pub fast_retransmits: u64,
    /// ACKs processed.
    pub acks_received: u64,
    /// Duplicate ACKs processed.
    pub dup_acks_received: u64,
}

/// A finished packet train, with the timestamps used for completion-time
/// metrics (the paper's ACT/ARCT).
#[derive(Clone, Copy, Debug)]
pub struct TrainRecord {
    /// Order of arrival at the sender (0-based).
    pub id: u64,
    /// Application bytes in the train.
    pub bytes: u64,
    /// Packets in the train.
    pub pkts: u64,
    /// When the application handed the train to TCP.
    pub enqueued_at: SimTime,
    /// When the train's first packet left the host.
    pub first_sent_at: SimTime,
    /// When the last packet was cumulatively acknowledged.
    pub completed_at: SimTime,
}

impl TrainRecord {
    /// Completion time as measured in the paper: from hand-off to final
    /// acknowledgment.
    pub fn completion_time(&self) -> Dur {
        self.completed_at.saturating_since(self.enqueued_at)
    }
}

#[derive(Clone, Copy, Debug)]
struct TrainProgress {
    id: u64,
    bytes: u64,
    start_seq: u64,
    end_seq: u64,
    enqueued_at: SimTime,
    first_sent_at: Option<SimTime>,
}

#[derive(Debug)]
struct ProbePending {
    remaining: u32,
    timer: TimerId,
}

/// The rarely-touched half of a sending connection, boxed per flow in
/// the [`FlowSlab`](crate::slab::FlowSlab).
#[derive(Debug)]
pub(crate) struct ColdConn {
    pub(crate) flow: FlowId,
    dst: NodeId,
    pub(crate) cfg: TcpConfig,
    cc: Box<dyn CcAlgo>,
    /// Dense slab id within the owning host, used to build timer tokens.
    /// Assigned by `FlowSlab::insert`.
    pub(crate) local_idx: u64,

    probe: Option<ProbePending>,

    /// SACK scoreboard: sequences above `high_ack` the receiver reported
    /// holding (only populated when `cfg.sack`).
    sacked: BTreeSet<u64>,
    /// Holes already retransmitted in the current recovery episode.
    rtx_this_recovery: BTreeSet<u64>,

    trains: VecDeque<TrainProgress>,
    next_train_id: u64,
    pub(crate) completed: Vec<TrainRecord>,

    stats: ConnStats,
    cwnd_series: Option<Series>,
}

impl ColdConn {
    /// Cancels and forgets any timers this connection holds (called on
    /// teardown so a recycled slab slot cannot receive stale fires).
    pub(crate) fn cancel_timers(&mut self, ctx: &mut Ctx<'_, Segment>, hot: &mut HotFlow) {
        if let Some(t) = hot.rto_timer.take() {
            ctx.cancel_timer(t);
        }
        if let Some(p) = self.probe.take() {
            ctx.cancel_timer(p.timer);
        }
    }
}

/// Builds the split state for a new connection sending to `dst` with
/// flow label `flow`. The cold half's `local_idx` is assigned when the
/// pair is inserted into a [`FlowSlab`](crate::slab::FlowSlab).
///
/// # Panics
///
/// Panics if `cfg` fails validation.
pub(crate) fn new_conn(
    flow: FlowId,
    dst: NodeId,
    cfg: TcpConfig,
    cc: Box<dyn CcAlgo>,
) -> (HotFlow, Box<ColdConn>) {
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid TcpConfig: {e}")); // trim-lint: allow(no-panic-in-library, reason = "constructor contract: configs are validated at build time")
    let hot = HotFlow {
        win: WindowState::new(cfg.init_cwnd, cfg.init_ssthresh, cfg.min_cwnd, cfg.max_cwnd),
        rto_est: RtoEstimator::new(cfg.min_rto, cfg.max_rto),
        next_seq: 0,
        high_ack: 0,
        max_seq_sent: 0,
        total_pkts: 0,
        recover: 0,
        dup_acks: 0,
        backoff: 1,
        in_recovery: false,
        rto_timer: None,
    };
    let cold = Box::new(ColdConn {
        flow,
        dst,
        cfg,
        cc,
        local_idx: 0,
        probe: None,
        sacked: BTreeSet::new(),
        rtx_this_recovery: BTreeSet::new(),
        trains: VecDeque::new(),
        next_train_id: 0,
        completed: Vec::new(),
        stats: ConnStats::default(),
        cwnd_series: None,
    });
    (hot, cold)
}

/// Read-only view of one sending connection, assembled from the slab's
/// hot columns and the boxed cold half. `Copy`, so reference-returning
/// accessors consume `self` and borrow from the host instead.
#[derive(Clone, Copy, Debug)]
pub struct ConnRef<'a> {
    pub(crate) hot: HotFlow,
    pub(crate) cold: &'a ColdConn,
}

impl<'a> ConnRef<'a> {
    /// The connection's flow label.
    pub fn flow(&self) -> FlowId {
        self.cold.flow
    }

    /// The congestion controller's report name.
    pub fn cc_name(&self) -> &'static str {
        self.cold.cc.name()
    }

    /// The controller itself, for algorithm-specific inspection.
    pub fn cc(self) -> &'a dyn CcAlgo {
        self.cold.cc.as_ref()
    }

    /// Current congestion window in packets.
    pub fn cwnd(&self) -> f64 {
        self.hot.win.cwnd
    }

    /// The smoothed RTT estimate, if any Karn-valid sample has arrived
    /// (echoes of retransmitted packets never contribute samples).
    pub fn srtt(&self) -> Option<Dur> {
        self.hot.rto_est.srtt()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ConnStats {
        self.cold.stats
    }

    /// Trains fully acknowledged so far, in completion order.
    pub fn completed_trains(self) -> &'a [TrainRecord] {
        &self.cold.completed
    }

    /// Whether every queued train has been fully acknowledged.
    pub fn is_idle(&self) -> bool {
        self.hot.high_ack == self.hot.total_pkts
    }

    /// Packets currently unacknowledged.
    pub fn flight(&self) -> u64 {
        self.hot.next_seq - self.hot.high_ack
    }

    /// The recorded window series, if enabled.
    pub fn cwnd_series(self) -> Option<&'a Series> {
        self.cold.cwnd_series.as_ref()
    }
}

/// Mutable working view over one connection's split state: the whole
/// sender state machine lives here. The host gathers `hot` from the
/// slab, drives one or more events through this view, and scatters the
/// result back.
pub(crate) struct ConnCore<'a> {
    pub(crate) hot: &'a mut HotFlow,
    pub(crate) cold: &'a mut ColdConn,
}

impl ConnCore<'_> {
    /// Packets currently unacknowledged.
    fn flight(&self) -> u64 {
        self.hot.next_seq - self.hot.high_ack
    }

    /// Starts recording a `(time, cwnd)` point at every window change.
    pub(crate) fn enable_cwnd_recording(&mut self) {
        if self.cold.cwnd_series.is_none() {
            self.cold.cwnd_series = Some(Series::new());
        }
    }

    fn record_cwnd(&mut self, now: SimTime) {
        if let Some(s) = &mut self.cold.cwnd_series {
            s.push(now, self.hot.win.cwnd);
        }
    }

    /// Reports the current window to any attached invariant monitors
    /// (`cwnd-range` checks it stays within `[min_cwnd, max_cwnd]`).
    fn emit_cwnd(&self, ctx: &mut Ctx<'_, Segment>) {
        let (flow, win) = (self.cold.flow, &self.hot.win);
        ctx.emit_monitor_with(|| MonitorEvent::CwndUpdate {
            flow,
            cwnd: win.cwnd,
            min_cwnd: win.min_cwnd,
            max_cwnd: win.max_cwnd,
        });
    }

    /// Reports a congestion-control ACK hook invocation to any attached
    /// invariant monitors (`ack-reduction-bound` checks that no single
    /// ACK cuts the window below legacy TCP's halving, per Eq. 2–3).
    fn emit_ack_window(&self, ctx: &mut Ctx<'_, Segment>, before: f64, probe_echo: bool) {
        let (flow, after) = (self.cold.flow, self.hot.win.cwnd);
        ctx.emit_monitor_with(|| MonitorEvent::AckWindow {
            flow,
            before,
            after,
            probe_echo,
        });
    }

    /// Reports an Algorithm-1 probe state-machine transition to any
    /// attached invariant monitors (`probe-legality` checks ordering).
    fn emit_probe(&self, ctx: &mut Ctx<'_, Segment>, transition: ProbeTransition) {
        let flow = self.cold.flow;
        ctx.emit_monitor_with(|| MonitorEvent::ProbeTransition { flow, transition });
    }

    fn token(&self, kind: u64) -> u64 {
        (self.cold.local_idx << KIND_BITS) | kind
    }

    /// Discards all application data that has not yet been transmitted:
    /// pending trains are dropped and the in-progress train is truncated
    /// at the highest transmitted packet. In-flight packets still drain
    /// normally. Models an application closing its response stream
    /// (used by the convergence and multi-hop experiments to stop LPTs
    /// at a scheduled time).
    pub(crate) fn truncate_unsent(&mut self) {
        self.hot.total_pkts = self.hot.next_seq;
        while let Some(last) = self.cold.trains.back() {
            if last.start_seq >= self.hot.total_pkts {
                self.cold.trains.pop_back();
            } else {
                break;
            }
        }
        if let Some(last) = self.cold.trains.back_mut() {
            last.end_seq = last.end_seq.min(self.hot.total_pkts);
        }
    }

    /// Queues `bytes` of application data as one packet train and starts
    /// transmitting as the window allows.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub(crate) fn enqueue_train(&mut self, ctx: &mut Ctx<'_, Segment>, bytes: u64) {
        assert!(bytes > 0, "empty train");
        let pkts = bytes.div_ceil(self.cold.cfg.mss_bytes as u64);
        let start_seq = self.hot.total_pkts;
        self.hot.total_pkts += pkts;
        self.cold.trains.push_back(TrainProgress {
            id: self.cold.next_train_id,
            bytes,
            start_seq,
            end_seq: self.hot.total_pkts,
            enqueued_at: ctx.now(),
            first_sent_at: None,
        });
        self.cold.next_train_id += 1;
        self.try_send(ctx);
    }

    /// Transmits as much new data as the window, the probe state, and the
    /// application queue allow.
    pub(crate) fn try_send(&mut self, ctx: &mut Ctx<'_, Segment>) {
        loop {
            if self.hot.win.suspended || self.hot.next_seq >= self.hot.total_pkts {
                break;
            }
            // With SACK, sacked packets have left the network: they do
            // not occupy the window (pipe accounting).
            let flight = (self.hot.next_seq - self.hot.high_ack) - self.cold.sacked.len() as u64;
            let wnd = self.hot.win.cwnd.floor().max(1.0) as u64;
            if flight >= wnd {
                break;
            }
            // Algorithm 1 applies only to fresh data, not go-back-N
            // resends.
            if self.cold.probe.is_none() && self.hot.next_seq >= self.hot.max_seq_sent {
                let available = self.hot.total_pkts - self.hot.next_seq;
                match self
                    .cold
                    .cc
                    .pre_send(&mut self.hot.win, ctx.now(), available)
                {
                    PreSendAction::Continue => {}
                    PreSendAction::StartProbe { probes, deadline } => {
                        let timer = ctx.set_timer(deadline, self.token(KIND_PROBE));
                        self.cold.probe = Some(ProbePending {
                            remaining: probes,
                            timer,
                        });
                        self.emit_probe(ctx, ProbeTransition::Start);
                        self.record_cwnd(ctx.now());
                        self.emit_cwnd(ctx);
                        continue; // window changed; re-evaluate
                    }
                }
            }
            let seq = self.hot.next_seq;
            let is_probe = self.cold.probe.is_some();
            self.transmit(ctx, seq, is_probe);
            self.hot.next_seq += 1;
            self.hot.max_seq_sent = self.hot.max_seq_sent.max(self.hot.next_seq);
            if let Some(p) = &mut self.cold.probe {
                self.cold.stats.probes_sent += 1;
                p.remaining -= 1;
                if p.remaining == 0 {
                    // Algorithm 1 line 6: suspend until the probe result.
                    self.hot.win.suspended = true;
                    let flow = self.cold.flow;
                    ctx.emit_monitor_with(|| MonitorEvent::ProbeTransition {
                        flow,
                        transition: ProbeTransition::Suspend,
                    });
                }
            }
        }
    }

    fn transmit(&mut self, ctx: &mut Ctx<'_, Segment>, seq: u64, is_probe: bool) {
        let now = ctx.now();
        let is_rtx = seq < self.hot.max_seq_sent;
        let seg = Segment::data(seq, is_probe, is_rtx, now, self.cold.cc.uses_ecn());
        let pkt = Packet::new(
            ctx.node(),
            self.cold.dst,
            self.cold.flow,
            self.cold.cfg.mss_bytes,
            seg,
        );
        ctx.send(pkt);
        self.cold.cc.note_sent(now);
        self.cold.stats.pkts_sent += 1;
        if is_rtx {
            self.cold.stats.rtx_sent += 1;
        }
        if !is_rtx {
            self.note_first_send(seq, now);
        }
        if self.hot.rto_timer.is_none() {
            self.arm_rto(ctx);
        }
    }

    fn note_first_send(&mut self, seq: u64, now: SimTime) {
        // Binary search the (start_seq-sorted) pending trains.
        let idx = self
            .cold
            .trains
            .partition_point(|t| t.start_seq <= seq)
            .checked_sub(1);
        if let Some(i) = idx {
            let t = &mut self.cold.trains[i];
            if seq < t.end_seq && t.first_sent_at.is_none() {
                t.first_sent_at = Some(now);
            }
        }
    }

    fn arm_rto(&mut self, ctx: &mut Ctx<'_, Segment>) {
        let rto = self
            .hot
            .rto_est
            .rto()
            .mul_f64(self.hot.backoff as f64)
            .min(self.cold.cfg.max_rto);
        self.hot.rto_timer = Some(ctx.set_timer(rto, self.token(KIND_RTO)));
    }

    fn cancel_rto(&mut self, ctx: &mut Ctx<'_, Segment>) {
        if let Some(t) = self.hot.rto_timer.take() {
            ctx.cancel_timer(t);
        }
    }

    fn rearm_rto(&mut self, ctx: &mut Ctx<'_, Segment>) {
        self.cancel_rto(ctx);
        if self.flight() > 0 {
            self.arm_rto(ctx);
        }
    }

    /// Processes an arriving cumulative ACK (with optional SACK blocks).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_ack(
        &mut self,
        ctx: &mut Ctx<'_, Segment>,
        ack_seq: u64,
        echo_ts: SimTime,
        echo_probe: bool,
        echo_rtx: bool,
        ece: bool,
        sack: &SackBlocks,
    ) {
        let now = ctx.now();
        if self.cold.cfg.sack {
            for block in sack.iter().flatten() {
                for seq in block.0..block.1 {
                    if seq >= self.hot.high_ack && seq < self.hot.next_seq {
                        self.cold.sacked.insert(seq);
                    }
                }
            }
        }
        self.cold.stats.acks_received += 1;
        // Karn's rule: no RTT sample from a retransmitted packet's echo.
        let rtt = if echo_rtx {
            None
        } else {
            Some(now.saturating_since(echo_ts))
        };
        if let Some(r) = rtt {
            if r > Dur::ZERO {
                self.hot.rto_est.observe(r);
            }
        }

        if ack_seq > self.hot.high_ack {
            let newly = ack_seq - self.hot.high_ack;
            self.hot.high_ack = ack_seq;
            // After go-back-N the ACK may cover packets sent before the
            // timeout that were still in flight; never send below the
            // cumulative ACK.
            self.hot.next_seq = self.hot.next_seq.max(self.hot.high_ack);
            self.hot.max_seq_sent = self.hot.max_seq_sent.max(self.hot.next_seq);
            self.hot.backoff = 1;
            self.cold.sacked = self.cold.sacked.split_off(&self.hot.high_ack);
            if self.hot.in_recovery {
                if ack_seq >= self.hot.recover {
                    // Full ACK: leave recovery, deflate to ssthresh.
                    self.hot.in_recovery = false;
                    self.hot.dup_acks = 0;
                    self.cold.rtx_this_recovery.clear();
                    self.hot.win.cwnd = self.hot.win.ssthresh;
                    self.hot.win.clamp_cwnd();
                } else if self.cold.cfg.sack {
                    // SACK recovery: repair the lowest unrepaired hole.
                    self.retransmit_next_hole(ctx);
                } else {
                    // NewReno partial ACK: the next hole is lost too.
                    self.transmit_rtx(ctx, self.hot.high_ack);
                    self.hot.win.cwnd =
                        (self.hot.win.cwnd - newly as f64 + 1.0).max(self.hot.win.min_cwnd);
                }
            } else {
                self.hot.dup_acks = 0;
                let info = AckInfo {
                    now,
                    rtt,
                    newly_acked: newly,
                    ack_seq,
                    next_seq: self.hot.next_seq,
                    flight: self.hot.next_seq - self.hot.high_ack,
                    ece,
                    probe_echo: echo_probe,
                };
                let before = self.hot.win.cwnd;
                self.cold.cc.on_ack(&mut self.hot.win, &info);
                self.emit_ack_window(ctx, before, echo_probe);
            }
            self.complete_trains(now);
            self.rearm_rto(ctx);
        } else {
            // Duplicate ACK.
            if self.hot.next_seq > self.hot.high_ack {
                self.hot.dup_acks += 1;
                self.cold.stats.dup_acks_received += 1;
                if self.hot.in_recovery {
                    if self.cold.cfg.sack {
                        // SACK recovery: the scoreboard says what is
                        // missing; repair it instead of inflating.
                        self.retransmit_next_hole(ctx);
                    } else {
                        // Window inflation keeps the pipe full.
                        self.hot.win.cwnd += 1.0;
                        self.hot.win.clamp_cwnd();
                    }
                } else if self.hot.dup_acks == self.cold.cfg.dupack_threshold {
                    self.enter_fast_recovery(ctx, now);
                } else {
                    // Still feed the controller: TRIM needs every RTT
                    // sample, DCTCP every ECE, probe echoes may ride on
                    // duplicates.
                    let info = AckInfo {
                        now,
                        rtt,
                        newly_acked: 0,
                        ack_seq,
                        next_seq: self.hot.next_seq,
                        flight: self.hot.next_seq - self.hot.high_ack,
                        ece,
                        probe_echo: echo_probe,
                    };
                    let before = self.hot.win.cwnd;
                    self.cold.cc.on_ack(&mut self.hot.win, &info);
                    self.emit_ack_window(ctx, before, echo_probe);
                }
            }
        }

        // Did the controller resolve a probe phase?
        if let Some(p) = &self.cold.probe {
            if p.remaining == 0 && !self.hot.win.suspended {
                let timer = p.timer;
                ctx.cancel_timer(timer);
                self.cold.probe = None;
                self.emit_probe(ctx, ProbeTransition::Resolve);
            }
        }
        self.record_cwnd(now);
        self.emit_cwnd(ctx);
        self.try_send(ctx);
    }

    fn enter_fast_recovery(&mut self, ctx: &mut Ctx<'_, Segment>, now: SimTime) {
        self.hot.in_recovery = true;
        self.hot.recover = self.hot.next_seq;
        self.cold.rtx_this_recovery.clear();
        self.cold.rtx_this_recovery.insert(self.hot.high_ack);
        self.cold.stats.fast_retransmits += 1;
        let flight = self.flight();
        self.cold
            .cc
            .on_fast_retransmit(&mut self.hot.win, flight, now);
        // Standard inflation by the duplicate threshold.
        self.hot.win.cwnd += self.cold.cfg.dupack_threshold as f64;
        self.hot.win.clamp_cwnd();
        self.transmit_rtx(ctx, self.hot.high_ack);
        self.rearm_rto(ctx);
    }

    fn transmit_rtx(&mut self, ctx: &mut Ctx<'_, Segment>, seq: u64) {
        let now = ctx.now();
        let seg = Segment::data(seq, false, true, now, self.cold.cc.uses_ecn());
        let pkt = Packet::new(
            ctx.node(),
            self.cold.dst,
            self.cold.flow,
            self.cold.cfg.mss_bytes,
            seg,
        );
        ctx.send(pkt);
        self.cold.cc.note_sent(now);
        self.cold.stats.pkts_sent += 1;
        self.cold.stats.rtx_sent += 1;
    }

    /// Retransmits the lowest sequence in `[high_ack, recover)` that is
    /// neither SACKed nor already repaired in this recovery episode and
    /// that qualifies as lost under RFC 6675's rule: at least
    /// `dupack_threshold` SACKed sequences lie above it (otherwise the
    /// packet may simply still be in flight).
    fn retransmit_next_hole(&mut self, ctx: &mut Ctx<'_, Segment>) {
        let thresh = self.cold.cfg.dupack_threshold as usize;
        let mut seq = self.hot.high_ack;
        while seq < self.hot.recover {
            if !self.cold.sacked.contains(&seq) && !self.cold.rtx_this_recovery.contains(&seq) {
                let reported_above = self.cold.sacked.range(seq + 1..).take(thresh).count();
                if reported_above < thresh {
                    return; // not yet known lost; wait for more reports
                }
                self.cold.rtx_this_recovery.insert(seq);
                self.transmit_rtx(ctx, seq);
                return;
            }
            seq += 1;
        }
    }

    /// The retransmission timer fired: collapse the window, back off the
    /// timer, and go-back-N from the last cumulative ACK.
    pub(crate) fn on_rto_fire(&mut self, ctx: &mut Ctx<'_, Segment>) {
        self.hot.rto_timer = None;
        if self.flight() == 0 {
            return; // stale: everything got acknowledged meanwhile
        }
        let now = ctx.now();
        self.cold.stats.timeouts += 1;
        let flight = self.flight();
        self.cold.cc.on_timeout(&mut self.hot.win, flight, now);
        self.hot.win.cwnd = self.cold.cfg.restart_cwnd;
        self.hot.win.suspended = false;
        self.hot.win.clamp_cwnd();
        if let Some(p) = self.cold.probe.take() {
            ctx.cancel_timer(p.timer);
            self.emit_probe(ctx, ProbeTransition::Abort);
        }
        self.hot.in_recovery = false;
        self.hot.dup_acks = 0;
        self.cold.rtx_this_recovery.clear();
        self.cold.sacked.clear();
        self.hot.backoff = (self.hot.backoff * 2).min(64);
        // Go-back-N: resume from the last cumulative ACK.
        self.hot.next_seq = self.hot.high_ack;
        self.record_cwnd(now);
        self.emit_cwnd(ctx);
        self.try_send(ctx);
        if self.hot.rto_timer.is_none() && self.flight() > 0 {
            self.arm_rto(ctx);
        }
    }

    /// The TRIM probe deadline fired without all probe ACKs.
    pub(crate) fn on_probe_deadline_fire(&mut self, ctx: &mut Ctx<'_, Segment>) {
        if self.cold.probe.take().is_some() {
            self.emit_probe(ctx, ProbeTransition::Timeout);
            self.cold.cc.on_probe_deadline(&mut self.hot.win);
            self.record_cwnd(ctx.now());
            self.emit_cwnd(ctx);
            self.try_send(ctx);
        }
    }

    fn complete_trains(&mut self, now: SimTime) {
        while let Some(front) = self.cold.trains.front() {
            if self.hot.high_ack < front.end_seq {
                break;
            }
            let t = self.cold.trains.pop_front().expect("front exists"); // trim-lint: allow(no-panic-in-library, reason = "front() returned Some in the loop condition")
            self.cold.completed.push(TrainRecord {
                id: t.id,
                bytes: t.bytes,
                pkts: t.end_seq - t.start_seq,
                enqueued_at: t.enqueued_at,
                first_sent_at: t.first_sent_at.unwrap_or(t.enqueued_at),
                completed_at: now,
            });
        }
    }
}
