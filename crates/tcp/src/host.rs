//! The host agent: demultiplexes packets and timers to the TCP
//! connections and receivers living on one simulated host, and injects
//! scheduled application trains.
//!
//! Sender state lives in a [`FlowSlab`]: the per-ACK working set in
//! struct-of-arrays columns, the rest boxed per flow. Each event
//! gathers a [`HotFlow`] record, drives the state machine through
//! [`ConnCore`], and scatters the result back. A one-row cache keeps
//! the hot record checked out across consecutive events for the same
//! flow — during an incast tick the engine delivers ACK bursts
//! back-to-back, so same-tick ACK runs skip the gather/scatter entirely.

use netsim::hash::FastHashMap;
use netsim::prelude::*;
use netsim::time::SimTime;

use crate::cc::CcKind;
use crate::config::TcpConfig;
use crate::conn::{
    new_conn, ConnCore, ConnRef, KIND_APP, KIND_BITS, KIND_DELACK, KIND_PROBE, KIND_RTO, KIND_SEQ,
};
use crate::receiver::Receiver;
use crate::segment::{SegKind, Segment};
use crate::slab::{FlowSlab, HotFlow, SlabAudit};

#[derive(Clone, Copy, Debug)]
enum AppEvent {
    /// Hand `bytes` to the sender at `at`.
    Train {
        at: SimTime,
        sender_idx: usize,
        bytes: u64,
    },
    /// Discard the sender's unsent data at `at`.
    Stop { at: SimTime, sender_idx: usize },
    /// Tear the sender down at `at`: cancel its timers and free its
    /// slab slot for reuse.
    Teardown { at: SimTime, sender_idx: usize },
}

impl AppEvent {
    fn at(&self) -> SimTime {
        match *self {
            AppEvent::Train { at, .. }
            | AppEvent::Stop { at, .. }
            | AppEvent::Teardown { at, .. } => at,
        }
    }
}

/// A request/response exchange sequence on one connection: each response
/// is handed to TCP `think` after the previous one completes (persistent
/// HTTP with sequential requests, as on the paper's testbed).
#[derive(Clone, Debug)]
struct ResponseSequence {
    sender_idx: usize,
    start: SimTime,
    sizes: Vec<u64>,
    think: netsim::time::Dur,
    next: usize,
    /// Responses fully acknowledged so far.
    completed: usize,
    /// Whether the session-end event has been emitted.
    ended: bool,
    /// Fault injection: emit `SessionEnded` right after the first
    /// request is issued, while its response is still in flight. Used to
    /// prove the session-conservation monitor fires; never set in
    /// healthy runs.
    fault_early_end: bool,
}

/// The one-row hot cache: the last-touched flow's [`HotFlow`] record,
/// kept checked out between events. The slab columns for this id are
/// stale until [`TcpHost::flush_hot`] scatters the record back; every
/// read path consults the cache first, so the staleness is invisible.
#[derive(Clone, Copy, Debug)]
struct HotCache {
    idx: usize,
    hot: HotFlow,
}

/// A host running any number of sending connections and receivers.
///
/// Build the host, register senders/receivers and schedule trains *before*
/// the simulation starts; read connections back after the run via
/// [`Simulator::host`].
///
/// ```
/// use netsim::prelude::*;
/// use trim_tcp::{CcKind, Segment, TcpConfig, TcpHost};
///
/// let mut sim: Simulator<Segment> = Simulator::new();
/// let sw = sim.add_switch();
///
/// // Receiver host.
/// let mut rx_host = TcpHost::new();
/// rx_host.add_receiver(FlowId(1), TcpConfig::default());
/// let rx = sim.add_host(Box::new(rx_host));
///
/// // Sender host with one Reno connection sending 100 KB at t=1ms.
/// let mut tx_host = TcpHost::new();
/// let idx = tx_host.add_sender(FlowId(1), rx, TcpConfig::default(), &CcKind::Reno);
/// tx_host.schedule_train(idx, SimTime::from_secs_f64(0.001), 100 * 1024);
/// let tx = sim.add_host(Box::new(tx_host));
///
/// let spec = topology::LinkSpec::new(
///     Bandwidth::gbps(1), Dur::from_micros(50), QueueConfig::drop_tail(100));
/// sim.connect(tx, sw, spec.bandwidth, spec.delay, spec.queue);
/// sim.connect(rx, sw, spec.bandwidth, spec.delay, spec.queue);
/// sim.run();
///
/// let host: &TcpHost = sim.host(tx);
/// assert_eq!(host.connection(0).completed_trains().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TcpHost {
    flows: FlowSlab,
    cache: Option<HotCache>,
    receivers: Vec<Receiver>,
    // Flow demux maps are on the per-packet hot path; FastHashMap keeps
    // the lookups cheap and deterministic. Neither map is ever iterated.
    recv_by_flow: FastHashMap<u64, usize>,
    send_by_flow: FastHashMap<u64, usize>,
    schedule: Vec<AppEvent>,
    sequences: Vec<ResponseSequence>,
    /// sender_idx -> sequence index, for completion-driven advance.
    seq_by_sender: FastHashMap<usize, usize>,
}

impl TcpHost {
    /// Creates an empty host.
    pub fn new() -> Self {
        TcpHost::default()
    }

    /// Creates a host with slab capacity reserved for `senders` flows.
    pub fn with_sender_capacity(senders: usize) -> Self {
        TcpHost {
            flows: FlowSlab::with_capacity(senders),
            ..TcpHost::default()
        }
    }

    /// Adds a sending connection toward `dst`; returns its dense flow id
    /// (reusing the id of a torn-down sender when one is free).
    ///
    /// # Panics
    ///
    /// Panics if the flow already has a sender on this host or `cfg` is
    /// invalid.
    pub fn add_sender(&mut self, flow: FlowId, dst: NodeId, cfg: TcpConfig, cc: &CcKind) -> usize {
        self.flush_hot();
        let (hot, cold) = new_conn(flow, dst, cfg, cc.build());
        let idx = self.flows.insert(hot, cold);
        assert!(
            self.send_by_flow.insert(flow.0, idx).is_none(),
            "duplicate sender for flow {flow}"
        );
        idx
    }

    /// Adds a receiver for `flow`; returns its local index.
    ///
    /// # Panics
    ///
    /// Panics if the flow already has a receiver on this host.
    pub fn add_receiver(&mut self, flow: FlowId, cfg: TcpConfig) -> usize {
        let idx = self.receivers.len();
        assert!(
            self.recv_by_flow.insert(flow.0, idx).is_none(),
            "duplicate receiver for flow {flow}"
        );
        self.receivers.push(Receiver::new(flow, cfg, idx as u64));
        idx
    }

    /// Schedules `bytes` to be handed to sender `sender_idx` at absolute
    /// time `at`. Must be called before the simulation starts.
    ///
    /// # Panics
    ///
    /// Panics if `sender_idx` is not a live sender.
    pub fn schedule_train(&mut self, sender_idx: usize, at: SimTime, bytes: u64) {
        assert!(self.flows.contains(sender_idx), "no such sender");
        self.schedule.push(AppEvent::Train {
            at,
            sender_idx,
            bytes,
        });
    }

    /// Schedules the application to stop sender `sender_idx` at `at`:
    /// unsent data is discarded, in-flight data drains normally.
    ///
    /// # Panics
    ///
    /// Panics if `sender_idx` is not a live sender.
    pub fn schedule_stop(&mut self, sender_idx: usize, at: SimTime) {
        assert!(self.flows.contains(sender_idx), "no such sender");
        self.schedule.push(AppEvent::Stop { at, sender_idx });
    }

    /// Schedules sender `sender_idx` to be torn down at `at`: its timers
    /// are cancelled, its flow demux entry removed, and its slab slot
    /// freed for reuse by later `add_sender` calls. In-flight packets
    /// for the flow arriving afterwards are dropped silently, like any
    /// unknown flow.
    ///
    /// # Panics
    ///
    /// Panics if `sender_idx` is not a live sender.
    pub fn schedule_teardown(&mut self, sender_idx: usize, at: SimTime) {
        assert!(self.flows.contains(sender_idx), "no such sender");
        self.schedule.push(AppEvent::Teardown { at, sender_idx });
    }

    /// Schedules a sequential request/response exchange: the first
    /// response of `sizes` is handed to sender `sender_idx` at `start`,
    /// and each subsequent one `think` after the previous response
    /// completes. Only one sequence per sender.
    ///
    /// # Panics
    ///
    /// Panics if `sender_idx` is not a live sender, `sizes` is empty, or
    /// the sender already has a sequence.
    pub fn schedule_response_sequence(
        &mut self,
        sender_idx: usize,
        start: SimTime,
        sizes: Vec<u64>,
        think: netsim::time::Dur,
    ) {
        assert!(self.flows.contains(sender_idx), "no such sender");
        assert!(!sizes.is_empty(), "empty response sequence");
        let idx = self.sequences.len();
        assert!(
            self.seq_by_sender.insert(sender_idx, idx).is_none(),
            "sender already has a response sequence"
        );
        self.sequences.push(ResponseSequence {
            sender_idx,
            start,
            sizes,
            think,
            next: 0,
            completed: 0,
            ended: false,
            fault_early_end: false,
        });
    }

    /// Fault injection: make the sequence driving sender `sender_idx`
    /// announce its session end immediately after issuing its first
    /// request, while the response is still in flight. Exists to prove
    /// the session-conservation monitor catches broken lifecycles.
    ///
    /// # Panics
    ///
    /// Panics if the sender has no response sequence.
    pub fn inject_session_early_end(&mut self, sender_idx: usize) {
        let idx = *self
            .seq_by_sender
            .get(&sender_idx)
            .expect("sender has no response sequence"); // trim-lint: allow(no-panic-in-library, reason = "fault-injection API misuse is a test bug")
        self.sequences[idx].fault_early_end = true;
    }

    /// Fault injection: leak the slab slot of the next torn-down sender.
    /// Exists to prove [`Self::slab_audit`] / `FlowSlab::leak_check`
    /// catch lifecycle bugs.
    pub fn inject_slot_leak(&mut self) {
        self.flows.inject_slot_leak();
    }

    /// Borrows a sending connection by dense flow id. The view reflects
    /// the hot cache, so it is current even mid-run.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a live sender.
    pub fn connection(&self, idx: usize) -> ConnRef<'_> {
        let hot = match &self.cache {
            Some(c) if c.idx == idx => c.hot,
            _ => self.flows.checkout(idx),
        };
        ConnRef {
            hot,
            cold: self.flows.cold(idx),
        }
    }

    /// Mutably adjusts a sending connection by dense flow id (e.g. to
    /// enable window recording before the run).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a live sender.
    pub fn connection_mut(&mut self, idx: usize) -> ConnMut<'_> {
        ConnMut { host: self, idx }
    }

    /// Read-only views of all live sending connections, ascending by id.
    pub fn connections(&self) -> impl Iterator<Item = ConnRef<'_>> {
        self.flows.live_ids().map(|id| self.connection(id))
    }

    /// Number of live sending connections.
    pub fn sender_count(&self) -> usize {
        self.flows.len()
    }

    /// Slab lifecycle accounting (allocations, frees, high water).
    pub fn slab_audit(&self) -> SlabAudit {
        self.flows.audit()
    }

    /// Verifies the sender slab's lifecycle books balance; returns the
    /// first discrepancy found. Cross-check this with the engine's
    /// packet-conservation audit after teardown-heavy runs.
    pub fn slab_leak_check(&self) -> Result<(), String> {
        self.flows.leak_check()
    }

    /// The slot birth count for a flow id (0 for a first occupant);
    /// observable proof of id reuse in lifecycle tests.
    pub fn sender_generation(&self, idx: usize) -> u32 {
        self.flows.generation(idx)
    }

    /// Borrows a receiver by local index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn receiver(&self, idx: usize) -> &Receiver {
        &self.receivers[idx]
    }

    /// Mutably borrows a receiver by local index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn receiver_mut(&mut self, idx: usize) -> &mut Receiver {
        &mut self.receivers[idx]
    }

    /// All receivers on this host.
    pub fn receivers(&self) -> &[Receiver] {
        &self.receivers
    }

    /// The receiver serving `flow`, if any.
    pub fn receiver_for_flow(&self, flow: FlowId) -> Option<&Receiver> {
        self.recv_by_flow.get(&flow.0).map(|&i| &self.receivers[i])
    }
}

/// Mutable handle to one sending connection, for pre-run configuration.
#[derive(Debug)]
pub struct ConnMut<'a> {
    host: &'a mut TcpHost,
    idx: usize,
}

impl ConnMut<'_> {
    /// Starts recording a `(time, cwnd)` point at every window change.
    pub fn enable_cwnd_recording(&mut self) {
        let idx = self.idx;
        self.host
            .with_core(idx, |core| core.enable_cwnd_recording());
    }
}

impl TcpHost {
    /// Scatters the cached hot record back into the slab columns.
    fn flush_hot(&mut self) {
        if let Some(c) = self.cache.take() {
            self.flows.writeback(c.idx, &c.hot);
        }
    }

    /// Gathers the hot record for `idx`, preferring the cache (and
    /// flushing it first when it holds a different flow).
    fn checkout_hot(&mut self, idx: usize) -> HotFlow {
        match self.cache {
            Some(c) if c.idx == idx => c.hot,
            _ => {
                self.flush_hot();
                self.flows.checkout(idx)
            }
        }
    }

    /// Runs `f` over the assembled [`ConnCore`] view of sender `idx`,
    /// leaving the updated hot record in the cache.
    fn with_core<R>(&mut self, idx: usize, f: impl FnOnce(&mut ConnCore<'_>) -> R) -> R {
        let mut hot = self.checkout_hot(idx);
        let r = {
            let mut core = ConnCore {
                hot: &mut hot,
                cold: self.flows.cold_mut(idx),
            };
            f(&mut core)
        };
        self.cache = Some(HotCache { idx, hot });
        r
    }

    /// Tears a sender down now: cancels its timers, unmaps its flow, and
    /// frees its slab slot.
    fn teardown_sender(&mut self, ctx: &mut Ctx<'_, Segment>, idx: usize) {
        // The cached row must not resurrect the slot after removal;
        // write it back (cheap) and drop the cache either way.
        self.flush_hot();
        let mut hot = self.flows.checkout(idx);
        self.flows.cold_mut(idx).cancel_timers(ctx, &mut hot);
        self.flows.writeback(idx, &hot);
        let cold = self.flows.remove(idx);
        self.send_by_flow.remove(&cold.flow.0);
    }

    /// Trains completed on sender `sender_idx`: record the finished
    /// responses, and if the sequence has responses left, arm the
    /// think-time timer for the next one; otherwise close the session.
    fn advance_sequence(
        &mut self,
        ctx: &mut Ctx<'_, Segment>,
        sender_idx: usize,
        newly_done: usize,
    ) {
        let Some(&seq_idx) = self.seq_by_sender.get(&sender_idx) else {
            return;
        };
        let flow = self.flows.cold(sender_idx).flow;
        let seq = &mut self.sequences[seq_idx];
        // Only count completions for responses this sequence issued
        // (the sender may also carry plain scheduled trains).
        let credit = newly_done.min(seq.next - seq.completed);
        for _ in 0..credit {
            let index = seq.completed as u32;
            seq.completed += 1;
            ctx.emit_monitor_with(|| MonitorEvent::ResponseCompleted { flow, index });
        }
        if seq.next < seq.sizes.len() {
            ctx.set_timer(seq.think, ((seq_idx as u64) << KIND_BITS) | KIND_SEQ);
        } else if seq.completed == seq.sizes.len() && !seq.ended {
            seq.ended = true;
            let (issued, completed) = (seq.next as u32, seq.completed as u32);
            ctx.emit_monitor_with(|| MonitorEvent::SessionEnded {
                flow,
                issued,
                completed,
            });
        }
    }
}

impl Agent<Segment> for TcpHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Segment>) {
        for (i, s) in self.schedule.iter().enumerate() {
            let delay = s.at().saturating_since(SimTime::ZERO);
            ctx.set_timer(delay, ((i as u64) << KIND_BITS) | KIND_APP);
        }
        for (i, seq) in self.sequences.iter().enumerate() {
            let delay = seq.start.saturating_since(SimTime::ZERO);
            ctx.set_timer(delay, ((i as u64) << KIND_BITS) | KIND_SEQ);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Segment>, pkt: Packet<Segment>) {
        match pkt.payload.kind {
            SegKind::Data { .. } => {
                let Some(&idx) = self.recv_by_flow.get(&pkt.flow.0) else {
                    return; // no receiver registered: drop silently
                };
                self.receivers[idx].on_data(ctx, pkt);
            }
            SegKind::Ack {
                ack_seq,
                echo_ts,
                echo_probe,
                echo_rtx,
                ece,
                sack,
            } => {
                let Some(&idx) = self.send_by_flow.get(&pkt.flow.0) else {
                    return;
                };
                let (before, after) = self.with_core(idx, |core| {
                    let before = core.cold.completed.len();
                    core.on_ack(ctx, ack_seq, echo_ts, echo_probe, echo_rtx, ece, &sack);
                    (before, core.cold.completed.len())
                });
                if after > before {
                    self.advance_sequence(ctx, idx, after - before);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Segment>, token: u64) {
        let kind = token & ((1 << KIND_BITS) - 1);
        let idx = (token >> KIND_BITS) as usize;
        match kind {
            KIND_RTO => self.with_core(idx, |core| core.on_rto_fire(ctx)),
            KIND_PROBE => self.with_core(idx, |core| core.on_probe_deadline_fire(ctx)),
            KIND_APP => match self.schedule[idx] {
                AppEvent::Train {
                    sender_idx, bytes, ..
                } => self.with_core(sender_idx, |core| core.enqueue_train(ctx, bytes)),
                AppEvent::Stop { sender_idx, .. } => {
                    self.with_core(sender_idx, |core| core.truncate_unsent())
                }
                AppEvent::Teardown { sender_idx, .. } => self.teardown_sender(ctx, sender_idx),
            },
            KIND_DELACK => self.receivers[idx].on_delack_timer(ctx),
            KIND_SEQ => {
                let seq = &mut self.sequences[idx];
                if seq.next < seq.sizes.len() {
                    let bytes = seq.sizes[seq.next];
                    let index = seq.next as u32;
                    seq.next += 1;
                    let sender = seq.sender_idx;
                    let flow = self.flows.cold(sender).flow;
                    if index == 0 {
                        let planned_requests = seq.sizes.len() as u32;
                        ctx.emit_monitor_with(|| MonitorEvent::SessionStarted {
                            flow,
                            planned_requests,
                        });
                    }
                    ctx.emit_monitor_with(|| MonitorEvent::RequestIssued { flow, index, bytes });
                    let early_end = seq.fault_early_end && index == 0;
                    if early_end {
                        let seq = &mut self.sequences[idx];
                        seq.ended = true;
                        let (issued, completed) = (seq.next as u32, seq.completed as u32);
                        ctx.emit_monitor_with(|| MonitorEvent::SessionEnded {
                            flow,
                            issued,
                            completed,
                        });
                    }
                    self.with_core(sender, |core| core.enqueue_train(ctx, bytes));
                }
            }
            _ => unreachable!("unknown timer kind {kind}"),
        }
    }
}
