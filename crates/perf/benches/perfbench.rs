//! Criterion benchmarks for the event engine: the same hot paths the
//! `trim-perf` binary baselines, under the offline criterion shim.
//!
//! Micro: event schedule/pop, drop-tail enqueue/dequeue, RTT estimator
//! update. Macro: the 1k/10k/100k-flow incasts and persistent-connection
//! churn (the large scales take tens of seconds per iteration — this is
//! a manual `cargo bench` target, not part of `cargo test`).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use netsim::queue::DropTailQueue;
use netsim::time::{Dur, SimTime};
use netsim::{EventQueue, FlowId, Packet, QueueConfig, Simulator, SinkAgent, TagPayload};
use trim_perf::churn_macro;
use trim_tcp::rto::RtoEstimator;
use trim_workload::scale::{run_scale_incast, ScaleConfig};

/// Steady-state schedule/pop churn on a pre-filled event queue.
fn bench_eventq(c: &mut Criterion) {
    c.bench_function("eventq/push_pop_1k", |b| {
        b.iter_batched(
            || {
                let mut q: EventQueue<u64> = EventQueue::with_capacity(4096);
                for i in 0..4096u64 {
                    q.push(SimTime::from_nanos(i * 7), i);
                }
                q
            },
            |mut q| {
                let mut t = 4096u64 * 7;
                for i in 0..1000u64 {
                    t += 13 + (i % 29);
                    q.push(SimTime::from_nanos(t), i);
                    black_box(q.pop());
                }
                q
            },
            BatchSize::SmallInput,
        )
    });
}

/// Drop-tail enqueue/dequeue throughput.
fn bench_queue(c: &mut Criterion) {
    let mut sim: Simulator<TagPayload> = Simulator::new();
    let a = sim.add_host(Box::new(SinkAgent::default()));
    let z = sim.add_host(Box::new(SinkAgent::default()));
    c.bench_function("queue/enqueue_dequeue_1k", |b| {
        b.iter_batched(
            || DropTailQueue::<TagPayload>::new(QueueConfig::drop_tail(512)),
            |mut q| {
                for i in 0..1000u64 {
                    let t = SimTime::from_nanos(i * 100);
                    q.enqueue(t, Packet::new(a, z, FlowId(0), 1460, TagPayload(i)));
                    if i % 2 == 1 {
                        black_box(q.dequeue(t));
                    }
                }
                q
            },
            BatchSize::SmallInput,
        )
    });
}

/// RFC 6298 estimator update (per-ACK hot path).
fn bench_rto(c: &mut Criterion) {
    c.bench_function("rto/observe_1k", |b| {
        b.iter_batched(
            || RtoEstimator::new(Dur::from_millis(1), Dur::from_secs(60)),
            |mut e| {
                for i in 0..1000u64 {
                    e.observe(Dur::from_micros(100 + (i % 50)));
                    black_box(e.rto());
                }
                e
            },
            BatchSize::SmallInput,
        )
    });
}

/// End-to-end incast at each scale point.
fn bench_incast(c: &mut Criterion) {
    for (name, flows) in [
        ("sim/incast_1k", 1_000usize),
        ("sim/incast_10k", 10_000),
        ("sim/incast_100k", 100_000),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| black_box(run_scale_incast(&ScaleConfig::with_flows(flows))).events)
        });
    }
}

/// Persistent-connection churn (timer-heavy steady state).
fn bench_churn(c: &mut Criterion) {
    c.bench_function("sim/churn_200x25", |b| {
        b.iter(|| black_box(churn_macro(200, 25, 8_000)).events)
    });
}

criterion_group!(
    benches,
    bench_eventq,
    bench_queue,
    bench_rto,
    bench_incast,
    bench_churn
);
criterion_main!(benches);
