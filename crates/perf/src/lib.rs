//! # trim-perf — the performance benchmark and regression layer
//!
//! Measures the event engine two ways:
//!
//! - **Macro-benchmarks** — engine-scale workloads (1k/10k/100k-flow
//!   incasts from [`trim_workload::scale`], persistent-connection
//!   churn) timed end to end, reporting events/second;
//! - **Micro-benchmarks** — tight loops over the individual hot paths
//!   (event schedule/pop, queue enqueue/dequeue, RTT estimator update),
//!   reporting operations/second. The same paths also run under the
//!   criterion shim in `benches/perfbench.rs`.
//!
//! The `trim-perf` binary writes each result as a JSON baseline under
//! `results/perf/`. Wall-clock numbers are machine-specific and live
//! **only** there — campaign CSVs under `results/` stay byte-identical
//! across hosts. `trim-perf --smoke` re-measures the 1k-flow incast and
//! hard-fails only when it lands more than [`REGRESSION_FACTOR`]× below
//! the committed baseline, so CI catches order-of-magnitude engine
//! regressions without flaking on shared-runner noise.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::time::Instant;

use netsim::queue::{DropTailQueue, EnqueueOutcome};
use netsim::time::{Dur, SimTime};
use netsim::{
    Bandwidth, EventQueue, FlowId, Packet, QueueConfig, Simulator, SinkAgent, TagPayload,
};
use trim_tcp::rto::RtoEstimator;
use trim_tcp::{CcKind, Segment, TcpConfig, TcpHost};
use trim_workload::scale::{run_scale_incast, ScaleConfig};

/// `--smoke` hard-fails when measured events/sec drop below
/// `baseline / REGRESSION_FACTOR`. Generous on purpose: the threshold
/// is there to catch accidental O(n log n) → O(n²) slips, not 20%
/// noise on a loaded CI runner.
pub const REGRESSION_FACTOR: f64 = 5.0;

/// One timed macro-benchmark run.
#[derive(Clone, Debug)]
pub struct MacroResult {
    /// Baseline name (also the JSON file stem).
    pub name: String,
    /// Concurrent flows in the workload.
    pub flows: usize,
    /// Application bytes per flow (per response for the churn bench).
    pub bytes_per_flow: u64,
    /// Events the engine dispatched.
    pub events: u64,
    /// Flows (or responses) that completed within the horizon.
    pub completed: usize,
    /// Packets delivered / dropped, and RTOs fired.
    pub delivered: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Peak concurrent on-the-wire packets.
    pub arena_high_water: usize,
    /// Wall-clock seconds for the run.
    pub wall_s: f64,
    /// `events / wall_s` — the headline engine-throughput metric.
    pub events_per_sec: f64,
}

/// One timed micro-benchmark loop.
#[derive(Clone, Debug)]
pub struct MicroResult {
    /// Loop name.
    pub name: String,
    /// Operations performed.
    pub ops: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// `ops / wall_s`.
    pub ops_per_sec: f64,
}

/// Runs the scale incast under a wall clock.
pub fn incast_macro(name: &str, cfg: &ScaleConfig) -> MacroResult {
    let t0 = Instant::now();
    let r = run_scale_incast(cfg);
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    MacroResult {
        name: name.to_string(),
        flows: cfg.flows,
        bytes_per_flow: cfg.bytes_per_flow,
        events: r.events,
        completed: r.completed,
        delivered: r.audit.delivered,
        dropped: r.audit.dropped,
        timeouts: r.timeouts,
        arena_high_water: r.arena_high_water,
        wall_s,
        events_per_sec: r.events as f64 / wall_s,
    }
}

/// The standard incast scale points: `(baseline name, flow count)`.
pub const INCAST_POINTS: &[(&str, usize)] = &[
    ("incast_1k", 1_000),
    ("incast_10k", 10_000),
    ("incast_100k", 100_000),
];

/// Persistent-connection churn: `conns` connections each serve
/// `responses` sequential responses with a think-time gap, the
/// timer-heavy steady state of the paper's persistent-HTTP testbed.
pub fn churn_macro(conns: usize, responses: usize, response_bytes: u64) -> MacroResult {
    let t0 = Instant::now();
    let mut sim: Simulator<Segment> = Simulator::new();
    let link = netsim::topology::LinkSpec::new(
        Bandwidth::gbps(1),
        Dur::from_micros(50),
        QueueConfig::drop_tail(100),
    );
    let net = netsim::topology::many_to_one(&mut sim, conns, link, |_| Box::new(TcpHost::new()));
    let tcp = TcpConfig::default().with_min_rto(Dur::from_millis(20));
    for (i, &s) in net.senders.iter().enumerate() {
        let idx = trim_workload::scenario::wire_flow(
            &mut sim,
            FlowId(i as u64),
            s,
            net.front_end,
            tcp,
            &CcKind::Reno,
        );
        sim.host_mut::<TcpHost>(s).schedule_response_sequence(
            idx,
            SimTime::from_nanos(1_000 * (1 + i as u64)),
            vec![response_bytes; responses],
            Dur::from_micros(500),
        );
    }
    sim.run_until(SimTime::from_secs(30));
    let completed: usize = net
        .senders
        .iter()
        .map(|&s| {
            sim.host::<TcpHost>(s)
                .connection(0)
                .completed_trains()
                .len()
        })
        .sum();
    let timeouts: u64 = net
        .senders
        .iter()
        .map(|&s| sim.host::<TcpHost>(s).connection(0).stats().timeouts)
        .sum();
    let audit = sim.audit_stats();
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    MacroResult {
        name: "churn".to_string(),
        flows: conns,
        bytes_per_flow: response_bytes,
        events: sim.events_processed(),
        completed,
        delivered: audit.delivered,
        dropped: audit.dropped,
        timeouts,
        arena_high_water: sim.arena_high_water(),
        wall_s,
        events_per_sec: sim.events_processed() as f64 / wall_s,
    }
}

fn timed(name: &str, ops: u64, f: impl FnOnce()) -> MicroResult {
    let t0 = Instant::now();
    f();
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    MicroResult {
        name: name.to_string(),
        ops,
        wall_s,
        ops_per_sec: ops as f64 / wall_s,
    }
}

/// The micro-benchmark suite: event schedule/pop, queue
/// enqueue/dequeue, RTT estimator update.
pub fn micro_suite(ops: u64) -> Vec<MicroResult> {
    let mut out = Vec::new();

    out.push(timed("eventq_push_pop", ops, || {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(4096);
        for i in 0..4096u64 {
            q.push(SimTime::from_nanos(i * 7), i);
        }
        let mut t = 4096u64 * 7;
        for i in 0..ops {
            t += 13 + (i % 29);
            q.push(SimTime::from_nanos(t), i);
            std::hint::black_box(q.pop());
        }
    }));

    out.push(timed("queue_enqueue_dequeue", ops, || {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let a = sim.add_host(Box::new(SinkAgent::default()));
        let b = sim.add_host(Box::new(SinkAgent::default()));
        let mut q = DropTailQueue::new(QueueConfig::drop_tail(512));
        for i in 0..ops {
            let now = SimTime::from_nanos(i * 100);
            let outcome = q.enqueue(now, Packet::new(a, b, FlowId(0), 1460, TagPayload(i)));
            std::hint::black_box(outcome == EnqueueOutcome::Accepted);
            if i % 2 == 1 {
                std::hint::black_box(q.dequeue(now));
            }
        }
    }));

    out.push(timed("rto_observe", ops, || {
        let mut e = RtoEstimator::new(Dur::from_millis(1), Dur::from_secs(60));
        for i in 0..ops {
            e.observe(Dur::from_micros(100 + (i % 50)));
            std::hint::black_box(e.rto());
        }
    }));

    out
}

/// Renders a macro result as its committed JSON baseline.
pub fn macro_json(r: &MacroResult) -> String {
    format!(
        "{{\n  \"bench\": \"{}\",\n  \"flows\": {},\n  \"bytes_per_flow\": {},\n  \
         \"events\": {},\n  \"completed\": {},\n  \"delivered\": {},\n  \"dropped\": {},\n  \
         \"timeouts\": {},\n  \"arena_high_water\": {},\n  \"wall_s\": {:.3},\n  \
         \"events_per_sec\": {:.0}\n}}\n",
        r.name,
        r.flows,
        r.bytes_per_flow,
        r.events,
        r.completed,
        r.delivered,
        r.dropped,
        r.timeouts,
        r.arena_high_water,
        r.wall_s,
        r.events_per_sec,
    )
}

/// Renders the micro suite as one JSON baseline.
pub fn micro_json(rs: &[MicroResult]) -> String {
    let mut out = String::from("{\n  \"bench\": \"micro\",\n  \"results\": [\n");
    for (i, r) in rs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ops\": {}, \"wall_s\": {:.3}, \"ops_per_sec\": {:.0}}}{}\n",
            r.name,
            r.ops,
            r.wall_s,
            r.ops_per_sec,
            if i + 1 < rs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `"events_per_sec": <number>` from a baseline JSON file.
pub fn baseline_events_per_sec(json: &str) -> Option<f64> {
    let key = "\"events_per_sec\":";
    let start = json.find(key)? + key.len();
    let tail = json[start..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Verdict of the `--smoke` comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SmokeVerdict {
    /// Within `REGRESSION_FACTOR` of the baseline (either direction).
    Ok,
    /// More than `REGRESSION_FACTOR`× slower than the baseline.
    Regressed,
}

/// Compares measured events/sec against the committed baseline.
pub fn smoke_verdict(measured: f64, baseline: f64) -> SmokeVerdict {
    if measured * REGRESSION_FACTOR < baseline {
        SmokeVerdict::Regressed
    } else {
        SmokeVerdict::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incast_macro_reports_throughput() {
        let mut cfg = ScaleConfig::with_flows(40);
        cfg.bytes_per_flow = 10_000;
        let r = incast_macro("test", &cfg);
        assert_eq!(r.completed, 40);
        assert!(r.events > 0);
        assert!(r.events_per_sec > 0.0);
        assert!(r.arena_high_water > 0);
    }

    #[test]
    fn churn_macro_completes_every_response() {
        let r = churn_macro(8, 5, 8_000);
        assert_eq!(r.completed, 8 * 5, "{r:?}");
        assert!(r.events > 0);
    }

    #[test]
    fn micro_suite_measures_all_three_paths() {
        let rs = micro_suite(10_000);
        let names: Vec<&str> = rs.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            ["eventq_push_pop", "queue_enqueue_dequeue", "rto_observe"]
        );
        assert!(rs.iter().all(|r| r.ops_per_sec > 0.0));
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let r = MacroResult {
            name: "incast_1k".into(),
            flows: 1000,
            bytes_per_flow: 146_000,
            events: 5_000_000,
            completed: 1000,
            delivered: 120_000,
            dropped: 30,
            timeouts: 2,
            arena_high_water: 210,
            wall_s: 2.5,
            events_per_sec: 2_000_000.0,
        };
        let json = macro_json(&r);
        assert_eq!(baseline_events_per_sec(&json), Some(2_000_000.0));
        assert!(json.contains("\"bench\": \"incast_1k\""));
        assert!(json.contains("\"arena_high_water\": 210"));
    }

    #[test]
    fn smoke_threshold_is_generous_but_firm() {
        assert_eq!(smoke_verdict(1_000_000.0, 1_000_000.0), SmokeVerdict::Ok);
        // 4x slower: informational only.
        assert_eq!(smoke_verdict(250_000.0, 1_000_000.0), SmokeVerdict::Ok);
        // >5x slower: hard failure.
        assert_eq!(
            smoke_verdict(199_999.0, 1_000_000.0),
            SmokeVerdict::Regressed
        );
        // Faster than baseline is always fine.
        assert_eq!(smoke_verdict(9_000_000.0, 1_000_000.0), SmokeVerdict::Ok);
    }

    #[test]
    fn baseline_parser_tolerates_whitespace_and_ints() {
        assert_eq!(
            baseline_events_per_sec("{\"events_per_sec\":   1234567\n}"),
            Some(1_234_567.0)
        );
        assert_eq!(baseline_events_per_sec("{}"), None);
    }
}
