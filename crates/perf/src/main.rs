//! `trim-perf` — measure the event engine and maintain its committed
//! performance baselines.
//!
//! ```text
//! trim-perf                  # micro suite + incast 1k/10k/100k/1m + churn
//! trim-perf --quick          # micro suite + incast 1k + churn
//! trim-perf --smoke          # re-measure the 1k incast, compare vs the
//!                            # committed baseline, exit 1 on >5x regression
//! trim-perf --smoke-1m       # reduced-horizon million-flow incast vs the
//!                            # committed incast_1m baseline, same 5x gate
//! trim-perf --out DIR        # results root (default results/)
//! trim-perf --baseline FILE  # smoke baseline
//!                            # (default results/perf/incast_1k.json,
//!                            #  incast_1m.json for --smoke-1m)
//! ```
//!
//! Full runs write one JSON per benchmark under `<out>/perf/`; `--smoke`
//! writes nothing. Wall-clock numbers live only in these files, never in
//! campaign CSVs, so the golden artifacts stay byte-identical.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use trim_harness::ResultStore;
use trim_perf::{
    baseline_events_per_sec, churn_macro, incast_macro, macro_json, micro_json, micro_suite,
    smoke_verdict, SmokeVerdict, INCAST_POINTS, REGRESSION_FACTOR,
};
use trim_workload::scale::ScaleConfig;

struct Options {
    smoke: bool,
    smoke_1m: bool,
    quick: bool,
    out: String,
    baseline: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        smoke_1m: false,
        quick: false,
        out: "results".to_string(),
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--smoke-1m" => opts.smoke_1m = true,
            "--quick" => opts.quick = true,
            "--out" => opts.out = args.next().ok_or("--out needs a directory")?,
            "--baseline" => opts.baseline = Some(args.next().ok_or("--baseline needs a file")?),
            "--help" | "-h" => {
                println!(
                    "usage: trim-perf [--smoke] [--smoke-1m] [--quick] [--out DIR] \
                     [--baseline FILE]\n\
                     Measures the event engine; writes JSON baselines under <out>/perf/."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}' (see --help)")),
        }
    }
    if opts.smoke && opts.smoke_1m {
        return Err("--smoke and --smoke-1m are mutually exclusive".into());
    }
    Ok(opts)
}

fn print_macro(r: &trim_perf::MacroResult) {
    println!(
        "perf {:<12} flows {:>7}  events {:>10}  wall {:>7.2}s  {:>12.0} events/s  \
         completed {}  drops {}  rtos {}",
        r.name, r.flows, r.events, r.wall_s, r.events_per_sec, r.completed, r.dropped, r.timeouts,
    );
}

fn smoke(name: &str, cfg: &ScaleConfig, baseline_path: &str) -> ExitCode {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "trim-perf: cannot read baseline {baseline_path}: {e}\n\
                 (run `trim-perf` once and commit results/perf/ to create it)"
            );
            return ExitCode::FAILURE;
        }
    };
    let Some(base_eps) = baseline_events_per_sec(&baseline) else {
        eprintln!("trim-perf: baseline {baseline_path} has no events_per_sec field");
        return ExitCode::FAILURE;
    };
    let r = incast_macro(name, cfg);
    print_macro(&r);
    let ratio = r.events_per_sec / base_eps;
    println!(
        "smoke: {:.0} events/s vs baseline {base_eps:.0} ({:.2}x); \
         hard floor is baseline/{REGRESSION_FACTOR}",
        r.events_per_sec, ratio,
    );
    match smoke_verdict(r.events_per_sec, base_eps) {
        SmokeVerdict::Ok => {
            if ratio < 1.0 {
                println!("smoke: slower than baseline but within the informational threshold");
            }
            ExitCode::SUCCESS
        }
        SmokeVerdict::Regressed => {
            eprintln!(
                "trim-perf: PERF REGRESSION — {name} runs {:.1}x slower than the \
                 committed baseline",
                1.0 / ratio
            );
            ExitCode::FAILURE
        }
    }
}

fn full(opts: &Options) -> ExitCode {
    let store = ResultStore::new(&opts.out);
    let mut failures = 0;
    let mut write = |rel: String, contents: String| {
        if let Err(e) = store.write_text_artifact(&rel, &contents) {
            eprintln!("trim-perf: writing {rel}: {e}");
            failures += 1;
        }
    };

    let micro = micro_suite(2_000_000);
    for m in &micro {
        println!(
            "perf micro/{:<22} ops {:>9}  wall {:>6.2}s  {:>12.0} ops/s",
            m.name, m.ops, m.wall_s, m.ops_per_sec
        );
    }
    write("perf/micro.json".into(), micro_json(&micro));

    for &(name, flows) in INCAST_POINTS {
        if opts.quick && flows > 1_000 {
            continue;
        }
        let r = incast_macro(name, &ScaleConfig::with_flows(flows));
        print_macro(&r);
        write(format!("perf/{name}.json"), macro_json(&r));
    }

    if !opts.quick {
        let r = incast_macro("incast_1m", &ScaleConfig::million_flow());
        print_macro(&r);
        write("perf/incast_1m.json".into(), macro_json(&r));
    }

    let churn = churn_macro(200, 25, 8_000);
    print_macro(&churn);
    write("perf/churn.json".into(), macro_json(&churn));

    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("trim-perf: {msg}");
            return ExitCode::from(2);
        }
    };
    if opts.smoke {
        let baseline = opts
            .baseline
            .as_deref()
            .unwrap_or("results/perf/incast_1k.json");
        smoke("incast_1k", &ScaleConfig::with_flows(1_000), baseline)
    } else if opts.smoke_1m {
        // Reduced horizon: same workload shape as the committed
        // incast_1m baseline, cut short so the CI gate stays cheap.
        // events/sec is horizon-insensitive, so the 5x gate still holds.
        let mut cfg = ScaleConfig::million_flow();
        cfg.horizon = netsim::time::Dur::from_millis(1_500);
        let baseline = opts
            .baseline
            .as_deref()
            .unwrap_or("results/perf/incast_1m.json");
        smoke("incast_1m", &cfg, baseline)
    } else {
        full(&opts)
    }
}
