//! Property-based tests for the TCP-TRIM algorithm and its steady-state
//! model.

use proptest::prelude::*;
use trim_core::estimator::RttTracker;
use trim_core::{kmodel, SendDecision, Trim, TrimConfig, WindowAction};

proptest! {
    /// The smoothed RTT always stays within the range of samples seen.
    #[test]
    fn smooth_rtt_within_sample_range(
        alpha in 0.01f64..=1.0,
        samples in proptest::collection::vec(1u64..10_000_000, 1..100),
    ) {
        let mut t = RttTracker::new(alpha);
        for &s in &samples {
            t.observe(s);
        }
        let lo = *samples.iter().min().unwrap();
        let hi = *samples.iter().max().unwrap();
        let smooth = t.smooth_ns().unwrap();
        prop_assert!(smooth >= lo && smooth <= hi,
            "smooth {smooth} outside [{lo}, {hi}]");
        prop_assert_eq!(t.min_ns().unwrap(), lo);
    }

    /// Eq. 1's tuned window is always within [min_cwnd, saved window].
    #[test]
    fn probe_window_bounded(
        saved in 2.0f64..2000.0,
        min_rtt in 10_000u64..1_000_000,
        extra0 in 0u64..3_000_000,
        extra1 in 0u64..3_000_000,
    ) {
        let mut t = Trim::new(TrimConfig::default()).unwrap();
        t.on_ack(0, min_rtt, false);
        t.note_sent(0);
        let now = 100 * min_rtt;
        prop_assume!(matches!(
            t.on_send_attempt(now, saved),
            SendDecision::StartProbe { .. }
        ));
        t.begin_probe(saved, 2);
        t.on_ack(now, min_rtt + extra0, true);
        match t.on_ack(now, min_rtt + extra1, true) {
            WindowAction::SetAndResume(w) => {
                prop_assert!(w >= 2.0, "window {w} below floor");
                prop_assert!(w <= saved + 1e-9, "window {w} above saved {saved}");
            }
            other => prop_assert!(false, "expected SetAndResume, got {other:?}"),
        }
        prop_assert!(!t.is_probing());
    }

    /// Queue-control back-off (Eq. 3) is gentler than TCP's halving and
    /// never increases the window.
    #[test]
    fn queue_backoff_factor_in_half_open_interval(
        k in 1_000u64..1_000_000,
        rtt in 1_000u64..100_000_000,
    ) {
        let mut t = Trim::new(TrimConfig {
            k_override_ns: Some(k),
            ..TrimConfig::default()
        }).unwrap();
        match t.on_ack(0, rtt, false) {
            WindowAction::Scale(f) => {
                prop_assert!(rtt >= k);
                prop_assert!(f > 0.5 && f <= 1.0, "factor {f}");
            }
            WindowAction::None => prop_assert!(rtt < k),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// The K guideline (Eq. 22) dominates F(N) for every N and never falls
    /// below the base RTT.
    #[test]
    fn k_guideline_dominates_f(
        c in 1_000.0f64..10_000_000.0,
        d in 1_000u64..10_000_000,
        n in 1u32..1000,
    ) {
        let k = kmodel::k_lower_bound_ns(c, d);
        prop_assert!(k >= d);
        let f = kmodel::f_of_n(n as f64, c, d);
        prop_assert!(k as f64 >= f - 2.0, "K={k} < F({n})={f}");
    }

    /// With K at the guideline, the steady state never underflows the
    /// queue: the utilization guarantee of Eq. 11 holds for any N.
    #[test]
    fn guideline_k_keeps_link_busy(
        c in 10_000.0f64..1_000_000.0,
        d in 10_000u64..2_000_000,
        n in 1u32..500,
    ) {
        let k = kmodel::k_lower_bound_ns(c, d);
        let st = kmodel::steady_state(c, d, k, n);
        prop_assert!(st.full_utilization,
            "Qmax={} decrement={}", st.max_queue, st.total_decrement);
        prop_assert!(st.max_queue >= st.target_queue);
        prop_assert!(st.window > 0.0);
    }

    /// ep_j (Eq. 9) is monotonically increasing in j and stays in (0, 1).
    #[test]
    fn congestion_level_monotone(
        c in 1_000.0f64..1_000_000.0,
        k in 10_000u64..1_000_000,
        j in 1u32..500,
    ) {
        let a = kmodel::congestion_level_of_jth(c, k, j);
        let b = kmodel::congestion_level_of_jth(c, k, j + 1);
        prop_assert!(a > 0.0 && b < 1.0 && b > a);
    }

    /// A full probe cycle always terminates: either by ACKs or by the
    /// deadline, never both, and the machine returns to Normal.
    #[test]
    fn probe_cycle_terminates(
        saved in 2.0f64..1000.0,
        acks_before_deadline in 0u32..=2,
    ) {
        let mut t = Trim::new(TrimConfig::default()).unwrap();
        t.on_ack(0, 100_000, false);
        t.note_sent(0);
        prop_assume!(matches!(
            t.on_send_attempt(10_000_000, saved),
            SendDecision::StartProbe { .. }
        ));
        t.begin_probe(saved, 2);
        let mut completed = false;
        for _ in 0..acks_before_deadline {
            if let WindowAction::SetAndResume(_) = t.on_ack(0, 150_000, true) {
                completed = true;
            }
        }
        let deadline_action = t.on_probe_deadline();
        if completed {
            prop_assert_eq!(deadline_action, WindowAction::None);
        } else {
            prop_assert_eq!(deadline_action, WindowAction::FallbackAndResume(2.0));
        }
        prop_assert!(!t.is_probing());
    }
}
