//! TCP-TRIM configuration.

/// Tunable parameters of the TCP-TRIM algorithm.
///
/// Defaults follow Section IV of the paper: `alpha = 0.25`, minimum
/// congestion window of 2 packets, and two probe packets per idle restart.
#[derive(Clone, Copy, Debug)]
pub struct TrimConfig {
    /// EWMA weight for the new RTT sample when computing `smooth_RTT`
    /// (Algorithm 2, line 2). The paper uses 0.25 throughout.
    pub alpha: f64,
    /// Floor for the congestion window in packets; the paper keeps TCP's
    /// default of 2.
    pub min_cwnd: f64,
    /// Number of probe packets sent when an inter-train gap is detected
    /// (Algorithm 1 sends `cwnd = 2` probes). Exposed for the ablation
    /// study; the connection may send fewer when less data is pending.
    pub probe_packets: u32,
    /// Bottleneck capacity in packets per second — the `C` of Eq. 22. When
    /// known, the RTT threshold `K` is derived from the guideline
    /// `K >= max(((sqrt(2CD)-1)^2)/C, D)` each time `min_RTT` changes.
    pub capacity_pps: Option<f64>,
    /// Fixed RTT threshold `K` in nanoseconds, overriding the guideline.
    pub k_override_ns: Option<u64>,
    /// Fallback multiplier on `min_RTT` used for `K` when neither
    /// `capacity_pps` nor `k_override_ns` is set.
    pub k_fallback_factor: f64,
    /// Minimum queueing headroom, in packets, built into the derived
    /// threshold: `K >= min_RTT + k_margin_pkts / C`. Eq. 22 degenerates
    /// to `K = D` when the bandwidth-delay product is small (e.g. the
    /// 100 Mbps testbed), which would make TRIM back off on its own
    /// packets' serialization delay and starve the link; a few packets of
    /// allowed queueing restore the model's intent (a small positive
    /// target queue). Ignored when `k_override_ns` is set.
    pub k_margin_pkts: f64,
    /// Apply the queuing-control reduction (Eq. 3) at most once per RTT.
    ///
    /// Section III.A stipulates that TCP-TRIM's reduction "can not be more
    /// aggressive than that of the legacy TCP", and legacy TCP halves at
    /// most once per window of data; the steady-state model (Eq. 10)
    /// likewise counts one decrement per connection per round. Setting
    /// this to `false` applies Algorithm 2 literally on every ACK, which
    /// compounds the factor and collapses the window — kept as an
    /// ablation.
    pub backoff_per_rtt: bool,
}

impl Default for TrimConfig {
    fn default() -> Self {
        TrimConfig {
            alpha: 0.25,
            min_cwnd: 2.0,
            probe_packets: 2,
            capacity_pps: None,
            k_override_ns: None,
            k_fallback_factor: 2.0,
            k_margin_pkts: 4.0,
            backoff_per_rtt: true,
        }
    }
}

impl TrimConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field when a parameter is out
    /// of range (`alpha` outside `(0, 1]`, non-positive windows or factors,
    /// zero probe count, non-positive capacity).
    // Negated comparisons are deliberate: `!(x >= 1.0)` rejects NaN,
    // which `x < 1.0` would accept.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(format!("alpha must be in (0, 1], got {}", self.alpha));
        }
        if !(self.min_cwnd >= 1.0) {
            return Err(format!("min_cwnd must be >= 1, got {}", self.min_cwnd));
        }
        if self.probe_packets == 0 {
            return Err("probe_packets must be >= 1".to_string());
        }
        if let Some(c) = self.capacity_pps {
            if !(c > 0.0) {
                return Err(format!("capacity_pps must be positive, got {c}"));
            }
        }
        if !(self.k_fallback_factor >= 1.0) {
            return Err(format!(
                "k_fallback_factor must be >= 1, got {}",
                self.k_fallback_factor
            ));
        }
        if !(self.k_margin_pkts >= 0.0) {
            return Err(format!(
                "k_margin_pkts must be non-negative, got {}",
                self.k_margin_pkts
            ));
        }
        Ok(())
    }

    /// Sets the bottleneck capacity from a link rate and packet size, the
    /// usual way experiments configure `C`.
    pub fn with_capacity(mut self, bits_per_sec: u64, packet_bytes: u32) -> Self {
        self.capacity_pps = Some(bits_per_sec as f64 / (packet_bytes as f64 * 8.0));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let cfg = TrimConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.alpha, 0.25);
        assert_eq!(cfg.min_cwnd, 2.0);
        assert_eq!(cfg.probe_packets, 2);
    }

    #[test]
    fn with_capacity_converts_units() {
        let cfg = TrimConfig::default().with_capacity(1_000_000_000, 1460);
        let c = cfg.capacity_pps.unwrap();
        assert!((c - 85_616.438).abs() < 0.01);
    }

    #[test]
    fn invalid_fields_rejected() {
        let mut cfg = TrimConfig {
            alpha: 0.0,
            ..TrimConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.alpha = 1.5;
        assert!(cfg.validate().is_err());
        cfg.alpha = 0.25;
        cfg.min_cwnd = 0.5;
        assert!(cfg.validate().is_err());
        cfg.min_cwnd = 2.0;
        cfg.probe_packets = 0;
        assert!(cfg.validate().is_err());
        cfg.probe_packets = 2;
        cfg.capacity_pps = Some(-1.0);
        assert!(cfg.validate().is_err());
        cfg.capacity_pps = None;
        cfg.k_fallback_factor = 0.5;
        assert!(cfg.validate().is_err());
    }
}
