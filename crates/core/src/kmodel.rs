//! The steady-state model of Section III.B and the guideline for choosing
//! the RTT threshold `K` (Equations 4–22).
//!
//! The model considers `N` synchronized persistent connections sharing a
//! bottleneck of capacity `C` packets/second with base round-trip time `D`
//! seconds, and derives the smallest `K` that keeps the switch queue from
//! underflowing (100% utilization) while bounding its length.
//!
//! All functions take `C` in packets per second and times in nanoseconds,
//! matching [`crate::Trim`]'s units; internal math is in seconds.

const NS_PER_SEC: f64 = 1e9;

fn assert_pos(v: f64, name: &str) {
    assert!(v.is_finite() && v > 0.0, "{name} must be positive, got {v}");
}

/// `F(N) = 2ND/(N+1) - N/C` (Eq. 17): the lower bound on `K` required by
/// `N` synchronized connections. Returns seconds... nanoseconds.
///
/// `n` may be fractional to allow calculus-style analysis.
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
pub fn f_of_n(n: f64, capacity_pps: f64, base_rtt_ns: u64) -> f64 {
    assert_pos(n, "n");
    assert_pos(capacity_pps, "capacity_pps");
    let d = base_rtt_ns as f64 / NS_PER_SEC;
    (2.0 * n * d / (n + 1.0) - n / capacity_pps) * NS_PER_SEC
}

/// The stationary point `N* = sqrt(2CD) - 1` of `F(N)` (positive root of
/// Eq. 19), at which `F` attains its maximum (Eq. 20 shows `F'' < 0`).
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
pub fn n_star(capacity_pps: f64, base_rtt_ns: u64) -> f64 {
    assert_pos(capacity_pps, "capacity_pps");
    let d = base_rtt_ns as f64 / NS_PER_SEC;
    (2.0 * capacity_pps * d).sqrt() - 1.0
}

/// The guideline of Eq. 22:
/// `K >= max(((sqrt(2CD) - 1)^2) / C, D)`, returned in nanoseconds.
///
/// Setting `K` to this value guarantees the bottleneck never idles in the
/// synchronized steady state, for *any* number of connections `N`.
///
/// # Panics
///
/// Panics if `capacity_pps` is non-positive or `base_rtt_ns` is zero.
pub fn k_lower_bound_ns(capacity_pps: f64, base_rtt_ns: u64) -> u64 {
    assert_pos(capacity_pps, "capacity_pps");
    assert!(base_rtt_ns > 0, "base_rtt_ns must be positive");
    let d = base_rtt_ns as f64 / NS_PER_SEC;
    let s = (2.0 * capacity_pps * d).sqrt();
    let f_max = if s > 1.0 {
        (s - 1.0) * (s - 1.0) / capacity_pps
    } else {
        // Fewer than one packet in flight at N*: the F-bound is vacuous.
        0.0
    };
    let k = f_max.max(d);
    (k * NS_PER_SEC).round() as u64
}

/// One round of the synchronized steady state for a concrete `(C, D, K, N)`
/// (Equations 4–11).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SteadyState {
    /// Desired queue length `Q = C(K - D)` in packets (Eq. 4).
    pub target_queue: f64,
    /// Per-connection window `W = CK/N` in packets at the target (Eq. 5).
    pub window: f64,
    /// Peak queue length `Qmax = C(K - D) + N` (Eq. 7).
    pub max_queue: f64,
    /// Exact total window decrement across all `N` connections in the
    /// back-off round (the discrete sum of Eq. 10).
    pub total_decrement: f64,
    /// The integral approximation of the same sum (Eq. 13 substituted into
    /// Eq. 10).
    pub total_decrement_approx: f64,
    /// Whether `Qmax - total_decrement > 0`, i.e. the queue cannot
    /// underflow and the bottleneck stays 100% utilized (Eq. 11).
    pub full_utilization: bool,
}

/// Evaluates the steady-state round for `n` synchronized connections.
///
/// # Panics
///
/// Panics if any argument is non-positive, or if `k_ns < base_rtt_ns`
/// (a threshold below the base RTT is meaningless).
pub fn steady_state(capacity_pps: f64, base_rtt_ns: u64, k_ns: u64, n: u32) -> SteadyState {
    assert_pos(capacity_pps, "capacity_pps");
    assert!(n > 0, "n must be positive");
    assert!(
        k_ns >= base_rtt_ns,
        "K ({k_ns}ns) must be at least the base RTT ({base_rtt_ns}ns)"
    );
    let d = base_rtt_ns as f64 / NS_PER_SEC;
    let k = k_ns as f64 / NS_PER_SEC;
    let c = capacity_pps;
    let nf = n as f64;
    let ck = c * k;

    let target_queue = c * (k - d);
    let window = ck / nf;
    let max_queue = target_queue + nf;

    // Eq. 8-10: connection j sees RTT K + j/C, hence congestion level
    // ep_j = j / (CK + j); its window (CK+N)/N shrinks by ep_j/2.
    let per_window = (ck + nf) / nf;
    let exact_sum: f64 = (1..=n).map(|j| j as f64 / (ck + j as f64)).sum();
    let total_decrement = per_window / 2.0 * exact_sum;

    // Eq. 13: sum ~ integral_1^N j/(CK+j) dj = N - 1 + CK ln((CK+1)/(CK+N)).
    let approx_sum = nf - 1.0 + ck * ((ck + 1.0) / (ck + nf)).ln();
    let total_decrement_approx = per_window / 2.0 * approx_sum;

    SteadyState {
        target_queue,
        window,
        max_queue,
        total_decrement,
        total_decrement_approx,
        full_utilization: max_queue - total_decrement > 0.0,
    }
}

/// The RTT seen by the `j`-th connection when the queue peaks:
/// `RTT_j = K + j/C` (Eq. 8), in nanoseconds.
///
/// # Panics
///
/// Panics if `capacity_pps` is non-positive.
pub fn rtt_of_jth_ns(capacity_pps: f64, k_ns: u64, j: u32) -> u64 {
    assert_pos(capacity_pps, "capacity_pps");
    k_ns + (j as f64 / capacity_pps * NS_PER_SEC).round() as u64
}

/// The congestion level perceived by the `j`-th connection:
/// `ep_j = j/(CK + j)` (Eq. 9).
///
/// # Panics
///
/// Panics if `capacity_pps` or `k_ns` is non-positive.
pub fn congestion_level_of_jth(capacity_pps: f64, k_ns: u64, j: u32) -> f64 {
    assert_pos(capacity_pps, "capacity_pps");
    assert!(k_ns > 0, "k_ns must be positive");
    let ck = capacity_pps * (k_ns as f64 / NS_PER_SEC);
    j as f64 / (ck + j as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's canonical 1 Gbps / 1460 B setting.
    const C: f64 = 1e9 / (1460.0 * 8.0);

    #[test]
    fn n_star_is_stationary_point_of_f() {
        let d = 200_000; // 200us
        let ns = n_star(C, d);
        assert!(ns > 0.0);
        let eps = 1e-3;
        let f0 = f_of_n(ns, C, d);
        assert!(f_of_n(ns - eps, C, d) <= f0 + 1e-6);
        assert!(f_of_n(ns + eps, C, d) <= f0 + 1e-6);
    }

    #[test]
    fn k_bound_dominates_f_for_all_n() {
        for &d in &[100_000u64, 200_000, 1_000_000] {
            let k = k_lower_bound_ns(C, d) as f64;
            for n in 1..500 {
                assert!(
                    k >= f_of_n(n as f64, C, d) - 1.0,
                    "K={k}ns < F({n}) for D={d}ns"
                );
            }
        }
    }

    #[test]
    fn k_bound_at_least_base_rtt() {
        for &d in &[1_000u64, 50_000, 200_000, 10_000_000] {
            assert!(k_lower_bound_ns(C, d) >= d);
        }
    }

    #[test]
    fn k_bound_closed_form() {
        // D = 200us: 2CD = 2 * 85616.44 * 200e-6 = 34.25, sqrt = 5.852,
        // (4.852)^2 / C = 23.54/85616.44 = 274.98us.
        let k = k_lower_bound_ns(C, 200_000);
        let expected = {
            let s = (2.0 * C * 200e-6f64).sqrt();
            ((s - 1.0).powi(2) / C * 1e9).round() as u64
        };
        assert_eq!(k, expected);
        assert!(k > 200_000, "bound exceeds D here");
    }

    #[test]
    fn tiny_bandwidth_delay_product_falls_back_to_d() {
        // 2CD < 1: the F-term is vacuous; K = D.
        let k = k_lower_bound_ns(10.0, 1_000); // 10 pkt/s, 1us RTT
        assert_eq!(k, 1_000);
    }

    #[test]
    fn steady_state_matches_equations() {
        let d = 200_000;
        let k = 400_000; // 400us
        let st = steady_state(C, d, k, 10);
        // Q = C(K - D) = 85616.44 * 200e-6 = 17.12 pkts.
        assert!((st.target_queue - C * 200e-6).abs() < 1e-9);
        // W = CK/N = 85616.44 * 400e-6 / 10 = 3.42 pkts.
        assert!((st.window - C * 400e-6 / 10.0).abs() < 1e-9);
        assert!((st.max_queue - (st.target_queue + 10.0)).abs() < 1e-9);
        assert!(st.total_decrement > 0.0);
        assert!(st.full_utilization);
    }

    #[test]
    fn guideline_k_guarantees_utilization_across_n() {
        for &d in &[100_000u64, 200_000, 500_000] {
            let k = k_lower_bound_ns(C, d);
            for n in [1u32, 2, 5, 10, 50, 100, 400] {
                let st = steady_state(C, d, k, n);
                assert!(
                    st.full_utilization,
                    "underflow at N={n}, D={d}ns: Qmax={} dec={}",
                    st.max_queue, st.total_decrement
                );
            }
        }
    }

    #[test]
    fn approximation_close_to_exact_sum() {
        let st = steady_state(C, 200_000, 400_000, 50);
        let rel =
            (st.total_decrement - st.total_decrement_approx).abs() / st.total_decrement.max(1e-12);
        assert!(rel < 0.1, "Eq. 13 approximation off by {rel}");
    }

    #[test]
    fn rtt_and_ep_of_jth() {
        let k = 400_000;
        // RTT_j grows linearly with j.
        let r1 = rtt_of_jth_ns(C, k, 1);
        let r2 = rtt_of_jth_ns(C, k, 2);
        assert!(r2 > r1 && r1 > k);
        assert_eq!(r2 - k, 2 * (r1 - k));
        // ep_j in (0, 1), increasing in j.
        let e1 = congestion_level_of_jth(C, k, 1);
        let e9 = congestion_level_of_jth(C, k, 9);
        assert!(e1 > 0.0 && e9 < 1.0 && e9 > e1);
    }

    #[test]
    #[should_panic(expected = "must be at least the base RTT")]
    fn steady_state_rejects_k_below_d() {
        let _ = steady_state(C, 200_000, 100_000, 5);
    }

    #[test]
    #[should_panic(expected = "capacity_pps")]
    fn negative_capacity_rejected() {
        let _ = f_of_n(1.0, -5.0, 100);
    }

    /// Eq. 22 against values worked out by hand from
    /// `K = max(((sqrt(2CD) - 1)^2) / C, D)` with `C = mbps * 1e6 / (1460 * 8)`
    /// packets per second. The first five rows are F-term dominated and
    /// checked to 0.2% relative tolerance (hand arithmetic carries a few
    /// rounded digits); the last two are D-dominated — for 10 Mbps at
    /// 1 ms the F-term falls below D, and at 1 Mbps / 100 µs we have
    /// 2CD < 1 so the F-term is vacuous — and must equal D exactly.
    #[test]
    fn k_guideline_matches_hand_computed_table() {
        // (link Mbps, D µs, expected K ns, F-term dominated?)
        const TABLE: &[(u64, u64, u64, bool)] = &[
            (1_000, 100, 115_016, true),
            (1_000, 200, 274_976, true),
            (1_000, 500, 795_532, true),
            (100, 1_000, 1_150_156, true),
            (10_000, 50, 79_553, true),
            (10, 1_000, 1_000_000, false),
            (1, 100, 100_000, false),
        ];
        for &(mbps, d_us, want_ns, f_dominated) in TABLE {
            let c = mbps as f64 * 1e6 / (1460.0 * 8.0);
            let d_ns = d_us * 1_000;
            let got = k_lower_bound_ns(c, d_ns);
            if f_dominated {
                let rel = (got as f64 - want_ns as f64).abs() / want_ns as f64;
                assert!(
                    rel < 2e-3,
                    "{mbps} Mbps / {d_us}us: K = {got}ns, hand value {want_ns}ns (rel {rel:.2e})"
                );
                assert!(
                    got > d_ns,
                    "{mbps} Mbps / {d_us}us: expected F-term to dominate D"
                );
            } else {
                assert_eq!(
                    got, d_ns,
                    "{mbps} Mbps / {d_us}us: K must fall back to D exactly"
                );
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// Eq. 22 as a property over the whole operating range: for a
        /// randomized link capacity (10 Mbps – 40 Gbps at 1460 B) and
        /// base RTT (20 µs – 2 ms), the guideline `K` sustains full
        /// utilization at every sampled concurrency level, and so does
        /// any larger threshold (utilization is monotone in `K`).
        #[test]
        fn guideline_k_holds_for_random_capacity_and_delay(
            mbps in 10u64..40_000,
            d_us in 20u64..2_000,
            n in 1u32..500,
        ) {
            let c = mbps as f64 * 1e6 / (1460.0 * 8.0);
            let d = d_us * 1_000;
            let k = k_lower_bound_ns(c, d);
            proptest::prop_assert!(k >= d, "K below the base RTT");
            let st = steady_state(c, d, k, n);
            proptest::prop_assert!(
                st.full_utilization,
                "underflow at C={} pps, D={}ns, K={}ns, N={}: Qmax={} dec={}",
                c, d, k, n, st.max_queue, st.total_decrement
            );
            let wider = steady_state(c, d, 2 * k, n);
            proptest::prop_assert!(wider.full_utilization);
        }

        /// The Eq. 22 closed form is monotone in the base RTT: a longer
        /// path never calls for a smaller threshold. (Both branches of
        /// the max are non-decreasing in D, so the bound is too.)
        #[test]
        fn guideline_k_is_monotone_in_base_rtt(
            mbps in 1u64..40_000,
            d1_us in 1u64..5_000,
            d2_us in 1u64..5_000,
        ) {
            let c = mbps as f64 * 1e6 / (1460.0 * 8.0);
            let (lo, hi) = (d1_us.min(d2_us), d1_us.max(d2_us));
            proptest::prop_assert!(
                k_lower_bound_ns(c, lo * 1_000) <= k_lower_bound_ns(c, hi * 1_000),
                "K decreased when D grew from {lo}us to {hi}us at {mbps} Mbps"
            );
        }
    }
}
