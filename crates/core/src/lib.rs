//! # trim-core — the TCP-TRIM algorithm
//!
//! This crate implements the contribution of *"Tuning the Aggressive TCP
//! Behavior for Highly Concurrent HTTP Connections in Data Center"*
//! (ICDCS 2016): the sender-side TCP-TRIM mechanism that
//!
//! 1. detects **inter-train gaps** on persistent HTTP connections and,
//!    instead of blindly inheriting the congestion window from the previous
//!    ON period, probes the path with two packets (Algorithm 1);
//! 2. reinstates the saved window scaled by the probes' observed queueing
//!    delay (Eq. 1), or falls back to the minimum window when the probes'
//!    ACKs miss a smoothed-RTT deadline;
//! 3. applies **delay-based queuing control**: whenever an ACK's RTT
//!    exceeds the threshold `K`, the window shrinks by half the congestion
//!    proportion `ep = (RTT - K)/RTT` (Eq. 2–3);
//! 4. derives `K` from the steady-state model of Section III.B:
//!    `K >= max(((sqrt(2CD) - 1)^2)/C, D)` (Eq. 22).
//!
//! The crate is **pure**: no I/O, no clocks, no simulator types — times are
//! plain nanosecond integers. [`Trim`] is the per-connection state machine;
//! [`kmodel`] is the analytical steady-state model and [`analysis`] the
//! train-completion-time estimates. The companion crate `trim-tcp` embeds
//! [`Trim`] into a packet-level TCP for the `netsim` simulator.
//!
//! ## Example
//!
//! ```
//! use trim_core::{kmodel, Trim, TrimConfig, WindowAction};
//!
//! // A 1 Gbps bottleneck with 1460-byte packets.
//! let cfg = TrimConfig::default().with_capacity(1_000_000_000, 1460);
//! let mut trim = Trim::new(cfg)?;
//!
//! // ACKs feed the estimators; K is derived from min_RTT and capacity.
//! trim.on_ack(0, 200_000, false); // 200us RTT
//! let k = trim.k_ns().unwrap();
//! assert_eq!(k, kmodel::k_lower_bound_ns(1e9 / (1460.0 * 8.0), 200_000));
//!
//! // A congested ACK (RTT above K) asks for a gentle back-off.
//! match trim.on_ack(1, 2 * k, false) {
//!     WindowAction::Scale(f) => assert!(f > 0.5 && f < 1.0),
//!     other => panic!("unexpected action {other:?}"),
//! }
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod config;
pub mod estimator;
pub mod fluid;
pub mod kmodel;
pub mod trim;

pub use config::TrimConfig;
pub use trim::{SendDecision, Trim, WindowAction};
