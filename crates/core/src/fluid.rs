//! Mean-field fluid fast path for fleet-scale serving sweeps.
//!
//! Where [`crate::kmodel`] solves the synchronized steady state of
//! Section III.B in closed form, this module integrates the per-class
//! fluid (mean-field) ODEs for congestion-window and bottleneck-queue
//! dynamics, so what-if sweeps over `(C, D, K, N)` with millions of
//! connections run in milliseconds instead of hours of packet-level
//! simulation. The abstraction follows the classic fluid-model
//! treatment of RED/TCP interaction (Reynier's mean-field stability
//! analysis in the related-work list): each *class* `c` of `N_c`
//! statistically identical connections is reduced to one representative
//! window trajectory `W_c(t)`, and the shared bottleneck queue `q(t)`
//! closes the loop through the round-trip time `RTT_c = D_c + q/C`.
//!
//! Per Euler step of length `dt`:
//!
//! - queue: `dq/dt = Σ_c N_c·W_c/RTT_c − C`, clamped to `[0, B]`;
//! - TRIM class: `dW/dt = 1/RTT − (ep/2)·W/RTT` with congestion level
//!   `ep = (RTT − K)/RTT` when `RTT > K`, else `ep = 0` (Eqs. 1–3 in
//!   rate form: one additive increment and at most one `ep/2` decrement
//!   per RTT);
//! - Reno class: `dW/dt = 1/RTT`, plus a synchronized halving of every
//!   Reno window when the queue saturates (drop-tail incast loss, at
//!   most once per RTT per class).
//!
//! The TRIM equilibrium of these ODEs recovers the kmodel targets: rate
//! balance gives `N·W = C·RTT`, the window equilibrium gives
//! `ep·W = 2`, and together `q* = C(K − D) + 2N` — the Eq. 4 target
//! queue plus an `Θ(N)` excess bracketed by the Eq. 7 peak. The
//! cross-validation suite in `crates/serve` gates this model against
//! packet-level simulation on small instances.
//!
//! Everything here is pure `f64` arithmetic over the inputs: no clocks,
//! no randomness, deterministic across runs and worker counts.

const NS_PER_SEC: f64 = 1e9;

/// The congestion controller a fluid class runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FluidCc {
    /// Loss-driven AIMD: additive increase, synchronized halving when
    /// the bottleneck buffer saturates.
    Reno,
    /// TCP-TRIM's delay-driven control with RTT threshold `K`.
    Trim {
        /// The RTT threshold `K` in nanoseconds.
        k_ns: u64,
    },
}

/// RED parameters for the fluid bottleneck, mirroring the packet-level
/// `RedConfig` (thresholds and probabilities in packets; `wq` is the
/// per-packet EWMA weight, converted to a continuous-time averaging rate
/// `a = wq·C` inside the integrator).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RedFluid {
    /// Average queue length below which nothing is dropped.
    pub min_th: f64,
    /// Average queue length above which everything is dropped.
    pub max_th: f64,
    /// Drop probability at `max_th`.
    pub max_p: f64,
    /// Per-packet EWMA weight of the average-queue estimate.
    pub wq: f64,
}

impl RedFluid {
    /// The drop probability at average queue `avg` — the same
    /// min/max-threshold interpolation as the packet-level queue.
    pub fn prob(&self, avg: f64) -> f64 {
        if avg <= self.min_th {
            0.0
        } else if avg >= self.max_th {
            1.0
        } else {
            self.max_p * (avg - self.min_th) / (self.max_th - self.min_th)
        }
    }

    /// The slope `dp/davg` inside the linear band, 0 outside it.
    pub fn slope(&self, avg: f64) -> f64 {
        if avg > self.min_th && avg < self.max_th {
            self.max_p / (self.max_th - self.min_th)
        } else {
            0.0
        }
    }
}

/// The bottleneck's queue discipline in the fluid model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FluidAqm {
    /// Pure drop-tail: losses only on buffer saturation.
    DropTail,
    /// RED early dropping from the EWMA queue estimate. The drop-tail
    /// saturation backstop still applies at the buffer limit.
    Red(RedFluid),
}

/// One class of statistically identical connections.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FluidClass {
    /// Number of connections aggregated into this class (may be huge —
    /// the integration cost does not depend on it).
    pub n: f64,
    /// Base (unloaded) round-trip time `D` in nanoseconds.
    pub base_rtt_ns: u64,
    /// The class's congestion controller.
    pub cc: FluidCc,
}

/// The shared bottleneck and integration parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct FluidConfig {
    /// Bottleneck capacity `C` in packets per second.
    pub capacity_pps: f64,
    /// Bottleneck buffer `B` in packets.
    pub buffer_pkts: f64,
    /// The connection classes sharing the bottleneck.
    pub classes: Vec<FluidClass>,
    /// Euler step in nanoseconds. Must divide the horizon into at least
    /// one step; 10 µs resolves datacenter RTTs comfortably.
    pub dt_ns: u64,
    /// Integration horizon in nanoseconds.
    pub horizon_ns: u64,
    /// The bottleneck's queue discipline.
    pub aqm: FluidAqm,
}

impl FluidConfig {
    /// Sensible defaults for one class on the paper's canonical 1 Gbps
    /// bottleneck: 10 µs steps over a 2 s horizon, drop-tail.
    pub fn single_class(capacity_pps: f64, buffer_pkts: f64, class: FluidClass) -> Self {
        FluidConfig {
            capacity_pps,
            buffer_pkts,
            classes: vec![class],
            dt_ns: 10_000,
            horizon_ns: 2 * NS_PER_SEC as u64,
            aqm: FluidAqm::DropTail,
        }
    }

    /// Switches the bottleneck to RED.
    pub fn with_red(mut self, red: RedFluid) -> Self {
        self.aqm = FluidAqm::Red(red);
        self
    }
}

/// Time-averaged outcome of one fluid integration (averages taken over
/// the second half of the horizon, past the transient).
#[derive(Clone, Debug, PartialEq)]
pub struct FluidOutcome {
    /// Final per-class windows in packets.
    pub windows: Vec<f64>,
    /// Final queue length in packets.
    pub queue: f64,
    /// Time-averaged queue length in packets.
    pub mean_queue: f64,
    /// Peak queue length in packets over the whole horizon.
    pub max_queue: f64,
    /// Time-averaged per-class round-trip time in nanoseconds.
    pub mean_rtt_ns: Vec<f64>,
    /// Time-averaged per-connection throughput `W/RTT` per class, in
    /// packets per second.
    pub per_flow_rate_pps: Vec<f64>,
    /// Time-averaged bottleneck utilization in `[0, 1]`.
    pub utilization: f64,
    /// Peak-to-trough queue swing (max − min, in packets) over the
    /// settled second half of the horizon. A converged system shows a
    /// swing near zero; a limit cycle keeps a large swing forever.
    pub settled_queue_swing: f64,
}

impl FluidOutcome {
    /// Predicted mean application-level response completion time for a
    /// response of `pkts` packets served to a connection of class
    /// `class_idx`, in nanoseconds.
    ///
    /// An ack-clocked connection opens each response with a burst of one
    /// window `W = rate·RTT`, then clocks the remaining `pkts − W` out at
    /// its steady per-flow rate; the last packet is acknowledged one RTT
    /// after it leaves. The burst and the final round trip cancel:
    ///
    /// `ARCT ≈ RTT + (pkts − W)/rate = pkts/rate` once `pkts ≥ W`,
    ///
    /// and a response smaller than one window completes in a single
    /// round trip — hence `max(RTT, pkts/rate)`.
    ///
    /// # Panics
    ///
    /// Panics if `class_idx` is out of range.
    pub fn predicted_arct_ns(&self, class_idx: usize, pkts: f64) -> f64 {
        let rate = self.per_flow_rate_pps[class_idx];
        let rtt = self.mean_rtt_ns[class_idx];
        (pkts / rate * NS_PER_SEC).max(rtt)
    }
}

/// The floor every window in this workspace respects (the transport's
/// `min_cwnd` of 2 segments).
const W_FLOOR: f64 = 2.0;

/// Integrates the fluid ODEs over the configured horizon.
///
/// Deterministic: a pure function of `cfg`.
///
/// # Panics
///
/// Panics if the config is degenerate (no classes, non-positive
/// capacity, zero step, or a step exceeding the horizon).
pub fn integrate(cfg: &FluidConfig) -> FluidOutcome {
    assert!(!cfg.classes.is_empty(), "fluid model needs >= 1 class");
    assert!(
        cfg.capacity_pps.is_finite() && cfg.capacity_pps > 0.0,
        "capacity must be positive"
    );
    assert!(cfg.dt_ns > 0, "step must be positive");
    assert!(cfg.horizon_ns >= cfg.dt_ns, "horizon shorter than one step");
    for cl in &cfg.classes {
        assert!(cl.n > 0.0, "class population must be positive");
        assert!(cl.base_rtt_ns > 0, "base RTT must be positive");
    }

    let dt = cfg.dt_ns as f64 / NS_PER_SEC;
    let c = cfg.capacity_pps;
    let steps = (cfg.horizon_ns / cfg.dt_ns) as usize;
    let settle = steps / 2; // transient discarded from the averages

    let mut w: Vec<f64> = cfg.classes.iter().map(|_| W_FLOOR).collect();
    let mut q = 0.0f64;
    // RED's EWMA queue estimate in continuous time: the per-packet
    // weight wq applied at the arrival rate ~C becomes an averaging
    // rate a = wq·C (Reynier's mean-field reduction of the estimator).
    let mut q_avg = 0.0f64;
    // Synchronized Reno halving fires at most once per RTT per class.
    let mut next_halve_s: Vec<f64> = vec![0.0; cfg.classes.len()];

    let mut max_queue = 0.0f64;
    let mut acc_queue = 0.0f64;
    let mut acc_rtt = vec![0.0f64; cfg.classes.len()];
    let mut acc_rate = vec![0.0f64; cfg.classes.len()];
    let mut acc_util = 0.0f64;
    let mut samples = 0usize;
    let mut settled_min = f64::INFINITY;
    let mut settled_max = f64::NEG_INFINITY;

    let mut rtts = vec![0.0f64; cfg.classes.len()];
    for step in 0..steps {
        let t = step as f64 * dt;
        let mut arrival = 0.0f64;
        for (i, cl) in cfg.classes.iter().enumerate() {
            let rtt = cl.base_rtt_ns as f64 / NS_PER_SEC + q / c;
            rtts[i] = rtt;
            arrival += cl.n * w[i] / rtt;
        }

        // RED early-drop probability from the averaged queue.
        let p_red = match cfg.aqm {
            FluidAqm::DropTail => 0.0,
            FluidAqm::Red(red) => red.prob(q_avg),
        };

        // Queue update, clamped to the buffer: RED sheds `p_red` of the
        // arrivals before they enqueue. Saturation with positive excess
        // inflow is the drop signal for loss-driven classes.
        let q_next = (q + (arrival * (1.0 - p_red) - c) * dt).clamp(0.0, cfg.buffer_pkts);
        let saturated = q_next >= cfg.buffer_pkts && arrival > c;

        for (i, cl) in cfg.classes.iter().enumerate() {
            let rtt = rtts[i];
            // Early losses hit each flow at rate p·W/RTT, and each
            // halves the window: the classic −p·W²/(2·RTT) fluid term.
            let red_cut = p_red * w[i] * w[i] / (2.0 * rtt) * dt;
            let dw = match cl.cc {
                FluidCc::Reno => {
                    if saturated && t >= next_halve_s[i] {
                        next_halve_s[i] = t + rtt;
                        w[i] = (w[i] / 2.0).max(W_FLOOR);
                    }
                    dt / rtt - red_cut
                }
                FluidCc::Trim { k_ns } => {
                    let k = k_ns as f64 / NS_PER_SEC;
                    let ep = if rtt > k { (rtt - k) / rtt } else { 0.0 };
                    dt / rtt - ep / 2.0 * w[i] / rtt * dt - red_cut
                }
            };
            w[i] = (w[i] + dw).max(W_FLOOR);
        }
        q = q_next;
        if let FluidAqm::Red(red) = cfg.aqm {
            let alpha = (red.wq * c * dt).min(1.0);
            q_avg += alpha * (q - q_avg);
        }
        max_queue = max_queue.max(q);

        if step >= settle {
            samples += 1;
            acc_queue += q;
            acc_util += (arrival / c).min(1.0);
            settled_min = settled_min.min(q);
            settled_max = settled_max.max(q);
            for (i, _) in cfg.classes.iter().enumerate() {
                acc_rtt[i] += rtts[i];
                acc_rate[i] += w[i] / rtts[i];
            }
        }
    }

    let nsamp = samples.max(1) as f64;
    FluidOutcome {
        windows: w,
        queue: q,
        mean_queue: acc_queue / nsamp,
        max_queue,
        mean_rtt_ns: acc_rtt.iter().map(|r| r / nsamp * NS_PER_SEC).collect(),
        per_flow_rate_pps: acc_rate.iter().map(|r| r / nsamp).collect(),
        utilization: acc_util / nsamp,
        settled_queue_swing: if samples > 0 {
            settled_max - settled_min
        } else {
            0.0
        },
    }
}

/// Verdict of the RED mean-field stability predicate
/// ([`red_stability`]): the fluid equilibrium and whether small
/// perturbations around it decay (stable) or grow into a limit cycle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RedStabilityVerdict {
    /// Whether the equilibrium is locally asymptotically stable.
    pub stable: bool,
    /// Equilibrium per-flow window `W*` in packets.
    pub w_star: f64,
    /// Equilibrium queue `q*` in packets.
    pub q_star: f64,
    /// Equilibrium drop probability `p* = 2/W*²`.
    pub p_star: f64,
    /// Routh–Hurwitz margin `c2·c1 / c0`: stable iff > 1. The further
    /// above 1, the better damped; far below 1 means a strong limit
    /// cycle.
    pub margin: f64,
}

/// Reynier-style mean-field stability condition for `n` synchronized
/// AIMD (Reno) flows through one RED bottleneck of capacity
/// `capacity_pps` and base round-trip `base_rtt_ns`.
///
/// The three-state fluid model is the one [`integrate`] solves
/// numerically — per-flow window `W`, queue `q`, EWMA estimate `v`:
///
/// - `dW/dt = 1/R − p(v)·W²/(2R)` with `R = D + q/C`,
/// - `dq/dt = N·W/R − C`,
/// - `dv/dt = a·(q − v)` with averaging rate `a = wq·C`.
///
/// Its equilibrium solves `p(q*) = 2N²/(C·R*)²` (rate balance
/// `N·W* = C·R*` plus window balance `p* = 2/W*²`); the unique root is
/// found by bisection since `p` is nondecreasing in `q` while the
/// demand side decreases. Linearizing around the equilibrium gives the
/// characteristic cubic `λ³ + c2·λ² + c1·λ + c0` with
///
/// `c2 = a1+a2+a`, `c1 = a1a2 + a1a + a2a`, `c0 = a1a2a + a·ρ·C²/(2N)`
///
/// where `a1 = 2/(W*R*)`, `a2 = 1/R*`, and `ρ = dp/dq` is the RED band
/// slope at `q*`. By Routh–Hurwitz the equilibrium is stable iff
/// `c2·c1 > c0`: a steep RED band (`ρ` large), few flows (`N` small), or
/// sluggish averaging destabilize the loop and the queue/windows settle
/// into a sustained oscillation instead of a fixed point.
///
/// Windows pinned at the floor (`W* ≤ 2`, the transport's `min_cwnd`)
/// cannot oscillate and are reported stable.
///
/// # Panics
///
/// Panics on non-positive `capacity_pps`, `base_rtt_ns`, or `n`, or on
/// a degenerate RED band (`min_th >= max_th`).
pub fn red_stability(
    capacity_pps: f64,
    base_rtt_ns: u64,
    n: f64,
    red: &RedFluid,
) -> RedStabilityVerdict {
    assert!(
        capacity_pps.is_finite() && capacity_pps > 0.0,
        "capacity must be positive"
    );
    assert!(base_rtt_ns > 0, "base RTT must be positive");
    assert!(n.is_finite() && n > 0.0, "population must be positive");
    assert!(red.min_th < red.max_th, "RED band must be non-degenerate");

    let c = capacity_pps;
    let d = base_rtt_ns as f64 / NS_PER_SEC;
    let rtt = |q: f64| d + q / c;
    // Drop probability the equilibrium demands at queue q:
    // p = 2/W*² with W* = C·R(q)/N.
    let demand = |q: f64| 2.0 * n * n / (c * rtt(q)).powi(2);
    let excess = |q: f64| red.prob(q) - demand(q);

    // Unique root of `excess` by bisection: supply is nondecreasing,
    // demand strictly decreasing. Bracket from the empty queue up past
    // the hard-drop threshold (where prob = 1 ≥ demand, unless demand
    // exceeds 1 everywhere — the floor-pinned regime).
    let mut lo = 0.0f64;
    let mut hi = red.max_th.max(1.0) + 2.0 * n;
    let q_star = if excess(lo) >= 0.0 {
        lo
    } else {
        while excess(hi) < 0.0 {
            hi *= 2.0;
            if hi > 1e12 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if excess(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };

    let r_star = rtt(q_star);
    let w_star = c * r_star / n;
    let p_star = 2.0 / (w_star * w_star);
    if w_star <= W_FLOOR + 1e-9 {
        // Floor-pinned: the window cannot respond, so there is no loop
        // to destabilize.
        return RedStabilityVerdict {
            stable: true,
            w_star: W_FLOOR.max(w_star),
            q_star,
            p_star,
            margin: f64::INFINITY,
        };
    }

    let rho = red.slope(q_star);
    let a1 = 2.0 / (w_star * r_star);
    let a2 = 1.0 / r_star;
    let a = red.wq * c;
    let c2 = a1 + a2 + a;
    let c1 = a1 * a2 + a1 * a + a2 * a;
    let c0 = a1 * a2 * a + a * rho * c * c / (2.0 * n);
    let margin = c2 * c1 / c0;
    RedStabilityVerdict {
        stable: margin > 1.0,
        w_star,
        q_star,
        p_star,
        margin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmodel;

    /// The paper's canonical bottleneck: 1 Gbps of 1460-byte packets.
    const C: f64 = 1e9 / (1460.0 * 8.0);

    fn trim_class(n: f64, d_ns: u64, k_ns: u64) -> FluidClass {
        FluidClass {
            n,
            base_rtt_ns: d_ns,
            cc: FluidCc::Trim { k_ns },
        }
    }

    #[test]
    fn trim_equilibrium_matches_the_kmodel_queue_target() {
        // N = 16 connections, D = 200 µs, K at the Eq. 22 guideline.
        let d_ns = 200_000;
        let k_ns = kmodel::k_lower_bound_ns(C, d_ns);
        let n = 16u32;
        let out = integrate(&FluidConfig::single_class(
            C,
            10_000.0, // effectively infinite buffer: delay-controlled
            trim_class(n as f64, d_ns, k_ns),
        ));
        let ss = kmodel::steady_state(C, d_ns, k_ns, n);
        // Fluid equilibrium q* = C(K - D) + 2N sits between the Eq. 4
        // target and slightly above the Eq. 7 peak.
        let expect = ss.target_queue + 2.0 * n as f64;
        assert!(
            (out.mean_queue - expect).abs() / expect < 0.05,
            "fluid queue {} vs analytic {expect}",
            out.mean_queue
        );
        assert!(out.utilization > 0.99, "TRIM keeps the link busy");
    }

    #[test]
    fn trim_rate_balance_shares_capacity_evenly() {
        let d_ns = 100_000;
        let k_ns = kmodel::k_lower_bound_ns(C, d_ns);
        for n in [4.0, 8.0, 64.0] {
            let out = integrate(&FluidConfig::single_class(
                C,
                10_000.0,
                trim_class(n, d_ns, k_ns),
            ));
            let fair = C / n;
            let rate = out.per_flow_rate_pps[0];
            assert!(
                (rate - fair).abs() / fair < 0.05,
                "n={n}: per-flow rate {rate} vs fair share {fair}"
            );
        }
    }

    #[test]
    fn reno_sawtooth_fills_the_buffer_and_halves() {
        let out = integrate(&FluidConfig::single_class(
            C,
            100.0,
            FluidClass {
                n: 8.0,
                base_rtt_ns: 200_000,
                cc: FluidCc::Reno,
            },
        ));
        // Loss-driven control rides the buffer: the peak hits the cap,
        // and the synchronized halving then drains the queue and loses
        // utilization — the aggressive-TCP pathology the paper targets.
        assert!((out.max_queue - 100.0).abs() < 1.0);
        assert!(out.mean_queue > 10.0);
        assert!(out.utilization > 0.5 && out.utilization < 1.0);
        // TRIM on the identical bottleneck keeps the link busy.
        let k_ns = kmodel::k_lower_bound_ns(C, 200_000);
        let trim = integrate(&FluidConfig::single_class(
            C,
            100.0,
            trim_class(8.0, 200_000, k_ns),
        ));
        assert!(trim.utilization > out.utilization);
    }

    #[test]
    fn trim_queue_scales_with_population_not_capacity_waste() {
        // Million-connection sweep: the whole point of the fast path.
        // Each integration is a few hundred thousand f64 steps.
        let d_ns = 100_000;
        let k_ns = kmodel::k_lower_bound_ns(C, d_ns);
        // A million windows at the floor of 2 need RTT ~ 2N/C ~ 23 s to
        // balance, so the sweep uses coarse 1 ms steps over a 60 s
        // horizon — still only 60k f64 steps, done in microseconds.
        let sweep = |n: f64| {
            integrate(&FluidConfig {
                capacity_pps: C,
                buffer_pkts: 5_000_000.0,
                classes: vec![trim_class(n, d_ns, k_ns)],
                dt_ns: 1_000_000,
                horizon_ns: 60_000_000_000,
                aqm: FluidAqm::DropTail,
            })
        };
        let small = sweep(1_000.0);
        let large = sweep(1_000_000.0);
        // At the window floor, rate balance pins q* near 2N/C * C = 2N.
        assert!(large.mean_queue > small.mean_queue + 1_500_000.0);
        assert!(large.utilization > 0.99);
    }

    #[test]
    fn integration_is_deterministic() {
        let cfg = FluidConfig {
            capacity_pps: C,
            buffer_pkts: 100.0,
            classes: vec![
                trim_class(8.0, 100_000, 300_000),
                FluidClass {
                    n: 4.0,
                    base_rtt_ns: 200_000,
                    cc: FluidCc::Reno,
                },
            ],
            dt_ns: 10_000,
            horizon_ns: 1_000_000_000,
            aqm: FluidAqm::DropTail,
        };
        let a = integrate(&cfg);
        let b = integrate(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn predicted_arct_is_service_time_floored_by_the_round_trip() {
        let d_ns = 200_000;
        let k_ns = kmodel::k_lower_bound_ns(C, d_ns);
        let out = integrate(&FluidConfig::single_class(
            C,
            10_000.0,
            trim_class(8.0, d_ns, k_ns),
        ));
        // A long response is rate-limited: the opening window burst and
        // the final round trip cancel.
        let pkts = 69.0; // ~100 KB of 1460-byte segments
        let arct = out.predicted_arct_ns(0, pkts);
        let service = pkts / out.per_flow_rate_pps[0] * 1e9;
        assert!((arct - service).abs() < 1.0);
        // A sub-window response completes in one round trip.
        let tiny = out.predicted_arct_ns(0, 1.0);
        assert!((tiny - out.mean_rtt_ns[0]).abs() < 1.0);
        assert!(arct > tiny);
    }

    /// A steep RED band on a long-RTT, two-to-four-flow bottleneck sits
    /// deep in the unstable region: the Routh–Hurwitz margin is far
    /// below 1 and the integrated fluid queue keeps a sustained
    /// limit-cycle swing instead of converging.
    #[test]
    fn red_predicate_and_integration_agree_on_instability() {
        let red = RedFluid {
            min_th: 10.0,
            max_th: 20.0,
            max_p: 1.0,
            wq: 0.01,
        };
        for (d_ns, n) in [(1_000_000u64, 4.0f64), (500_000, 2.0)] {
            let v = red_stability(C, d_ns, n, &red);
            assert!(!v.stable, "D={d_ns} N={n}: margin {}", v.margin);
            assert!(v.margin < 0.1, "deep instability, got {}", v.margin);
            let out = integrate(
                &FluidConfig {
                    capacity_pps: C,
                    buffer_pkts: 100.0,
                    classes: vec![FluidClass {
                        n,
                        base_rtt_ns: d_ns,
                        cc: FluidCc::Reno,
                    }],
                    dt_ns: 10_000,
                    horizon_ns: 4 * NS_PER_SEC as u64,
                    aqm: FluidAqm::DropTail,
                }
                .with_red(red),
            );
            assert!(
                out.settled_queue_swing > 5.0,
                "D={d_ns} N={n}: limit cycle must persist, swing {}",
                out.settled_queue_swing
            );
        }
    }

    /// The default (gentle) RED band at datacenter RTTs is stable: the
    /// margin clears 1 and the integrated queue converges to a fixed
    /// point with (numerically) zero settled swing.
    #[test]
    fn red_predicate_and_integration_agree_on_stability() {
        let red = RedFluid {
            min_th: 15.0,
            max_th: 45.0,
            max_p: 0.1,
            wq: 0.002,
        };
        for (d_ns, n) in [(100_000u64, 8.0f64), (100_000, 4.0)] {
            let v = red_stability(C, d_ns, n, &red);
            assert!(v.stable, "D={d_ns} N={n}: margin {}", v.margin);
            assert!(v.margin > 2.0, "comfortably damped, got {}", v.margin);
            let out = integrate(
                &FluidConfig {
                    capacity_pps: C,
                    buffer_pkts: 100.0,
                    classes: vec![FluidClass {
                        n,
                        base_rtt_ns: d_ns,
                        cc: FluidCc::Reno,
                    }],
                    dt_ns: 10_000,
                    horizon_ns: 4 * NS_PER_SEC as u64,
                    aqm: FluidAqm::DropTail,
                }
                .with_red(red),
            );
            assert!(
                out.settled_queue_swing < 1.0,
                "D={d_ns} N={n}: must converge, swing {}",
                out.settled_queue_swing
            );
        }
    }

    /// Equilibrium identities: rate balance `N·W* = C·R*` and window
    /// balance `p* = 2/W*²` hold at the bisected fixed point, and the
    /// RED curve supplies exactly the demanded probability inside the
    /// band.
    #[test]
    fn red_equilibrium_satisfies_balance_equations() {
        let red = RedFluid {
            min_th: 15.0,
            max_th: 45.0,
            max_p: 0.1,
            wq: 0.002,
        };
        let v = red_stability(C, 100_000, 8.0, &red);
        let r_star = 100_000.0 / 1e9 + v.q_star / C;
        assert!((8.0 * v.w_star - C * r_star).abs() / (C * r_star) < 1e-6);
        assert!((v.p_star - 2.0 / (v.w_star * v.w_star)).abs() < 1e-9);
        assert!(
            (red.prob(v.q_star) - v.p_star).abs() < 1e-6,
            "supply {} vs demand {}",
            red.prob(v.q_star),
            v.p_star
        );
    }

    /// Massive populations pin the per-flow window at the floor: no
    /// feedback loop left to destabilize, verdict is stable with an
    /// infinite margin.
    #[test]
    fn red_floor_pinned_population_is_stable() {
        let red = RedFluid {
            min_th: 15.0,
            max_th: 45.0,
            max_p: 0.1,
            wq: 0.002,
        };
        let v = red_stability(C, 100_000, 64.0, &red);
        assert!(v.stable);
        assert!(v.margin.is_infinite());
        assert!((v.w_star - 2.0).abs() < 1e-6);
    }

    /// A RED band entirely above the physical buffer never engages: the
    /// integration reduces to drop-tail (identical outcome).
    #[test]
    fn red_band_above_buffer_is_drop_tail() {
        let base = FluidConfig {
            capacity_pps: C,
            buffer_pkts: 50.0,
            classes: vec![FluidClass {
                n: 8.0,
                base_rtt_ns: 200_000,
                cc: FluidCc::Reno,
            }],
            dt_ns: 10_000,
            horizon_ns: NS_PER_SEC as u64,
            aqm: FluidAqm::DropTail,
        };
        let red = base.clone().with_red(RedFluid {
            min_th: 60.0, // above the 50-packet buffer: never reached
            max_th: 120.0,
            max_p: 1.0,
            wq: 0.002,
        });
        let a = integrate(&base);
        let b = integrate(&red);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "class")]
    fn empty_class_list_is_rejected() {
        let _ = integrate(&FluidConfig {
            capacity_pps: C,
            buffer_pkts: 100.0,
            classes: vec![],
            dt_ns: 10_000,
            horizon_ns: 1_000_000,
            aqm: FluidAqm::DropTail,
        });
    }
}
