//! The TCP-TRIM sender-side state machine: inter-train gap detection
//! (Algorithm 1) and the ACK action (Algorithm 2).
//!
//! [`Trim`] is a *pure* state machine: it holds no sockets and sets no
//! timers. The embedding TCP sender feeds it send attempts, transmissions
//! and ACKs, and applies the returned decisions — set the window, scale the
//! window, arm or satisfy a probe deadline. This keeps the algorithm
//! testable in isolation and reusable across transports.

use crate::config::TrimConfig;
use crate::estimator::RttTracker;
use crate::kmodel;

/// What the sender must do before transmitting the next new data packet
/// (Algorithm 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SendDecision {
    /// No inter-train gap detected: transmit normally.
    Continue,
    /// A gap larger than the smoothed RTT was detected. The sender must
    /// save its window, shrink `cwnd` to the probe window, transmit up to
    /// [`TrimConfig::probe_packets`] packets flagged as probes, suspend
    /// further new data, and arm a deadline of `deadline_ns` from now.
    StartProbe {
        /// Window to use while probing (the paper's 2 packets).
        probe_cwnd: f64,
        /// How long to wait for the probe ACKs: one smoothed RTT.
        deadline_ns: u64,
    },
}

/// Window instruction produced by an ACK or a probe deadline (Algorithm 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WindowAction {
    /// Leave the window alone.
    None,
    /// Probe ACKs measured the path: set the congestion window to the
    /// tuned value (Eq. 1) and resume. The tuned window is a
    /// congestion-derived operating point, so the embedding TCP should
    /// continue in congestion avoidance from it.
    SetAndResume(f64),
    /// The probe deadline elapsed: fall back to the minimum window and
    /// resume. Unlike [`WindowAction::SetAndResume`], the slow-start
    /// threshold should be left alone so the connection can slow-start
    /// back (mirroring TCP's timeout recovery).
    FallbackAndResume(f64),
    /// Multiply the congestion window by this factor in `(1/2, 1)`
    /// (queuing-control back-off, Eq. 3).
    Scale(f64),
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Phase {
    Normal,
    /// Probing after an inter-train gap: waiting for `expected` probe ACKs.
    Probing {
        saved_cwnd: f64,
        expected: u32,
        acked: u32,
        rtt_sum_ns: u64,
    },
}

/// The TCP-TRIM algorithm state for one connection.
///
/// ```
/// use trim_core::{Trim, TrimConfig, SendDecision, WindowAction};
///
/// let cfg = TrimConfig::default().with_capacity(1_000_000_000, 1460);
/// let mut trim = Trim::new(cfg)?;
///
/// // Warm up the RTT estimators with two ACKs 100us apart.
/// trim.on_ack(0, 100_000, false);
/// assert_eq!(trim.smooth_rtt_ns(), Some(100_000));
///
/// // A send 10ms later is an inter-train gap: probe first.
/// trim.note_sent(1_000_000);
/// let d = trim.on_send_attempt(11_000_000, 900.0);
/// assert!(matches!(d, SendDecision::StartProbe { .. }));
/// if let SendDecision::StartProbe { .. } = d {
///     trim.begin_probe(900.0, 2);
/// }
///
/// // Both probe ACKs return with modest queueing: the saved window is
/// // reinstated, scaled down by the queueing delay ratio (Eq. 1).
/// trim.on_ack(0, 110_000, true);
/// let act = trim.on_ack(0, 110_000, true);
/// match act {
///     WindowAction::SetAndResume(w) => assert!(w > 2.0 && w < 900.0),
///     other => panic!("expected SetAndResume, got {other:?}"),
/// }
/// # Ok::<(), String>(())
/// ```
#[derive(Clone, Debug)]
pub struct Trim {
    cfg: TrimConfig,
    rtt: RttTracker,
    k_ns: Option<u64>,
    last_send_ns: Option<u64>,
    phase: Phase,
    /// Earliest time the next queuing-control reduction may apply, when
    /// rate-limited to once per RTT.
    backoff_gate_ns: u64,
    /// Counters for diagnostics and tests.
    probes_started: u64,
    probe_timeouts: u64,
    queue_backoffs: u64,
}

impl Trim {
    /// Creates the state machine for one connection.
    ///
    /// # Errors
    ///
    /// Returns the validation message when `cfg` is out of range (see
    /// [`TrimConfig::validate`]).
    pub fn new(cfg: TrimConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(Trim {
            rtt: RttTracker::new(cfg.alpha),
            cfg,
            k_ns: cfg.k_override_ns,
            last_send_ns: None,
            phase: Phase::Normal,
            backoff_gate_ns: 0,
            probes_started: 0,
            probe_timeouts: 0,
            queue_backoffs: 0,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TrimConfig {
        &self.cfg
    }

    /// The smoothed RTT (the inter-train gap threshold), once measured.
    pub fn smooth_rtt_ns(&self) -> Option<u64> {
        self.rtt.smooth_ns()
    }

    /// The minimum RTT observed (the queue-free baseline), once measured.
    pub fn min_rtt_ns(&self) -> Option<u64> {
        self.rtt.min_ns()
    }

    /// The RTT threshold `K` currently in force, once derivable.
    pub fn k_ns(&self) -> Option<u64> {
        self.k_ns
    }

    /// Whether the connection is suspended waiting for probe ACKs.
    pub fn is_probing(&self) -> bool {
        matches!(self.phase, Phase::Probing { .. })
    }

    /// Number of probe phases entered so far.
    pub fn probes_started(&self) -> u64 {
        self.probes_started
    }

    /// Number of probe phases that ended by deadline instead of ACKs.
    pub fn probe_timeouts(&self) -> u64 {
        self.probe_timeouts
    }

    /// Number of queuing-control window reductions applied (Eq. 3).
    pub fn queue_backoffs(&self) -> u64 {
        self.queue_backoffs
    }

    /// Algorithm 1: call before transmitting a new (non-retransmitted)
    /// data packet at time `now_ns` with current window `cwnd`.
    ///
    /// Returns [`SendDecision::StartProbe`] when the time since the last
    /// transmission exceeds the smoothed RTT. The caller must then invoke
    /// [`Trim::begin_probe`] with the number of probes it will actually
    /// send (possibly fewer than configured when little data is pending).
    pub fn on_send_attempt(&mut self, now_ns: u64, cwnd: f64) -> SendDecision {
        if self.is_probing() {
            return SendDecision::Continue;
        }
        let (Some(last), Some(smooth)) = (self.last_send_ns, self.rtt.smooth_ns()) else {
            return SendDecision::Continue;
        };
        let gap = now_ns.saturating_sub(last);
        if gap > smooth && cwnd > self.cfg.min_cwnd {
            SendDecision::StartProbe {
                probe_cwnd: self.cfg.min_cwnd,
                deadline_ns: smooth,
            }
        } else {
            SendDecision::Continue
        }
    }

    /// Enters the probe phase, saving the accumulated window. `expected`
    /// is how many probe packets the sender will transmit (at most
    /// [`TrimConfig::probe_packets`]).
    ///
    /// # Panics
    ///
    /// Panics if `expected` is zero or a probe phase is already active.
    pub fn begin_probe(&mut self, saved_cwnd: f64, expected: u32) {
        assert!(expected > 0, "must send at least one probe");
        assert!(!self.is_probing(), "probe phase already active");
        self.probes_started += 1;
        self.phase = Phase::Probing {
            saved_cwnd,
            expected: expected.min(self.cfg.probe_packets),
            acked: 0,
            rtt_sum_ns: 0,
        };
    }

    /// Records that a data packet left the host at `now_ns`; keeps the
    /// inter-train gap detector current.
    pub fn note_sent(&mut self, now_ns: u64) {
        self.last_send_ns = Some(now_ns);
    }

    /// Algorithm 2: processes the RTT sample of an ACK arriving at
    /// `now_ns`. `is_probe` marks ACKs of probe packets.
    ///
    /// Updates `smooth_RTT`, `min_RTT` and `K`; returns the window action:
    /// - probe ACK completing the probe phase → window per Eq. 1,
    /// - normal ACK with `RTT >= K` → multiplicative back-off per Eq. 3,
    ///   applied at most once per RTT when
    ///   [`TrimConfig::backoff_per_rtt`] is set (the default),
    /// - otherwise no change.
    ///
    /// # Panics
    ///
    /// Panics if `rtt_ns` is zero.
    pub fn on_ack(&mut self, now_ns: u64, rtt_ns: u64, is_probe: bool) -> WindowAction {
        let min_changed = self.rtt.observe(rtt_ns);
        if min_changed || self.k_ns.is_none() {
            self.update_k();
        }
        match (&mut self.phase, is_probe) {
            (
                Phase::Probing {
                    saved_cwnd,
                    expected,
                    acked,
                    rtt_sum_ns,
                },
                true,
            ) => {
                *acked += 1;
                *rtt_sum_ns += rtt_ns;
                if *acked >= *expected {
                    let probe_rtt = *rtt_sum_ns as f64 / *acked as f64;
                    let saved = *saved_cwnd;
                    self.phase = Phase::Normal;
                    let min = self
                        .rtt
                        .min_ns()
                        .expect("observe() above guarantees a minimum") // trim-lint: allow(no-panic-in-library, reason = "observe() on this sample guarantees a minimum exists")
                        as f64;
                    // Eq. 1: cwnd = s_cwnd * (1 - (probe_RTT - min)/min),
                    // clamped to [min_cwnd, s_cwnd] per Section III.C.
                    let tuned = saved * (1.0 - (probe_rtt - min) / min);
                    let tuned = tuned.clamp(self.cfg.min_cwnd, saved.max(self.cfg.min_cwnd));
                    WindowAction::SetAndResume(tuned)
                } else {
                    WindowAction::None
                }
            }
            (Phase::Probing { .. }, false) | (Phase::Normal, true) => {
                // Stray ACK relative to the probe phase (e.g. a pre-gap
                // packet's ACK arriving late): only the estimators update.
                WindowAction::None
            }
            (Phase::Normal, false) => {
                let Some(k) = self.k_ns else {
                    return WindowAction::None;
                };
                if rtt_ns >= k && (!self.cfg.backoff_per_rtt || now_ns >= self.backoff_gate_ns) {
                    // Eq. 2-3, at most once per window of data.
                    let ep = (rtt_ns - k) as f64 / rtt_ns as f64;
                    self.queue_backoffs += 1;
                    self.backoff_gate_ns = now_ns + rtt_ns;
                    WindowAction::Scale(1.0 - ep / 2.0)
                } else {
                    WindowAction::None
                }
            }
        }
    }

    /// The probe deadline elapsed without all probe ACKs: fall back to the
    /// minimum window (Algorithm 2, lines 11–13). Returns
    /// [`WindowAction::None`] when the probe already completed.
    pub fn on_probe_deadline(&mut self) -> WindowAction {
        if self.is_probing() {
            self.phase = Phase::Normal;
            self.probe_timeouts += 1;
            WindowAction::FallbackAndResume(self.cfg.min_cwnd)
        } else {
            WindowAction::None
        }
    }

    /// A retransmission timeout voids any probe in progress (the probes
    /// themselves were lost); the embedding TCP applies its own timeout
    /// response.
    pub fn on_rto(&mut self) {
        if self.is_probing() {
            self.probe_timeouts += 1;
            self.phase = Phase::Normal;
        }
    }

    fn update_k(&mut self) {
        if self.cfg.k_override_ns.is_some() {
            return; // fixed by configuration
        }
        let Some(min) = self.rtt.min_ns() else {
            return;
        };
        self.k_ns = Some(match self.cfg.capacity_pps {
            Some(c) => {
                let margin = (self.cfg.k_margin_pkts / c * 1e9).round() as u64;
                kmodel::k_lower_bound_ns(c, min).max(min + margin)
            }
            None => (min as f64 * self.cfg.k_fallback_factor).round() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trim_1g() -> Trim {
        Trim::new(TrimConfig::default().with_capacity(1_000_000_000, 1460)).unwrap()
    }

    #[test]
    fn no_probe_before_first_rtt_sample() {
        let mut t = trim_1g();
        t.note_sent(0);
        assert_eq!(t.on_send_attempt(50_000_000, 100.0), SendDecision::Continue);
    }

    #[test]
    fn gap_larger_than_smooth_rtt_triggers_probe() {
        let mut t = trim_1g();
        t.on_ack(0, 100_000, false);
        t.note_sent(1_000_000);
        // Gap of 99us < smooth 100us: continue.
        assert_eq!(t.on_send_attempt(1_099_000, 100.0), SendDecision::Continue);
        // Gap of 101us > 100us: probe.
        match t.on_send_attempt(1_101_000, 100.0) {
            SendDecision::StartProbe {
                probe_cwnd,
                deadline_ns,
            } => {
                assert_eq!(probe_cwnd, 2.0);
                assert_eq!(deadline_ns, 100_000);
            }
            other => panic!("expected probe, got {other:?}"),
        }
    }

    #[test]
    fn no_probe_when_window_already_minimal() {
        let mut t = trim_1g();
        t.on_ack(0, 100_000, false);
        t.note_sent(0);
        // cwnd == 2: probing would be a no-op, keep sending.
        assert_eq!(t.on_send_attempt(10_000_000, 2.0), SendDecision::Continue);
    }

    #[test]
    fn probe_acks_restore_scaled_window() {
        let mut t = trim_1g();
        t.on_ack(0, 100_000, false);
        t.note_sent(0);
        assert!(matches!(
            t.on_send_attempt(1_000_000, 800.0),
            SendDecision::StartProbe { .. }
        ));
        t.begin_probe(800.0, 2);
        assert!(t.is_probing());
        assert_eq!(t.on_ack(0, 120_000, true), WindowAction::None);
        // probe_rtt = 120us, min = 100us: factor 1 - 0.2 = 0.8.
        match t.on_ack(0, 120_000, true) {
            WindowAction::SetAndResume(w) => assert!((w - 640.0).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
        assert!(!t.is_probing());
        assert_eq!(t.probes_started(), 1);
        assert_eq!(t.probe_timeouts(), 0);
    }

    #[test]
    fn probe_with_huge_rtt_clamps_to_min_window() {
        let mut t = trim_1g();
        t.on_ack(0, 100_000, false);
        t.note_sent(0);
        t.on_send_attempt(1_000_000, 800.0);
        t.begin_probe(800.0, 2);
        t.on_ack(0, 250_000, true); // > 2x min_RTT: Eq. 1 would go negative
        match t.on_ack(0, 250_000, true) {
            WindowAction::SetAndResume(w) => assert_eq!(w, 2.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn probe_never_exceeds_saved_window() {
        let mut t = trim_1g();
        t.on_ack(0, 100_000, false);
        t.note_sent(0);
        t.on_send_attempt(1_000_000, 10.0);
        t.begin_probe(10.0, 2);
        // Probe RTTs at exactly min_RTT: factor 1.0 -> full restore.
        t.on_ack(0, 100_000, true);
        match t.on_ack(0, 100_000, true) {
            WindowAction::SetAndResume(w) => assert_eq!(w, 10.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn probe_deadline_falls_back_to_min_window() {
        let mut t = trim_1g();
        t.on_ack(0, 100_000, false);
        t.note_sent(0);
        t.on_send_attempt(1_000_000, 500.0);
        t.begin_probe(500.0, 2);
        t.on_ack(0, 110_000, true); // only one of two probes acked
        assert_eq!(t.on_probe_deadline(), WindowAction::FallbackAndResume(2.0));
        assert!(!t.is_probing());
        assert_eq!(t.probe_timeouts(), 1);
        // A second deadline is inert.
        assert_eq!(t.on_probe_deadline(), WindowAction::None);
    }

    #[test]
    fn single_packet_train_probes_with_one_packet() {
        let mut t = trim_1g();
        t.on_ack(0, 100_000, false);
        t.note_sent(0);
        t.on_send_attempt(1_000_000, 300.0);
        t.begin_probe(300.0, 1);
        match t.on_ack(0, 100_000, true) {
            WindowAction::SetAndResume(w) => assert_eq!(w, 300.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn queue_control_scales_window_above_k() {
        let mut t = Trim::new(TrimConfig {
            k_override_ns: Some(200_000),
            ..TrimConfig::default()
        })
        .unwrap();
        t.on_ack(0, 100_000, false);
        // RTT below K: nothing.
        assert_eq!(t.on_ack(0, 150_000, false), WindowAction::None);
        // RTT 400us, K 200us: ep = 0.5, factor 0.75.
        match t.on_ack(0, 400_000, false) {
            WindowAction::Scale(f) => assert!((f - 0.75).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
        assert_eq!(t.queue_backoffs(), 1);
    }

    #[test]
    fn scale_factor_never_below_half() {
        let mut t = Trim::new(TrimConfig {
            k_override_ns: Some(1),
            ..TrimConfig::default()
        })
        .unwrap();
        t.on_ack(0, 50, false);
        for rtt in [2u64, 100, 1_000_000, u32::MAX as u64] {
            match t.on_ack(0, rtt, false) {
                WindowAction::Scale(f) => {
                    assert!(f > 0.5 && f <= 1.0, "factor {f} out of range")
                }
                WindowAction::None => {}
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn k_derived_from_capacity_and_min_rtt() {
        let c: f64 = 1e9 / (1460.0 * 8.0);
        let margin = (4.0 / c * 1e9).round() as u64;
        let mut t = trim_1g();
        assert_eq!(t.k_ns(), None);
        t.on_ack(0, 200_000, false);
        // At min_RTT = 200us the Eq. 22 term dominates the margin floor.
        let expected = kmodel::k_lower_bound_ns(c, 200_000);
        assert!(expected > 200_000 + margin);
        assert_eq!(t.k_ns(), Some(expected));
        // A lower min re-derives K; here the margin floor dominates.
        t.on_ack(0, 100_000, false);
        let expected2 = kmodel::k_lower_bound_ns(c, 100_000).max(100_000 + margin);
        assert_eq!(t.k_ns(), Some(expected2));
        assert_eq!(expected2, 100_000 + margin);
    }

    #[test]
    fn k_margin_floors_low_bdp_paths() {
        // 100 Mbps, 1 ms base RTT: Eq. 22 alone would give K = D.
        let c: f64 = 1e8 / (1460.0 * 8.0);
        let mut t = Trim::new(TrimConfig::default().with_capacity(100_000_000, 1460)).unwrap();
        t.on_ack(0, 1_000_000, false);
        let k = t.k_ns().unwrap();
        assert!(k > 1_000_000, "K must allow some queueing, got {k}");
        let margin = (4.0 / c * 1e9).round() as u64;
        assert_eq!(k, 1_000_000 + margin);
    }

    #[test]
    fn k_fallback_without_capacity() {
        let mut t = Trim::new(TrimConfig::default()).unwrap();
        t.on_ack(0, 100_000, false);
        assert_eq!(t.k_ns(), Some(200_000)); // 2.0 * min_RTT
    }

    #[test]
    fn rto_aborts_probe_phase() {
        let mut t = trim_1g();
        t.on_ack(0, 100_000, false);
        t.note_sent(0);
        t.on_send_attempt(1_000_000, 500.0);
        t.begin_probe(500.0, 2);
        t.on_rto();
        assert!(!t.is_probing());
        assert_eq!(t.probe_timeouts(), 1);
        // Deadline after the RTO is inert.
        assert_eq!(t.on_probe_deadline(), WindowAction::None);
    }

    #[test]
    fn no_reprobe_while_probing() {
        let mut t = trim_1g();
        t.on_ack(0, 100_000, false);
        t.note_sent(0);
        t.on_send_attempt(1_000_000, 500.0);
        t.begin_probe(500.0, 2);
        assert_eq!(t.on_send_attempt(99_000_000, 2.0), SendDecision::Continue);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn double_begin_probe_panics() {
        let mut t = trim_1g();
        t.begin_probe(10.0, 2);
        t.begin_probe(10.0, 2);
    }

    fn trim_with_k(k_ns: u64) -> Trim {
        Trim::new(TrimConfig {
            k_override_ns: Some(k_ns),
            ..TrimConfig::default()
        })
        .unwrap()
    }

    /// Eq. 2-3 boundary: at RTT == K the backpressure term ep is exactly
    /// zero, so the "reduction" is a no-op Scale(1.0); one nanosecond
    /// below K the delay branch must not fire at all.
    #[test]
    fn rtt_equal_to_k_is_the_zero_reduction_boundary() {
        const K: u64 = 200_000;
        let mut t = trim_with_k(K);
        t.on_ack(0, 100_000, false); // seed min_RTT, below K
        assert_eq!(t.on_ack(0, K - 1, false), WindowAction::None);
        match t.on_ack(0, K, false) {
            WindowAction::Scale(f) => assert_eq!(f, 1.0, "ep must be exactly 0 at RTT == K"),
            other => panic!("expected Scale at the boundary, got {other:?}"),
        }
        // The boundary hit still consumes the once-per-RTT backoff budget.
        assert_eq!(t.queue_backoffs(), 1);
        assert_eq!(t.on_ack(0, K, false), WindowAction::None);
    }

    /// Eq. 2-3 asymptote: as RTT -> infinity, ep -> 1 and the scale
    /// factor approaches Reno's 1/2 halving from above — the cut is
    /// never deeper than a halving. (In exact arithmetic the factor
    /// stays strictly above 1/2; at RTT = u64::MAX the f64 quotient
    /// rounds ep to exactly 1.0, so the factor bottoms out at 0.5.)
    #[test]
    fn huge_rtt_caps_the_cut_at_reno_halving() {
        const K: u64 = 1_000;
        let mut last = 1.0_f64;
        for rtt in [1_000_000u64, 1_000_000_000, u64::MAX] {
            // Fresh instance per sample: the once-per-RTT gate would
            // otherwise swallow the later, larger samples.
            let mut t = trim_with_k(K);
            t.on_ack(0, 500, false); // seed min_RTT, below K
            match t.on_ack(0, rtt, false) {
                WindowAction::Scale(f) => {
                    assert!(f >= 0.5, "rtt {rtt}: factor {f} cuts deeper than halving");
                    assert!(f < last, "factor must shrink toward 1/2 as RTT grows");
                    last = f;
                }
                other => panic!("rtt {rtt}: {other:?}"),
            }
        }
        assert!(last - 0.5 < 1e-9, "cut not capped at halving: {last}");
    }
}
