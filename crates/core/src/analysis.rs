//! Analytic completion-time models for packet trains.
//!
//! These closed-form estimates complement the steady-state model of
//! [`crate::kmodel`]: they predict how long a train of `n` packets takes
//! to deliver on an uncongested path under the different window regimes a
//! TCP-TRIM connection moves through — a slow-start restart (the GIP
//! baseline), congestion-avoidance growth from a tuned window, or a
//! single inherited-window burst. The experiment suite uses them to
//! sanity-check simulator output and they quantify the paper's
//! related-work argument: why a fixed `cwnd = 2` restart underutilizes a
//! big pipe (Section V, discussion of GIP).

/// How the window evolves while the train transmits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WindowRegime {
    /// Slow start from the given initial window (doubling per RTT).
    SlowStart {
        /// Initial window in packets.
        initial: f64,
    },
    /// Congestion avoidance from the given window (+1 per RTT).
    CongestionAvoidance {
        /// Initial window in packets.
        initial: f64,
    },
    /// The whole window is available immediately (inherited/tuned window
    /// at least as large as the train).
    Burst,
}

/// Estimates the completion time, in seconds, of an `n_pkts` train over a
/// path with base round-trip `rtt_s` seconds and bottleneck capacity
/// `c_pps` packets/second, under the given window regime.
///
/// The model counts transfer rounds until the cumulative window covers
/// the train, charges one `rtt_s` per round, and adds the serialization
/// tail `n/C` for the final round's packets; it ignores queueing from
/// competing traffic (an *uncongested-path* estimate, a lower bound under
/// load).
///
/// # Panics
///
/// Panics if any argument is non-positive.
pub fn train_completion_secs(n_pkts: u64, rtt_s: f64, c_pps: f64, regime: WindowRegime) -> f64 {
    assert!(n_pkts > 0, "empty train");
    assert!(rtt_s > 0.0 && c_pps > 0.0, "invalid path parameters");
    let n = n_pkts as f64;
    let ser_tail = n / c_pps;
    match regime {
        WindowRegime::Burst => rtt_s + ser_tail,
        WindowRegime::SlowStart { initial } => {
            assert!(initial >= 1.0, "window below one packet");
            // Rounds r such that initial*(2^r - 1) >= n.
            let mut sent = 0.0;
            let mut w = initial;
            let mut rounds = 0u32;
            while sent < n {
                sent += w;
                // The per-round window is itself capped by the pipe.
                w = (w * 2.0).min(c_pps * rtt_s + n);
                rounds += 1;
            }
            rounds as f64 * rtt_s + ser_tail
        }
        WindowRegime::CongestionAvoidance { initial } => {
            assert!(initial >= 1.0, "window below one packet");
            let mut sent = 0.0;
            let mut w = initial;
            let mut rounds = 0u32;
            while sent < n {
                sent += w;
                w += 1.0;
                rounds += 1;
            }
            rounds as f64 * rtt_s + ser_tail
        }
    }
}

/// The extra latency TCP-TRIM's probe phase adds at a train start: one
/// round trip for the probe pair (the probes themselves carry the first
/// [`TrimConfig::probe_packets`](crate::TrimConfig) data packets, so only the *waiting* is overhead).
pub fn probe_overhead_secs(rtt_s: f64) -> f64 {
    assert!(rtt_s > 0.0, "invalid RTT");
    rtt_s
}

/// The related-work comparison quantified: time for a restart strategy to
/// move an `n_pkts` train on an idle path, for TRIM's tuned inheritance
/// (probe round + burst) versus a GIP-style `cwnd = 2` slow-start restart.
///
/// Returns `(trim_secs, gip_secs)`.
pub fn restart_comparison_secs(n_pkts: u64, rtt_s: f64, c_pps: f64) -> (f64, f64) {
    let trim = probe_overhead_secs(rtt_s)
        + train_completion_secs(n_pkts, rtt_s, c_pps, WindowRegime::Burst);
    let gip = train_completion_secs(
        n_pkts,
        rtt_s,
        c_pps,
        WindowRegime::SlowStart { initial: 2.0 },
    );
    (trim, gip)
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 1e9 / (1460.0 * 8.0); // 1 Gbps in packets/s

    #[test]
    fn burst_is_one_rtt_plus_serialization() {
        let t = train_completion_secs(100, 200e-6, C, WindowRegime::Burst);
        assert!((t - (200e-6 + 100.0 / C)).abs() < 1e-12);
    }

    #[test]
    fn slow_start_round_count() {
        // 14 packets from w=2: rounds 2+4+8 -> 3 rounds.
        let t = train_completion_secs(14, 1e-3, C, WindowRegime::SlowStart { initial: 2.0 });
        let expected = 3.0 * 1e-3 + 14.0 / C;
        assert!((t - expected).abs() < 1e-9, "{t} vs {expected}");
    }

    #[test]
    fn congestion_avoidance_is_slower_than_slow_start() {
        let ss = train_completion_secs(100, 1e-3, C, WindowRegime::SlowStart { initial: 2.0 });
        let ca = train_completion_secs(
            100,
            1e-3,
            C,
            WindowRegime::CongestionAvoidance { initial: 2.0 },
        );
        assert!(ca > ss);
    }

    #[test]
    fn regimes_converge_for_single_packet() {
        for regime in [
            WindowRegime::Burst,
            WindowRegime::SlowStart { initial: 2.0 },
            WindowRegime::CongestionAvoidance { initial: 2.0 },
        ] {
            let t = train_completion_secs(1, 500e-6, C, regime);
            assert!((t - (500e-6 + 1.0 / C)).abs() < 1e-9, "{regime:?}");
        }
    }

    #[test]
    fn trim_beats_gip_on_long_fat_paths() {
        // 69 packets (100 KB), 2 ms RTT: slow start pays ~6 rounds.
        let (trim, gip) = restart_comparison_secs(69, 2e-3, C);
        assert!(
            trim < 0.6 * gip,
            "trim {trim}s vs gip {gip}s on a BDP-dominated path"
        );
        // On a tiny-RTT path the difference nearly vanishes.
        let (trim2, gip2) = restart_comparison_secs(69, 50e-6, C);
        assert!(trim2 < gip2 * 1.1);
    }

    #[test]
    #[should_panic(expected = "empty train")]
    fn zero_packets_rejected() {
        let _ = train_completion_secs(0, 1e-3, C, WindowRegime::Burst);
    }
}
