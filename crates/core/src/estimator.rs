//! RTT tracking for TCP-TRIM: the smoothed RTT used as the inter-train gap
//! and probe deadline, and the minimum RTT used as the queue-free baseline.

/// Exponentially-weighted RTT statistics (Algorithm 2, lines 2–6).
///
/// ```
/// use trim_core::estimator::RttTracker;
///
/// let mut rtt = RttTracker::new(0.25);
/// rtt.observe(100_000);
/// rtt.observe(200_000);
/// // smooth = 0.75*100us + 0.25*200us = 125us; min = 100us.
/// assert_eq!(rtt.smooth_ns(), Some(125_000));
/// assert_eq!(rtt.min_ns(), Some(100_000));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RttTracker {
    alpha: f64,
    smooth_ns: Option<f64>,
    min_ns: Option<u64>,
}

impl RttTracker {
    /// Creates a tracker with EWMA weight `alpha` for new samples.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        RttTracker {
            alpha,
            smooth_ns: None,
            min_ns: None,
        }
    }

    /// Feeds one RTT sample in nanoseconds. Returns `true` when the sample
    /// lowered the minimum RTT (the trigger for re-deriving `K`).
    ///
    /// # Panics
    ///
    /// Panics if `rtt_ns` is zero.
    pub fn observe(&mut self, rtt_ns: u64) -> bool {
        assert!(rtt_ns > 0, "RTT sample must be positive");
        self.smooth_ns = Some(match self.smooth_ns {
            None => rtt_ns as f64,
            Some(s) => (1.0 - self.alpha) * s + self.alpha * rtt_ns as f64,
        });
        match self.min_ns {
            Some(m) if rtt_ns >= m => false,
            _ => {
                self.min_ns = Some(rtt_ns);
                true
            }
        }
    }

    /// The smoothed RTT in nanoseconds, once at least one sample arrived.
    pub fn smooth_ns(&self) -> Option<u64> {
        self.smooth_ns.map(|s| s.round() as u64)
    }

    /// The minimum RTT in nanoseconds, once at least one sample arrived.
    pub fn min_ns(&self) -> Option<u64> {
        self.min_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes_both() {
        let mut t = RttTracker::new(0.25);
        assert_eq!(t.smooth_ns(), None);
        assert_eq!(t.min_ns(), None);
        assert!(t.observe(500));
        assert_eq!(t.smooth_ns(), Some(500));
        assert_eq!(t.min_ns(), Some(500));
    }

    #[test]
    fn min_only_decreases() {
        let mut t = RttTracker::new(0.25);
        t.observe(500);
        assert!(!t.observe(600));
        assert_eq!(t.min_ns(), Some(500));
        assert!(t.observe(400));
        assert_eq!(t.min_ns(), Some(400));
    }

    #[test]
    fn smooth_converges_to_constant_input() {
        let mut t = RttTracker::new(0.25);
        t.observe(1_000_000);
        for _ in 0..100 {
            t.observe(100_000);
        }
        let s = t.smooth_ns().unwrap();
        assert!((s as i64 - 100_000).abs() < 10, "smooth={s}");
    }

    #[test]
    fn alpha_one_tracks_latest() {
        let mut t = RttTracker::new(1.0);
        t.observe(100);
        t.observe(900);
        assert_eq!(t.smooth_ns(), Some(900));
    }

    #[test]
    #[should_panic]
    fn zero_alpha_rejected() {
        let _ = RttTracker::new(0.0);
    }

    #[test]
    #[should_panic]
    fn zero_sample_rejected() {
        let mut t = RttTracker::new(0.5);
        t.observe(0);
    }
}
