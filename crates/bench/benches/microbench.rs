//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! the simulator event loop, the TRIM algorithm, queue operations, RTT
//! estimation, and workload sampling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use netsim::prelude::*;
use netsim::queue::{DropTailQueue, QueueConfig};
use netsim::time::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trim_core::{Trim, TrimConfig};
use trim_tcp::{CcKind, Segment, TcpConfig, TcpHost};
use trim_workload::distributions::pt_size_bytes;

/// End-to-end events/second: a 5-sender incast pushing 100 KB each.
fn bench_simulator(c: &mut Criterion) {
    c.bench_function("sim/incast_5x100KB", |b| {
        b.iter(|| {
            let mut sim: Simulator<Segment> = Simulator::new();
            let sw = sim.add_switch();
            let mut fe_host = TcpHost::new();
            for i in 0..5 {
                fe_host.add_receiver(FlowId(i), TcpConfig::default());
            }
            let fe = sim.add_host(Box::new(fe_host));
            sim.connect(
                fe,
                sw,
                Bandwidth::gbps(1),
                Dur::from_micros(50),
                QueueConfig::drop_tail(100),
            );
            for i in 0..5 {
                let mut h = TcpHost::new();
                let idx = h.add_sender(FlowId(i), fe, TcpConfig::default(), &CcKind::Reno);
                h.schedule_train(idx, SimTime::ZERO, 100_000);
                let n = sim.add_host(Box::new(h));
                sim.connect(
                    n,
                    sw,
                    Bandwidth::gbps(1),
                    Dur::from_micros(50),
                    QueueConfig::drop_tail(100),
                );
            }
            sim.run_until(SimTime::from_secs(1));
            black_box(sim.delivered_packets())
        })
    });
}

/// The TRIM ACK hot path (Algorithm 2).
fn bench_trim_on_ack(c: &mut Criterion) {
    c.bench_function("trim/on_ack", |b| {
        let cfg = TrimConfig::default().with_capacity(1_000_000_000, 1460);
        b.iter_batched(
            || {
                let mut t = Trim::new(cfg).expect("valid config");
                t.on_ack(0, 100_000, false);
                t
            },
            |mut t| {
                for i in 0..1000u64 {
                    black_box(t.on_ack(i * 1000, 100_000 + (i % 7) * 10_000, false));
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
}

/// Drop-tail enqueue/dequeue throughput.
fn bench_queue(c: &mut Criterion) {
    // Fabricate two node ids through a throwaway simulator (the queue
    // only needs them as labels).
    let mut sim: Simulator<TagPayload> = Simulator::new();
    let a = sim.add_host(Box::new(SinkAgent::default()));
    let z = sim.add_host(Box::new(SinkAgent::default()));
    c.bench_function("queue/enqueue_dequeue", |b| {
        b.iter_batched(
            || DropTailQueue::<TagPayload>::new(QueueConfig::drop_tail(1000)),
            |mut q| {
                for i in 0..1000u64 {
                    let t = SimTime::from_nanos(i * 100);
                    q.enqueue(t, Packet::new(a, z, FlowId(0), 1460, TagPayload(i)));
                    if i % 2 == 1 {
                        black_box(q.dequeue(t));
                    }
                }
                q
            },
            BatchSize::SmallInput,
        )
    });
}

/// Empirical-CDF sampling (workload generation hot path).
fn bench_sampling(c: &mut Criterion) {
    c.bench_function("workload/pt_size_sample", |b| {
        let cdf = pt_size_bytes();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(cdf.sample(&mut rng)))
    });
}

criterion_group!(
    benches,
    bench_simulator,
    bench_trim_on_ack,
    bench_queue,
    bench_sampling
);
criterion_main!(benches);
