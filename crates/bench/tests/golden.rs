//! Golden-trace regression: canonical campaigns re-run
//! deterministically, independent of worker count, and reproduce the
//! committed CSVs under `results/` within the documented tolerance.
//!
//! Five campaigns cover the artifact families: `trace` (simulation
//! driven — exercises the event engine end to end, so any ordering or
//! arithmetic drift in the engine shows up here), `kmodel`
//! (analytical — exercises the harness/reduce path without a
//! simulator), `serve_slo` (the web-serving session workload over
//! the fat-tree, whose A/B jobs share a seed key), `aqm_matrix`
//! (the RED/CoDel tiny-buffer sweep plus the RED stability
//! cross-validation — exercises the AQM drop paths and the
//! oscillation monitors), and `million_flow` (the packed incast with
//! hundreds of senders per host — drives the timing wheel's RTO storm
//! path and the flow slab's checkout/writeback on every event). Each
//! runs at `--jobs 1` and `--jobs 8`; worker count must not leak into
//! artifacts at all.

use std::path::{Path, PathBuf};

use trim_check::golden::{compare_csv_files, Tolerance};
use trim_experiments::{registry, Effort};
use trim_harness::{engine, ExecConfig};

fn run_campaign_into(id: &str, dir: &Path, jobs: usize) -> Vec<String> {
    let spec = registry::find(id).unwrap_or_else(|| panic!("{id} is registered"));
    let cfg = ExecConfig {
        jobs,
        force: true,
        results_dir: dir.to_path_buf(),
        quiet: true,
    };
    let outcome = engine::execute((spec.campaign)(Effort::Quick), &cfg).expect("campaign runs");
    outcome.reduced.iter().map(|(n, _)| n.clone()).collect()
}

fn assert_campaign_reproduces_goldens(id: &str) {
    let scratch = std::env::temp_dir().join(format!("trim-golden-{id}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let serial = scratch.join("jobs1");
    let parallel = scratch.join("jobs8");
    let names = run_campaign_into(id, &serial, 1);
    assert_eq!(
        names,
        run_campaign_into(id, &parallel, 8),
        "{id}: artifact set differs by jobs"
    );
    assert!(!names.is_empty(), "{id} produces reduce artifacts");

    let golden_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    for name in &names {
        let f1 = serial.join(format!("{name}.csv"));
        let f8 = parallel.join(format!("{name}.csv"));
        // Worker count must not leak into artifacts at all: byte-equal.
        let m = compare_csv_files(&f1, &f8, Tolerance::EXACT).expect("both re-runs wrote CSVs");
        assert!(m.is_empty(), "{id}/{name}: jobs=1 vs jobs=8 differ: {m:?}");
        // And the re-run must reproduce the committed golden.
        let g = golden_root.join(format!("{name}.csv"));
        let m = compare_csv_files(&g, &f1, Tolerance::GOLDEN).expect("committed golden exists");
        assert!(m.is_empty(), "{name} drifted from committed golden: {m:?}");
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn trace_campaign_is_jobs_invariant_and_matches_committed_goldens() {
    assert_campaign_reproduces_goldens("trace");
}

#[test]
fn kmodel_campaign_is_jobs_invariant_and_matches_committed_goldens() {
    assert_campaign_reproduces_goldens("kmodel");
}

#[test]
fn serve_campaign_is_jobs_invariant_and_matches_committed_goldens() {
    assert_campaign_reproduces_goldens("serve_slo");
}

#[test]
fn aqm_campaign_is_jobs_invariant_and_matches_committed_goldens() {
    assert_campaign_reproduces_goldens("aqm_matrix");
}

#[test]
fn million_flow_campaign_is_jobs_invariant_and_matches_committed_goldens() {
    assert_campaign_reproduces_goldens("million_flow");
}
