//! Golden-trace regression: a canonical campaign re-runs
//! deterministically, independent of worker count, and reproduces the
//! committed CSVs under `results/` within the documented tolerance.

use std::path::{Path, PathBuf};

use trim_check::golden::{compare_csv_files, Tolerance};
use trim_experiments::{registry, Effort};
use trim_harness::{engine, ExecConfig};

fn run_trace_into(dir: &Path, jobs: usize) -> Vec<String> {
    let spec = registry::find("trace").expect("trace is registered");
    let cfg = ExecConfig {
        jobs,
        force: true,
        results_dir: dir.to_path_buf(),
        quiet: true,
    };
    let outcome = engine::execute((spec.campaign)(Effort::Quick), &cfg).expect("campaign runs");
    outcome.reduced.iter().map(|(n, _)| n.clone()).collect()
}

#[test]
fn trace_campaign_is_jobs_invariant_and_matches_committed_goldens() {
    let scratch = std::env::temp_dir().join(format!("trim-golden-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let d1 = scratch.join("jobs1");
    let d2 = scratch.join("jobs2");
    let names = run_trace_into(&d1, 1);
    assert_eq!(
        names,
        run_trace_into(&d2, 2),
        "artifact set differs by jobs"
    );
    assert!(!names.is_empty(), "trace produces reduce artifacts");

    let golden_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    for name in &names {
        let f1 = d1.join(format!("{name}.csv"));
        let f2 = d2.join(format!("{name}.csv"));
        // Worker count must not leak into artifacts at all: byte-equal.
        let m = compare_csv_files(&f1, &f2, Tolerance::EXACT).expect("both re-runs wrote CSVs");
        assert!(m.is_empty(), "jobs=1 vs jobs=2 differ: {m:?}");
        // And the re-run must reproduce the committed golden.
        let g = golden_root.join(format!("{name}.csv"));
        let m = compare_csv_files(&g, &f1, Tolerance::GOLDEN).expect("committed golden exists");
        assert!(m.is_empty(), "{name} drifted from committed golden: {m:?}");
    }
    let _ = std::fs::remove_dir_all(&scratch);
}
