//! # trim-experiments — the evaluation harness
//!
//! One module per table/figure of the paper's evaluation (Section IV),
//! each regenerating the corresponding result on the `netsim` + `trim-tcp`
//! stack. Run them individually (`cargo run -p trim-experiments --bin
//! exp_impairment --release`) or all together (`--bin run_all`). Every
//! experiment prints paper-style tables and writes CSVs under `results/`.
//!
//! Pass `--full` for paper-scale parameters; the default "quick" effort
//! uses smaller sweeps and fewer repetitions so the whole suite finishes
//! in minutes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::path::PathBuf;

pub mod experiments;
pub mod table;

pub use table::Table;

/// How much work an experiment should do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// Reduced sweeps/repetitions: minutes for the whole suite.
    Quick,
    /// Paper-scale parameters.
    Full,
}

impl Effort {
    /// Parses the process arguments: `--full` selects [`Effort::Full`].
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Effort::Full
        } else {
            Effort::Quick
        }
    }

    /// Whether this is the full effort.
    pub fn is_full(self) -> bool {
        self == Effort::Full
    }

    /// Picks `quick` or `full` by effort.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Effort::Quick => quick,
            Effort::Full => full,
        }
    }
}

/// Directory where experiment CSVs are written.
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

/// Runs `f` over `items` on worker threads, preserving input order.
///
/// Simulations are single-threaded and independent, so sweeps and
/// repetitions parallelize across cores.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let n = items.len();
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(work);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads.min(n.max(1)) {
            handles.push(scope.spawn(|_| {
                let mut done = Vec::new();
                loop {
                    let item = queue.lock().expect("queue poisoned").pop();
                    match item {
                        Some((i, t)) => done.push((i, f(t))),
                        None => break,
                    }
                }
                done
            }));
        }
        for h in handles {
            for (i, u) in h.join().expect("worker panicked") {
                slots[i] = Some(u);
            }
        }
    })
    .expect("scope panicked");
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_pick() {
        assert_eq!(Effort::Quick.pick(1, 2), 1);
        assert_eq!(Effort::Full.pick(1, 2), 2);
        assert!(Effort::Full.is_full());
        assert!(!Effort::Quick.is_full());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
