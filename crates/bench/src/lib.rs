//! # trim-experiments — the evaluation suite
//!
//! One module per table/figure of the paper's evaluation (Section IV),
//! each regenerating the corresponding result on the `netsim` + `trim-tcp`
//! stack. Every experiment describes its sweep as a `trim-harness`
//! [`Campaign`]: independent seeded jobs executed on a work-stealing
//! pool, with per-job CSV artifacts, resume, and a run manifest under
//! `results/`.
//!
//! Run everything with the unified CLI (`cargo run --release --bin
//! trim-bench -- --only trace,kmodel --jobs 4`), or a single experiment
//! with its dedicated binary (`--bin exp_impairment`). Pass `--full`
//! for paper-scale parameters; the default "quick" effort uses smaller
//! sweeps so the whole suite finishes in minutes.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::path::PathBuf;

use trim_harness::{engine, Campaign, CliArgs, ExecConfig};

pub mod experiments;
pub mod registry;

pub use trim_harness::table;
pub use trim_harness::{Effort, Table};

/// Directory where experiment CSVs are written.
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

/// Executes a campaign with default settings (all cores, resume
/// enabled, `results/`, no progress output) and returns its reduce
/// tables. The `run(effort)` entry point of every experiment delegates
/// here, so tests and legacy callers keep their one-call interface.
pub(crate) fn execute_quiet(campaign: Campaign) -> Vec<Table> {
    let cfg = ExecConfig {
        results_dir: results_dir(),
        quiet: true,
        ..ExecConfig::default()
    };
    engine::execute(campaign, &cfg)
        .expect("campaign execution failed")
        .into_tables()
}

/// Drives a selection of experiments from parsed CLI options: the
/// shared `main` of `trim-bench`, `run_all`, and the `exp_*` binaries.
///
/// # Errors
///
/// Returns a message naming any unknown experiment id; I/O errors from
/// the result store are formatted into the message.
pub fn drive(args: &CliArgs) -> Result<(), String> {
    if args.list {
        for spec in registry::ALL {
            trim_harness::cli::emit(&format!("{:<16} {}", spec.id, spec.title));
        }
        return Ok(());
    }
    let selected: Vec<&registry::ExperimentSpec> = match &args.only {
        None => registry::ALL.iter().collect(),
        Some(ids) => ids
            .iter()
            .map(|id| {
                registry::find(id).ok_or_else(|| format!("unknown experiment '{id}' (see --list)"))
            })
            .collect::<Result<_, _>>()?,
    };
    let cfg = ExecConfig {
        jobs: args.jobs,
        force: args.force,
        results_dir: args.results_dir.clone(),
        quiet: args.quiet,
    };
    for spec in selected {
        let t0 = std::time::Instant::now(); // trim-lint: allow(no-wall-clock, reason = "per-experiment wall time for the console summary; never enters results")
        trim_harness::cli::emit(&format!("\n########## {} ##########", spec.title));
        let mut campaign = (spec.campaign)(args.effort);
        if let Some(seed) = args.seed {
            campaign = campaign.with_seed(seed);
        }
        let outcome = engine::execute(campaign, &cfg).map_err(|e| format!("{}: {e}", spec.id))?;
        for table in outcome.into_tables() {
            table.print();
        }
        trim_harness::cli::emit(&format!(
            "[{}: {:.1}s]",
            spec.id,
            t0.elapsed().as_secs_f64()
        ));
    }
    Ok(())
}

/// The `main` of a single-experiment binary: strict CLI parsing
/// restricted to this experiment, then [`drive`].
pub fn single_experiment_main(id: &str) {
    let program = format!("exp_{id}");
    let mut args = trim_harness::cli::parse_env_or_exit(&program, &[id]);
    if let Some(only) = &args.only {
        if only.iter().any(|o| o != id) {
            eprintln!("{program}: this binary only runs '{id}' (use trim-bench --only for others)");
            std::process::exit(2);
        }
    }
    args.only = Some(vec![id.to_string()]);
    if let Err(msg) = drive(&args) {
        eprintln!("{program}: {msg}");
        std::process::exit(1);
    }
}

/// Runs `f` over `items` on worker threads, preserving input order.
///
/// Simulations are single-threaded and independent; experiment
/// *helpers* (ablations, cross-module sweeps that are not campaign
/// jobs) use this to spread repetitions across cores.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let n = items.len();
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let queue: std::sync::Mutex<Vec<(usize, T)>> =
        std::sync::Mutex::new(items.into_iter().enumerate().collect());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads.min(n.max(1)) {
            handles.push(scope.spawn(|| {
                let mut done = Vec::new();
                loop {
                    let item = queue.lock().expect("queue poisoned").pop();
                    match item {
                        Some((i, t)) => done.push((i, f(t))),
                        None => break,
                    }
                }
                done
            }));
        }
        for h in handles {
            for (i, u) in h.join().expect("worker panicked") {
                slots[i] = Some(u);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Formats an `f64` exactly (shortest round-trip); job artifacts use
/// this so the reduce step recovers bit-identical values from CSV.
pub(crate) fn num(x: f64) -> String {
    table::num(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn registry_ids_are_unique_and_findable() {
        for spec in registry::ALL {
            assert_eq!(registry::find(spec.id).unwrap().id, spec.id);
        }
        let mut ids: Vec<_> = registry::ALL.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), registry::ALL.len());
    }

    #[test]
    fn drive_rejects_unknown_ids() {
        let args = CliArgs {
            only: Some(vec!["nope".into()]),
            ..CliArgs::default()
        };
        assert!(drive(&args).unwrap_err().contains("nope"));
    }
}
