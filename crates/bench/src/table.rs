//! Aligned-text tables and CSV output for experiment reports.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table, printed in the style of the paper's
/// result tables.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV under `dir/<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path, name: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        fs::write(dir.join(format!("{name}.csv")), out)
    }
}

/// Formats a duration in seconds adaptively (ms below 1 s).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else {
        format!("{:.3}ms", s * 1e3)
    }
}

/// Formats a ratio as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("name    value"));
        assert!(r.contains("longer  22"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("trim_table_test");
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        t.write_csv(&dir, "demo").unwrap();
        let s = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(s, "x,y\n1,2\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(1.5), "1.500s");
        assert_eq!(fmt_secs(0.0123), "12.300ms");
        assert_eq!(fmt_pct(0.805), "80.5%");
    }
}
