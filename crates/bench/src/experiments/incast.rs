//! Extension experiment (beyond the paper's figures): partition/aggregate
//! query completion time versus fan-out.
//!
//! The paper's Section II.B.2 motivates TCP-TRIM with the
//! partition/aggregate pattern but never reports query-level numbers.
//! This experiment quantifies them: a query completes when its *slowest*
//! shard arrives, so one RTO on any worker stalls the whole query.

use trim_harness::{Campaign, JobRecord};
use trim_tcp::CcKind;
use trim_workload::incast::{incast_qct, QueryConfig};

use crate::num;
use crate::table::fmt_secs;
use crate::{Effort, Table};

/// The three protocols of the sweep, in column order.
fn protocols() -> [(&'static str, CcKind); 3] {
    [
        ("tcp", CcKind::Reno),
        ("dctcp", CcKind::Dctcp),
        ("trim", CcKind::trim_with_capacity(1_000_000_000, 1460)),
    ]
}

fn record_for<'a>(records: &'a [JobRecord], key: &str) -> &'a JobRecord {
    records
        .iter()
        .find(|r| r.key == key)
        .unwrap_or_else(|| panic!("missing job '{key}'"))
}

/// Builds the incast campaign: one job per (fan-out, protocol), with
/// protocols sharing each fan-out's warm-up seed, reduced into the
/// mean/tail/timeout tables.
pub fn campaign(effort: Effort) -> Campaign {
    let fanouts: Vec<usize> = effort.pick(vec![4, 8, 16, 32], vec![4, 8, 16, 32, 48, 64]);

    let mut c = Campaign::new("incast", 0x1ca5);
    for &n in &fanouts {
        for (proto, cc) in protocols() {
            let cc = cc.clone();
            c.table_job_seeded(
                format!("f{n}_{proto}"),
                format!("f{n}"),
                &[("workers", n.to_string()), ("protocol", proto.to_string())],
                move |seed| {
                    let cfg = QueryConfig {
                        workers: n,
                        queries: 5,
                        seed,
                        ..QueryConfig::default()
                    };
                    let report = incast_qct(&cc, &cfg);
                    let q = report.queries();
                    let mut t = Table::new("run", &["mean", "max", "timeouts"]);
                    t.row(&[num(q.mean), num(q.max), report.timeouts.to_string()]);
                    t
                },
            );
        }
    }
    c.reduce(move |records| {
        let mut qct = Table::new(
            "Extension — mean query completion time vs fan-out (s)",
            &["workers", "tcp", "dctcp", "trim"],
        );
        let mut tail = Table::new(
            "Extension — worst query completion time vs fan-out (s)",
            &["workers", "tcp", "dctcp", "trim"],
        );
        let mut timeouts = Table::new(
            "Extension — timeouts during the query sweep",
            &["workers", "tcp", "dctcp", "trim"],
        );
        for &n in &fanouts {
            let row: Vec<&Table> = protocols()
                .iter()
                .map(|(proto, _)| record_for(records, &format!("f{n}_{proto}")).only())
                .collect();
            qct.row(&[
                format!("{n}"),
                fmt_secs(row[0].f64_at(0, 0)),
                fmt_secs(row[1].f64_at(0, 0)),
                fmt_secs(row[2].f64_at(0, 0)),
            ]);
            tail.row(&[
                format!("{n}"),
                fmt_secs(row[0].f64_at(0, 1)),
                fmt_secs(row[1].f64_at(0, 1)),
                fmt_secs(row[2].f64_at(0, 1)),
            ]);
            timeouts.row(&[
                format!("{n}"),
                row[0].cell(0, 2).to_string(),
                row[1].cell(0, 2).to_string(),
                row[2].cell(0, 2).to_string(),
            ]);
        }
        vec![
            ("ext_incast_qct".to_string(), qct),
            ("ext_incast_tail".to_string(), tail),
            ("ext_incast_timeouts".to_string(), timeouts),
        ]
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_covers_every_fanout_and_protocol() {
        let c = campaign(Effort::Quick);
        assert_eq!(c.len(), 4 * 3);
        // Protocols are paired on the same workload per fan-out.
        assert_eq!(c.job_seed("f4_tcp"), c.job_seed("f4_trim"));
        assert_ne!(c.job_seed("f4_tcp"), c.job_seed("f8_tcp"));
    }
}
