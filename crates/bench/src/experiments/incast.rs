//! Extension experiment (beyond the paper's figures): partition/aggregate
//! query completion time versus fan-out.
//!
//! The paper's Section II.B.2 motivates TCP-TRIM with the
//! partition/aggregate pattern but never reports query-level numbers.
//! This experiment quantifies them: a query completes when its *slowest*
//! shard arrives, so one RTO on any worker stalls the whole query.

use trim_tcp::CcKind;
use trim_workload::incast::{incast_qct, QueryConfig};

use crate::table::fmt_secs;
use crate::{parallel_map, results_dir, Effort, Table};

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    let fanouts: Vec<usize> = effort.pick(vec![4, 8, 16, 32], vec![4, 8, 16, 32, 48, 64]);
    let protos = [
        ("tcp", CcKind::Reno),
        ("dctcp", CcKind::Dctcp),
        ("trim", CcKind::trim_with_capacity(1_000_000_000, 1460)),
    ];

    let jobs: Vec<(usize, usize)> = fanouts
        .iter()
        .flat_map(|&n| (0..protos.len()).map(move |p| (n, p)))
        .collect();
    let results = parallel_map(jobs, |(n, p)| {
        let cfg = QueryConfig {
            workers: n,
            queries: 5,
            ..QueryConfig::default()
        };
        incast_qct(&protos[p].1, &cfg)
    });

    let mut qct = Table::new(
        "Extension — mean query completion time vs fan-out (s)",
        &["workers", "tcp", "dctcp", "trim"],
    );
    let mut tail = Table::new(
        "Extension — worst query completion time vs fan-out (s)",
        &["workers", "tcp", "dctcp", "trim"],
    );
    let mut timeouts = Table::new(
        "Extension — timeouts during the query sweep",
        &["workers", "tcp", "dctcp", "trim"],
    );
    for (i, &n) in fanouts.iter().enumerate() {
        let row = &results[i * protos.len()..(i + 1) * protos.len()];
        qct.row(&[
            format!("{n}"),
            fmt_secs(row[0].queries().mean),
            fmt_secs(row[1].queries().mean),
            fmt_secs(row[2].queries().mean),
        ]);
        tail.row(&[
            format!("{n}"),
            fmt_secs(row[0].queries().max),
            fmt_secs(row[1].queries().max),
            fmt_secs(row[2].queries().max),
        ]);
        timeouts.row(&[
            format!("{n}"),
            format!("{}", row[0].timeouts),
            format!("{}", row[1].timeouts),
            format!("{}", row[2].timeouts),
        ]);
    }
    let dir = results_dir();
    let _ = qct.write_csv(&dir, "ext_incast_qct");
    let _ = tail.write_csv(&dir, "ext_incast_tail");
    let _ = timeouts.write_csv(&dir, "ext_incast_timeouts");
    vec![qct, tail, timeouts]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_three_tables_with_matching_rows() {
        let tables = run(Effort::Quick);
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].len(), tables[1].len());
        assert_eq!(tables[0].len(), tables[2].len());
    }
}
