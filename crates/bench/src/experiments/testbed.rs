//! Fig. 13 — the "real testbed" experiments, reproduced in simulation
//! with the testbed's parameters (DESIGN.md documents the substitution).
//!
//! (a) 100 Mbps links: two machines stream large files persistently while
//! a third serves 100 responses of mean size 32 KB–1 MB (±10%); the
//! metric is the average response completion time (ARCT), CUBIC vs TRIM.
//!
//! (b)–(e) 1 Gbps links: four machines serve 1000 responses each with
//! sizes and intervals from the Fig. 2 distributions; the paper reports
//! TRIM keeping ~99% of completions under 25 ms while CUBIC and Reno
//! show a heavy tail up to 250 ms.

use netsim::time::{Dur, SimTime};
use trim_tcp::{CcKind, TcpConfig, TcpHost};
use trim_workload::distributions::{pt_interval, pt_size_bytes};
use trim_workload::http::{lpt, testbed_responses};
use trim_workload::metrics::{cdf_points, fraction_below};
use trim_workload::scenario::{ScenarioBuilder, TrainSpec};
use trim_workload::Summary;

use rand::rngs::StdRng;
use rand::SeedableRng;
use trim_harness::{Artifacts, Campaign, JobRecord};

use crate::num;
use crate::table::{fmt_f64, fmt_secs};
use crate::{Effort, Table};

/// Fig. 13(a): ARCT of 100 responses of mean size `mean_bytes` while two
/// large files stream on 100 Mbps links.
pub fn arct_100mbps(cc: &CcKind, mean_bytes: u64, seed: u64) -> Summary {
    let link = netsim::topology::LinkSpec::new(
        netsim::Bandwidth::mbps(100),
        Dur::from_micros(100),
        netsim::QueueConfig::drop_tail(100),
    );
    let mut sc = ScenarioBuilder::many_to_one(3)
        .congestion_control(cc.clone())
        .links(link)
        .tcp_config(TcpConfig::default().with_min_rto(Dur::from_millis(200)))
        .build();
    // Two persistent large-file transfers.
    sc.send_train(0, lpt(0.0, 2_000_000_000));
    sc.send_train(1, lpt(0.0, 2_000_000_000));
    // The third machine serves 100 responses sequentially (request/
    // response on a persistent connection, 2 ms think time).
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes: Vec<u64> = testbed_responses(&mut rng, 100, mean_bytes, 0.0, 1.0)
        .into_iter()
        .map(|s| s.bytes)
        .collect();
    let node = sc.net().senders[2];
    sc.sim_mut()
        .host_mut::<TcpHost>(node)
        .schedule_response_sequence(0, SimTime::from_secs_f64(0.1), sizes, Dur::from_millis(2));
    let report = sc.run_for_secs(120.0);
    let times: Vec<Dur> = report.senders[2]
        .trains
        .iter()
        .map(|t| t.completion_time())
        .collect();
    Summary::of(&times)
}

/// Result of the Fig. 13(b)-(e) web-service run for one protocol.
#[derive(Clone, Debug)]
pub struct WebServiceRun {
    /// Completion times of responses between 64 KB and 256 KB (the
    /// scatter plots 13(b)-(d)), in seconds.
    pub mid_sizes: Vec<f64>,
    /// CDF of all response completion times.
    pub cdf: Vec<(f64, f64)>,
    /// Fraction of responses completing within 25 ms.
    pub under_25ms: f64,
    /// ARCT over all responses.
    pub arct: f64,
}

/// Fig. 13(b)-(e): 4 servers, `n_per_server` responses each on 1 Gbps.
pub fn web_service(cc: &CcKind, n_per_server: usize, seed: u64) -> WebServiceRun {
    let mut sc = ScenarioBuilder::many_to_one(4)
        .congestion_control(cc.clone())
        .tcp_config(TcpConfig::default().with_min_rto(Dur::from_millis(200)))
        .build();
    let size_dist = pt_size_bytes();
    let gap_dist = pt_interval();
    let mut rng = StdRng::seed_from_u64(seed);
    for s in 0..4 {
        let mut t = 0.1;
        for _ in 0..n_per_server {
            let bytes = size_dist.sample(&mut rng).round() as u64;
            sc.send_train(s, TrainSpec::at_secs(t, bytes.max(1)));
            t += gap_dist.sample(&mut rng) / 1e9;
        }
    }
    let report = sc.run_for_secs(60.0);
    let mut all = Vec::new();
    let mut mid = Vec::new();
    for s in &report.senders {
        for tr in &s.trains {
            let ct = tr.completion_time();
            all.push(ct);
            if (64 * 1024..=256 * 1024).contains(&tr.bytes) {
                mid.push(ct.as_secs_f64());
            }
        }
    }
    WebServiceRun {
        mid_sizes: mid,
        cdf: cdf_points(&all),
        under_25ms: fraction_below(&all, Dur::from_millis(25)),
        arct: Summary::of(&all).mean,
    }
}

/// A web-service job's artifacts: the scalar summary plus the CDF
/// checkpoints used by the Fig. 13(e) table.
fn web_service_job(cc: &CcKind, n_per_server: usize, seed: u64) -> Artifacts {
    let r = web_service(cc, n_per_server, seed);
    let max_mid = r.mid_sizes.iter().copied().fold(0.0f64, f64::max);
    let mut summary = Table::new(
        "summary",
        &["arct", "under_25ms", "max_mid_ct", "responses"],
    );
    summary.row(&[
        num(r.arct),
        num(r.under_25ms),
        num(max_mid),
        r.cdf.len().to_string(),
    ]);
    let mut cdf = Table::new("cdf", &["ct_ms", "frac"]);
    for ms in [5.0, 10.0, 25.0, 50.0, 100.0, 250.0] {
        let t = ms / 1e3;
        let frac = r.cdf.partition_point(|&(v, _)| v <= t) as f64 / r.cdf.len().max(1) as f64;
        cdf.row(&[format!("{ms}"), num(frac)]);
    }
    vec![("summary".to_string(), summary), ("cdf".to_string(), cdf)]
}

fn record_for<'a>(records: &'a [JobRecord], key: &str) -> &'a JobRecord {
    records
        .iter()
        .find(|r| r.key == key)
        .unwrap_or_else(|| panic!("missing job '{key}'"))
}

/// Builds the testbed campaign: one ARCT job per (response size,
/// protocol) on the 100 Mbps network plus one web-service job per
/// protocol on the 1 Gbps network. Protocols share each scenario's
/// seed key so A/B comparisons run the identical workload.
pub fn campaign(effort: Effort) -> Campaign {
    let sizes: Vec<u64> = effort.pick(
        vec![32_768, 131_072, 524_288, 1_048_576],
        vec![32_768, 65_536, 131_072, 262_144, 524_288, 1_048_576],
    );
    let n_per_server = effort.pick(400, 1000);

    let mut c = Campaign::new("testbed", 0xBED);
    for &s in &sizes {
        for proto in ["cubic", "trim"] {
            c.table_job_seeded(
                format!("arct_{s}_{proto}"),
                format!("arct_{s}"),
                &[
                    ("mean_bytes", s.to_string()),
                    ("protocol", proto.to_string()),
                ],
                move |seed| {
                    let cc = if proto == "trim" {
                        CcKind::trim_with_capacity(100_000_000, 1460)
                    } else {
                        CcKind::Cubic
                    };
                    let mut t = Table::new("arct", &["mean"]);
                    t.row(&[num(arct_100mbps(&cc, s, seed).mean)]);
                    t
                },
            );
        }
    }
    for (proto, cc) in [
        ("cubic", CcKind::Cubic),
        ("reno", CcKind::Reno),
        ("trim", CcKind::trim_with_capacity(1_000_000_000, 1460)),
    ] {
        c.job_seeded(
            format!("web_{proto}"),
            "web",
            &[
                ("protocol", proto.to_string()),
                ("n_per_server", n_per_server.to_string()),
            ],
            move |seed| web_service_job(&cc, n_per_server, seed),
        );
    }
    c.reduce(move |records| {
        let mut fig13a = Table::new(
            "Fig. 13(a) — ARCT on 100 Mbps testbed (s)",
            &["mean_size_kb", "cubic", "trim"],
        );
        for &s in &sizes {
            fig13a.row(&[
                format!("{}", s / 1024),
                fmt_secs(
                    record_for(records, &format!("arct_{s}_cubic"))
                        .only()
                        .f64_at(0, 0),
                ),
                fmt_secs(
                    record_for(records, &format!("arct_{s}_trim"))
                        .only()
                        .f64_at(0, 0),
                ),
            ]);
        }

        let protos = ["cubic", "reno", "trim"];
        let mut fig13e = Table::new(
            "Fig. 13(b)-(e) — web-service completion times (4 servers)",
            &[
                "protocol",
                "arct",
                "p_under_25ms",
                "max_mid_ct",
                "responses",
            ],
        );
        for proto in protos {
            let summary = record_for(records, &format!("web_{proto}")).table("summary");
            fig13e.row(&[
                proto.to_string(),
                fmt_secs(summary.f64_at(0, 0)),
                fmt_f64(summary.f64_at(0, 1)),
                fmt_secs(summary.f64_at(0, 2)),
                summary.cell(0, 3).to_string(),
            ]);
        }

        let mut cdf_table = Table::new(
            "Fig. 13(e) — CDF of response completion time",
            &["ct_ms", "cubic", "reno", "trim"],
        );
        let cdfs: Vec<&Table> = protos
            .iter()
            .map(|proto| record_for(records, &format!("web_{proto}")).table("cdf"))
            .collect();
        for row in 0..cdfs[0].len() {
            cdf_table.row(&[
                cdfs[0].cell(row, 0).to_string(),
                fmt_f64(cdfs[0].f64_at(row, 1)),
                fmt_f64(cdfs[1].f64_at(row, 1)),
                fmt_f64(cdfs[2].f64_at(row, 1)),
            ]);
        }

        vec![
            ("fig13a_arct".to_string(), fig13a),
            ("fig13e_web_service".to_string(), fig13e),
            ("fig13e_cdf".to_string(), cdf_table),
        ]
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trim_beats_cubic_on_large_responses() {
        let cubic = arct_100mbps(&CcKind::Cubic, 262_144, 3);
        let trim = arct_100mbps(&CcKind::trim_with_capacity(100_000_000, 1460), 262_144, 3);
        assert_eq!(cubic.count, 100);
        assert_eq!(trim.count, 100);
        assert!(
            trim.mean < cubic.mean,
            "trim {} vs cubic {}",
            trim.mean,
            cubic.mean
        );
    }

    #[test]
    fn trim_cuts_the_web_service_tail() {
        let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
        let t = web_service(&trim, 150, 5);
        let c = web_service(&CcKind::Cubic, 150, 5);
        assert!(
            t.under_25ms > c.under_25ms,
            "trim {} vs cubic {} under 25ms",
            t.under_25ms,
            c.under_25ms
        );
        assert!(
            t.under_25ms > 0.9,
            "paper: ~99% under 25 ms, got {}",
            t.under_25ms
        );
    }
}
