//! Fig. 13 — the "real testbed" experiments, reproduced in simulation
//! with the testbed's parameters (DESIGN.md documents the substitution).
//!
//! (a) 100 Mbps links: two machines stream large files persistently while
//! a third serves 100 responses of mean size 32 KB–1 MB (±10%); the
//! metric is the average response completion time (ARCT), CUBIC vs TRIM.
//!
//! (b)–(e) 1 Gbps links: four machines serve 1000 responses each with
//! sizes and intervals from the Fig. 2 distributions; the paper reports
//! TRIM keeping ~99% of completions under 25 ms while CUBIC and Reno
//! show a heavy tail up to 250 ms.

use netsim::time::{Dur, SimTime};
use trim_tcp::{CcKind, TcpConfig, TcpHost};
use trim_workload::distributions::{pt_interval, pt_size_bytes};
use trim_workload::http::{lpt, testbed_responses};
use trim_workload::metrics::{cdf_points, fraction_below};
use trim_workload::scenario::{ScenarioBuilder, TrainSpec};
use trim_workload::Summary;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::fmt_secs;
use crate::{parallel_map, results_dir, Effort, Table};

/// Fig. 13(a): ARCT of 100 responses of mean size `mean_bytes` while two
/// large files stream on 100 Mbps links.
pub fn arct_100mbps(cc: &CcKind, mean_bytes: u64, seed: u64) -> Summary {
    let link = netsim::topology::LinkSpec::new(
        netsim::Bandwidth::mbps(100),
        Dur::from_micros(100),
        netsim::QueueConfig::drop_tail(100),
    );
    let mut sc = ScenarioBuilder::many_to_one(3)
        .congestion_control(cc.clone())
        .links(link)
        .tcp_config(TcpConfig::default().with_min_rto(Dur::from_millis(200)))
        .build();
    // Two persistent large-file transfers.
    sc.send_train(0, lpt(0.0, 2_000_000_000));
    sc.send_train(1, lpt(0.0, 2_000_000_000));
    // The third machine serves 100 responses sequentially (request/
    // response on a persistent connection, 2 ms think time).
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes: Vec<u64> = testbed_responses(&mut rng, 100, mean_bytes, 0.0, 1.0)
        .into_iter()
        .map(|s| s.bytes)
        .collect();
    let node = sc.net().senders[2];
    sc.sim_mut()
        .host_mut::<TcpHost>(node)
        .schedule_response_sequence(0, SimTime::from_secs_f64(0.1), sizes, Dur::from_millis(2));
    let report = sc.run_for_secs(120.0);
    let times: Vec<Dur> = report.senders[2]
        .trains
        .iter()
        .map(|t| t.completion_time())
        .collect();
    Summary::of(&times)
}

/// Result of the Fig. 13(b)-(e) web-service run for one protocol.
#[derive(Clone, Debug)]
pub struct WebServiceRun {
    /// Completion times of responses between 64 KB and 256 KB (the
    /// scatter plots 13(b)-(d)), in seconds.
    pub mid_sizes: Vec<f64>,
    /// CDF of all response completion times.
    pub cdf: Vec<(f64, f64)>,
    /// Fraction of responses completing within 25 ms.
    pub under_25ms: f64,
    /// ARCT over all responses.
    pub arct: f64,
}

/// Fig. 13(b)-(e): 4 servers, `n_per_server` responses each on 1 Gbps.
pub fn web_service(cc: &CcKind, n_per_server: usize, seed: u64) -> WebServiceRun {
    let mut sc = ScenarioBuilder::many_to_one(4)
        .congestion_control(cc.clone())
        .tcp_config(TcpConfig::default().with_min_rto(Dur::from_millis(200)))
        .build();
    let size_dist = pt_size_bytes();
    let gap_dist = pt_interval();
    let mut rng = StdRng::seed_from_u64(seed);
    for s in 0..4 {
        let mut t = 0.1;
        for _ in 0..n_per_server {
            let bytes = size_dist.sample(&mut rng).round() as u64;
            sc.send_train(s, TrainSpec::at_secs(t, bytes.max(1)));
            t += gap_dist.sample(&mut rng) / 1e9;
        }
    }
    let report = sc.run_for_secs(60.0);
    let mut all = Vec::new();
    let mut mid = Vec::new();
    for s in &report.senders {
        for tr in &s.trains {
            let ct = tr.completion_time();
            all.push(ct);
            if (64 * 1024..=256 * 1024).contains(&tr.bytes) {
                mid.push(ct.as_secs_f64());
            }
        }
    }
    WebServiceRun {
        mid_sizes: mid,
        cdf: cdf_points(&all),
        under_25ms: fraction_below(&all, Dur::from_millis(25)),
        arct: Summary::of(&all).mean,
    }
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    let mut tables = Vec::new();

    // Fig. 13(a).
    let sizes: Vec<u64> = effort.pick(
        vec![32_768, 131_072, 524_288, 1_048_576],
        vec![32_768, 65_536, 131_072, 262_144, 524_288, 1_048_576],
    );
    let trim100 = CcKind::trim_with_capacity(100_000_000, 1460);
    let jobs: Vec<(u64, u8)> = sizes.iter().flat_map(|&s| [(s, 0u8), (s, 1)]).collect();
    let results = parallel_map(jobs, |(s, p)| {
        let cc = if p == 0 {
            CcKind::Cubic
        } else {
            CcKind::trim_with_capacity(100_000_000, 1460)
        };
        arct_100mbps(&cc, s, 0xBED ^ s)
    });
    let mut fig13a = Table::new(
        "Fig. 13(a) — ARCT on 100 Mbps testbed (s)",
        &["mean_size_kb", "cubic", "trim"],
    );
    for (i, &s) in sizes.iter().enumerate() {
        fig13a.row(&[
            format!("{}", s / 1024),
            fmt_secs(results[i * 2].mean),
            fmt_secs(results[i * 2 + 1].mean),
        ]);
    }
    let _ = fig13a.write_csv(&results_dir(), "fig13a_arct");
    tables.push(fig13a);
    let _ = trim100;

    // Fig. 13(b)-(e).
    let n_per_server = effort.pick(400, 1000);
    let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
    let protos = [CcKind::Cubic, CcKind::Reno, trim];
    let runs = parallel_map(protos.to_vec(), |cc| web_service(&cc, n_per_server, 0xCAFE));
    let mut fig13e = Table::new(
        "Fig. 13(b)-(e) — web-service completion times (4 servers)",
        &["protocol", "arct", "p_under_25ms", "max_mid_ct", "responses"],
    );
    for (cc, r) in protos.iter().zip(&runs) {
        let max_mid = r.mid_sizes.iter().copied().fold(0.0f64, f64::max);
        fig13e.row(&[
            cc.name().to_string(),
            fmt_secs(r.arct),
            format!("{:.3}", r.under_25ms),
            fmt_secs(max_mid),
            format!("{}", r.cdf.len()),
        ]);
    }
    let _ = fig13e.write_csv(&results_dir(), "fig13e_web_service");

    // CDF checkpoints for Fig. 13(e).
    let mut cdf_table = Table::new(
        "Fig. 13(e) — CDF of response completion time",
        &["ct_ms", "cubic", "reno", "trim"],
    );
    for ms in [5.0, 10.0, 25.0, 50.0, 100.0, 250.0] {
        let frac = |r: &WebServiceRun| {
            let t = ms / 1e3;
            r.cdf.partition_point(|&(v, _)| v <= t) as f64 / r.cdf.len().max(1) as f64
        };
        cdf_table.row(&[
            format!("{ms}"),
            format!("{:.3}", frac(&runs[0])),
            format!("{:.3}", frac(&runs[1])),
            format!("{:.3}", frac(&runs[2])),
        ]);
    }
    let _ = cdf_table.write_csv(&results_dir(), "fig13e_cdf");
    tables.push(fig13e);
    tables.push(cdf_table);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trim_beats_cubic_on_large_responses() {
        let cubic = arct_100mbps(&CcKind::Cubic, 262_144, 3);
        let trim = arct_100mbps(&CcKind::trim_with_capacity(100_000_000, 1460), 262_144, 3);
        assert_eq!(cubic.count, 100);
        assert_eq!(trim.count, 100);
        assert!(
            trim.mean < cubic.mean,
            "trim {} vs cubic {}",
            trim.mean,
            cubic.mean
        );
    }

    #[test]
    fn trim_cuts_the_web_service_tail() {
        let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
        let t = web_service(&trim, 150, 5);
        let c = web_service(&CcKind::Cubic, 150, 5);
        assert!(
            t.under_25ms > c.under_25ms,
            "trim {} vs cubic {} under 25ms",
            t.under_25ms,
            c.under_25ms
        );
        assert!(t.under_25ms > 0.9, "paper: ~99% under 25 ms, got {}", t.under_25ms);
    }
}
