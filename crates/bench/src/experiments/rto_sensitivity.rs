//! Extension experiment: sensitivity to the minimum RTO.
//!
//! The paper varies RTO_min across its experiments (200 ms default, 20 ms
//! in Fig. 8, 1 ms in Fig. 9) without studying it directly; datacenter
//! incast work (Vasudevan et al.) showed RTO_min dominates TCP's incast
//! behaviour. This sweep quantifies how much of TCP-TRIM's advantage
//! survives when TCP gets an aggressively tuned timer — the answer being:
//! a small RTO_min shrinks TCP's penalty but cannot remove the drops and
//! retransmissions that TRIM avoids entirely.

use netsim::time::Dur;
use trim_harness::{Campaign, JobRecord};
use trim_tcp::CcKind;

use crate::experiments::concurrency;
use crate::num;
use crate::table::fmt_secs;
use crate::{Effort, Table};

const N_SPT: usize = 8;

fn record_for<'a>(records: &'a [JobRecord], key: &str) -> &'a JobRecord {
    records
        .iter()
        .find(|r| r.key == key)
        .unwrap_or_else(|| panic!("missing job '{key}'"))
}

/// Builds the RTO-sensitivity campaign: one job per (RTO_min, protocol)
/// on the 8-SPT/2-LPT cell. Every job shares the one cell's seed key,
/// so the sweep varies only the timer and the protocol — never the
/// workload.
pub fn campaign(effort: Effort) -> Campaign {
    let rtos_ms: Vec<u64> = effort.pick(vec![1, 20, 200], vec![1, 5, 10, 20, 50, 200]);

    let mut c = Campaign::new("rto_sensitivity", 0x870);
    for &ms in &rtos_ms {
        for proto in ["tcp", "trim"] {
            c.table_job_seeded(
                format!("rto{ms}_{proto}"),
                "cell",
                &[
                    ("rto_min_ms", ms.to_string()),
                    ("protocol", proto.to_string()),
                ],
                move |seed| {
                    let cc = if proto == "trim" {
                        CcKind::trim_with_capacity(1_000_000_000, 1460)
                    } else {
                        CcKind::Reno
                    };
                    let cell = concurrency::run_cell_with_rto_seeded(
                        &cc,
                        N_SPT,
                        2,
                        Dur::from_millis(ms),
                        seed,
                    );
                    let mut t = Table::new("run", &["act", "timeouts"]);
                    t.row(&[num(cell.spt.mean), cell.timeouts.to_string()]);
                    t
                },
            );
        }
    }
    c.reduce(move |records| {
        let mut t = Table::new(
            "Extension — SPT ACT vs RTO_min (8 SPTs + 2 LPTs)",
            &[
                "rto_min_ms",
                "tcp_act",
                "trim_act",
                "tcp_timeouts",
                "trim_timeouts",
            ],
        );
        for &ms in &rtos_ms {
            let tcp = record_for(records, &format!("rto{ms}_tcp")).only();
            let trim = record_for(records, &format!("rto{ms}_trim")).only();
            t.row(&[
                format!("{ms}"),
                fmt_secs(tcp.f64_at(0, 0)),
                fmt_secs(trim.f64_at(0, 0)),
                tcp.cell(0, 1).to_string(),
                trim.cell(0, 1).to_string(),
            ]);
        }
        vec![("ext_rto_sensitivity".to_string(), t)]
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_rto_helps_tcp_but_trim_still_wins() {
        let tcp_1ms = concurrency::run_cell_with_rto(&CcKind::Reno, 8, 2, Dur::from_millis(1));
        let tcp_200ms = concurrency::run_cell_with_rto(&CcKind::Reno, 8, 2, Dur::from_millis(200));
        let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
        let trim_1ms = concurrency::run_cell_with_rto(&trim, 8, 2, Dur::from_millis(1));
        // An aggressive timer slashes TCP's penalty...
        assert!(
            tcp_1ms.spt.mean < 0.3 * tcp_200ms.spt.mean,
            "1ms {} vs 200ms {}",
            tcp_1ms.spt.mean,
            tcp_200ms.spt.mean
        );
        // ...but TRIM needs no retransmissions at all.
        assert!(
            trim_1ms.spt.mean <= tcp_1ms.spt.mean * 1.5,
            "trim {} vs tcp-1ms {}",
            trim_1ms.spt.mean,
            tcp_1ms.spt.mean
        );
        assert_eq!(trim_1ms.timeouts, 0);
    }
}
