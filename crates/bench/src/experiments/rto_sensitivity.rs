//! Extension experiment: sensitivity to the minimum RTO.
//!
//! The paper varies RTO_min across its experiments (200 ms default, 20 ms
//! in Fig. 8, 1 ms in Fig. 9) without studying it directly; datacenter
//! incast work (Vasudevan et al.) showed RTO_min dominates TCP's incast
//! behaviour. This sweep quantifies how much of TCP-TRIM's advantage
//! survives when TCP gets an aggressively tuned timer — the answer being:
//! a small RTO_min shrinks TCP's penalty but cannot remove the drops and
//! retransmissions that TRIM avoids entirely.

use netsim::time::Dur;
use trim_tcp::CcKind;

use crate::experiments::concurrency;
use crate::table::fmt_secs;
use crate::{parallel_map, results_dir, Effort, Table};

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    let rtos_ms: Vec<u64> = effort.pick(vec![1, 20, 200], vec![1, 5, 10, 20, 50, 200]);
    let n_spt = 8;

    let jobs: Vec<(u64, bool)> = rtos_ms
        .iter()
        .flat_map(|&ms| [(ms, false), (ms, true)])
        .collect();
    let results = parallel_map(jobs, |(ms, is_trim)| {
        let cc = if is_trim {
            CcKind::trim_with_capacity(1_000_000_000, 1460)
        } else {
            CcKind::Reno
        };
        concurrency::run_cell_with_rto(&cc, n_spt, 2, Dur::from_millis(ms))
    });

    let mut t = Table::new(
        "Extension — SPT ACT vs RTO_min (8 SPTs + 2 LPTs)",
        &["rto_min_ms", "tcp_act", "trim_act", "tcp_timeouts", "trim_timeouts"],
    );
    for (i, &ms) in rtos_ms.iter().enumerate() {
        let tcp = &results[i * 2];
        let trim = &results[i * 2 + 1];
        t.row(&[
            format!("{ms}"),
            fmt_secs(tcp.spt.mean),
            fmt_secs(trim.spt.mean),
            format!("{}", tcp.timeouts),
            format!("{}", trim.timeouts),
        ]);
    }
    let _ = t.write_csv(&results_dir(), "ext_rto_sensitivity");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_rto_helps_tcp_but_trim_still_wins() {
        let tcp_1ms =
            concurrency::run_cell_with_rto(&CcKind::Reno, 8, 2, Dur::from_millis(1));
        let tcp_200ms =
            concurrency::run_cell_with_rto(&CcKind::Reno, 8, 2, Dur::from_millis(200));
        let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
        let trim_1ms = concurrency::run_cell_with_rto(&trim, 8, 2, Dur::from_millis(1));
        // An aggressive timer slashes TCP's penalty...
        assert!(
            tcp_1ms.spt.mean < 0.3 * tcp_200ms.spt.mean,
            "1ms {} vs 200ms {}",
            tcp_1ms.spt.mean,
            tcp_200ms.spt.mean
        );
        // ...but TRIM needs no retransmissions at all.
        assert!(
            trim_1ms.spt.mean <= tcp_1ms.spt.mean * 1.5,
            "trim {} vs tcp-1ms {}",
            trim_1ms.spt.mean,
            tcp_1ms.spt.mean
        );
        assert_eq!(trim_1ms.timeouts, 0);
    }
}
