//! Section III.B — the guideline for choosing K, analytically and
//! validated against simulation.
//!
//! The analytical table sweeps base RTT and capacity through Eq. 17–22;
//! the validation runs synchronized LPTs with K at the guideline and
//! confirms near-full utilization (the claim Eq. 22 exists to guarantee,
//! echoed by Fig. 9(d)).
//!
//! All three tables are deterministic (the model is closed-form and the
//! validation scenario has no random workload), so the campaign jobs
//! ignore their derived seeds.

use trim_core::kmodel::{f_of_n, k_lower_bound_ns, n_star, steady_state};
use trim_core::TrimConfig;
use trim_tcp::{CcKind, TcpConfig, TcpHost};
use trim_workload::http::lpt;
use trim_workload::scenario::ScenarioBuilder;

use netsim::time::{Dur, SimTime};
use trim_harness::table::fmt_f64;
use trim_harness::{Campaign, JobRecord};

use crate::num;
use crate::{Effort, Table};

/// Packets per second on a 1 Gbps link with 1460-byte segments.
fn c_1g() -> f64 {
    1e9 / (1460.0 * 8.0)
}

fn guideline_table() -> Table {
    let c = c_1g();
    let mut guideline = Table::new(
        "Eq. 22 — K guideline sweep (C = 1 Gbps / 1460 B)",
        &[
            "base_rtt_us",
            "n_star",
            "f_max_us",
            "k_us",
            "target_queue_pkts",
        ],
    );
    for d_us in [50u64, 100, 200, 500, 1000] {
        let d = d_us * 1000;
        let ns = n_star(c, d);
        let k = k_lower_bound_ns(c, d);
        let f_max = if ns >= 1.0 { f_of_n(ns, c, d) } else { 0.0 };
        let st = steady_state(c, d, k.max(d), 5);
        guideline.row(&[
            format!("{d_us}"),
            fmt_f64(ns),
            fmt_f64(f_max / 1000.0),
            fmt_f64(k as f64 / 1000.0),
            fmt_f64(st.target_queue),
        ]);
    }
    guideline
}

fn steady_state_table() -> Table {
    let c = c_1g();
    let mut steady = Table::new(
        "Eq. 4-11 — steady state at the guideline K (D = 200us)",
        &[
            "n",
            "window_pkts",
            "qmax_pkts",
            "decrement_pkts",
            "full_util",
        ],
    );
    let d = 200_000;
    let k = k_lower_bound_ns(c, d);
    for n in [1u32, 2, 5, 10, 20, 50, 100] {
        let st = steady_state(c, d, k, n);
        steady.row(&[
            format!("{n}"),
            fmt_f64(st.window),
            fmt_f64(st.max_queue),
            fmt_f64(st.total_decrement),
            format!("{}", st.full_utilization),
        ]);
    }
    steady
}

fn record_for<'a>(records: &'a [JobRecord], key: &str) -> &'a JobRecord {
    records
        .iter()
        .find(|r| r.key == key)
        .unwrap_or_else(|| panic!("missing job '{key}'"))
}

/// Builds the K-model campaign: one analytic job for the two model
/// tables plus one validation job per LPT count (guideline K versus a
/// deliberately tiny K that starves the link).
pub fn campaign(_effort: Effort) -> Campaign {
    let counts = [2usize, 5, 10];

    let mut c = Campaign::new("kmodel", 0x4B);
    c.job("analytic", &[], |_seed| {
        vec![
            ("guideline".to_string(), guideline_table()),
            ("steady_state".to_string(), steady_state_table()),
        ]
    });
    for &n in &counts {
        c.table_job(
            format!("validation_n{n}"),
            &[("n_lpts", n.to_string())],
            move |_seed| {
                let mut t = Table::new("goodput", &["guideline_mbps", "tiny_k_mbps"]);
                t.row(&[
                    num(measure_goodput(n, None)),
                    // K ~ 1us: back-off on every ACK round.
                    num(measure_goodput(n, Some(1_000))),
                ]);
                t
            },
        );
    }
    c.reduce(move |records| {
        let analytic = record_for(records, "analytic");
        let mut validation = Table::new(
            "Validation — goodput with guideline K vs K = min_RTT",
            &["n", "guideline_mbps", "tiny_k_mbps"],
        );
        for &n in &counts {
            let run = record_for(records, &format!("validation_n{n}")).only();
            validation.row(&[
                format!("{n}"),
                fmt_f64(run.f64_at(0, 0)),
                fmt_f64(run.f64_at(0, 1)),
            ]);
        }
        vec![
            (
                "kmodel_guideline".to_string(),
                analytic
                    .table("guideline")
                    .clone()
                    .with_title("Eq. 22 — K guideline sweep (C = 1 Gbps / 1460 B)"),
            ),
            (
                "kmodel_steady_state".to_string(),
                analytic
                    .table("steady_state")
                    .clone()
                    .with_title("Eq. 4-11 — steady state at the guideline K (D = 200us)"),
            ),
            ("kmodel_validation".to_string(), validation),
        ]
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

/// Goodput (Mbps) of `n` TRIM LPTs over a 1 Gbps bottleneck for 0.8 s,
/// with K from the guideline or overridden.
fn measure_goodput(n: usize, k_override_ns: Option<u64>) -> f64 {
    let mut cfg = TrimConfig::default().with_capacity(1_000_000_000, 1460);
    cfg.k_override_ns = k_override_ns;
    let mut sc = ScenarioBuilder::many_to_one(n)
        .congestion_control(CcKind::Trim(cfg))
        .tcp_config(TcpConfig::default().with_min_rto(Dur::from_millis(10)))
        .build();
    for s in 0..n {
        sc.send_train(s, lpt(0.1, 400_000_000));
    }
    for &node in &sc.net().senders.clone() {
        sc.sim_mut()
            .host_mut::<TcpHost>(node)
            .schedule_stop(0, SimTime::from_secs_f64(0.9));
    }
    let report = sc.run_for_secs(1.0);
    let bytes: u64 = report.senders.iter().map(|s| s.goodput_bytes).sum();
    bytes as f64 * 8.0 / 0.8 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guideline_k_sustains_high_utilization() {
        let good = measure_goodput(5, None);
        assert!(good > 900.0, "guideline K goodput {good} Mbps");
    }

    #[test]
    fn tiny_k_starves_the_link() {
        let good = measure_goodput(5, None);
        let tiny = measure_goodput(5, Some(1_000));
        assert!(
            tiny < good,
            "K below the guideline must lose throughput: {tiny} vs {good}"
        );
    }
}
