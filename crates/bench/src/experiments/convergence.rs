//! Fig. 10 — fairness and convergence.
//!
//! Six hosts share one switch: the receiver hangs off a 1 Gbps / 50 µs
//! link, the five senders off 1.1 Gbps links. LPTs start at 0.1 s with
//! 2 s spacing, then stop one by one from 12.1 s with the same spacing.
//! The paper shows TRIM's flows converging quickly to their fair share
//! while TCP's shares swing widely.
//!
//! The scenario is deterministic (fixed sizes and start times), so the
//! campaign's jobs ignore their derived seeds.

use netsim::prelude::*;
use netsim::time::{Dur, SimTime};
use netsim::topology::LinkSpec;
use trim_harness::table::fmt_f64;
use trim_harness::{Artifacts, Campaign, JobRecord};
use trim_tcp::{CcKind, TcpHost};
use trim_workload::scenario::ScenarioBuilder;

use crate::{Effort, Table};

const N: usize = 5;

/// Per-flow throughput series from one convergence run, in 500 ms bins.
pub fn run_once(cc: &CcKind) -> Vec<Vec<(SimTime, f64)>> {
    let sender_link = LinkSpec::new(
        Bandwidth::bps(1_100_000_000),
        Dur::from_micros(50),
        QueueConfig::drop_tail(100),
    );
    let mut sc = ScenarioBuilder::many_to_one(N)
        .congestion_control(cc.clone())
        .sender_links(sender_link)
        .throughput_bin(Dur::from_millis(500))
        .build();
    for i in 0..N {
        let start = 0.1 + 2.0 * i as f64;
        let stop = 12.1 + 2.0 * i as f64;
        // The paper sets all 5 connections up before any data flows; a
        // one-packet exchange on the idle network gives each connection
        // its true base RTT (otherwise late arrivals measure min_RTT
        // against the standing queue and delay-based control turns
        // unfair).
        sc.send_train(
            i,
            trim_workload::TrainSpec::at_secs(0.001 + 0.0002 * i as f64, 1),
        );
        sc.send_train(i, trim_workload::TrainSpec::at_secs(start, 4_000_000_000));
        let node = sc.net().senders[i];
        sc.sim_mut()
            .host_mut::<TcpHost>(node)
            .schedule_stop(0, SimTime::from_secs_f64(stop));
    }
    let report = sc.run_for_secs(22.0);
    report
        .senders
        .iter()
        .map(|s| s.throughput.as_ref().expect("metered").mbps_series())
        .collect()
}

/// Jain's fairness index over the active flows' throughputs.
pub fn jain_index(shares: &[f64]) -> f64 {
    let n = shares.len() as f64;
    let sum: f64 = shares.iter().sum();
    let sum_sq: f64 = shares.iter().map(|x| x * x).sum();
    // trim-lint: allow(no-float-eq, reason = "exact-zero guard before division; any nonzero sum of squares is fine")
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n * sum_sq)
}

fn value_at(series: &[(SimTime, f64)], t: f64) -> f64 {
    let target = SimTime::from_secs_f64(t);
    let i = series.partition_point(|&(at, _)| at <= target);
    if i == 0 {
        return 0.0;
    }
    // A flow that stopped has no later bins: beyond its last bin the
    // throughput is zero, not the stale final value.
    let (bin_start, v) = series[i - 1];
    if target.saturating_since(bin_start) > Dur::from_millis(500) {
        0.0
    } else {
        v
    }
}

/// One protocol's job: the sampled throughput grid plus its per-phase
/// fairness column.
fn protocol_job(cc: &CcKind) -> Artifacts {
    let series = run_once(cc);

    let mut grid = Table::new("grid", &["t", "c1", "c2", "c3", "c4", "c5"]);
    let mut ts = 1.0;
    while ts < 22.0 {
        let mut row = vec![format!("{ts:.1}")];
        for s in &series {
            row.push(fmt_f64(value_at(s, ts)));
        }
        grid.row(&row);
        ts += 1.0;
    }

    // Fairness index at the midpoint of each arrival/departure phase.
    let mut fairness = Table::new("fairness", &["t", "active", "jain"]);
    for phase in 0..9 {
        let t = 1.1 + 2.0 * phase as f64; // midpoints: 1.1, 3.1, ..., 17.1
        let (lo, hi) = if t < 12.1 {
            (0usize, (phase + 1).min(N))
        } else {
            (phase + 1 - 5, N)
        };
        let active = hi - lo;
        if active == 0 {
            continue;
        }
        let shares: Vec<f64> = (lo..hi).map(|i| value_at(&series[i], t)).collect();
        fairness.row(&[
            format!("{t:.1}"),
            format!("{active}"),
            fmt_f64(jain_index(&shares)),
        ]);
    }

    vec![
        ("grid".to_string(), grid),
        ("fairness".to_string(), fairness),
    ]
}

fn record_for<'a>(records: &'a [JobRecord], key: &str) -> &'a JobRecord {
    records
        .iter()
        .find(|r| r.key == key)
        .unwrap_or_else(|| panic!("missing job '{key}'"))
}

/// Builds the convergence campaign: one job per protocol, reduced into
/// the two throughput grids and the combined fairness table.
pub fn campaign(_effort: Effort) -> Campaign {
    let mut c = Campaign::new("convergence", 0xF1A);
    for proto in ["tcp", "trim"] {
        c.job(proto, &[("protocol", proto.to_string())], move |_seed| {
            let cc = if proto == "trim" {
                CcKind::trim_with_capacity(1_000_000_000, 1460)
            } else {
                CcKind::Reno
            };
            protocol_job(&cc)
        });
    }
    c.reduce(|records| {
        let mut out: Artifacts = Vec::new();
        for proto in ["tcp", "trim"] {
            out.push((
                format!("fig10_{proto}"),
                record_for(records, proto)
                    .table("grid")
                    .clone()
                    .with_title(format!(
                        "Fig. 10 ({proto}) — per-connection throughput (Mbps)"
                    )),
            ));
        }
        let tcp_fair = record_for(records, "tcp").table("fairness");
        let trim_fair = record_for(records, "trim").table("fairness");
        let mut fairness = Table::new(
            "Fig. 10 — Jain fairness of active flows (sampled mid-phase)",
            &["t", "active", "tcp_jain", "trim_jain"],
        );
        for (tcp_row, trim_row) in tcp_fair.rows().iter().zip(trim_fair.rows()) {
            fairness.row(&[
                tcp_row[0].clone(),
                tcp_row[1].clone(),
                tcp_row[2].clone(),
                trim_row[2].clone(),
            ]);
        }
        out.push(("fig10_fairness".to_string(), fairness));
        out
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_basics() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn trim_converges_to_fair_share() {
        let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
        let series = run_once(&trim);
        // At t = 11 s all five flows are active; fair share is ~200 Mbps.
        let shares: Vec<f64> = series.iter().map(|s| value_at(s, 11.0)).collect();
        let j = jain_index(&shares);
        assert!(j > 0.95, "TRIM fairness {j}, shares {shares:?}");
        let total: f64 = shares.iter().sum();
        assert!(total > 850.0, "link utilized: {total} Mbps");
        // Between the fourth and fifth departures (18.1 s - 20.1 s) flow 5
        // is alone and should ramp to the full link.
        let last = value_at(&series[4], 19.5);
        assert!(last > 700.0, "last flow ramps to the full link: {last}");
    }
}
