//! Fig. 10 — fairness and convergence.
//!
//! Six hosts share one switch: the receiver hangs off a 1 Gbps / 50 µs
//! link, the five senders off 1.1 Gbps links. LPTs start at 0.1 s with
//! 2 s spacing, then stop one by one from 12.1 s with the same spacing.
//! The paper shows TRIM's flows converging quickly to their fair share
//! while TCP's shares swing widely.

use netsim::prelude::*;
use netsim::time::{Dur, SimTime};
use netsim::topology::LinkSpec;
use trim_tcp::{CcKind, TcpHost};
use trim_workload::scenario::ScenarioBuilder;

use crate::{results_dir, Effort, Table};

const N: usize = 5;

/// Per-flow throughput series from one convergence run, in 500 ms bins.
pub fn run_once(cc: &CcKind) -> Vec<Vec<(SimTime, f64)>> {
    let sender_link = LinkSpec::new(
        Bandwidth::bps(1_100_000_000),
        Dur::from_micros(50),
        QueueConfig::drop_tail(100),
    );
    let mut sc = ScenarioBuilder::many_to_one(N)
        .congestion_control(cc.clone())
        .sender_links(sender_link)
        .throughput_bin(Dur::from_millis(500))
        .build();
    for i in 0..N {
        let start = 0.1 + 2.0 * i as f64;
        let stop = 12.1 + 2.0 * i as f64;
        // The paper sets all 5 connections up before any data flows; a
        // one-packet exchange on the idle network gives each connection
        // its true base RTT (otherwise late arrivals measure min_RTT
        // against the standing queue and delay-based control turns
        // unfair).
        sc.send_train(i, trim_workload::TrainSpec::at_secs(0.001 + 0.0002 * i as f64, 1));
        sc.send_train(i, trim_workload::TrainSpec::at_secs(start, 4_000_000_000));
        let node = sc.net().senders[i];
        sc.sim_mut()
            .host_mut::<TcpHost>(node)
            .schedule_stop(0, SimTime::from_secs_f64(stop));
    }
    let report = sc.run_for_secs(22.0);
    report
        .senders
        .iter()
        .map(|s| s.throughput.as_ref().expect("metered").mbps_series())
        .collect()
}

/// Jain's fairness index over the active flows' throughputs.
pub fn jain_index(shares: &[f64]) -> f64 {
    let n = shares.len() as f64;
    let sum: f64 = shares.iter().sum();
    let sum_sq: f64 = shares.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n * sum_sq)
}

fn value_at(series: &[(SimTime, f64)], t: f64) -> f64 {
    let target = SimTime::from_secs_f64(t);
    let i = series.partition_point(|&(at, _)| at <= target);
    if i == 0 {
        return 0.0;
    }
    // A flow that stopped has no later bins: beyond its last bin the
    // throughput is zero, not the stale final value.
    let (bin_start, v) = series[i - 1];
    if target.saturating_since(bin_start) > Dur::from_millis(500) {
        0.0
    } else {
        v
    }
}

/// Runs the experiment and returns its tables.
pub fn run(_effort: Effort) -> Vec<Table> {
    let mut tables = Vec::new();
    let mut fairness = Table::new(
        "Fig. 10 — Jain fairness of active flows (sampled mid-phase)",
        &["t", "active", "tcp_jain", "trim_jain"],
    );
    let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
    let tcp_series = run_once(&CcKind::Reno);
    let trim_series = run_once(&trim);

    for (name, series) in [("tcp", &tcp_series), ("trim", &trim_series)] {
        let mut t = Table::new(
            format!("Fig. 10 ({name}) — per-connection throughput (Mbps)"),
            &["t", "c1", "c2", "c3", "c4", "c5"],
        );
        let mut ts = 1.0;
        while ts < 22.0 {
            let mut row = vec![format!("{ts:.1}")];
            for s in series {
                row.push(format!("{:.0}", value_at(s, ts)));
            }
            t.row(&row);
            ts += 1.0;
        }
        let _ = t.write_csv(&results_dir(), &format!("fig10_{name}"));
        tables.push(t);
    }

    // Fairness index at the midpoint of each arrival/departure phase.
    for phase in 0..9 {
        let t = 1.1 + 2.0 * phase as f64; // midpoints: 1.1, 3.1, ..., 17.1
        let (lo, hi) = if t < 12.1 {
            (0usize, (phase + 1).min(N))
        } else {
            (phase + 1 - 5, N)
        };
        let active = hi - lo;
        if active == 0 {
            continue;
        }
        let tcp_shares: Vec<f64> = (lo..hi).map(|i| value_at(&tcp_series[i], t)).collect();
        let trim_shares: Vec<f64> = (lo..hi).map(|i| value_at(&trim_series[i], t)).collect();
        fairness.row(&[
            format!("{t:.1}"),
            format!("{active}"),
            format!("{:.3}", jain_index(&tcp_shares)),
            format!("{:.3}", jain_index(&trim_shares)),
        ]);
    }
    let _ = fairness.write_csv(&results_dir(), "fig10_fairness");
    tables.push(fairness);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_basics() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn trim_converges_to_fair_share() {
        let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
        let series = run_once(&trim);
        // At t = 11 s all five flows are active; fair share is ~200 Mbps.
        let shares: Vec<f64> = series.iter().map(|s| value_at(s, 11.0)).collect();
        let j = jain_index(&shares);
        assert!(j > 0.95, "TRIM fairness {j}, shares {shares:?}");
        let total: f64 = shares.iter().sum();
        assert!(total > 850.0, "link utilized: {total} Mbps");
        // Between the fourth and fifth departures (18.1 s - 20.1 s) flow 5
        // is alone and should ramp to the full link.
        let last = value_at(&series[4], 19.5);
        assert!(last > 700.0, "last flow ramps to the full link: {last}");
    }
}
