//! Fig. 8 — large-scale HTTP concurrency on the two-tier topology.
//!
//! 5–25 edge switches with 42 servers each (210–1050 servers total) feed
//! one front-end through a fabric switch. Per switch, 2 servers run LPTs
//! throughout; the rest each transfer an SPT within a 0.5 s window, sized
//! from the Fig. 2(a) CDF, with uniform or exponential start times. The
//! metric is the ACT of the SPTs; the paper reports TCP-TRIM cutting
//! TCP's ACT by up to 80% (still ~50% above 840 servers).

use netsim::prelude::*;
use netsim::time::SimTime;
use netsim::topology::{self, LinkSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use trim_harness::Campaign;
use trim_tcp::{CcKind, Segment, TcpConfig, TcpHost};
use trim_workload::distributions::{exponential, pt_size_bytes};
use trim_workload::http::{large_scale_workload, SptSpread};
use trim_workload::scenario::{schedule_train, wire_flow};
use trim_workload::Summary;

use crate::num;
use crate::table::{fmt_pct, fmt_secs};
use crate::{Effort, Table};

const SERVERS_PER_SWITCH: usize = 42;
const LPTS_PER_SWITCH: usize = 2;

/// Warm-up responses per SPT server: the paper's servers hold persistent
/// HTTP connections, so the measured SPT arrives with a window inherited
/// from earlier response traffic. The warm-up is light and staggered so
/// it does not itself overload the fabric at 1050 servers.
const WARMUP_RESPONSES: u64 = 5;

/// One run: returns the SPT completion-time summary.
pub fn run_once(cc: &CcKind, n_switches: usize, spread: SptSpread, seed: u64) -> Summary {
    let mut sim: Simulator<Segment> = Simulator::new();
    let server_link = LinkSpec::new(
        Bandwidth::gbps(1),
        Dur::from_micros(20),
        QueueConfig::drop_tail(100),
    );
    // The 10 Gbps front-end port gets a buffer consistent with the
    // fat-tree experiment's 350 KB (the paper leaves it unspecified
    // here); 100 packets at 10 Gbps would drain in 120 us, far below
    // commodity 10 GbE switch buffering.
    let front_end_link = LinkSpec::new(
        Bandwidth::gbps(10),
        Dur::from_micros(10),
        QueueConfig::drop_tail(250),
    );
    let net = topology::two_tier(
        &mut sim,
        n_switches,
        SERVERS_PER_SWITCH,
        server_link,
        server_link,
        front_end_link,
        |_| Box::new(TcpHost::new()),
    );
    // The paper alleviates LPT throughput collapse with a 20 ms RTO.
    let tcp = TcpConfig::default().with_min_rto(Dur::from_millis(20));
    let mut rng = StdRng::seed_from_u64(seed);
    let size_dist = pt_size_bytes();
    let mut flow = 0u64;
    let mut spt_nodes = Vec::new();
    for group in &net.servers {
        for (i, &server) in group.iter().enumerate() {
            let idx = wire_flow(&mut sim, FlowId(flow), server, net.front_end, tcp, cc);
            flow += 1;
            if i < LPTS_PER_SWITCH {
                // LPTs run throughout the test.
                schedule_train(
                    &mut sim,
                    server,
                    idx,
                    trim_workload::TrainSpec::at_secs(0.0, 200_000_000),
                );
            } else {
                // Warm-up phase: grow the persistent connection's window.
                let mut t = 0.002 + rng.random_range(0.0..0.1);
                for _ in 0..WARMUP_RESPONSES {
                    schedule_train(
                        &mut sim,
                        server,
                        idx,
                        trim_workload::TrainSpec::at_secs(t, rng.random_range(2_000..=10_000)),
                    );
                    t += exponential(&mut rng, 0.003);
                }
                for spec in large_scale_workload(&mut rng, &size_dist, 1, 0.15, 0.5, spread) {
                    schedule_train(&mut sim, server, idx, spec);
                }
                spt_nodes.push(server);
            }
        }
    }
    sim.run_until(SimTime::from_secs_f64(2.5));
    let times: Vec<Dur> = spt_nodes
        .iter()
        .flat_map(|&n| {
            sim.host::<TcpHost>(n)
                .connection(0)
                .completed_trains()
                .iter()
                .filter(|t| t.id == WARMUP_RESPONSES)
                .map(|t| t.completion_time())
        })
        .collect();
    Summary::of(&times)
}

fn spread_label(spread: SptSpread) -> &'static str {
    match spread {
        SptSpread::Uniform => "uniform",
        SptSpread::Exponential => "exponential",
    }
}

/// Builds the large-scale campaign: one job per (spread, switch count,
/// protocol, repetition), reduced into the two Fig. 8 tables.
pub fn campaign(effort: Effort) -> Campaign {
    let switch_counts: Vec<usize> = effort.pick(vec![5, 15, 25], vec![5, 10, 15, 20, 25]);
    let reps = effort.pick(2, 10);

    let mut c = Campaign::new("large_scale", 0xF18);
    for spread in [SptSpread::Uniform, SptSpread::Exponential] {
        let label = spread_label(spread);
        for &s in &switch_counts {
            for proto in ["tcp", "trim"] {
                for r in 0..reps {
                    // Protocols share the (spread, scale, rep) seed key:
                    // the legacy sweep also paired the workloads.
                    c.table_job_seeded(
                        format!("{label}_s{s}_{proto}_r{r}"),
                        format!("{label}_s{s}_r{r}"),
                        &[
                            ("spread", label.to_string()),
                            ("switches", s.to_string()),
                            ("protocol", proto.to_string()),
                            ("rep", r.to_string()),
                        ],
                        move |seed| {
                            let cc = if proto == "trim" {
                                CcKind::trim_with_capacity(10_000_000_000, 1460)
                            } else {
                                CcKind::Reno
                            };
                            let summary = run_once(&cc, s, spread, seed);
                            let mut t = Table::new("run", &["mean", "count"]);
                            t.row(&[num(summary.mean), summary.count.to_string()]);
                            t
                        },
                    );
                }
            }
        }
    }
    c.reduce(move |records| {
        let mut out = Vec::new();
        for spread in [SptSpread::Uniform, SptSpread::Exponential] {
            let label = spread_label(spread);
            let mut t = Table::new(
                format!("Fig. 8(b) — ACT of SPTs, {label} SPT start times"),
                &["servers", "tcp_act", "trim_act", "reduction"],
            );
            for &s in &switch_counts {
                let mean_of = |proto: &str| -> f64 {
                    let sum: f64 = (0..reps)
                        .map(|r| {
                            let key = format!("{label}_s{s}_{proto}_r{r}");
                            records
                                .iter()
                                .find(|rec| rec.key == key)
                                .unwrap_or_else(|| panic!("missing job '{key}'"))
                                .only()
                                .f64_at(0, 0)
                        })
                        .sum();
                    sum / reps as f64
                };
                let tcp_act = mean_of("tcp");
                let trim_act = mean_of("trim");
                t.row(&[
                    format!("{}", s * SERVERS_PER_SWITCH),
                    fmt_secs(tcp_act),
                    fmt_secs(trim_act),
                    fmt_pct(1.0 - trim_act / tcp_act),
                ]);
            }
            out.push((format!("fig8_{label}"), t));
        }
        out
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

/// Extension beyond Fig. 8: the engine-scale incast sweep
/// (`large_scale_100k`), one job per (flow count, protocol) on the
/// star topology from `trim_workload::scale`. Quick effort covers 1k
/// and 10k flows; `--full` adds the 100k-flow point. Registered under
/// its own id so the committed Fig. 8 CSVs never change.
pub fn campaign_100k(effort: Effort) -> Campaign {
    let flow_counts: Vec<usize> = effort.pick(vec![1_000, 10_000], vec![1_000, 10_000, 100_000]);
    let mut c = Campaign::new("large_scale_100k", 0x5CA1E);
    for &flows in &flow_counts {
        for proto in ["tcp", "trim"] {
            c.table_job(
                format!("f{flows}_{proto}"),
                &[
                    ("flows", flows.to_string()),
                    ("protocol", proto.to_string()),
                ],
                move |seed| {
                    let mut cfg = trim_workload::scale::ScaleConfig::with_flows(flows);
                    cfg.seed = seed;
                    cfg.cc = if proto == "trim" {
                        CcKind::trim_with_capacity(1_000_000_000, 1460)
                    } else {
                        CcKind::Reno
                    };
                    let r = trim_workload::scale::run_scale_incast(&cfg);
                    let mut t = Table::new(
                        "run",
                        &[
                            "completed",
                            "delivered",
                            "dropped",
                            "timeouts",
                            "events",
                            "mean_act",
                        ],
                    );
                    t.row(&[
                        r.completed.to_string(),
                        r.audit.delivered.to_string(),
                        r.audit.dropped.to_string(),
                        r.timeouts.to_string(),
                        r.events.to_string(),
                        num(r.act.mean),
                    ]);
                    t
                },
            );
        }
    }
    let keys: Vec<(usize, &'static str)> = flow_counts
        .iter()
        .flat_map(|&f| [(f, "tcp"), (f, "trim")])
        .collect();
    c.reduce(move |records| {
        let mut t = Table::new(
            "Ext — engine-scale incast (flows, completion, loss, timeouts)",
            &[
                "flows",
                "protocol",
                "completed",
                "delivered",
                "dropped",
                "timeouts",
                "mean_act",
            ],
        );
        for (flows, proto) in keys {
            let key = format!("f{flows}_{proto}");
            let rec = records
                .iter()
                .find(|r| r.key == key)
                .unwrap_or_else(|| panic!("missing job '{key}'"));
            let row = rec.only();
            t.row(&[
                flows.to_string(),
                proto.to_string(),
                row.cell(0, 0).to_string(),
                row.cell(0, 1).to_string(),
                row.cell(0, 2).to_string(),
                row.cell(0, 3).to_string(),
                row.cell(0, 5).to_string(),
            ]);
        }
        vec![("ext_scale_incast".to_string(), t)]
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trim_cuts_act_at_smallest_scale() {
        let trim = CcKind::trim_with_capacity(10_000_000_000, 1460);
        let tcp = run_once(&CcKind::Reno, 5, SptSpread::Uniform, 7);
        let trm = run_once(&trim, 5, SptSpread::Uniform, 7);
        assert_eq!(tcp.count, 5 * (SERVERS_PER_SWITCH - LPTS_PER_SWITCH));
        assert_eq!(trm.count, tcp.count, "every SPT completes");
        // Paper: up to 80% reduction at small scale.
        assert!(
            trm.mean < 0.5 * tcp.mean,
            "TRIM {} vs TCP {}",
            trm.mean,
            tcp.mean
        );
    }

    #[test]
    fn campaign_100k_reduces_to_one_table_per_flow_count() {
        // Tiny stand-in sweep: execute the quick campaign's structure
        // against a scratch store via the engine, checking key layout
        // and the reduce shape without paying for 10k-flow runs here.
        let c = campaign_100k(Effort::Quick);
        assert_eq!(c.id(), "large_scale_100k");
        let keys: Vec<_> = c.job_keys();
        assert_eq!(
            keys,
            ["f1000_tcp", "f1000_trim", "f10000_tcp", "f10000_trim"]
        );
    }

    #[test]
    fn trim_still_wins_at_full_scale() {
        let trim = CcKind::trim_with_capacity(10_000_000_000, 1460);
        let tcp = run_once(&CcKind::Reno, 25, SptSpread::Exponential, 11);
        let trm = run_once(&trim, 25, SptSpread::Exponential, 11);
        assert_eq!(tcp.count, 25 * (SERVERS_PER_SWITCH - LPTS_PER_SWITCH));
        assert_eq!(trm.count, tcp.count, "every SPT completes");
        // Paper: still ~50% reduction above 840 servers.
        assert!(
            trm.mean < 0.7 * tcp.mean,
            "TRIM {} vs TCP {}",
            trm.mean,
            tcp.mean
        );
    }
}
