//! Ext — web-serving sessions with SLO reporting (`serve_slo`,
//! `serve_100k`) and the mean-field fast path (`serve_meanfield`).
//!
//! Three campaigns on top of `trim-serve`:
//!
//! - `serve_slo` — a small open-loop serving run (2,048 user sessions on
//!   a 4-pod fat-tree) under Reno and TRIM, reduced to the SLO table an
//!   operator would watch: p50/p99/p999 ARCT, goodput, session
//!   accounting, peak concurrency, last-hop queue occupancy. Small
//!   enough to double as the CI golden smoke at `--jobs 1` and `--jobs 8`.
//! - `serve_100k` — the same workload at 102,400 concurrent sessions
//!   (every session provably open at once: the think floor exceeds the
//!   arrival window), the paper's "highly concurrent" regime at packet
//!   level, with separate SLO and queue-occupancy artifacts.
//! - `serve_meanfield` — the fluid-model cross-validation table (packet
//!   vs fluid mean ARCT on every committed instance) plus a fleet-scale
//!   sweep to one million connections that only the fluid path can
//!   afford.
//!
//! Every campaign here ignores `--full`: the sweeps are fixed so the
//! committed goldens are byte-stable across effort levels.

use netsim::time::Dur;
use trim_core::fluid::{self, FluidCc, FluidClass, FluidConfig};
use trim_core::kmodel;
use trim_harness::Campaign;
use trim_serve::run::{run, ServeConfig, ServeReport};
use trim_serve::session::SessionModel;
use trim_serve::{cross_validate, instances};

use crate::num;
use crate::{Effort, Table};

/// Serving model shared by `serve_slo` and `serve_100k`: only the
/// session count and pacing differ.
fn model(seed: u64, sessions: usize, window_ms: u64, think_ms: u64) -> SessionModel {
    SessionModel {
        seed,
        sessions,
        arrival_window: Dur::from_millis(window_ms),
        requests: (2, 3),
        response_bytes: (2_000, 10_000),
        think_min: Dur::from_millis(think_ms),
        think_mean_excess: Dur::from_millis(think_ms.div_ceil(2)),
    }
}

fn serve_once(proto: &str, seed: u64, sessions: usize, window_ms: u64) -> ServeReport {
    // The think floor stays above the arrival window so every session
    // is still open when the last one arrives: peak concurrency equals
    // the session count by construction.
    let mut cfg = ServeConfig::new(model(seed, sessions, window_ms, window_ms + window_ms / 2));
    cfg.horizon_secs = 3.0;
    if proto == "trim" {
        cfg = cfg.trim();
    }
    run(&cfg)
}

const SLO_COLUMNS: &[&str] = &[
    "protocol",
    "sessions",
    "completed",
    "open_at_horizon",
    "peak_concurrent",
    "requests_completed",
    "arct_mean",
    "arct_p50",
    "arct_p99",
    "arct_p999",
    "goodput_mbps",
    "timeouts",
];

fn slo_row(proto: &str, r: &ServeReport) -> Vec<String> {
    vec![
        proto.to_string(),
        r.sessions_planned.to_string(),
        r.sessions_completed.to_string(),
        r.sessions_open_at_horizon.to_string(),
        r.peak_concurrent_sessions.to_string(),
        r.requests_completed.to_string(),
        num(r.arct.mean),
        num(r.arct.p50),
        num(r.arct.p99),
        num(r.arct.p999),
        num(r.goodput_mbps),
        r.timeouts.to_string(),
    ]
}

const QUEUE_COLUMNS: &[&str] = &[
    "protocol",
    "downlink_mean_occupancy",
    "downlink_max_occupancy",
    "downlink_dropped",
    "requests_in_flight",
    "events",
];

fn queue_row(proto: &str, r: &ServeReport) -> Vec<String> {
    vec![
        proto.to_string(),
        num(r.downlink_mean_occupancy),
        r.downlink_max_occupancy.to_string(),
        r.downlink_dropped.to_string(),
        r.requests_in_flight.to_string(),
        r.events_processed.to_string(),
    ]
}

fn serve_campaign(
    id: &'static str,
    campaign_seed: u64,
    sessions: usize,
    window_ms: u64,
    artifacts: (&'static str, Option<&'static str>),
) -> Campaign {
    let mut c = Campaign::new(id, campaign_seed);
    for proto in ["reno", "trim"] {
        // Protocols share the seed key: both serve the exact same
        // session arrivals, sizes and think times.
        c.table_job_seeded(
            proto,
            "workload",
            &[("protocol", proto.to_string())],
            move |seed| {
                let r = serve_once(proto, seed, sessions, window_ms);
                let headers = [SLO_COLUMNS, &QUEUE_COLUMNS[1..]].concat();
                let mut t = Table::new("run", &headers);
                let mut row = slo_row(proto, &r);
                row.extend(queue_row(proto, &r).into_iter().skip(1));
                t.row(&row);
                t
            },
        );
    }
    let (slo_name, queue_name) = artifacts;
    c.reduce(move |records| {
        let mut slo = Table::new("Ext — session SLO report (per protocol)", SLO_COLUMNS);
        let mut queue = Table::new(
            "Ext — last-hop queue occupancy (per protocol)",
            QUEUE_COLUMNS,
        );
        let mut out = Vec::new();
        for proto in ["reno", "trim"] {
            let rec = records
                .iter()
                .find(|r| r.key == proto)
                .unwrap_or_else(|| panic!("missing job '{proto}'"));
            let row = rec.only();
            let slo_cells: Vec<String> = (0..SLO_COLUMNS.len())
                .map(|i| row.cell(0, i).to_string())
                .collect();
            slo.row(&slo_cells);
            let queue_cells: Vec<String> = std::iter::once(proto.to_string())
                .chain(
                    (SLO_COLUMNS.len()..SLO_COLUMNS.len() + QUEUE_COLUMNS.len() - 1)
                        .map(|i| row.cell(0, i).to_string()),
                )
                .collect();
            queue.row(&queue_cells);
        }
        out.push((slo_name.to_string(), slo));
        if let Some(queue_name) = queue_name {
            out.push((queue_name.to_string(), queue));
        }
        out
    });
    c
}

/// The CI-sized serving campaign: 2,048 sessions, Reno vs TRIM, one
/// `ext_serve_slo` artifact. Effort-independent.
pub fn campaign(_effort: Effort) -> Campaign {
    serve_campaign(
        "serve_slo",
        0x005E_5510,
        2_048,
        100,
        ("ext_serve_slo", None),
    )
}

/// The highly-concurrent serving campaign: 102,400 sessions, all open
/// simultaneously at the peak, reduced to SLO and queue artifacts.
/// Effort-independent.
pub fn campaign_100k(_effort: Effort) -> Campaign {
    serve_campaign(
        "serve_100k",
        0x05E5_5100,
        102_400,
        400,
        ("ext_serve_100k_slo", Some("ext_serve_100k_queue")),
    )
}

/// Fluid-sweep population sizes: the last point is one million
/// concurrent connections — far beyond what the packet engine could
/// turn around in an experiment sweep.
const SWEEP_N: &[u64] = &[1_000, 10_000, 100_000, 1_000_000];

/// Fluid-side steady state for `n` connections at the canonical 1 Gbps
/// bottleneck, matching the integration regime of the core model tests:
/// coarse 1 ms Euler steps over a 60 s horizon (a million windows at the
/// floor of 2 need RTT ~ 2N/C ~ 23 s to balance), and a deep-buffered
/// bottleneck so that equilibrium can form instead of clipping every
/// large-N row at the same full buffer.
fn fluid_point(proto: &str, n: u64) -> fluid::FluidOutcome {
    let c = 1e9 / (1460.0 * 8.0);
    let d_ns = 200_000;
    let cc = match proto {
        "reno" => FluidCc::Reno,
        _ => FluidCc::Trim {
            k_ns: kmodel::k_lower_bound_ns(c, d_ns),
        },
    };
    fluid::integrate(&FluidConfig {
        capacity_pps: c,
        buffer_pkts: 5_000_000.0,
        classes: vec![FluidClass {
            n: n as f64,
            base_rtt_ns: d_ns,
            cc,
        }],
        dt_ns: 1_000_000,
        horizon_ns: 60_000_000_000,
        aqm: trim_core::fluid::FluidAqm::DropTail,
    })
}

/// The mean-field campaign: the packet-vs-fluid cross-validation table
/// plus the fleet-scale fluid sweep. Effort-independent.
pub fn campaign_meanfield(_effort: Effort) -> Campaign {
    let mut c = Campaign::new("serve_meanfield", 0x005E_55F1);
    c.table_job("crossval", &[], |_seed| {
        let mut t = Table::new(
            "run",
            &[
                "instance",
                "senders",
                "packet_arct",
                "fluid_arct",
                "rel_err",
            ],
        );
        for inst in instances() {
            let cv = cross_validate(&inst);
            t.row(&[
                cv.name.to_string(),
                cv.senders.to_string(),
                num(cv.packet_arct),
                num(cv.fluid_arct),
                num(cv.rel_err),
            ]);
        }
        t
    });
    c.table_job("sweep", &[], |_seed| {
        let mut t = Table::new(
            "run",
            &[
                "protocol",
                "connections",
                "mean_queue_pkts",
                "mean_rtt_s",
                "per_flow_rate_pps",
                "utilization",
                "arct_64kb",
            ],
        );
        for proto in ["reno", "trim"] {
            for &n in SWEEP_N {
                let out = fluid_point(proto, n);
                t.row(&[
                    proto.to_string(),
                    n.to_string(),
                    num(out.mean_queue),
                    num(out.mean_rtt_ns[0] / 1e9),
                    num(out.per_flow_rate_pps[0]),
                    num(out.utilization),
                    num(out.predicted_arct_ns(0, 45.0) / 1e9),
                ]);
            }
        }
        t
    });
    c.reduce(|records| {
        let take = |key: &str, title: &str| {
            let rec = records
                .iter()
                .find(|r| r.key == key)
                .unwrap_or_else(|| panic!("missing job '{key}'"));
            rec.only().clone().with_title(title)
        };
        vec![
            (
                "ext_serve_crossval".to_string(),
                take("crossval", "Ext — fluid vs packet mean ARCT (10% gate)"),
            ),
            (
                "ext_serve_sweep".to_string(),
                take("sweep", "Ext — fleet-scale fluid sweep to 1M connections"),
            ),
        ]
    });
    c
}

/// Runs the small serving experiment and returns its tables.
pub fn run_slo(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaigns_have_stable_structure() {
        let c = campaign(Effort::Quick);
        assert_eq!(c.id(), "serve_slo");
        assert_eq!(c.job_keys(), ["reno", "trim"]);
        let c = campaign_100k(Effort::Full);
        assert_eq!(c.id(), "serve_100k");
        assert_eq!(c.job_keys(), ["reno", "trim"]);
        let c = campaign_meanfield(Effort::Quick);
        assert_eq!(c.id(), "serve_meanfield");
        assert_eq!(c.job_keys(), ["crossval", "sweep"]);
    }

    #[test]
    fn fluid_sweep_point_is_instant_even_at_a_million_connections() {
        let out = fluid_point("trim", 1_000_000);
        // Rate balance at the window floor: per-flow rate ~ C/N.
        let c = 1e9 / (1460.0 * 8.0);
        let fair = c / 1e6;
        assert!((out.per_flow_rate_pps[0] - fair).abs() / fair < 0.10);
        assert!(out.utilization > 0.99);
    }
}
