//! Fig. 12 / Table I — protocol comparison in a 10 Gbps fat-tree.
//!
//! Each server sends 1 MB over a persistent connection to a random sink:
//! small 2–6 KB objects from 0.1 s, the big remainder at 0.5 s. Pod count
//! sweeps 4–10 (16–250 servers); buffers are 350 KB; DCTCP/L2DCT mark at
//! 65 packets. Fig. 12 reports mean and maximum completion times; Table I
//! the total number of RTOs. The paper's ordering is
//! TCP > DCTCP > L2DCT > TCP-TRIM on both metrics.

use netsim::prelude::*;
use netsim::time::SimTime;
use netsim::topology::{self, LinkSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use trim_harness::Campaign;
use trim_tcp::{CcKind, Segment, TcpConfig, TcpHost};
use trim_workload::http::fat_tree_workload;
use trim_workload::scenario::{schedule_train, wire_flow};
use trim_workload::Summary;

use crate::num;
use crate::table::fmt_secs;
use crate::{Effort, Table};

/// Result of one fat-tree run.
#[derive(Clone, Copy, Debug)]
pub struct FatTreeRun {
    /// Summary of per-object completion times across all servers.
    pub completion: Summary,
    /// Total RTO events (Table I).
    pub timeouts: u64,
}

/// Runs one protocol at pod count `k`.
pub fn run_once(cc: &CcKind, k: usize, seed: u64) -> FatTreeRun {
    let mut sim: Simulator<Segment> = Simulator::new();
    let link = LinkSpec::new(
        Bandwidth::gbps(10),
        Dur::from_micros(10),
        QueueConfig {
            capacity: QueueCapacity::Bytes(350_000),
            ecn_threshold: Some(65),
            aqm: netsim::queue::Aqm::DropTail,
        },
    );
    let net = topology::fat_tree(&mut sim, k, link, |_| Box::new(TcpHost::new()));
    let tcp = TcpConfig::default().with_min_rto(Dur::from_millis(10));
    let mut rng = StdRng::seed_from_u64(seed);
    let n = net.hosts.len();
    for (i, &src) in net.hosts.iter().enumerate() {
        // Random sink, never self.
        let mut d = rng.random_range(0..n - 1);
        if d >= i {
            d += 1;
        }
        let dst = net.hosts[d];
        let idx = wire_flow(&mut sim, FlowId(i as u64), src, dst, tcp, cc);
        for spec in fat_tree_workload(&mut rng, 0.004) {
            schedule_train(&mut sim, src, idx, spec);
        }
    }
    sim.run_until(SimTime::from_secs_f64(4.0));

    let mut times = Vec::new();
    let mut timeouts = 0;
    for &h in &net.hosts {
        let host: &TcpHost = sim.host(h);
        let conn = host.connection(0);
        timeouts += conn.stats().timeouts;
        // Completion time of every object (small and big), measured from
        // its hand-off to TCP, as in the earlier ACT experiments.
        for t in conn.completed_trains() {
            times.push(t.completion_time());
        }
    }
    FatTreeRun {
        completion: Summary::of(&times),
        timeouts,
    }
}

/// The four protocols of Fig. 12 in the paper's order.
pub fn protocols() -> Vec<CcKind> {
    vec![
        CcKind::Reno,
        CcKind::Dctcp,
        CcKind::L2dct,
        CcKind::trim_with_capacity(10_000_000_000, 1460),
    ]
}

/// Builds the fat-tree campaign: one job per (pod count, protocol,
/// repetition), with protocols sharing each (pods, rep) workload seed,
/// reduced into Fig. 12 and Table I.
pub fn campaign(effort: Effort) -> Campaign {
    let pods: Vec<usize> = effort.pick(vec![4, 8], vec![4, 6, 8, 10]);
    let reps = effort.pick(1, 3);

    let mut c = Campaign::new("fat_tree", 0xFA7);
    for &k in &pods {
        for (p, cc) in protocols().into_iter().enumerate() {
            let name = cc.name().to_string();
            for r in 0..reps {
                c.table_job_seeded(
                    format!("k{k}_{name}_r{r}"),
                    format!("k{k}_r{r}"),
                    &[
                        ("pods", k.to_string()),
                        ("protocol", name.clone()),
                        ("rep", r.to_string()),
                    ],
                    move |seed| {
                        let run = run_once(&protocols()[p], k, seed);
                        let mut t = Table::new("run", &["mean", "max", "timeouts"]);
                        t.row(&[
                            num(run.completion.mean),
                            num(run.completion.max),
                            run.timeouts.to_string(),
                        ]);
                        t
                    },
                );
            }
        }
    }
    c.reduce(move |records| {
        let mut fig12 = Table::new(
            "Fig. 12 — mean and max completion times in the fat-tree (s)",
            &["pods", "protocol", "mean", "max"],
        );
        let mut tab1 = Table::new(
            "Table I — number of timeouts per protocol",
            &["pods", "tcp", "dctcp", "l2dct", "trim"],
        );
        for &k in &pods {
            let mut timeout_row = vec![format!("{k}")];
            for cc in protocols() {
                let name = cc.name();
                let mut mean = 0.0;
                let mut max: f64 = 0.0;
                let mut tos = 0u64;
                for r in 0..reps {
                    let key = format!("k{k}_{name}_r{r}");
                    let run = records
                        .iter()
                        .find(|rec| rec.key == key)
                        .unwrap_or_else(|| panic!("missing job '{key}'"))
                        .only();
                    mean += run.f64_at(0, 0);
                    max = max.max(run.f64_at(0, 1));
                    tos += run.u64_at(0, 2);
                }
                mean /= reps as f64;
                fig12.row(&[
                    format!("{k}"),
                    name.to_string(),
                    fmt_secs(mean),
                    fmt_secs(max),
                ]);
                timeout_row.push(format!("{}", tos / reps as u64));
            }
            tab1.row(&timeout_row);
        }
        vec![
            ("fig12_fat_tree".to_string(), fig12),
            ("table1_timeouts".to_string(), tab1),
        ]
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trim_has_fewest_timeouts_at_pod_4() {
        let runs: Vec<FatTreeRun> = protocols().iter().map(|cc| run_once(cc, 4, 99)).collect();
        let (tcp, trim) = (runs[0], runs[3]);
        assert!(
            trim.timeouts <= tcp.timeouts,
            "TRIM {} vs TCP {} timeouts",
            trim.timeouts,
            tcp.timeouts
        );
        assert!(
            trim.completion.mean <= tcp.completion.mean,
            "TRIM mean {} vs TCP {}",
            trim.completion.mean,
            tcp.completion.mean
        );
        // Objects complete under every protocol.
        for r in &runs {
            assert!(r.completion.count > 16 * 20, "run {r:?}");
        }
    }
}
