//! Fig. 5 / Fig. 7 — concurrent short packet trains under long trains.
//!
//! `n` SPT servers each burst a 10-packet train at 0.3 s while 0/1/2 LPT
//! servers stream continuously from 0.1 s (100-packet buffer, 200 ms
//! RTO). Fig. 5 shows TCP's SPT completion times exploding with LPT count
//! and concurrency; Fig. 7 shows TRIM holding ACT at a few milliseconds.

use netsim::time::Dur;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use trim_harness::{Campaign, JobRecord};
use trim_tcp::{CcKind, TcpConfig};
use trim_workload::distributions::exponential;
use trim_workload::http::{lpt, spt};
use trim_workload::scenario::{ScenarioBuilder, TrainSpec};
use trim_workload::Summary;

use crate::num;
use crate::table::fmt_secs;
use crate::{Effort, Table};

const MSS: u32 = 1460;

/// Outcome of one (protocol, n_spt, n_lpt) cell.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// SPT completion-time summary.
    pub spt: Summary,
    /// Retransmission timeouts across all connections.
    pub timeouts: u64,
}

/// How many warm-up responses each SPT server sends before its measured
/// burst. The paper "rebuilds the previous many-to-one scenario", so the
/// SPT connections are persistent and arrive at 0.3 s carrying windows
/// inherited from earlier response traffic.
const WARMUP_RESPONSES: u64 = 100;

/// The legacy per-cell seed, used when a cell is run outside a campaign.
fn legacy_seed(n_spt: usize, n_lpt: usize) -> u64 {
    0x5eed ^ (n_spt as u64) << 8 ^ n_lpt as u64
}

/// Runs one configuration and summarizes the SPT completion times.
pub fn run_cell(cc: &CcKind, n_spt: usize, n_lpt: usize) -> Cell {
    run_cell_seeded(cc, n_spt, n_lpt, legacy_seed(n_spt, n_lpt))
}

/// Like [`run_cell`] with a custom minimum RTO (used by the RTO
/// sensitivity extension).
pub fn run_cell_with_rto(cc: &CcKind, n_spt: usize, n_lpt: usize, rto: Dur) -> Cell {
    run_cell_with_rto_seeded(cc, n_spt, n_lpt, rto, legacy_seed(n_spt, n_lpt))
}

/// Like [`run_cell`] with an explicit workload seed (campaign jobs pass
/// their derived seed here).
pub fn run_cell_seeded(cc: &CcKind, n_spt: usize, n_lpt: usize, seed: u64) -> Cell {
    run_cell_with_rto_seeded(cc, n_spt, n_lpt, Dur::from_millis(200), seed)
}

/// The fully parameterized cell: protocol, concurrency, RTO, and seed.
pub fn run_cell_with_rto_seeded(
    cc: &CcKind,
    n_spt: usize,
    n_lpt: usize,
    rto: Dur,
    seed: u64,
) -> Cell {
    let tcp = TcpConfig::default().with_min_rto(rto);
    let mut sc = ScenarioBuilder::many_to_one(n_spt + n_lpt)
        .congestion_control(cc.clone())
        .tcp_config(tcp)
        .build();
    let mut rng = StdRng::seed_from_u64(seed);
    for l in 0..n_lpt {
        // "Running throughout the test": a train large enough to span it.
        sc.send_train(l, lpt(0.1, 40_000_000));
    }
    for s in 0..n_spt {
        // Warm-up responses from 0.1 s inherit a grown window...
        let mut t = 0.1;
        for _ in 0..WARMUP_RESPONSES {
            sc.send_train(
                n_lpt + s,
                TrainSpec::at_secs(t, rng.random_range(2_000..=10_000)),
            );
            t += exponential(&mut rng, 0.0018);
        }
        // ...then every server bursts its measured 10-packet SPT at 0.3 s.
        sc.send_train(n_lpt + s, spt(0.3, 10, MSS));
    }
    let report = sc.run_for_secs(4.0);
    let spt_times: Vec<Dur> = report
        .senders
        .iter()
        .skip(n_lpt)
        .flat_map(|s| {
            s.trains
                .iter()
                .filter(|t| t.id == WARMUP_RESPONSES)
                .map(|t| t.completion_time())
        })
        .collect();
    assert_eq!(spt_times.len(), n_spt, "every SPT completes");
    Cell {
        spt: Summary::of(&spt_times),
        timeouts: report.total_timeouts(),
    }
}

/// A cell job's artifact: the full-precision numbers the figures need.
fn cell_table(cell: Cell) -> Table {
    let mut t = Table::new("cell", &["mean", "min", "max", "timeouts"]);
    t.row(&[
        num(cell.spt.mean),
        num(cell.spt.min),
        num(cell.spt.max),
        cell.timeouts.to_string(),
    ]);
    t
}

fn record_for<'a>(records: &'a [JobRecord], key: &str) -> &'a JobRecord {
    records
        .iter()
        .find(|r| r.key == key)
        .unwrap_or_else(|| panic!("missing job '{key}'"))
}

/// Builds the concurrency campaign: one job per (protocol, n_spt,
/// n_lpt) cell, reduced into Fig. 5(a)/(b) and Fig. 7.
pub fn campaign(effort: Effort) -> Campaign {
    let max_spt = effort.pick(10, 14);
    let spt_counts: Vec<usize> = (2..=max_spt).step_by(2).collect();

    let mut c = Campaign::new("concurrency", 0x5eed);
    for &n in &spt_counts {
        for l in 0..=2usize {
            // tcp and trim share the seed key of a cell so the A/B
            // comparison runs the identical workload.
            c.table_job_seeded(
                format!("tcp_n{n}_l{l}"),
                format!("n{n}_l{l}"),
                &[
                    ("protocol", "tcp".to_string()),
                    ("n_spt", n.to_string()),
                    ("n_lpt", l.to_string()),
                ],
                move |seed| cell_table(run_cell_seeded(&CcKind::Reno, n, l, seed)),
            );
        }
        c.table_job_seeded(
            format!("trim_n{n}_l2"),
            format!("n{n}_l2"),
            &[
                ("protocol", "trim".to_string()),
                ("n_spt", n.to_string()),
                ("n_lpt", "2".to_string()),
            ],
            move |seed| {
                let trim = CcKind::trim_with_capacity(1_000_000_000, MSS);
                cell_table(run_cell_seeded(&trim, n, 2, seed))
            },
        );
    }
    c.reduce(move |records| {
        let mut fig5a = Table::new(
            "Fig. 5(a) — ACT of concurrent SPTs under TCP (s)",
            &["n_spt", "0 LPT", "1 LPT", "2 LPT"],
        );
        let mut fig5b = Table::new(
            "Fig. 5(b) — min/max SPT completion times under TCP, 2 LPTs (s)",
            &["n_spt", "min", "max"],
        );
        let mut fig7 = Table::new(
            "Fig. 7 — ACT of SPTs with 2 LPTs: TCP vs TCP-TRIM (s)",
            &["n_spt", "tcp", "trim", "tcp_timeouts", "trim_timeouts"],
        );
        for &n in &spt_counts {
            let at = |key: String| record_for(records, &key).only().clone();
            let tcp = [
                at(format!("tcp_n{n}_l0")),
                at(format!("tcp_n{n}_l1")),
                at(format!("tcp_n{n}_l2")),
            ];
            let trim = at(format!("trim_n{n}_l2"));
            fig5a.row(&[
                format!("{n}"),
                fmt_secs(tcp[0].f64_at(0, 0)),
                fmt_secs(tcp[1].f64_at(0, 0)),
                fmt_secs(tcp[2].f64_at(0, 0)),
            ]);
            fig5b.row(&[
                format!("{n}"),
                fmt_secs(tcp[2].f64_at(0, 1)),
                fmt_secs(tcp[2].f64_at(0, 2)),
            ]);
            fig7.row(&[
                format!("{n}"),
                fmt_secs(tcp[2].f64_at(0, 0)),
                fmt_secs(trim.f64_at(0, 0)),
                tcp[2].cell(0, 3).to_string(),
                trim.cell(0, 3).to_string(),
            ]);
        }
        vec![
            ("fig5a_act".to_string(), fig5a),
            ("fig5b_minmax".to_string(), fig5b),
            ("fig7_tcp_vs_trim".to_string(), fig7),
        ]
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpts_inflate_tcp_spt_completion() {
        let no_lpt = run_cell(&CcKind::Reno, 6, 0);
        let two_lpt = run_cell(&CcKind::Reno, 6, 2);
        assert!(
            two_lpt.spt.mean > 2.0 * no_lpt.spt.mean,
            "LPTs must hurt SPTs: {} vs {}",
            two_lpt.spt.mean,
            no_lpt.spt.mean
        );
    }

    #[test]
    fn trim_keeps_act_low_with_two_lpts() {
        let trim = CcKind::trim_with_capacity(1_000_000_000, MSS);
        let tcp_cell = run_cell(&CcKind::Reno, 8, 2);
        let trim_cell = run_cell(&trim, 8, 2);
        // Paper: TRIM's ACT is a few milliseconds, TCP's is up to two
        // orders of magnitude larger.
        assert!(
            trim_cell.spt.mean < 0.020,
            "TRIM ACT {}s too high",
            trim_cell.spt.mean
        );
        assert!(
            tcp_cell.spt.mean > 5.0 * trim_cell.spt.mean,
            "TCP {} vs TRIM {}",
            tcp_cell.spt.mean,
            trim_cell.spt.mean
        );
    }
}
