//! Fig. 4 / Fig. 6 — the ON/OFF impairment test.
//!
//! Five web servers hold persistent connections to a front-end (1 Gbps,
//! 50 µs, 100-packet buffer). Each sends 200 small responses (2–10 KB,
//! ~1 ms apart) from 0.1 s, then a long train at 0.5 s. Under Reno the
//! inherited ~900-packet windows crush the bottleneck at 0.5 s (Fig. 4:
//! timeouts, throughput collapse); under TCP-TRIM the probes re-tune the
//! window and nothing is lost (Fig. 6).

use netsim::time::{Dur, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trim_harness::{Artifacts, Campaign};
use trim_tcp::CcKind;
use trim_workload::http::impairment_workload;
use trim_workload::scenario::ScenarioBuilder;
use trim_workload::Report;

use crate::num;
use crate::table::fmt_secs;
use crate::{Effort, Table};

const SENDERS: usize = 5;

/// Runs one protocol through the Section II.B scenario.
fn run_protocol(cc: &CcKind, seed: u64) -> Report {
    let mut sc = ScenarioBuilder::many_to_one(SENDERS)
        .congestion_control(cc.clone())
        .record_cwnd()
        .record_queue()
        .throughput_bin(Dur::from_millis(10))
        .build();
    let mut rng = StdRng::seed_from_u64(seed);
    for s in 0..SENDERS {
        sc.send_trains(s, impairment_workload(&mut rng));
    }
    sc.run_for_secs(3.0)
}

/// The two compared protocols.
fn protocols() -> [CcKind; 2] {
    [
        CcKind::Reno,
        CcKind::trim_with_capacity(1_000_000_000, 1460),
    ]
}

/// One protocol's job: the per-connection detail, the goodput series,
/// and a full-precision summary row for the reduce step.
fn protocol_job(cc: &CcKind, seed: u64) -> Artifacts {
    let report = run_protocol(cc, seed);

    // Per-connection detail (the paper discusses connection 5).
    let mut detail = Table::new(
        "detail",
        &[
            "conn",
            "timeouts",
            "cwnd_before_lpt",
            "lpt_ct",
            "trains_done",
        ],
    );
    let before_lpt = SimTime::from_secs_f64(0.499);
    let mut lpt_max: f64 = 0.0;
    let mut finish: f64 = 0.0;
    for s in &report.senders {
        let cwnd_pre = s
            .cwnd
            .as_ref()
            .and_then(|series| series.value_at(before_lpt))
            .unwrap_or(0.0);
        // The LPT is the last-enqueued train (id 200).
        let lpt_ct = s
            .trains
            .iter()
            .find(|t| t.id == 200)
            .map(|t| t.completion_time().as_secs_f64())
            .unwrap_or(f64::NAN);
        lpt_max = lpt_max.max(lpt_ct);
        for t in &s.trains {
            finish = finish.max(t.completed_at.as_secs_f64());
        }
        detail.row(&[
            format!("{}", s.sender + 1),
            format!("{}", s.stats.timeouts),
            format!("{cwnd_pre:.0}"),
            fmt_secs(lpt_ct),
            format!("{}", s.trains.len()),
        ]);
    }

    // Throughput-over-time series (Fig. 4(a)/6(a)): aggregate goodput.
    let mut series = Table::new("throughput", &["t", "mbps"]);
    let mut bins = std::collections::BTreeMap::<u64, f64>::new();
    for s in &report.senders {
        if let Some(m) = &s.throughput {
            for (t, mbps) in m.mbps_series() {
                *bins.entry(t.as_nanos()).or_default() += mbps;
            }
        }
    }
    for (t_ns, mbps) in bins {
        let t = t_ns as f64 / 1e9;
        if (0.4..0.8).contains(&t) {
            series.row(&[format!("{t:.2}"), format!("{mbps:.0}")]);
        }
    }

    // Full-precision numbers the summary table is assembled from.
    let mut raw = Table::new(
        "summary_row",
        &["timeouts", "drops", "max_queue", "act", "lpt_max", "finish"],
    );
    raw.row(&[
        report.total_timeouts().to_string(),
        report.bottleneck.dropped.to_string(),
        report.bottleneck.max_len.to_string(),
        num(report.act().mean),
        num(lpt_max),
        num(finish),
    ]);

    vec![
        ("detail".to_string(), detail),
        ("throughput".to_string(), series),
        ("summary_row".to_string(), raw),
    ]
}

/// Builds the impairment campaign: one job per protocol, reduced into
/// the summary plus per-protocol detail and goodput tables.
pub fn campaign(_effort: Effort) -> Campaign {
    let mut c = Campaign::new("impairment", 42);
    for cc in protocols() {
        let name = cc.name().to_string();
        c.job(name.clone(), &[("protocol", name)], move |seed| {
            protocol_job(&cc, seed)
        });
    }
    c.reduce(|records| {
        let mut out: Artifacts = Vec::new();
        let mut summary = Table::new(
            "Fig. 4 vs Fig. 6 — impairment test summary",
            &[
                "protocol",
                "timeouts",
                "drops",
                "max_queue",
                "act",
                "lpt_max_ct",
                "all_done_by",
            ],
        );
        for job in records {
            let raw = job.table("summary_row");
            summary.row(&[
                job.key.clone(),
                raw.cell(0, 0).to_string(),
                raw.cell(0, 1).to_string(),
                raw.cell(0, 2).to_string(),
                fmt_secs(raw.f64_at(0, 3)),
                fmt_secs(raw.f64_at(0, 4)),
                fmt_secs(raw.f64_at(0, 5)),
            ]);
            let name = &job.key;
            out.push((
                format!("fig4_6_{name}_detail"),
                job.table("detail")
                    .clone()
                    .with_title(format!("{name}: per-connection detail")),
            ));
            out.push((
                format!("fig4_6_{name}_throughput"),
                job.table("throughput").clone().with_title(format!(
                    "{name}: bottleneck goodput (10 ms bins, 0.4-0.8 s)"
                )),
            ));
        }
        out.insert(0, ("fig4_6_summary".to_string(), summary));
        out
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_times_out_and_trim_does_not() {
        let reno = run_protocol(&CcKind::Reno, 42);
        let trim = run_protocol(&CcKind::trim_with_capacity(1_000_000_000, 1460), 42);
        assert!(
            reno.total_timeouts() >= 2,
            "paper reports 7 timeouts across conns 2-5, got {}",
            reno.total_timeouts()
        );
        assert_eq!(trim.total_timeouts(), 0, "Fig. 6: no TRIM timeouts");
        assert_eq!(trim.bottleneck.dropped, 0, "queue never overflows");
        // Paper: recorded TRIM queue stays under ~20 packets.
        assert!(
            trim.bottleneck.max_len <= 30,
            "TRIM max queue {}",
            trim.bottleneck.max_len
        );
        // Reno inherits huge windows; TRIM strictly limits them pre-LPT.
        let cwnd_at = |r: &Report, i: usize| {
            r.senders[i]
                .cwnd
                .as_ref()
                .unwrap()
                .value_at(SimTime::from_secs_f64(0.499))
                .unwrap_or(0.0)
        };
        assert!(cwnd_at(&reno, 4) > 300.0, "Reno window grows unchecked");
        assert!(cwnd_at(&trim, 4) < 50.0, "TRIM window stays small");
        // Everything still completes under both.
        assert_eq!(reno.completed_trains(), SENDERS * 201);
        assert_eq!(trim.completed_trains(), SENDERS * 201);
        // And TRIM's ACT improves on Reno's.
        assert!(trim.act().mean < reno.act().mean);
    }

    #[test]
    fn campaign_reduces_to_summary_and_per_protocol_tables() {
        let tables = run(Effort::Quick);
        assert_eq!(tables.len(), 5, "summary + 2x(detail, throughput)");
        assert_eq!(tables[0].len(), 2, "one summary row per protocol");
    }
}
