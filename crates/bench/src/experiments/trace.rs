//! Fig. 1 / Fig. 2 — packet-train characterization of HTTP traffic.
//!
//! The paper records a 2 TB campus trace and reports (i) the packet-train
//! structure of a selected web server's output and (ii) the CDFs of train
//! size and inter-train gap. We synthesize a trace from the published
//! distributions, re-extract trains with the Jain & Routhier definition,
//! and report the same three artifacts — validating that the synthesis,
//! the extractor, and the distributions agree.

use netsim::time::Dur;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trim_harness::table::fmt_f64;
use trim_harness::{Artifacts, Campaign};
use trim_workload::trace::{extract_trains, synthesize_trace, train_intervals, TraceConfig};

use crate::{Effort, Table};

/// Synthesizes one trace and derives all three figure tables from it.
fn trace_job(seed: u64, trains: usize) -> Artifacts {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = TraceConfig {
        trains,
        ..TraceConfig::default()
    };
    let pkts = synthesize_trace(&mut rng, &cfg);
    let trains = extract_trains(&pkts, Dur::from_micros(50));
    let gaps = train_intervals(&trains);

    // Fig. 1: the first few trains as a sequence-number narrative.
    let mut fig1 = Table::new("fig1", &["train", "start", "pkts", "KB", "class"]);
    for (i, t) in trains.iter().take(10).enumerate() {
        fig1.row(&[
            format!("{i}"),
            format!("{}", t.start),
            format!("{}", t.pkts),
            fmt_f64(t.bytes as f64 / 1024.0),
            if t.is_long() { "LPT" } else { "SPT" }.to_string(),
        ]);
    }

    // Fig. 2(a): CDF of train size.
    let mut sizes: Vec<f64> = trains.iter().map(|t| t.bytes as f64 / 1024.0).collect();
    sizes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut fig2a = Table::new("fig2a", &["size_kb", "cdf"]);
    for kb in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0] {
        let frac = sizes.partition_point(|&s| s <= kb) as f64 / sizes.len() as f64;
        fig2a.row(&[fmt_f64(kb), fmt_f64(frac)]);
    }

    // Fig. 2(b): CDF of inter-train gap.
    let mut gap_us: Vec<f64> = gaps.iter().map(|g| g.as_secs_f64() * 1e6).collect();
    gap_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut fig2b = Table::new("fig2b", &["gap_us", "cdf"]);
    for us in [100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0] {
        let frac = gap_us.partition_point(|&g| g <= us) as f64 / gap_us.len().max(1) as f64;
        fig2b.row(&[fmt_f64(us), fmt_f64(frac)]);
    }

    vec![
        ("fig1".to_string(), fig1),
        ("fig2a".to_string(), fig2a),
        ("fig2b".to_string(), fig2b),
    ]
}

/// Builds the trace-characterization campaign: one synthesis job, three
/// figure tables reduced from its artifacts.
pub fn campaign(effort: Effort) -> Campaign {
    let trains = effort.pick(2_000, 20_000);
    let mut c = Campaign::new("trace", 0x7217);
    c.job(
        "synthesize",
        &[("trains", trains.to_string())],
        move |seed| trace_job(seed, trains),
    );
    c.reduce(|records| {
        let job = &records[0];
        vec![
            (
                "fig1_trains".to_string(),
                job.table("fig1")
                    .clone()
                    .with_title("Fig. 1 — packet trains on one HTTP connection (first 10)"),
            ),
            (
                "fig2a_size_cdf".to_string(),
                job.table("fig2a")
                    .clone()
                    .with_title("Fig. 2(a) — CDF of packet-train size"),
            ),
            (
                "fig2b_gap_cdf".to_string(),
                job.table("fig2b")
                    .clone()
                    .with_title("Fig. 2(b) — CDF of inter-train interval"),
            ),
        ]
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_all_three_artifacts() {
        let tables = run(Effort::Quick);
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].len(), 10);
        assert!(!tables[1].is_empty());
        assert!(!tables[2].is_empty());
    }

    #[test]
    fn size_cdf_hits_paper_anchors() {
        let tables = run(Effort::Quick);
        let render = tables[1].render();
        // ~20% at 4 KB, ~90% at 128 KB (Fig. 2(a)).
        let find = |kb: &str| -> f64 {
            render
                .lines()
                .find(|l| l.starts_with(kb))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .expect("row present")
        };
        assert!((find("4 ") - 0.20).abs() < 0.05);
        assert!((find("128") - 0.90).abs() < 0.05);
    }
}
