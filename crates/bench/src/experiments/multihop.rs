//! Fig. 11 — multi-hop, multi-bottleneck throughput.
//!
//! Groups A and B (10 senders each) stream LPTs to the front-end; group C
//! streams to group D receivers. The 10 Gbps links sw1->sw2 and
//! sw2->front-end are both oversubscribed; group A crosses both. The
//! paper reports per-sender throughputs of 342.7 / 638 / 318 Mbps for
//! TRIM versus 259 / 471 / 233 Mbps for TCP.

use netsim::prelude::*;
use netsim::time::SimTime;
use netsim::topology::{self, LinkSpec};
use trim_harness::table::fmt_f64;
use trim_harness::Campaign;
use trim_tcp::{CcKind, Segment, TcpConfig, TcpHost};
use trim_workload::scenario::{schedule_train, wire_flow};

use crate::num;
use crate::{Effort, Table};

const GROUP: usize = 10;
const DURATION: f64 = 3.0;

/// Average per-sender goodput (Mbps) for groups A, B, and C.
pub fn run_once(cc: &CcKind) -> (f64, f64, f64) {
    let mut sim: Simulator<Segment> = Simulator::new();
    let edge = LinkSpec::new(
        Bandwidth::gbps(1),
        Dur::from_micros(20),
        QueueConfig::drop_tail(100),
    );
    let bottleneck = LinkSpec::new(
        Bandwidth::gbps(10),
        Dur::from_micros(20),
        QueueConfig::drop_tail(300),
    );
    let net = topology::multi_hop(&mut sim, GROUP, edge, bottleneck, |_| {
        Box::new(TcpHost::new())
    });
    let tcp = TcpConfig::default().with_min_rto(Dur::from_millis(200));
    let mut flow = 0u64;
    let mut wire_lpt = |sim: &mut Simulator<Segment>, src: NodeId, dst: NodeId| {
        let idx = wire_flow(sim, FlowId(flow), src, dst, tcp, cc);
        flow += 1;
        schedule_train(
            sim,
            src,
            idx,
            trim_workload::TrainSpec::at_secs(0.0, 2_000_000_000),
        );
    };
    for &a in &net.group_a {
        wire_lpt(&mut sim, a, net.front_end);
    }
    for &b in &net.group_b {
        wire_lpt(&mut sim, b, net.front_end);
    }
    for (i, &c) in net.group_c.iter().enumerate() {
        wire_lpt(&mut sim, c, net.group_d[i]);
    }
    sim.run_until(SimTime::from_secs_f64(DURATION));

    // Goodput measured at each group's receivers.
    let fe: &TcpHost = sim.host(net.front_end);
    let mbps = |bytes: u64| bytes as f64 * 8.0 / DURATION / 1e6;
    let a: f64 = (0..GROUP)
        .map(|i| mbps(fe.receiver(i).goodput_bytes()))
        .sum::<f64>()
        / GROUP as f64;
    let b: f64 = (GROUP..2 * GROUP)
        .map(|i| mbps(fe.receiver(i).goodput_bytes()))
        .sum::<f64>()
        / GROUP as f64;
    let c: f64 = net
        .group_d
        .iter()
        .map(|&d| {
            let host: &TcpHost = sim.host(d);
            mbps(host.receiver(0).goodput_bytes())
        })
        .sum::<f64>()
        / GROUP as f64;
    (a, b, c)
}

/// Builds the multi-hop campaign: one deterministic job per protocol
/// (the scenario has no randomness, so jobs ignore their seeds),
/// reduced into the Fig. 11(b) table.
pub fn campaign(_effort: Effort) -> Campaign {
    let mut c = Campaign::new("multihop", 0xF1B);
    for cc in [
        CcKind::Reno,
        CcKind::trim_with_capacity(10_000_000_000, 1460),
    ] {
        let name = cc.name().to_string();
        c.table_job(name.clone(), &[("protocol", name)], move |_seed| {
            let (a, b, g_c) = run_once(&cc);
            let mut t = Table::new("groups", &["group_a", "group_b", "group_c"]);
            t.row(&[num(a), num(b), num(g_c)]);
            t
        });
    }
    c.reduce(|records| {
        let mut t = Table::new(
            "Fig. 11(b) — average per-sender throughput (Mbps)",
            &[
                "protocol",
                "group_a",
                "group_b",
                "group_c",
                "a+b_total_gbps",
            ],
        );
        for job in records {
            let row = job.only();
            let (a, b, g_c) = (row.f64_at(0, 0), row.f64_at(0, 1), row.f64_at(0, 2));
            t.row(&[
                job.key.clone(),
                fmt_f64(a),
                fmt_f64(b),
                fmt_f64(g_c),
                fmt_f64((a + b) * GROUP as f64 / 1000.0),
            ]);
        }
        vec![("fig11_multihop".to_string(), t)]
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trim_improves_single_bottleneck_groups_and_utilization() {
        let trim = CcKind::trim_with_capacity(10_000_000_000, 1460);
        let (ta, tb, tc) = run_once(&CcKind::Reno);
        let (ra, rb, rc) = run_once(&trim);
        // The paper's per-group wins hold for the single-bottleneck
        // groups; the doubly-bottlenecked group A instead shows the
        // well-known delay-based multi-bottleneck penalty (documented in
        // EXPERIMENTS.md), so it is only required not to starve entirely.
        assert!(rb > tb, "group B: trim {rb} vs tcp {tb}");
        assert!(rc > tc, "group C: trim {rc} vs tcp {tc}");
        assert!(ra > 50.0, "group A must not starve: {ra}");
        // Group B crosses one bottleneck, group A two: B outruns A.
        assert!(rb > ra, "B ({rb}) should exceed A ({ra})");
        // TRIM saturates the front-end link (A+B ~ 10 Gbps) and wins on
        // aggregate goodput.
        let total = (ra + rb) * GROUP as f64;
        assert!(total > 9_500.0, "front-end link utilization: {total} Mbps");
        assert!(
            ra + rb + rc > ta + tb + tc,
            "aggregate: trim {} vs tcp {}",
            ra + rb + rc,
            ta + tb + tc
        );
    }
}
