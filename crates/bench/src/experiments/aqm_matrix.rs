//! AQM matrix: RED and CoDel bottlenecks over tiny buffers, with the
//! stability oracles as first-class measurements.
//!
//! Two artifacts:
//!
//! - `aqm_matrix`: the packet-level grid (queue discipline x buffer x
//!   fan-in x congestion control) under persistent saturating trains —
//!   goodput, drops (including RED early drops), CoDel sojourn drops,
//!   queue occupancy, timeouts, and what the `trim-check` stability
//!   oracles saw (sustained cwnd limit cycles, standing queues). The
//!   stability monitors are *measurements* here: their findings land in
//!   CSV columns, while any other monitor violation — packet
//!   conservation, FIFO order, queue bounds — is an engine bug and
//!   fails the experiment hard.
//! - `aqm_stability`: the Reynier cross-validation. For a set of RED
//!   instances spanning genuinely unstable (large bandwidth-delay,
//!   few flows, steep band) and stable (many flows, gentle band)
//!   regimes, the packet simulation's measured cwnd behavior is checked
//!   against the mean-field predicate
//!   ([`trim_core::fluid::red_stability`]) by the
//!   [`RedStability`](trim_check::RedStability) monitor; the table
//!   records both verdicts and whether they agree.
//!
//! The grid is effort-independent: tiny buffers make every cell cheap,
//! and the goldens must stay byte-identical across `--jobs` settings.

use netsim::prelude::*;
use netsim::time::SimTime;
use netsim::topology::LinkSpec;
use trim_check::{RedStability, StabilityConfig};
use trim_core::fluid::{red_stability, RedFluid};
use trim_harness::{Campaign, JobRecord};
use trim_tcp::{CcKind, TcpConfig};
use trim_workload::scenario::{ScenarioBuilder, TrainSpec};
use trim_workload::spec::{ScenarioSpec, SpecAqm, SpecCc, SpecTrain};

use crate::num;
use crate::{Effort, Table};

/// Link rate for every cell (the paper's 1 Gbps fabric).
const LINK_MBPS: u64 = 1_000;
/// One-way per-link delay for the matrix cells (50 us, the paper's
/// datacenter latency).
const MATRIX_DELAY_US: u64 = 50;
/// Horizon for every cell; long enough for the stability oracles'
/// 200 ms observation window to fill.
const HORIZON_MS: u64 = 400;
/// Datacenter-tuned minimum RTO, so tiny-buffer incast recovers within
/// the horizon instead of stalling on the WAN default.
const MIN_RTO_US: u64 = 10_000;
/// Bottleneck service rate in packets per second for the mean-field
/// predicate (MSS payload at 1 Gbps, matching `trim_core::fluid`).
const CAPACITY_PPS: f64 = 1e9 / (1460.0 * 8.0);

/// Violation monitors whose findings are matrix *data*, not failures.
const STABILITY_MONITORS: [&str; 2] = ["cwnd-limit-cycle", "standing-queue"];

/// The disciplines swept by the matrix, with RED thresholds scaled to
/// the buffer so the band stays inside tiny queues.
fn disciplines(buffer_pkts: usize) -> Vec<(&'static str, SpecAqm)> {
    let b = buffer_pkts as u32;
    vec![
        ("drop-tail", SpecAqm::DropTail),
        (
            "red",
            SpecAqm::Red {
                min_th: (b / 4).max(1),
                max_th: (3 * b / 4).max(2),
                max_p_milli: 100,
                wq_micro: 2_000,
                ecn: false,
            },
        ),
        (
            "codel",
            SpecAqm::Codel {
                target_us: 50,
                interval_us: 1_000,
                ecn: false,
            },
        ),
    ]
}

/// The full grid: discipline x buffer x fan-in x congestion control.
fn matrix_cells() -> Vec<(String, SpecAqm, usize, usize, SpecCc)> {
    let mut cells = Vec::new();
    for buffer_pkts in [16usize, 32] {
        for (disc, aqm) in disciplines(buffer_pkts) {
            for senders in [4usize, 32] {
                for (cc_name, cc) in [("reno", SpecCc::Reno), ("trim", SpecCc::TrimGuideline)] {
                    cells.push((
                        format!("{disc}_b{buffer_pkts}_n{senders}_{cc_name}"),
                        aqm,
                        buffer_pkts,
                        senders,
                        cc,
                    ));
                }
            }
        }
    }
    cells
}

/// The spec for one matrix cell: persistent synchronized trains
/// offering 1.5x the bottleneck capacity over the horizon, with the
/// stability oracles attached.
fn cell_spec(aqm: SpecAqm, buffer_pkts: usize, senders: usize, cc: SpecCc) -> ScenarioSpec {
    let capacity_bytes = LINK_MBPS * 125 * HORIZON_MS;
    let per_sender = (3 * capacity_bytes / (2 * senders as u64))
        .div_ceil(trim_workload::spec::SPEC_MSS_BYTES)
        .max(1)
        * trim_workload::spec::SPEC_MSS_BYTES;
    ScenarioSpec {
        seed: 0,
        senders,
        link_mbps: LINK_MBPS,
        delay_us: MATRIX_DELAY_US,
        buffer_pkts,
        cc,
        min_rto_us: MIN_RTO_US,
        horizon_ms: HORIZON_MS,
        fault: None,
        aqm,
        stability: true,
        expect: None,
        trains: (0..senders)
            .map(|sender| SpecTrain {
                sender,
                // Small deterministic stagger so arrivals are not
                // artificially phase-locked.
                at_us: 10 * sender as u64,
                bytes: per_sender,
            })
            .collect(),
        sessions: Vec::new(),
    }
}

/// One matrix cell's measurements.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Aggregate front-end goodput in Mbit/s.
    pub goodput_mbps: f64,
    /// Bottleneck drops (drop-tail overflow + RED early + CoDel sojourn).
    pub drops: u64,
    /// CoDel sojourn-time drops among them.
    pub sojourn_drops: u64,
    /// Peak bottleneck occupancy (packets).
    pub max_queue: usize,
    /// Time-averaged bottleneck occupancy (packets).
    pub avg_queue: f64,
    /// Total retransmission timeouts.
    pub timeouts: u64,
    /// Flows on which the cwnd limit-cycle oracle fired.
    pub limit_cycles: usize,
    /// Whether the standing-queue oracle fired.
    pub standing_queue: bool,
}

/// Runs one matrix cell; any violation that is not a stability-oracle
/// finding is an engine bug and panics.
pub fn run_cell(aqm: SpecAqm, buffer_pkts: usize, senders: usize, cc: SpecCc) -> MatrixCell {
    let spec = cell_spec(aqm, buffer_pkts, senders, cc);
    let out = spec.run().expect("matrix cell spec is valid");
    let mut limit_cycles = 0;
    let mut standing_queue = false;
    for v in &out.violations {
        match v.monitor {
            "cwnd-limit-cycle" => limit_cycles += 1,
            "standing-queue" => standing_queue = true,
            other => panic!("aqm_matrix cell broke the {other} invariant: {v}"),
        }
    }
    let report = &out.report;
    let goodput_bytes: u64 = report.senders.iter().map(|s| s.goodput_bytes).sum();
    let horizon_s = HORIZON_MS as f64 / 1_000.0;
    let span = report.at.saturating_since(SimTime::ZERO);
    MatrixCell {
        goodput_mbps: goodput_bytes as f64 * 8.0 / horizon_s / 1e6,
        drops: report.bottleneck.dropped,
        sojourn_drops: report.bottleneck.sojourn_events,
        max_queue: report.bottleneck.max_len,
        avg_queue: report.bottleneck.average_len(span),
        timeouts: report.total_timeouts(),
        limit_cycles,
        standing_queue,
    }
}

fn cell_table(c: &MatrixCell) -> Table {
    let mut t = Table::new(
        "cell",
        &[
            "goodput_mbps",
            "drops",
            "sojourn_drops",
            "max_queue",
            "avg_queue",
            "timeouts",
            "limit_cycles",
            "standing_queue",
        ],
    );
    t.row(&[
        num(c.goodput_mbps),
        c.drops.to_string(),
        c.sojourn_drops.to_string(),
        c.max_queue.to_string(),
        num(c.avg_queue),
        c.timeouts.to_string(),
        c.limit_cycles.to_string(),
        u8::from(c.standing_queue).to_string(),
    ]);
    t
}

/// One RED instance for the Reynier cross-validation.
#[derive(Clone, Copy, Debug)]
pub struct StabilityInstance {
    /// Row label.
    pub name: &'static str,
    /// Fan-in (the fluid model's N).
    pub senders: usize,
    /// One-way per-link delay in microseconds (base RTT = 4x).
    pub delay_us: u64,
    /// The RED parameters, in the fluid model's units.
    pub red: RedFluid,
}

/// The cross-validation set.
///
/// The agreeing instances live where the fluid model's assumptions and
/// the cwnd instrument's jurisdiction overlap:
///
/// - *Unstable*: a steep band (`max_p = 1` over 10 packets) with a
///   large bandwidth-delay product and an equilibrium window small
///   enough (`W* <~ 25`) that the oscillation shows up in per-flow
///   windows, not just the queue. Routh–Hurwitz margins are 0.02–0.05 —
///   deep in the unstable region.
/// - *Stable*: gentle bands at millisecond RTTs with `W* ~ 13`: large
///   enough that Reno sees almost no retransmission timeouts (its
///   sawtooth stays well under the 1.5 W* amplitude bar), small enough
///   that the queue stays officially congested.
///
/// `gentle_rtt100us_n8` is kept as a known *boundary* instance: at
/// datacenter 100 us RTTs the bandwidth-delay product (~9 packets) is
/// below `min_th` itself and the EWMA time constant spans dozens of
/// RTTs, so discrete slow-start/timeout blowups dominate and the
/// packet measurement contradicts the fluid "stable" verdict. The
/// golden records the disagreement.
pub fn stability_instances() -> Vec<StabilityInstance> {
    let steep = RedFluid {
        min_th: 10.0,
        max_th: 20.0,
        max_p: 1.0,
        wq: 0.01,
    };
    let gentle = RedFluid {
        min_th: 15.0,
        max_th: 45.0,
        max_p: 0.1,
        wq: 0.002,
    };
    let wide = RedFluid {
        max_th: 60.0,
        ..gentle
    };
    vec![
        StabilityInstance {
            name: "steep_rtt1ms_n4",
            senders: 4,
            delay_us: 250,
            red: steep,
        },
        StabilityInstance {
            name: "steep_rtt500us_n2",
            senders: 2,
            delay_us: 125,
            red: steep,
        },
        StabilityInstance {
            name: "steep_rtt1ms_n8",
            senders: 8,
            delay_us: 250,
            red: steep,
        },
        StabilityInstance {
            name: "gentle_rtt1ms_n8",
            senders: 8,
            delay_us: 250,
            red: gentle,
        },
        StabilityInstance {
            name: "wide_rtt1200us_n9",
            senders: 9,
            delay_us: 300,
            red: wide,
        },
        StabilityInstance {
            name: "gentle_rtt100us_n8",
            senders: 8,
            delay_us: 25,
            red: gentle,
        },
    ]
}

/// Cross-validation outcome for one instance.
#[derive(Clone, Copy, Debug)]
pub struct StabilityRow {
    /// Mean-field verdict.
    pub verdict: trim_core::fluid::RedStabilityVerdict,
    /// Whether the packet simulation showed a sustained limit cycle.
    pub measured_unstable: bool,
}

impl StabilityRow {
    /// Whether simulation and mean-field predicate agree.
    pub fn agree(&self) -> bool {
        self.measured_unstable != self.verdict.stable
    }
}

/// Warmup before the stability instrument attaches: the mean-field
/// predicate speaks about the equilibrium, so the synchronized
/// slow-start convoy of the first tens of milliseconds must not count
/// as a limit cycle. Monitors observe only from attach time, which
/// makes the cutoff exact.
const STABILITY_WARMUP_MS: u64 = 100;

/// Runs one cross-validation instance: Reno senders through the RED
/// bottleneck under persistent load, with the [`RedStability`] monitor
/// measuring the post-warmup packet-level behavior against the
/// predicate.
pub fn run_stability_instance(inst: &StabilityInstance) -> StabilityRow {
    let red = RedConfig {
        min_th: inst.red.min_th,
        max_th: inst.red.max_th,
        max_p: inst.red.max_p,
        wq: inst.red.wq,
        ..RedConfig::default()
    };
    let link = LinkSpec::new(
        Bandwidth::mbps(LINK_MBPS),
        Dur::from_micros(inst.delay_us),
        QueueConfig::drop_tail(100).with_red(red),
    );
    let tcp = TcpConfig::default().with_min_rto(Dur::from_micros(MIN_RTO_US));
    let mut sc = ScenarioBuilder::many_to_one(inst.senders)
        .links(link)
        .tcp_config(tcp)
        .congestion_control(CcKind::Reno)
        .build();
    if !sc.sim_mut().monitors_enabled() {
        trim_check::attach_standard(sc.sim_mut());
    }
    let base_rtt_ns = 4 * inst.delay_us * 1_000;
    let verdict = red_stability(CAPACITY_PPS, base_rtt_ns, inst.senders as f64, &inst.red);
    let capacity_bytes = LINK_MBPS * 125 * HORIZON_MS;
    let per_sender = (3 * capacity_bytes / (2 * inst.senders as u64))
        .div_ceil(trim_workload::spec::SPEC_MSS_BYTES)
        .max(1)
        * trim_workload::spec::SPEC_MSS_BYTES;
    for s in 0..inst.senders {
        sc.send_train(
            s,
            TrainSpec {
                at: SimTime::from_nanos(10_000 * s as u64),
                bytes: per_sender,
            },
        );
    }
    sc.sim_mut()
        .run_until(SimTime::ZERO + Dur::from_millis(STABILITY_WARMUP_MS));
    // The measurement instrument must distinguish the *macroscopic*
    // swings of an unstable RED loop (timeout/slow-start excursions to
    // ~ 2 W* and beyond) from Reno's intrinsic sawtooth around a stable
    // equilibrium (amplitude ~ W*/2 on a window halving). Scaling the
    // amplitude floor to 1.5 W* puts the bar between the two regimes.
    let instrument = StabilityConfig {
        min_amplitude: (1.5 * verdict.w_star).max(4.0),
        ..StabilityConfig::default()
    };
    sc.sim_mut().attach_monitor(Box::new(RedStability::new(
        CAPACITY_PPS,
        base_rtt_ns,
        inst.senders as f64,
        &inst.red,
        instrument,
    )));
    sc.sim_mut()
        .run_until(SimTime::ZERO + Dur::from_millis(HORIZON_MS));
    let mut disagrees = false;
    for v in sc.sim_mut().violations() {
        match v.monitor {
            "red-stability" => disagrees = true,
            m if STABILITY_MONITORS.contains(&m) => {}
            other => panic!("aqm_stability instance broke the {other} invariant: {v}"),
        }
    }
    // The RedStability monitor fires exactly on disagreement, so the
    // measured verdict is recoverable without reaching into the boxed
    // monitor: measured != predicted <=> it fired.
    let predicted_unstable = !verdict.stable;
    StabilityRow {
        verdict,
        measured_unstable: predicted_unstable ^ disagrees,
    }
}

fn stability_table(row: &StabilityRow) -> Table {
    let mut t = Table::new(
        "instance",
        &[
            "predicted_stable",
            "margin",
            "w_star",
            "measured_cycle",
            "agree",
        ],
    );
    let v = &row.verdict;
    t.row(&[
        u8::from(v.stable).to_string(),
        num(v.margin),
        num(v.w_star),
        u8::from(row.measured_unstable).to_string(),
        u8::from(row.agree()).to_string(),
    ]);
    t
}

fn record_for<'a>(records: &'a [JobRecord], key: &str) -> &'a JobRecord {
    records
        .iter()
        .find(|r| r.key == key)
        .unwrap_or_else(|| panic!("missing job '{key}'"))
}

/// Builds the campaign: one job per matrix cell, one per
/// cross-validation instance. The grid is fixed across efforts.
pub fn campaign(_effort: Effort) -> Campaign {
    let mut c = Campaign::new("aqm_matrix", 0xA9_11);
    for (key, aqm, buffer_pkts, senders, cc) in matrix_cells() {
        c.table_job(format!("m_{key}"), &[("cell", key.clone())], move |_seed| {
            cell_table(&run_cell(aqm, buffer_pkts, senders, cc))
        });
    }
    for inst in stability_instances() {
        c.table_job(
            format!("s_{}", inst.name),
            &[("instance", inst.name.to_string())],
            move |_seed| stability_table(&run_stability_instance(&inst)),
        );
    }
    c.reduce(move |records| {
        let mut matrix = Table::new(
            "AQM matrix — discipline x tiny buffer x fan-in x protocol (1 Gbps, 400 ms)",
            &[
                "discipline",
                "buffer_pkts",
                "senders",
                "cc",
                "goodput_mbps",
                "drops",
                "sojourn_drops",
                "max_queue",
                "avg_queue",
                "timeouts",
                "limit_cycles",
                "standing_queue",
            ],
        );
        for (key, _, buffer_pkts, senders, cc) in matrix_cells() {
            let cell = record_for(records, &format!("m_{key}")).only();
            let disc = key.split('_').next().expect("key has a discipline");
            matrix.row(&[
                disc.to_string(),
                buffer_pkts.to_string(),
                senders.to_string(),
                match cc {
                    SpecCc::Reno => "reno".to_string(),
                    _ => "trim".to_string(),
                },
                cell.cell(0, 0).to_string(),
                cell.cell(0, 1).to_string(),
                cell.cell(0, 2).to_string(),
                cell.cell(0, 3).to_string(),
                cell.cell(0, 4).to_string(),
                cell.cell(0, 5).to_string(),
                cell.cell(0, 6).to_string(),
                cell.cell(0, 7).to_string(),
            ]);
        }
        let mut stab = Table::new(
            "RED stability — packet simulation vs mean-field predicate (Reynier)",
            &[
                "instance",
                "senders",
                "delay_us",
                "min_th",
                "max_th",
                "max_p",
                "wq",
                "predicted_stable",
                "margin",
                "w_star",
                "measured_cycle",
                "agree",
            ],
        );
        for inst in stability_instances() {
            let row = record_for(records, &format!("s_{}", inst.name)).only();
            stab.row(&[
                inst.name.to_string(),
                inst.senders.to_string(),
                inst.delay_us.to_string(),
                num(inst.red.min_th),
                num(inst.red.max_th),
                num(inst.red.max_p),
                num(inst.red.wq),
                row.cell(0, 0).to_string(),
                row.cell(0, 1).to_string(),
                row.cell(0, 2).to_string(),
                row.cell(0, 3).to_string(),
                row.cell(0, 4).to_string(),
            ]);
        }
        vec![
            ("aqm_matrix".to_string(), matrix),
            ("aqm_stability".to_string(), stab),
        ]
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_cross_validation_agrees_on_at_least_four_instances() {
        let rows: Vec<(StabilityInstance, StabilityRow)> = stability_instances()
            .into_iter()
            .map(|inst| (inst, run_stability_instance(&inst)))
            .collect();
        let agreeing = rows.iter().filter(|(_, r)| r.agree()).count();
        assert!(
            agreeing >= 4,
            "need >= 4 agreeing cross-validation instances, got {agreeing}: {rows:?}"
        );
        // The agreement must span both regimes: a genuinely unstable
        // large-BDP steep-RED instance and a stable many-flow one.
        assert!(
            rows.iter()
                .any(|(_, r)| r.agree() && !r.verdict.stable && r.measured_unstable),
            "no confirmed-unstable instance: {rows:?}"
        );
        assert!(
            rows.iter()
                .any(|(_, r)| r.agree() && r.verdict.stable && !r.measured_unstable),
            "no confirmed-stable instance: {rows:?}"
        );
    }

    #[test]
    fn red_trims_the_tiny_buffer_queue_against_drop_tail() {
        let red = disciplines(16)
            .into_iter()
            .find(|(n, _)| *n == "red")
            .expect("red discipline")
            .1;
        let dt = run_cell(SpecAqm::DropTail, 16, 32, SpecCc::Reno);
        let red = run_cell(red, 16, 32, SpecCc::Reno);
        assert!(
            red.avg_queue < dt.avg_queue,
            "RED must hold a shorter average queue: {} vs {}",
            red.avg_queue,
            dt.avg_queue
        );
        assert!(red.drops > 0, "a saturated RED band drops early");
    }

    #[test]
    fn codel_cells_record_sojourn_drops() {
        let codel = disciplines(16)
            .into_iter()
            .find(|(n, _)| *n == "codel")
            .expect("codel discipline")
            .1;
        let cell = run_cell(codel, 16, 32, SpecCc::Reno);
        assert!(
            cell.sojourn_drops > 0,
            "a saturated 16-packet CoDel queue must sojourn-drop: {cell:?}"
        );
        assert!(cell.drops >= cell.sojourn_drops);
    }
}
