//! Ablations of TCP-TRIM's design choices (DESIGN.md's list): probe-pair
//! size, RTT-smoothing weight alpha, the K guideline versus naive
//! choices, per-RTT versus per-ACK back-off, and Eq. 1 window tuning
//! versus a GIP-style fixed restart. Each variant runs the Fig. 4/6
//! impairment scenario and the Fig. 7 concurrency cell.

use netsim::prelude::*;
use netsim::topology::LinkSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trim_core::TrimConfig;
use trim_tcp::CcKind;
use trim_workload::http::impairment_workload;
use trim_workload::scenario::ScenarioBuilder;

use crate::experiments::concurrency;
use crate::table::fmt_secs;
use crate::{parallel_map, results_dir, Effort, Table};

/// A named TRIM variant (or baseline) for the ablation grid.
#[derive(Clone, Debug)]
pub struct Variant {
    /// Display name.
    pub name: &'static str,
    /// Congestion control to run.
    pub cc: CcKind,
}

/// The ablation grid.
pub fn variants() -> Vec<Variant> {
    let base = TrimConfig::default().with_capacity(1_000_000_000, 1460);
    let mk = |name: &'static str, cfg: TrimConfig| Variant {
        name,
        cc: CcKind::Trim(cfg),
    };
    vec![
        mk("trim (paper)", base),
        mk("probe=1", TrimConfig { probe_packets: 1, ..base }),
        mk("probe=4", TrimConfig { probe_packets: 4, ..base }),
        mk("alpha=0.1", TrimConfig { alpha: 0.1, ..base }),
        mk("alpha=0.5", TrimConfig { alpha: 0.5, ..base }),
        mk(
            "K=minRTT",
            TrimConfig {
                capacity_pps: None,
                k_fallback_factor: 1.0,
                ..base
            },
        ),
        mk(
            "K=2*minRTT",
            TrimConfig {
                capacity_pps: None,
                k_fallback_factor: 2.0,
                ..base
            },
        ),
        mk(
            "per-ack backoff",
            TrimConfig {
                backoff_per_rtt: false,
                ..base
            },
        ),
        Variant {
            name: "gip restart",
            cc: CcKind::Gip,
        },
        Variant {
            name: "reno",
            cc: CcKind::Reno,
        },
    ]
}

/// Impairment-scenario outcome for one variant.
#[derive(Clone, Copy, Debug)]
pub struct AblationCell {
    /// Total timeouts.
    pub timeouts: u64,
    /// Bottleneck drops.
    pub drops: u64,
    /// Peak bottleneck queue (packets).
    pub max_queue: usize,
    /// Mean completion time across all trains (s).
    pub act: f64,
}

/// Runs the impairment scenario for a variant.
pub fn impairment_cell(cc: &CcKind) -> AblationCell {
    impairment_cell_with_queue(cc, QueueConfig::drop_tail(100))
}

/// Like [`impairment_cell`] but with a custom switch-queue discipline
/// (used for the AQM-versus-end-host comparison).
pub fn impairment_cell_with_queue(cc: &CcKind, queue: QueueConfig) -> AblationCell {
    let link = LinkSpec::new(Bandwidth::gbps(1), Dur::from_micros(50), queue);
    let mut sc = ScenarioBuilder::many_to_one(5)
        .congestion_control(cc.clone())
        .links(link)
        .build();
    let mut rng = StdRng::seed_from_u64(42);
    for s in 0..5 {
        sc.send_trains(s, impairment_workload(&mut rng));
    }
    let report = sc.run_for_secs(3.0);
    AblationCell {
        timeouts: report.total_timeouts(),
        drops: report.bottleneck.dropped,
        max_queue: report.bottleneck.max_len,
        act: report.act().mean,
    }
}

/// Runs the experiment and returns its tables.
pub fn run(_effort: Effort) -> Vec<Table> {
    let vs = variants();
    let imp = parallel_map(vs.clone(), |v| impairment_cell(&v.cc));
    let mut t1 = Table::new(
        "Ablation — impairment scenario (5 servers, Fig. 4/6 workload)",
        &["variant", "timeouts", "drops", "max_queue", "act"],
    );
    for (v, c) in vs.iter().zip(&imp) {
        t1.row(&[
            v.name.to_string(),
            format!("{}", c.timeouts),
            format!("{}", c.drops),
            format!("{}", c.max_queue),
            fmt_secs(c.act),
        ]);
    }

    let conc = parallel_map(vs.clone(), |v| concurrency::run_cell(&v.cc, 8, 2));
    let mut t2 = Table::new(
        "Ablation — concurrency cell (8 SPTs + 2 LPTs, Fig. 7 point)",
        &["variant", "spt_act", "spt_max", "timeouts"],
    );
    for (v, c) in vs.iter().zip(&conc) {
        t2.row(&[
            v.name.to_string(),
            fmt_secs(c.spt.mean),
            fmt_secs(c.spt.max),
            format!("{}", c.timeouts),
        ]);
    }

    // Can a switch-side AQM substitute for TRIM's end-host control?
    let red = RedConfig::default();
    let aqm_rows: Vec<(&str, CcKind, QueueConfig)> = vec![
        ("reno + drop-tail", CcKind::Reno, QueueConfig::drop_tail(100)),
        (
            "reno + RED",
            CcKind::Reno,
            QueueConfig::drop_tail(100).with_red(red),
        ),
        (
            "dctcp + RED-ECN",
            CcKind::Dctcp,
            QueueConfig::drop_tail(100).with_red(RedConfig { ecn: true, ..red }),
        ),
        (
            "trim + drop-tail",
            CcKind::trim_with_capacity(1_000_000_000, 1460),
            QueueConfig::drop_tail(100),
        ),
    ];
    let aqm_cells = parallel_map(aqm_rows.clone(), |(_, cc, q)| {
        impairment_cell_with_queue(&cc, q)
    });
    let mut t3 = Table::new(
        "Ablation — switch AQM vs end-host control (impairment workload)",
        &["setup", "timeouts", "drops", "max_queue", "act"],
    );
    for ((name, _, _), c) in aqm_rows.iter().zip(&aqm_cells) {
        t3.row(&[
            name.to_string(),
            format!("{}", c.timeouts),
            format!("{}", c.drops),
            format!("{}", c.max_queue),
            fmt_secs(c.act),
        ]);
    }

    let dir = results_dir();
    let _ = t1.write_csv(&dir, "ablation_impairment");
    let _ = t2.write_csv(&dir, "ablation_concurrency");
    let _ = t3.write_csv(&dir, "ablation_aqm");
    vec![t1, t2, t3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_variant_dominates_reno() {
        let vs = variants();
        let trim = impairment_cell(&vs[0].cc);
        let reno = impairment_cell(&vs.last().expect("reno last").cc);
        assert_eq!(trim.timeouts, 0);
        assert!(reno.timeouts > 0);
        assert!(trim.act < reno.act);
    }

    #[test]
    fn single_probe_still_avoids_timeouts() {
        let vs = variants();
        let probe1 = impairment_cell(&vs[1].cc);
        assert_eq!(probe1.timeouts, 0, "{probe1:?}");
    }

    #[test]
    fn per_ack_backoff_trades_queue_for_nothing() {
        // Ablation finding: applying Eq. 3 literally on every ACK is
        // self-regulating (ep -> 0 as RTT -> K), so goodput is unchanged
        // while the average queue sits lower. The per-RTT rate limit is
        // what the paper's "no more aggressive than legacy TCP"
        // stipulation and Eq. 10's one-decrement-per-round model assume,
        // but it is not load-bearing for throughput.
        use crate::experiments::properties;
        use netsim::time::Dur;
        let vs = variants();
        let (per_rtt, _) = properties::run_once(&vs[0].cc, 5, Dur::from_millis(1), false);
        let (per_ack, _) = properties::run_once(&vs[7].cc, 5, Dur::from_millis(1), false);
        assert!(
            per_ack.goodput_mbps > 0.95 * per_rtt.goodput_mbps,
            "goodput comparable: {} vs {} Mbps",
            per_ack.goodput_mbps,
            per_rtt.goodput_mbps
        );
        assert!(
            per_ack.avg_queue < per_rtt.avg_queue,
            "per-ACK holds a shorter queue: {} vs {}",
            per_ack.avg_queue,
            per_rtt.avg_queue
        );
        assert_eq!(per_ack.drops, 0);
    }
}
