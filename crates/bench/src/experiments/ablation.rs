//! Ablations of TCP-TRIM's design choices (DESIGN.md's list): probe-pair
//! size, RTT-smoothing weight alpha, the K guideline versus naive
//! choices, per-RTT versus per-ACK back-off, and Eq. 1 window tuning
//! versus a GIP-style fixed restart. Each variant runs the Fig. 4/6
//! impairment scenario and the Fig. 7 concurrency cell.
//!
//! The scenarios pin their own workload seeds (42 for the impairment
//! workload, the legacy cell seed for the concurrency point) so every
//! variant sees the identical traffic; the campaign jobs therefore
//! ignore their derived seeds.

use netsim::prelude::*;
use netsim::topology::LinkSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trim_core::TrimConfig;
use trim_harness::{Campaign, JobRecord};
use trim_tcp::CcKind;
use trim_workload::http::impairment_workload;
use trim_workload::scenario::ScenarioBuilder;

use crate::experiments::concurrency;
use crate::num;
use crate::table::fmt_secs;
use crate::{Effort, Table};

/// A named TRIM variant (or baseline) for the ablation grid.
#[derive(Clone, Debug)]
pub struct Variant {
    /// Display name.
    pub name: &'static str,
    /// Congestion control to run.
    pub cc: CcKind,
}

/// The ablation grid.
pub fn variants() -> Vec<Variant> {
    let base = TrimConfig::default().with_capacity(1_000_000_000, 1460);
    let mk = |name: &'static str, cfg: TrimConfig| Variant {
        name,
        cc: CcKind::Trim(cfg),
    };
    vec![
        mk("trim (paper)", base),
        mk(
            "probe=1",
            TrimConfig {
                probe_packets: 1,
                ..base
            },
        ),
        mk(
            "probe=4",
            TrimConfig {
                probe_packets: 4,
                ..base
            },
        ),
        mk("alpha=0.1", TrimConfig { alpha: 0.1, ..base }),
        mk("alpha=0.5", TrimConfig { alpha: 0.5, ..base }),
        mk(
            "K=minRTT",
            TrimConfig {
                capacity_pps: None,
                k_fallback_factor: 1.0,
                ..base
            },
        ),
        mk(
            "K=2*minRTT",
            TrimConfig {
                capacity_pps: None,
                k_fallback_factor: 2.0,
                ..base
            },
        ),
        mk(
            "per-ack backoff",
            TrimConfig {
                backoff_per_rtt: false,
                ..base
            },
        ),
        Variant {
            name: "gip restart",
            cc: CcKind::Gip,
        },
        Variant {
            name: "reno",
            cc: CcKind::Reno,
        },
    ]
}

/// Impairment-scenario outcome for one variant.
#[derive(Clone, Copy, Debug)]
pub struct AblationCell {
    /// Total timeouts.
    pub timeouts: u64,
    /// Bottleneck drops.
    pub drops: u64,
    /// Peak bottleneck queue (packets).
    pub max_queue: usize,
    /// Mean completion time across all trains (s).
    pub act: f64,
}

/// Runs the impairment scenario for a variant.
pub fn impairment_cell(cc: &CcKind) -> AblationCell {
    impairment_cell_with_queue(cc, QueueConfig::drop_tail(100))
}

/// Like [`impairment_cell`] but with a custom switch-queue discipline
/// (used for the AQM-versus-end-host comparison).
pub fn impairment_cell_with_queue(cc: &CcKind, queue: QueueConfig) -> AblationCell {
    let link = LinkSpec::new(Bandwidth::gbps(1), Dur::from_micros(50), queue);
    let mut sc = ScenarioBuilder::many_to_one(5)
        .congestion_control(cc.clone())
        .links(link)
        .build();
    let mut rng = StdRng::seed_from_u64(42);
    for s in 0..5 {
        sc.send_trains(s, impairment_workload(&mut rng));
    }
    let report = sc.run_for_secs(3.0);
    AblationCell {
        timeouts: report.total_timeouts(),
        drops: report.bottleneck.dropped,
        max_queue: report.bottleneck.max_len,
        act: report.act().mean,
    }
}

/// The raw artifact for an impairment-style cell.
fn impairment_table(c: AblationCell) -> Table {
    let mut t = Table::new("cell", &["timeouts", "drops", "max_queue", "act"]);
    t.row(&[
        c.timeouts.to_string(),
        c.drops.to_string(),
        c.max_queue.to_string(),
        num(c.act),
    ]);
    t
}

fn record_for<'a>(records: &'a [JobRecord], key: &str) -> &'a JobRecord {
    records
        .iter()
        .find(|r| r.key == key)
        .unwrap_or_else(|| panic!("missing job '{key}'"))
}

/// The switch-AQM comparison grid: (label, protocol, queue discipline).
fn aqm_rows() -> Vec<(&'static str, CcKind, QueueConfig)> {
    let red = RedConfig::default();
    vec![
        (
            "reno + drop-tail",
            CcKind::Reno,
            QueueConfig::drop_tail(100),
        ),
        (
            "reno + RED",
            CcKind::Reno,
            QueueConfig::drop_tail(100).with_red(red),
        ),
        (
            "dctcp + RED-ECN",
            CcKind::Dctcp,
            QueueConfig::drop_tail(100).with_red(RedConfig { ecn: true, ..red }),
        ),
        (
            "trim + drop-tail",
            CcKind::trim_with_capacity(1_000_000_000, 1460),
            QueueConfig::drop_tail(100),
        ),
    ]
}

/// Builds the ablation campaign: per variant, one impairment job and
/// one concurrency-cell job, plus one job per switch-AQM setup.
pub fn campaign(_effort: Effort) -> Campaign {
    let mut c = Campaign::new("ablation", 0xAB1);
    for v in variants() {
        let cc = v.cc.clone();
        c.table_job(
            format!("imp_{}", v.name),
            &[("variant", v.name.to_string())],
            move |_seed| impairment_table(impairment_cell(&cc)),
        );
        let cc = v.cc.clone();
        c.table_job(
            format!("conc_{}", v.name),
            &[("variant", v.name.to_string())],
            move |_seed| {
                let cell = concurrency::run_cell(&cc, 8, 2);
                let mut t = Table::new("cell", &["spt_act", "spt_max", "timeouts"]);
                t.row(&[
                    num(cell.spt.mean),
                    num(cell.spt.max),
                    cell.timeouts.to_string(),
                ]);
                t
            },
        );
    }
    for (name, cc, q) in aqm_rows() {
        c.table_job(
            format!("aqm_{name}"),
            &[("setup", name.to_string())],
            move |_seed| impairment_table(impairment_cell_with_queue(&cc, q)),
        );
    }
    c.reduce(move |records| {
        let mut t1 = Table::new(
            "Ablation — impairment scenario (5 servers, Fig. 4/6 workload)",
            &["variant", "timeouts", "drops", "max_queue", "act"],
        );
        let mut t2 = Table::new(
            "Ablation — concurrency cell (8 SPTs + 2 LPTs, Fig. 7 point)",
            &["variant", "spt_act", "spt_max", "timeouts"],
        );
        for v in variants() {
            let imp = record_for(records, &format!("imp_{}", v.name)).only();
            t1.row(&[
                v.name.to_string(),
                imp.cell(0, 0).to_string(),
                imp.cell(0, 1).to_string(),
                imp.cell(0, 2).to_string(),
                fmt_secs(imp.f64_at(0, 3)),
            ]);
            let conc = record_for(records, &format!("conc_{}", v.name)).only();
            t2.row(&[
                v.name.to_string(),
                fmt_secs(conc.f64_at(0, 0)),
                fmt_secs(conc.f64_at(0, 1)),
                conc.cell(0, 2).to_string(),
            ]);
        }
        // Can a switch-side AQM substitute for TRIM's end-host control?
        let mut t3 = Table::new(
            "Ablation — switch AQM vs end-host control (impairment workload)",
            &["setup", "timeouts", "drops", "max_queue", "act"],
        );
        for (name, _, _) in aqm_rows() {
            let cell = record_for(records, &format!("aqm_{name}")).only();
            t3.row(&[
                name.to_string(),
                cell.cell(0, 0).to_string(),
                cell.cell(0, 1).to_string(),
                cell.cell(0, 2).to_string(),
                fmt_secs(cell.f64_at(0, 3)),
            ]);
        }
        vec![
            ("ablation_impairment".to_string(), t1),
            ("ablation_concurrency".to_string(), t2),
            ("ablation_aqm".to_string(), t3),
        ]
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_variant_dominates_reno() {
        let vs = variants();
        let trim = impairment_cell(&vs[0].cc);
        let reno = impairment_cell(&vs.last().expect("reno last").cc);
        assert_eq!(trim.timeouts, 0);
        assert!(reno.timeouts > 0);
        assert!(trim.act < reno.act);
    }

    #[test]
    fn single_probe_still_avoids_timeouts() {
        let vs = variants();
        let probe1 = impairment_cell(&vs[1].cc);
        assert_eq!(probe1.timeouts, 0, "{probe1:?}");
    }

    #[test]
    fn per_ack_backoff_trades_queue_for_nothing() {
        // Ablation finding: applying Eq. 3 literally on every ACK is
        // self-regulating (ep -> 0 as RTT -> K), so goodput is unchanged
        // while the average queue sits lower. The per-RTT rate limit is
        // what the paper's "no more aggressive than legacy TCP"
        // stipulation and Eq. 10's one-decrement-per-round model assume,
        // but it is not load-bearing for throughput.
        use crate::experiments::properties;
        use netsim::time::Dur;
        let vs = variants();
        let (per_rtt, _) = properties::run_once(&vs[0].cc, 5, Dur::from_millis(1), false);
        let (per_ack, _) = properties::run_once(&vs[7].cc, 5, Dur::from_millis(1), false);
        assert!(
            per_ack.goodput_mbps > 0.95 * per_rtt.goodput_mbps,
            "goodput comparable: {} vs {} Mbps",
            per_ack.goodput_mbps,
            per_rtt.goodput_mbps
        );
        assert!(
            per_ack.avg_queue < per_rtt.avg_queue,
            "per-ACK holds a shorter queue: {} vs {}",
            per_ack.avg_queue,
            per_rtt.avg_queue
        );
        assert_eq!(per_ack.drops, 0);
    }
}
