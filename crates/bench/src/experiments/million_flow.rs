//! Extension — the million-flow engine stress point.
//!
//! Exercises the hierarchical timing wheel and the struct-of-arrays
//! flow slab at depth: single-segment flows packed hundreds-to-thousands
//! per host fan into one 1 Gbps front-end, a regime dominated by queue
//! drops and RTO backoff (exactly the timer load the wheel exists for).
//! Quick effort runs a packed 5 000-flow point that the golden suite
//! reproduces byte-for-byte; `--full` adds the 10⁶-flow point behind
//! the committed `results/perf/incast_1m.json` wall-clock baseline.
//!
//! Unlike `large_scale_100k` (one host per flow), every host here
//! carries many senders, so the run goes through the slab's
//! checkout/writeback path on every ACK and the per-host access links
//! are shared — completion counts measure survival under overload, not
//! fairness.

use netsim::time::Dur;
use trim_harness::Campaign;
use trim_tcp::CcKind;
use trim_workload::scale::{run_scale_incast, ScaleConfig};

use crate::num;
use crate::{Effort, Table};

/// `(flows, senders per host)` points per effort level.
fn points(effort: Effort) -> Vec<(usize, usize)> {
    effort.pick(vec![(5_000, 250)], vec![(5_000, 250), (1_000_000, 1_000)])
}

/// Builds the million-flow campaign: one job per (scale point,
/// protocol), reduced into a single packed-incast table.
pub fn campaign(effort: Effort) -> Campaign {
    let pts = points(effort);
    let mut c = Campaign::new("million_flow", 0x1_000_000);
    for &(flows, per_host) in &pts {
        for proto in ["tcp", "trim"] {
            c.table_job(
                format!("f{flows}_{proto}"),
                &[
                    ("flows", flows.to_string()),
                    ("per_host", per_host.to_string()),
                    ("protocol", proto.to_string()),
                ],
                move |seed| {
                    let mut cfg = ScaleConfig::million_flow();
                    cfg.flows = flows;
                    cfg.senders_per_host = per_host;
                    cfg.seed = seed;
                    if flows < 1_000_000 {
                        // The scaled-down point keeps the same overload
                        // character but fits the golden suite's budget:
                        // 5 000 segments land within 5 ms on a front-end
                        // buffer of 100, so the first round is mostly
                        // drops and the rest is RTO-backoff recovery.
                        cfg.start_window = Dur::from_millis(5);
                        cfg.horizon = Dur::from_secs(2);
                    }
                    cfg.cc = if proto == "trim" {
                        CcKind::trim_with_capacity(1_000_000_000, 1460)
                    } else {
                        CcKind::Reno
                    };
                    let r = run_scale_incast(&cfg);
                    let mut t = Table::new(
                        "run",
                        &[
                            "completed",
                            "delivered",
                            "dropped",
                            "timeouts",
                            "events",
                            "mean_act",
                        ],
                    );
                    t.row(&[
                        r.completed.to_string(),
                        r.audit.delivered.to_string(),
                        r.audit.dropped.to_string(),
                        r.timeouts.to_string(),
                        r.events.to_string(),
                        num(r.act.mean),
                    ]);
                    t
                },
            );
        }
    }
    let keys: Vec<(usize, usize, &'static str)> = pts
        .iter()
        .flat_map(|&(f, p)| [(f, p, "tcp"), (f, p, "trim")])
        .collect();
    c.reduce(move |records| {
        let mut t = Table::new(
            "Ext — packed incast at engine scale (many senders per host)",
            &[
                "flows",
                "per_host",
                "protocol",
                "completed",
                "delivered",
                "dropped",
                "timeouts",
                "events",
                "mean_act",
            ],
        );
        for &(flows, per_host, proto) in &keys {
            let key = format!("f{flows}_{proto}");
            let rec = records
                .iter()
                .find(|r| r.key == key)
                .unwrap_or_else(|| panic!("missing job '{key}'"));
            let row = rec.only();
            t.row(&[
                flows.to_string(),
                per_host.to_string(),
                proto.to_string(),
                row.cell(0, 0).to_string(),
                row.cell(0, 1).to_string(),
                row.cell(0, 2).to_string(),
                row.cell(0, 3).to_string(),
                row.cell(0, 4).to_string(),
                row.cell(0, 5).to_string(),
            ]);
        }
        vec![("million_flow".to_string(), t)]
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_has_one_packed_point() {
        let c = campaign(Effort::Quick);
        assert_eq!(c.id(), "million_flow");
        assert_eq!(c.job_keys(), ["f5000_tcp", "f5000_trim"]);
    }

    #[test]
    fn full_campaign_adds_the_million_point() {
        let c = campaign(Effort::Full);
        assert_eq!(
            c.job_keys(),
            ["f5000_tcp", "f5000_trim", "f1000000_tcp", "f1000000_trim"]
        );
    }
}
