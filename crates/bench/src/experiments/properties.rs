//! Fig. 9 — basic properties of TCP-TRIM: switch queue length, average
//! queue length, packet drops, and bottleneck goodput.
//!
//! Persistent LPT connections share the 1 Gbps / 50 µs / 100-packet
//! bottleneck from 0.1 s to 0.9 s. TCP saw-tooths against the buffer
//! ceiling; TRIM pins the queue near its target `C(K - D)`.
//!
//! The workload here is fully deterministic (fixed-size LPTs, no random
//! arrivals), so the campaign's jobs ignore their derived seeds.

use netsim::time::{Dur, SimTime};
use trim_harness::{Campaign, JobRecord};
use trim_tcp::{CcKind, TcpConfig, TcpHost};
use trim_workload::http::lpt;
use trim_workload::scenario::ScenarioBuilder;

use crate::num;
use crate::table::fmt_f64;
use crate::{Effort, Table};

const END: f64 = 0.9;
const START: f64 = 0.1;

/// Measurements from one run with `n` persistent LPT connections.
#[derive(Clone, Copy, Debug)]
pub struct PropertyRun {
    /// Average queue length over the active window, in packets.
    pub avg_queue: f64,
    /// Maximum queue length, in packets.
    pub max_queue: usize,
    /// Packets dropped at the bottleneck.
    pub drops: u64,
    /// Goodput delivered at the front-end over the active window, Mbps.
    pub goodput_mbps: f64,
    /// Timeouts across all connections.
    pub timeouts: u64,
}

/// Runs `n` persistent LPTs under `cc`, with the queue-length series
/// optionally returned for Fig. 9(a).
pub fn run_once(
    cc: &CcKind,
    n: usize,
    rto: Dur,
    record: bool,
) -> (PropertyRun, Option<Vec<(f64, usize)>>) {
    let mut builder = ScenarioBuilder::many_to_one(n)
        .congestion_control(cc.clone())
        .tcp_config(TcpConfig::default().with_min_rto(rto));
    if record {
        builder = builder.record_queue();
    }
    let mut sc = builder.build();
    for s in 0..n {
        // Big enough to stay busy for the whole window; stopped at 0.9 s.
        sc.send_train(s, lpt(START, 400_000_000));
    }
    for (i, &node) in sc.net().senders.clone().iter().enumerate() {
        let _ = i;
        sc.sim_mut()
            .host_mut::<TcpHost>(node)
            .schedule_stop(0, SimTime::from_secs_f64(END));
    }
    let report = sc.run_for_secs(END + 0.3);
    let span = Dur::from_secs_f64(END + 0.3);
    let goodput_bytes: u64 = report.senders.iter().map(|s| s.goodput_bytes).sum();
    let run = PropertyRun {
        avg_queue: report.bottleneck.average_len(span),
        max_queue: report.bottleneck.max_len,
        drops: report.bottleneck.dropped,
        goodput_mbps: goodput_bytes as f64 * 8.0 / (END - START) / 1e6,
        timeouts: report.total_timeouts(),
    };
    let series = report.queue_series.map(|samples| {
        samples
            .iter()
            .map(|s| (s.at.as_secs_f64(), s.len))
            .collect()
    });
    (run, series)
}

/// Samples a queue-length series on the 20 ms Fig. 9(a) grid.
fn sampled_series(cc: &CcKind) -> Table {
    let (_, series) = run_once(cc, 5, Dur::from_millis(200), true);
    let series = series.expect("recorded");
    let sample = |t: f64| -> usize {
        match series.partition_point(|&(at, _)| at <= t) {
            0 => 0,
            i => series[i - 1].1,
        }
    };
    let mut out = Table::new("queue", &["t", "len"]);
    let mut t = START;
    while t < END {
        out.row(&[format!("{t:.2}"), format!("{}", sample(t))]);
        t += 0.02;
    }
    out
}

/// One sweep cell's raw metrics.
fn cell_table(run: PropertyRun) -> Table {
    let mut t = Table::new(
        "cell",
        &[
            "avg_queue",
            "max_queue",
            "drops",
            "goodput_mbps",
            "timeouts",
        ],
    );
    t.row(&[
        num(run.avg_queue),
        run.max_queue.to_string(),
        run.drops.to_string(),
        num(run.goodput_mbps),
        run.timeouts.to_string(),
    ]);
    t
}

fn record_for<'a>(records: &'a [JobRecord], key: &str) -> &'a JobRecord {
    records
        .iter()
        .find(|r| r.key == key)
        .unwrap_or_else(|| panic!("missing job '{key}'"))
}

/// Builds the properties campaign: two recorded queue-series jobs for
/// Fig. 9(a) plus one job per (count, protocol) sweep cell.
pub fn campaign(effort: Effort) -> Campaign {
    let counts: Vec<usize> = effort.pick(vec![2, 4, 6, 8, 10], vec![2, 3, 4, 5, 6, 7, 8, 9, 10]);

    let mut c = Campaign::new("properties", 0xF19);
    for proto in ["tcp", "trim"] {
        c.table_job(
            format!("series_{proto}"),
            &[("protocol", proto.to_string()), ("n_lpts", "5".to_string())],
            move |_seed| {
                let cc = if proto == "trim" {
                    CcKind::trim_with_capacity(1_000_000_000, 1460)
                } else {
                    CcKind::Reno
                };
                sampled_series(&cc)
            },
        );
    }
    for &n in &counts {
        for proto in ["tcp", "trim"] {
            c.table_job(
                format!("sweep_n{n}_{proto}"),
                &[("protocol", proto.to_string()), ("n_pts", n.to_string())],
                move |_seed| {
                    let cc = if proto == "trim" {
                        CcKind::trim_with_capacity(1_000_000_000, 1460)
                    } else {
                        CcKind::Reno
                    };
                    cell_table(run_once(&cc, n, Dur::from_millis(1), false).0)
                },
            );
        }
    }
    c.reduce(move |records| {
        // Fig. 9(a): zip the two sampled series.
        let tcp_series = record_for(records, "series_tcp").only();
        let trim_series = record_for(records, "series_trim").only();
        let mut fig9a = Table::new(
            "Fig. 9(a) — switch queue with 5 LPTs (packets, sampled)",
            &["t", "tcp", "trim"],
        );
        for (row, trim_row) in tcp_series.rows().iter().zip(trim_series.rows()) {
            fig9a.row(&[row[0].clone(), row[1].clone(), trim_row[1].clone()]);
        }

        // Fig. 9(b)-(d): one row per concurrency level.
        let mut fig9b = Table::new(
            "Fig. 9(b) — average queue length (packets)",
            &["n_pts", "tcp", "trim"],
        );
        let mut fig9c = Table::new("Fig. 9(c) — dropped packets", &["n_pts", "tcp", "trim"]);
        let mut fig9d = Table::new(
            "Fig. 9(d) — bottleneck goodput (Mbps)",
            &["n_pts", "tcp", "trim", "trim_utilization"],
        );
        for &n in &counts {
            let tcp = record_for(records, &format!("sweep_n{n}_tcp")).only();
            let trm = record_for(records, &format!("sweep_n{n}_trim")).only();
            fig9b.row(&[
                format!("{n}"),
                fmt_f64(tcp.f64_at(0, 0)),
                fmt_f64(trm.f64_at(0, 0)),
            ]);
            fig9c.row(&[
                format!("{n}"),
                tcp.cell(0, 2).to_string(),
                trm.cell(0, 2).to_string(),
            ]);
            fig9d.row(&[
                format!("{n}"),
                fmt_f64(tcp.f64_at(0, 3)),
                fmt_f64(trm.f64_at(0, 3)),
                format!("{}%", fmt_f64(trm.f64_at(0, 3) / 10.0)),
            ]);
        }
        vec![
            ("fig9a_queue_series".to_string(), fig9a),
            ("fig9b_aql".to_string(), fig9b),
            ("fig9c_drops".to_string(), fig9c),
            ("fig9d_goodput".to_string(), fig9d),
        ]
    });
    c
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    crate::execute_quiet(campaign(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trim_holds_queue_low_without_drops() {
        let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
        let (tcp, _) = run_once(&CcKind::Reno, 5, Dur::from_millis(1), false);
        let (trm, _) = run_once(&trim, 5, Dur::from_millis(1), false);
        // Fig. 9: TCP saw-tooths into the ceiling and drops; TRIM's AQL
        // is far lower and it never drops.
        assert!(tcp.drops > 0, "TCP must overflow: {tcp:?}");
        assert_eq!(trm.drops, 0, "TRIM must not drop: {trm:?}");
        assert!(
            trm.avg_queue < tcp.avg_queue / 2.0,
            "TRIM AQL {} vs TCP {}",
            trm.avg_queue,
            tcp.avg_queue
        );
        // Fig. 9(d): TRIM's goodput stays near line rate (~98%).
        assert!(
            trm.goodput_mbps > 900.0,
            "TRIM goodput {} Mbps",
            trm.goodput_mbps
        );
    }
}
