//! Fig. 9 — basic properties of TCP-TRIM: switch queue length, average
//! queue length, packet drops, and bottleneck goodput.
//!
//! Persistent LPT connections share the 1 Gbps / 50 µs / 100-packet
//! bottleneck from 0.1 s to 0.9 s. TCP saw-tooths against the buffer
//! ceiling; TRIM pins the queue near its target `C(K - D)`.

use netsim::time::{Dur, SimTime};
use trim_tcp::{CcKind, TcpConfig, TcpHost};
use trim_workload::http::lpt;
use trim_workload::scenario::ScenarioBuilder;

use crate::{parallel_map, results_dir, Effort, Table};

const END: f64 = 0.9;
const START: f64 = 0.1;

/// Measurements from one run with `n` persistent LPT connections.
#[derive(Clone, Copy, Debug)]
pub struct PropertyRun {
    /// Average queue length over the active window, in packets.
    pub avg_queue: f64,
    /// Maximum queue length, in packets.
    pub max_queue: usize,
    /// Packets dropped at the bottleneck.
    pub drops: u64,
    /// Goodput delivered at the front-end over the active window, Mbps.
    pub goodput_mbps: f64,
    /// Timeouts across all connections.
    pub timeouts: u64,
}

/// Runs `n` persistent LPTs under `cc`, with the queue-length series
/// optionally returned for Fig. 9(a).
pub fn run_once(cc: &CcKind, n: usize, rto: Dur, record: bool) -> (PropertyRun, Option<Vec<(f64, usize)>>) {
    let mut builder = ScenarioBuilder::many_to_one(n)
        .congestion_control(cc.clone())
        .tcp_config(TcpConfig::default().with_min_rto(rto));
    if record {
        builder = builder.record_queue();
    }
    let mut sc = builder.build();
    for s in 0..n {
        // Big enough to stay busy for the whole window; stopped at 0.9 s.
        sc.send_train(s, lpt(START, 400_000_000));
    }
    for (i, &node) in sc.net().senders.clone().iter().enumerate() {
        let _ = i;
        sc.sim_mut()
            .host_mut::<TcpHost>(node)
            .schedule_stop(0, SimTime::from_secs_f64(END));
    }
    let report = sc.run_for_secs(END + 0.3);
    let span = Dur::from_secs_f64(END + 0.3);
    let goodput_bytes: u64 = report.senders.iter().map(|s| s.goodput_bytes).sum();
    let run = PropertyRun {
        avg_queue: report.bottleneck.average_len(span),
        max_queue: report.bottleneck.max_len,
        drops: report.bottleneck.dropped,
        goodput_mbps: goodput_bytes as f64 * 8.0 / (END - START) / 1e6,
        timeouts: report.total_timeouts(),
    };
    let series = report.queue_series.map(|samples| {
        samples
            .iter()
            .map(|s| (s.at.as_secs_f64(), s.len))
            .collect()
    });
    (run, series)
}

/// Runs the experiment and returns its tables.
pub fn run(effort: Effort) -> Vec<Table> {
    let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
    let mut tables = Vec::new();

    // Fig. 9(a): queue-length evolution with 5 LPTs (sampled at 20 ms).
    let mut fig9a = Table::new(
        "Fig. 9(a) — switch queue with 5 LPTs (packets, sampled)",
        &["t", "tcp", "trim"],
    );
    let (_, tcp_series) = run_once(&CcKind::Reno, 5, Dur::from_millis(200), true);
    let (_, trim_series) = run_once(&trim, 5, Dur::from_millis(200), true);
    let sample = |series: &[(f64, usize)], t: f64| -> usize {
        match series.partition_point(|&(at, _)| at <= t) {
            0 => 0,
            i => series[i - 1].1,
        }
    };
    let (tcp_series, trim_series) = (
        tcp_series.expect("recorded"),
        trim_series.expect("recorded"),
    );
    let mut t = START;
    while t < END {
        fig9a.row(&[
            format!("{t:.2}"),
            format!("{}", sample(&tcp_series, t)),
            format!("{}", sample(&trim_series, t)),
        ]);
        t += 0.02;
    }

    // Fig. 9(b)-(d): sweep the number of concurrent PTs with a 1 ms RTO.
    let counts: Vec<usize> = effort.pick(vec![2, 4, 6, 8, 10], vec![2, 3, 4, 5, 6, 7, 8, 9, 10]);
    let jobs: Vec<(usize, bool)> = counts
        .iter()
        .flat_map(|&n| [(n, false), (n, true)])
        .collect();
    let results = parallel_map(jobs, |(n, is_trim)| {
        let cc = if is_trim {
            CcKind::trim_with_capacity(1_000_000_000, 1460)
        } else {
            CcKind::Reno
        };
        run_once(&cc, n, Dur::from_millis(1), false).0
    });
    let mut fig9b = Table::new(
        "Fig. 9(b) — average queue length (packets)",
        &["n_pts", "tcp", "trim"],
    );
    let mut fig9c = Table::new(
        "Fig. 9(c) — dropped packets",
        &["n_pts", "tcp", "trim"],
    );
    let mut fig9d = Table::new(
        "Fig. 9(d) — bottleneck goodput (Mbps)",
        &["n_pts", "tcp", "trim", "trim_utilization"],
    );
    for (i, &n) in counts.iter().enumerate() {
        let tcp = results[i * 2];
        let trm = results[i * 2 + 1];
        fig9b.row(&[
            format!("{n}"),
            format!("{:.1}", tcp.avg_queue),
            format!("{:.1}", trm.avg_queue),
        ]);
        fig9c.row(&[
            format!("{n}"),
            format!("{}", tcp.drops),
            format!("{}", trm.drops),
        ]);
        fig9d.row(&[
            format!("{n}"),
            format!("{:.0}", tcp.goodput_mbps),
            format!("{:.0}", trm.goodput_mbps),
            format!("{:.1}%", trm.goodput_mbps / 10.0),
        ]);
    }

    let dir = results_dir();
    let _ = fig9a.write_csv(&dir, "fig9a_queue_series");
    let _ = fig9b.write_csv(&dir, "fig9b_aql");
    let _ = fig9c.write_csv(&dir, "fig9c_drops");
    let _ = fig9d.write_csv(&dir, "fig9d_goodput");
    tables.push(fig9a);
    tables.push(fig9b);
    tables.push(fig9c);
    tables.push(fig9d);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trim_holds_queue_low_without_drops() {
        let trim = CcKind::trim_with_capacity(1_000_000_000, 1460);
        let (tcp, _) = run_once(&CcKind::Reno, 5, Dur::from_millis(1), false);
        let (trm, _) = run_once(&trim, 5, Dur::from_millis(1), false);
        // Fig. 9: TCP saw-tooths into the ceiling and drops; TRIM's AQL
        // is far lower and it never drops.
        assert!(tcp.drops > 0, "TCP must overflow: {tcp:?}");
        assert_eq!(trm.drops, 0, "TRIM must not drop: {trm:?}");
        assert!(
            trm.avg_queue < tcp.avg_queue / 2.0,
            "TRIM AQL {} vs TCP {}",
            trm.avg_queue,
            tcp.avg_queue
        );
        // Fig. 9(d): TRIM's goodput stays near line rate (~98%).
        assert!(
            trm.goodput_mbps > 900.0,
            "TRIM goodput {} Mbps",
            trm.goodput_mbps
        );
    }
}
