//! Experiment modules, one per paper artifact.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`trace`] | Fig. 1, Fig. 2(a)/(b) — trace characterization |
//! | [`impairment`] | Fig. 4 (Reno) and Fig. 6 (TRIM) — ON/OFF impairment |
//! | [`concurrency`] | Fig. 5 (TCP) and Fig. 7 (TRIM) — concurrent SPTs |
//! | [`large_scale`] | Fig. 8 — 210..1050-server two-tier ACTs |
//! | [`properties`] | Fig. 9 — queue length, AQL, drops, goodput |
//! | [`convergence`] | Fig. 10 — fairness/convergence of 5 staggered LPTs |
//! | [`multihop`] | Fig. 11 — multi-hop multi-bottleneck throughput |
//! | [`fat_tree`] | Fig. 12 and Table I — protocol comparison in fat-tree |
//! | [`testbed`] | Fig. 13 — "testbed" ARCT and completion-time CDFs |
//! | [`kmodel`] | Section III.B — the K-guideline sweep (analytical) |
//! | [`ablation`] | design-choice ablations called out in DESIGN.md |
//! | [`incast`] | extension: partition/aggregate query completion |
//! | [`rto_sensitivity`] | extension: RTO_min sweep |
//! | [`serve`] | extension: web-serving session SLOs + mean-field fast path |
//! | [`aqm_matrix`] | extension: RED/CoDel tiny-buffer matrix + stability oracle |
//! | [`million_flow`] | extension: packed incast stressing the wheel + flow slab |

pub mod ablation;
pub mod aqm_matrix;
pub mod concurrency;
pub mod convergence;
pub mod fat_tree;
pub mod impairment;
pub mod incast;
pub mod kmodel;
pub mod large_scale;
pub mod million_flow;
pub mod multihop;
pub mod properties;
pub mod rto_sensitivity;
pub mod serve;
pub mod testbed;
pub mod trace;
