//! The experiment registry: every paper artifact as a named campaign.
//!
//! `trim-bench --list` prints this table; `--only <ids>` selects rows.

use trim_harness::{Campaign, Effort};

use crate::experiments;

/// One registered experiment.
#[derive(Debug)]
pub struct ExperimentSpec {
    /// Stable id used with `--only` and as the campaign id.
    pub id: &'static str,
    /// Human-readable title (paper artifact).
    pub title: &'static str,
    /// Builds the experiment's campaign at the given effort.
    pub campaign: fn(Effort) -> Campaign,
    /// Stems of the top-level `results/*.csv` goldens this experiment
    /// reduces to. `trim-lint --artifacts` statically cross-checks this
    /// list against the committed CSVs, the EXPERIMENTS.md narrative,
    /// and the reduce code in the experiment's module.
    pub artifacts: &'static [&'static str],
}

/// Every experiment, in suite order.
pub static ALL: &[ExperimentSpec] = &[
    ExperimentSpec {
        id: "trace",
        title: "fig1-2 trace characterization",
        campaign: experiments::trace::campaign,
        artifacts: &["fig1_trains", "fig2a_size_cdf", "fig2b_gap_cdf"],
    },
    ExperimentSpec {
        id: "impairment",
        title: "fig4/6 ON-OFF impairment",
        campaign: experiments::impairment::campaign,
        artifacts: &[
            "fig4_6_summary",
            "fig4_6_reno_detail",
            "fig4_6_reno_throughput",
            "fig4_6_trim_detail",
            "fig4_6_trim_throughput",
        ],
    },
    ExperimentSpec {
        id: "concurrency",
        title: "fig5/7 concurrent SPTs",
        campaign: experiments::concurrency::campaign,
        artifacts: &["fig5a_act", "fig5b_minmax", "fig7_tcp_vs_trim"],
    },
    ExperimentSpec {
        id: "large_scale",
        title: "fig8 large-scale ACT",
        campaign: experiments::large_scale::campaign,
        artifacts: &["fig8_exponential", "fig8_uniform"],
    },
    ExperimentSpec {
        id: "properties",
        title: "fig9 queue/goodput properties",
        campaign: experiments::properties::campaign,
        artifacts: &[
            "fig9a_queue_series",
            "fig9b_aql",
            "fig9c_drops",
            "fig9d_goodput",
        ],
    },
    ExperimentSpec {
        id: "convergence",
        title: "fig10 fairness/convergence",
        campaign: experiments::convergence::campaign,
        artifacts: &["fig10_fairness", "fig10_tcp", "fig10_trim"],
    },
    ExperimentSpec {
        id: "multihop",
        title: "fig11 multi-hop bottlenecks",
        campaign: experiments::multihop::campaign,
        artifacts: &["fig11_multihop"],
    },
    ExperimentSpec {
        id: "fat_tree",
        title: "fig12/tab1 fat-tree comparison",
        campaign: experiments::fat_tree::campaign,
        artifacts: &["fig12_fat_tree", "table1_timeouts"],
    },
    ExperimentSpec {
        id: "testbed",
        title: "fig13 testbed ARCT/CDF",
        campaign: experiments::testbed::campaign,
        artifacts: &["fig13a_arct", "fig13e_cdf", "fig13e_web_service"],
    },
    ExperimentSpec {
        id: "kmodel",
        title: "K-guideline analytical model",
        campaign: experiments::kmodel::campaign,
        artifacts: &[
            "kmodel_guideline",
            "kmodel_steady_state",
            "kmodel_validation",
        ],
    },
    ExperimentSpec {
        id: "ablation",
        title: "design-choice ablations",
        campaign: experiments::ablation::campaign,
        artifacts: &[
            "ablation_aqm",
            "ablation_concurrency",
            "ablation_impairment",
        ],
    },
    ExperimentSpec {
        id: "incast",
        title: "ext: incast query completion",
        campaign: experiments::incast::campaign,
        artifacts: &["ext_incast_qct", "ext_incast_tail", "ext_incast_timeouts"],
    },
    ExperimentSpec {
        id: "rto_sensitivity",
        title: "ext: RTO_min sweep",
        campaign: experiments::rto_sensitivity::campaign,
        artifacts: &["ext_rto_sensitivity"],
    },
    ExperimentSpec {
        id: "large_scale_100k",
        title: "ext: engine-scale incast (100k flows at --full)",
        campaign: experiments::large_scale::campaign_100k,
        artifacts: &["ext_scale_incast"],
    },
    ExperimentSpec {
        id: "serve_slo",
        title: "ext: web-serving session SLOs (2k sessions)",
        campaign: experiments::serve::campaign,
        artifacts: &["ext_serve_slo"],
    },
    ExperimentSpec {
        id: "serve_100k",
        title: "ext: highly concurrent serving (100k+ sessions)",
        campaign: experiments::serve::campaign_100k,
        artifacts: &["ext_serve_100k_slo", "ext_serve_100k_queue"],
    },
    ExperimentSpec {
        id: "aqm_matrix",
        title: "ext: AQM tiny-buffer matrix + RED stability crossval",
        campaign: experiments::aqm_matrix::campaign,
        artifacts: &["aqm_matrix", "aqm_stability"],
    },
    ExperimentSpec {
        id: "serve_meanfield",
        title: "ext: mean-field crossval + 1M-connection sweep",
        campaign: experiments::serve::campaign_meanfield,
        artifacts: &["ext_serve_crossval", "ext_serve_sweep"],
    },
    ExperimentSpec {
        id: "million_flow",
        title: "ext: packed incast stressing the wheel + flow slab (1M at --full)",
        campaign: experiments::million_flow::campaign,
        artifacts: &["million_flow"],
    },
];

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<&'static ExperimentSpec> {
    ALL.iter().find(|s| s.id == id)
}

/// Every experiment id, in suite order.
pub fn ids() -> Vec<&'static str> {
    ALL.iter().map(|s| s.id).collect()
}
