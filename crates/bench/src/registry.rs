//! The experiment registry: every paper artifact as a named campaign.
//!
//! `trim-bench --list` prints this table; `--only <ids>` selects rows.

use trim_harness::{Campaign, Effort};

use crate::experiments;

/// One registered experiment.
#[derive(Debug)]
pub struct ExperimentSpec {
    /// Stable id used with `--only` and as the campaign id.
    pub id: &'static str,
    /// Human-readable title (paper artifact).
    pub title: &'static str,
    /// Builds the experiment's campaign at the given effort.
    pub campaign: fn(Effort) -> Campaign,
}

/// Every experiment, in suite order.
pub static ALL: &[ExperimentSpec] = &[
    ExperimentSpec {
        id: "trace",
        title: "fig1-2 trace characterization",
        campaign: experiments::trace::campaign,
    },
    ExperimentSpec {
        id: "impairment",
        title: "fig4/6 ON-OFF impairment",
        campaign: experiments::impairment::campaign,
    },
    ExperimentSpec {
        id: "concurrency",
        title: "fig5/7 concurrent SPTs",
        campaign: experiments::concurrency::campaign,
    },
    ExperimentSpec {
        id: "large_scale",
        title: "fig8 large-scale ACT",
        campaign: experiments::large_scale::campaign,
    },
    ExperimentSpec {
        id: "properties",
        title: "fig9 queue/goodput properties",
        campaign: experiments::properties::campaign,
    },
    ExperimentSpec {
        id: "convergence",
        title: "fig10 fairness/convergence",
        campaign: experiments::convergence::campaign,
    },
    ExperimentSpec {
        id: "multihop",
        title: "fig11 multi-hop bottlenecks",
        campaign: experiments::multihop::campaign,
    },
    ExperimentSpec {
        id: "fat_tree",
        title: "fig12/tab1 fat-tree comparison",
        campaign: experiments::fat_tree::campaign,
    },
    ExperimentSpec {
        id: "testbed",
        title: "fig13 testbed ARCT/CDF",
        campaign: experiments::testbed::campaign,
    },
    ExperimentSpec {
        id: "kmodel",
        title: "K-guideline analytical model",
        campaign: experiments::kmodel::campaign,
    },
    ExperimentSpec {
        id: "ablation",
        title: "design-choice ablations",
        campaign: experiments::ablation::campaign,
    },
    ExperimentSpec {
        id: "incast",
        title: "ext: incast query completion",
        campaign: experiments::incast::campaign,
    },
    ExperimentSpec {
        id: "rto_sensitivity",
        title: "ext: RTO_min sweep",
        campaign: experiments::rto_sensitivity::campaign,
    },
    ExperimentSpec {
        id: "large_scale_100k",
        title: "ext: engine-scale incast (100k flows at --full)",
        campaign: experiments::large_scale::campaign_100k,
    },
];

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<&'static ExperimentSpec> {
    ALL.iter().find(|s| s.id == id)
}

/// Every experiment id, in suite order.
pub fn ids() -> Vec<&'static str> {
    ALL.iter().map(|s| s.id).collect()
}
