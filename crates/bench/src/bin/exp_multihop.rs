//! Regenerates the paper artifact covered by `experiments::multihop` via
//! the campaign engine. Accepts the shared trim-bench flags
//! (`--full`, `--jobs`, `--force`, ...); see `--help`.

fn main() {
    trim_experiments::single_experiment_main("multihop");
}
