//! `trim-check` — the simulator conformance suite.
//!
//! Two layers of checking, both runnable from CI:
//!
//! 1. **Invariant conformance** — monitored reference scenarios (a Reno
//!    and a TRIM 8-way incast) must finish with zero violations under
//!    the full standard monitor set, and a deliberately injected queue
//!    over-admission fault must be caught and attributed to a
//!    simulation time and flow id. The fault run proves the monitors
//!    would actually notice a broken engine, not just stay silent.
//! 2. **Golden-trace regression** — re-runs the selected campaigns
//!    (default `trace,kmodel`, the two fastest) into a scratch
//!    directory at the requested `--jobs` and compares every reduce
//!    CSV field-by-field against the committed goldens under
//!    `--results-dir` (default `results/`) with the documented
//!    tolerance ([`Tolerance::GOLDEN`]).
//!
//! ```text
//! trim-check                       # conformance + trace,kmodel goldens
//! trim-check --jobs 8              # same checks on 8 workers
//! trim-check --only trace          # golden-check a subset
//! trim-check --list                # campaign ids available to --only
//! ```

use netsim::SimTime;
use trim_check::golden::{compare_csv_files, Mismatch, Tolerance};
use trim_experiments::registry;
use trim_harness::cli::{self, CliArgs};
use trim_harness::{engine, ExecConfig};
use trim_workload::{ScenarioBuilder, TrainSpec};

/// Campaigns golden-checked when `--only` is not given: the two fastest
/// in the suite, so the conformance run stays CI-cheap.
const DEFAULT_GOLDEN: &[&str] = &["trace", "kmodel"];

fn main() {
    // Conformance must be monitored whatever the build profile; the
    // override is set before any scenario or campaign is built.
    std::env::set_var("TRIM_CHECK_MONITORS", "1");
    let ids = registry::ids();
    let args = cli::parse_env_or_exit("trim-check", &ids);
    if args.list {
        for spec in registry::ALL {
            cli::emit(&format!("{:<14} {}", spec.id, spec.title));
        }
        return;
    }
    let say = |line: &str| {
        if !args.quiet {
            cli::emit(line);
        }
    };
    say("conformance: runtime invariant monitors");
    if let Err(msg) = clean_runs(args.quiet).and_then(|()| fault_is_caught(args.quiet)) {
        eprintln!("trim-check: {msg}");
        std::process::exit(1);
    }
    say("golden-trace regression");
    if let Err(msg) = golden_regression(&args) {
        eprintln!("trim-check: {msg}");
        std::process::exit(1);
    }
    say("trim-check: all checks passed");
}

/// Reference incast scenarios that must run violation-free under the
/// standard monitor set. `Scenario::report` panics on any recorded
/// violation, so a dirty run cannot slip through.
fn clean_runs(quiet: bool) -> Result<(), String> {
    for (label, trim) in [("reno", false), ("trim", true)] {
        let mut builder = ScenarioBuilder::many_to_one(8);
        if trim {
            builder = builder.trim();
        }
        let mut sc = builder.build();
        for s in 0..8 {
            sc.send_train(s, TrainSpec::at_secs(0.001, 300_000));
        }
        if !sc.sim_mut().monitors_enabled() {
            return Err("standard monitors were not attached (TRIM_CHECK_MONITORS)".into());
        }
        let report = sc.run_for_secs(5.0);
        if report.completed_trains() != 8 {
            return Err(format!(
                "{label}: expected 8 completed trains, got {}",
                report.completed_trains()
            ));
        }
        let stats = sc.sim_mut().audit_stats();
        if !quiet {
            cli::emit(&format!(
                "  clean {label} incast: 8/8 trains, zero violations \
                 ({} injected / {} delivered / {} dropped)",
                stats.injected, stats.delivered, stats.dropped
            ));
        }
    }
    Ok(())
}

/// The monitors must catch a deliberately injected queue
/// over-admission and attribute it (simulation time + flow id).
fn fault_is_caught(quiet: bool) -> Result<(), String> {
    let mut sc = ScenarioBuilder::many_to_one(8).build();
    for s in 0..8 {
        sc.send_train(s, TrainSpec::at_secs(0.001, 300_000));
    }
    let bottleneck = sc.net().bottleneck;
    let sim = sc.sim_mut();
    sim.inject_queue_overadmit(bottleneck, 4);
    sim.run_until(SimTime::from_secs_f64(5.0));
    let violations = sim.violations();
    let caught = violations
        .iter()
        .find(|v| v.monitor == "queue-bound")
        .ok_or("injected queue over-admission was NOT caught by the queue-bound monitor")?;
    if caught.flow.is_none() {
        return Err(format!("violation lacks a flow id: {caught}"));
    }
    if !quiet {
        cli::emit(&format!("  injected over-admit caught: {caught}"));
    }
    Ok(())
}

/// Re-runs each selected campaign from scratch and compares its reduce
/// CSVs against the committed goldens.
fn golden_regression(args: &CliArgs) -> Result<(), String> {
    let ids: Vec<String> = match &args.only {
        Some(sel) => sel.clone(),
        None => DEFAULT_GOLDEN.iter().map(|s| s.to_string()).collect(),
    };
    let scratch = std::env::temp_dir().join(format!("trim-check-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let cfg = ExecConfig {
        jobs: args.jobs,
        force: true,
        results_dir: scratch.clone(),
        quiet: true,
    };
    let mut mismatches: Vec<Mismatch> = Vec::new();
    let mut compared = 0usize;
    for id in &ids {
        let spec =
            registry::find(id).ok_or_else(|| format!("unknown campaign '{id}' (see --list)"))?;
        let mut campaign = (spec.campaign)(args.effort);
        if let Some(seed) = args.seed {
            campaign = campaign.with_seed(seed);
        }
        let outcome = engine::execute(campaign, &cfg).map_err(|e| format!("{id}: {e}"))?;
        for (name, _) in &outcome.reduced {
            let expected = args.results_dir.join(format!("{name}.csv"));
            let actual = scratch.join(format!("{name}.csv"));
            let diffs = compare_csv_files(&expected, &actual, Tolerance::GOLDEN).map_err(|e| {
                format!("{name}: {e} (missing golden? regenerate with trim-bench --force)")
            })?;
            compared += 1;
            mismatches.extend(diffs);
        }
        if !args.quiet {
            cli::emit(&format!("  {id}: re-run complete, artifacts compared"));
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    if mismatches.is_empty() {
        if !args.quiet {
            cli::emit(&format!(
                "  {compared} artifacts within tolerance (rel 1e-9, abs 1e-12)"
            ));
        }
        Ok(())
    } else {
        for m in &mismatches {
            cli::emit(&format!("  MISMATCH {m}"));
        }
        Err(format!(
            "{} golden mismatches across {compared} artifacts",
            mismatches.len()
        ))
    }
}
