//! Regenerates the paper artifact covered by `experiments::trace`.
//! Pass `--full` for paper-scale parameters.

fn main() {
    let effort = trim_experiments::Effort::from_args();
    for t in trim_experiments::experiments::trace::run(effort) {
        t.print();
    }
}
