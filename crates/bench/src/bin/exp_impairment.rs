//! Regenerates the paper artifact covered by `experiments::impairment`.
//! Pass `--full` for paper-scale parameters.

fn main() {
    let effort = trim_experiments::Effort::from_args();
    for t in trim_experiments::experiments::impairment::run(effort) {
        t.print();
    }
}
