//! Regenerates the web-serving SLO artifact covered by
//! `experiments::serve` via the campaign engine. Accepts the shared
//! trim-bench flags (`--full`, `--jobs`, `--force`, ...); see `--help`.
//! The 100k-session and mean-field campaigns run as `trim-bench --only
//! serve_100k,serve_meanfield`.

fn main() {
    trim_experiments::single_experiment_main("serve_slo");
}
