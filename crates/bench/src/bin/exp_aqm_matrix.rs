//! Regenerates the AQM matrix and RED stability cross-validation
//! goldens via the campaign engine. Accepts the shared trim-bench flags
//! (`--full`, `--jobs`, `--force`, ...); see `--help`.

fn main() {
    trim_experiments::single_experiment_main("aqm_matrix");
}
