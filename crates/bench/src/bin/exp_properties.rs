//! Regenerates the paper artifact covered by `experiments::properties`.
//! Pass `--full` for paper-scale parameters.

fn main() {
    let effort = trim_experiments::Effort::from_args();
    for t in trim_experiments::experiments::properties::run(effort) {
        t.print();
    }
}
