//! Regenerates the paper artifact covered by `experiments::fat_tree`.
//! Pass `--full` for paper-scale parameters.

fn main() {
    let effort = trim_experiments::Effort::from_args();
    for t in trim_experiments::experiments::fat_tree::run(effort) {
        t.print();
    }
}
