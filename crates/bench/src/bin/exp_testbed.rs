//! Regenerates the paper artifact covered by `experiments::testbed`.
//! Pass `--full` for paper-scale parameters.

fn main() {
    let effort = trim_experiments::Effort::from_args();
    for t in trim_experiments::experiments::testbed::run(effort) {
        t.print();
    }
}
