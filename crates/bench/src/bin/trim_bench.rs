//! `trim-bench` — the unified campaign CLI.
//!
//! Runs any subset of the paper's experiments as parallel, resumable
//! campaigns:
//!
//! ```text
//! trim-bench                         # everything, quick effort
//! trim-bench --full --jobs 8         # paper-scale sweeps on 8 workers
//! trim-bench --only trace,kmodel     # a selection
//! trim-bench --list                  # experiment ids and titles
//! trim-bench --force                 # recompute, ignoring results/jobs
//! ```
//!
//! Artifacts land under `results/` (see the README for the layout);
//! completed jobs are skipped on re-runs unless `--force` is given.

fn main() {
    let ids = trim_experiments::registry::ids();
    let args = trim_harness::cli::parse_env_or_exit("trim-bench", &ids);
    if let Err(msg) = trim_experiments::drive(&args) {
        eprintln!("trim-bench: {msg}");
        std::process::exit(1);
    }
}
