//! Regenerates the paper artifact covered by `experiments::large_scale`.
//! Pass `--full` for paper-scale parameters.

fn main() {
    let effort = trim_experiments::Effort::from_args();
    for t in trim_experiments::experiments::large_scale::run(effort) {
        t.print();
    }
}
