//! Regenerates the paper artifact covered by `experiments::convergence`.
//! Pass `--full` for paper-scale parameters.

fn main() {
    let effort = trim_experiments::Effort::from_args();
    for t in trim_experiments::experiments::convergence::run(effort) {
        t.print();
    }
}
