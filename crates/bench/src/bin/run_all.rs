//! Runs every experiment in sequence, regenerating all tables and
//! figures of the paper. Kept as an alias of `trim-bench` (same flags,
//! same campaign engine) for scripts that predate the unified CLI.

fn main() {
    let ids = trim_experiments::registry::ids();
    let args = trim_harness::cli::parse_env_or_exit("run_all", &ids);
    if let Err(msg) = trim_experiments::drive(&args) {
        eprintln!("run_all: {msg}");
        std::process::exit(1);
    }
}
