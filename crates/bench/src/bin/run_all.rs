//! Runs every experiment in sequence, regenerating all tables and
//! figures of the paper. Pass `--full` for paper-scale parameters.

use std::time::Instant;

/// One experiment: a name and its regenerator.
type Experiment = (
    &'static str,
    fn(trim_experiments::Effort) -> Vec<trim_experiments::Table>,
);

fn main() {
    let effort = trim_experiments::Effort::from_args();
    let suite: &[Experiment] = &[
        ("fig1-2 trace", trim_experiments::experiments::trace::run),
        ("fig4/6 impairment", trim_experiments::experiments::impairment::run),
        ("fig5/7 concurrency", trim_experiments::experiments::concurrency::run),
        ("fig8 large-scale", trim_experiments::experiments::large_scale::run),
        ("fig9 properties", trim_experiments::experiments::properties::run),
        ("fig10 convergence", trim_experiments::experiments::convergence::run),
        ("fig11 multi-hop", trim_experiments::experiments::multihop::run),
        ("fig12/tab1 fat-tree", trim_experiments::experiments::fat_tree::run),
        ("fig13 testbed", trim_experiments::experiments::testbed::run),
        ("kmodel guideline", trim_experiments::experiments::kmodel::run),
        ("ablations", trim_experiments::experiments::ablation::run),
        ("ext: incast QCT", trim_experiments::experiments::incast::run),
        ("ext: RTO sensitivity", trim_experiments::experiments::rto_sensitivity::run),
    ];
    for (name, run) in suite {
        let t0 = Instant::now();
        println!("\n########## {name} ##########");
        for table in run(effort) {
            table.print();
        }
        println!("[{name}: {:.1}s]", t0.elapsed().as_secs_f64());
    }
}
