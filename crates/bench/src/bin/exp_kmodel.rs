//! Regenerates the paper artifact covered by `experiments::kmodel`.
//! Pass `--full` for paper-scale parameters.

fn main() {
    let effort = trim_experiments::Effort::from_args();
    for t in trim_experiments::experiments::kmodel::run(effort) {
        t.print();
    }
}
