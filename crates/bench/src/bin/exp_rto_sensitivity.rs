//! Regenerates the extension experiment in `experiments::rto_sensitivity`.
//! Pass `--full` for the wider sweep.

fn main() {
    let effort = trim_experiments::Effort::from_args();
    for t in trim_experiments::experiments::rto_sensitivity::run(effort) {
        t.print();
    }
}
