use netsim::prelude::*;
use netsim::time::SimTime;
use trim_tcp::{CcKind, Segment, TcpConfig, TcpHost};
fn main() {
    let cfg = TcpConfig::default()
        .with_min_rto(Dur::from_millis(20))
        .with_sack();
    let mut sim: Simulator<Segment> = Simulator::new();
    let mut rx = TcpHost::new();
    rx.add_receiver(FlowId(0), cfg);
    let rx_node = sim.add_host(Box::new(rx));
    let mut tx = TcpHost::new();
    let idx = tx.add_sender(FlowId(0), rx_node, cfg, &CcKind::Reno);
    tx.schedule_train(idx, SimTime::from_secs_f64(0.001), 60 * 1460);
    let tx_node = sim.add_host(Box::new(tx));
    let (data_ch, _) = sim.connect(
        tx_node,
        rx_node,
        Bandwidth::gbps(1),
        Dur::from_micros(50),
        QueueConfig::drop_tail(1000),
    );
    sim.inject_channel_drops(data_ch, [6, 11, 16, 21, 26]);
    // step in small increments and print conn state
    for step in 1..2000 {
        sim.run_until(SimTime::from_nanos(step * 100_000));
        let host: &TcpHost = sim.host(tx_node);
        let c = host.connection(0);
        if step % 10 == 0 || !c.completed_trains().is_empty() {
            let rxh: &TcpHost = sim.host(rx_node);
            let rs = rxh.receiver(0).stats();
            println!(
                "t={:.1}ms flight={} cwnd={:.1} tx={:?} rx={:?}",
                step as f64 / 10.0,
                c.flight(),
                c.cwnd(),
                c.stats(),
                rs
            );
            if !c.completed_trains().is_empty() {
                break;
            }
        }
    }
}
