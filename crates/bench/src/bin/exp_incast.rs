//! Regenerates the extension experiment in `experiments::incast`.
//! Pass `--full` for the wider sweep.

fn main() {
    let effort = trim_experiments::Effort::from_args();
    for t in trim_experiments::experiments::incast::run(effort) {
        t.print();
    }
}
