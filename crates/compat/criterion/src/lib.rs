//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the subset this workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical engine it runs a short warm-up,
//! then a fixed measurement phase, and prints mean/min per-iteration
//! wall time. Good enough to compare orders of magnitude and spot
//! regressions by eye; not a substitute for the real crate's rigor.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark driver handed to each registered function.
#[derive(Debug)]
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(300),
            measure: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Times the closure under test.
#[derive(Debug)]
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Benchmarks `routine`, timing each call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            let t0 = Instant::now();
            black_box(routine());
            t0.elapsed()
        });
    }

    /// Benchmarks `routine` over inputs built by `setup`, timing only
    /// the routine.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            t0.elapsed()
        });
    }

    fn run(&mut self, mut once: impl FnMut() -> Duration) {
        let warm_end = Instant::now() + self.warmup;
        while Instant::now() < warm_end {
            once();
        }
        let measure_end = Instant::now() + self.measure;
        while Instant::now() < measure_end {
            self.samples.push(once());
        }
        if self.samples.is_empty() {
            self.samples.push(once());
        }
    }

    // Bench results on stdout is the whole point of this harness shim.
    #[allow(clippy::print_stdout)]
    fn report(&self, name: &str) {
        let n = self.samples.len() as u32;
        let total: Duration = self.samples.iter().sum();
        let mean = total / n.max(1);
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!("bench {name:<40} iters {n:>8}  mean {mean:>12?}  min {min:>12?}");
    }
}

/// Groups benchmark functions under one runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        // The closure ran at least once during warm-up + measurement.
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
