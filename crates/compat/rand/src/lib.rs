//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The workspace pins its registry dependencies behind a mirror that is
//! not reachable from air-gapped build environments, so this crate
//! re-implements exactly the subset of the `rand` 0.10 API the
//! workspace uses: [`Rng`], [`RngExt`], [`SeedableRng`], and
//! [`rngs::StdRng`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a small,
//! well-studied generator whose statistical quality is far beyond what
//! the simulations need. It is **not** cryptographically secure, and its
//! streams differ from upstream `rand`'s ChaCha-based `StdRng`; all
//! seeds in this repository were chosen against this implementation.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]
#![warn(missing_docs)]

/// A source of randomness: the core 64-bit generator plus typed draws.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    ///
    /// For floats the result lies in `[0, 1)`.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range sampling, the `rng.random_range(lo..hi)` extension.
pub trait RngExt: Rng {
    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws from `[0, bound)` without modulo bias (Lemire's method with a
/// rejection fallback kept simple: widening multiply + threshold check).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound && low < bound.wrapping_neg() {
            return (m >> 64) as u64;
        }
        // `low < bound` can be biased only in the narrow band below the
        // rejection threshold; re-check precisely.
        let threshold = bound.wrapping_neg() % bound;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u: $t = Standard::from_rng(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let u: $t = Standard::from_rng(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic across platforms and runs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(5i32..=7);
            assert!((5..=7).contains(&y));
            let f = r.random_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let isum: u64 = (0..n).map(|_| r.random_range(0u64..100)).sum();
        let imean = isum as f64 / n as f64;
        assert!((imean - 49.5).abs() < 1.0, "mean {imean}");
    }

    #[test]
    fn works_through_dyn_like_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut r = StdRng::seed_from_u64(2);
        let v = draw(&mut r);
        assert!((0.0..1.0).contains(&v));
    }

    /// Pins the exact xoshiro256++/SplitMix64 streams. Every campaign
    /// seed in `results/` was chosen against these streams, so any
    /// change to the generator is a breaking change to the goldens —
    /// this test makes that explicit.
    #[test]
    fn stream_is_pinned_for_known_seeds() {
        let expect_0 = [
            0x53175d61490b23df_u64,
            0x61da6f3dc380d507,
            0x5c0fdf91ec9a7bfc,
            0x02eebf8c3bbe5e1a,
        ];
        let expect_42 = [
            0xd0764d4f4476689f_u64,
            0x519e4174576f3791,
            0xfbe07cfb0c24ed8c,
            0xb37d9f600cd835b8,
        ];
        let mut r0 = StdRng::seed_from_u64(0);
        let mut r42 = StdRng::seed_from_u64(42);
        for i in 0..4 {
            assert_eq!(r0.next_u64(), expect_0[i], "seed 0, draw {i}");
            assert_eq!(r42.next_u64(), expect_42[i], "seed 42, draw {i}");
        }
    }

    #[test]
    fn integer_ranges_cover_every_value() {
        // A 4-value range must produce all 4 values quickly if sampling
        // is unbiased (expected ~4 draws per value; 1000 is generous).
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.random_range(0usize..4)] = true;
        }
        assert_eq!(seen, [true; 4]);
        // Inclusive ranges reach both endpoints.
        let mut lo_hi = (false, false);
        for _ in 0..1000 {
            match r.random_range(-1i64..=1) {
                -1 => lo_hi.0 = true,
                1 => lo_hi.1 = true,
                _ => {}
            }
        }
        assert_eq!(lo_hi, (true, true));
    }

    #[test]
    fn full_u64_inclusive_range_does_not_loop_forever() {
        let mut r = StdRng::seed_from_u64(11);
        // span == u64::MAX takes the passthrough path.
        let _ = r.random_range(0u64..=u64::MAX);
        let _ = r.random_range(u64::MIN..=u64::MAX);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.random_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "P(true) ~ 0.25, got {frac}");
        assert!((0..100).all(|_| !r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn float_draws_fill_the_unit_interval_uniformly() {
        let mut r = StdRng::seed_from_u64(13);
        let n = 50_000;
        let mut buckets = [0u32; 10];
        for _ in 0..n {
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
            buckets[(u * 10.0) as usize] += 1;
        }
        let expected = n as f64 / 10.0;
        for (i, &b) in buckets.iter().enumerate() {
            let dev = (b as f64 - expected).abs() / expected;
            assert!(dev < 0.1, "bucket {i}: {b} vs {expected}");
        }
    }
}
