//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, re-implementing the subset of its API this workspace's
//! property tests use: range and tuple strategies,
//! [`collection::vec`], [`any`], the [`proptest!`] macro family, and a
//! deterministic seeded case runner.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports the generated inputs and
//!   the deterministic per-test seed instead of a minimized example.
//!   Audit note: upstream's integer strategies shrink by binary search
//!   *toward zero* (or the range's low end), which biases minimized
//!   examples to the domain edge — sometimes past the interesting
//!   region. This shim sidesteps the question entirely: there is no
//!   integer shrinker to bias, failing inputs are reported verbatim,
//!   and generation itself is uniform over the requested range (no
//!   edge-case over-weighting; asserted by
//!   `range_generation_is_uniform_not_zero_biased` below). Where
//!   minimized counterexamples matter — the scenario fuzzer — shrinking
//!   is done by `trim-fuzz`'s domain-aware passes instead, which halve
//!   fan-in/horizon and round parameters under *validity floors*, so a
//!   "minimal" spec is the smallest scenario that still runs, never a
//!   zero-degenerate one.
//! - **Deterministic.** Each test derives its RNG seed from the test
//!   name (FNV-1a), so failures reproduce without a persistence file.
//! - Default case count is 64 (upstream: 256); override per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
pub use rand::Rng as _;

/// Why a single generated case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// A `prop_assume!` precondition was not met; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection (skipped case) with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Per-block runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<V: std::fmt::Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy yielding clones of one fixed value (upstream's `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Copy)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: std::fmt::Debug, F> std::fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Map").field("source", &self.source).finish()
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Boxes a strategy behind the object-safe [`Strategy`] trait so
/// heterogeneous arms can share one element type ([`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Weighted union of strategies over one value type; built by
/// [`prop_oneof!`]. Each draw picks an arm with probability
/// proportional to its weight, then delegates to that arm.
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

impl<V: std::fmt::Debug> Union<V> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! arms need a positive total weight");
        Union { arms, total }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let mut pick = rand::RngExt::random_range(rng, 0..self.total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick exceeded total")
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategy for "any value of `T`": [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates arbitrary values of `T` (`bool` and the primitive ints).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! any_strategy {
    ($($t:ty => $e:expr),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let f: fn(&mut StdRng) -> $t = $e;
                f(rng)
            }
        }
    )*};
}

any_strategy!(
    bool => |r| rand::Rng::random::<bool>(r),
    u8 => |r| rand::Rng::next_u64(r) as u8,
    u16 => |r| rand::Rng::next_u64(r) as u16,
    u32 => |r| rand::Rng::next_u64(r) as u32,
    u64 => |r| rand::Rng::next_u64(r),
    usize => |r| rand::Rng::next_u64(r) as usize,
    i32 => |r| rand::Rng::next_u64(r) as i32,
    i64 => |r| rand::Rng::next_u64(r) as i64
);

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// `vec(element, len_range)`: vectors whose length is uniform in
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min: len.start,
            max_exclusive: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.random_range(self.min..self.max_exclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derives the deterministic RNG seed for a named test.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a, stable across platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `body` against `cases` generated inputs. Used by [`proptest!`];
/// not part of upstream's public API.
pub fn run_cases<V: std::fmt::Debug>(
    test_name: &str,
    config: &ProptestConfig,
    generate: impl Fn(&mut StdRng) -> V,
    body: impl Fn(&V) -> Result<(), TestCaseError>,
) {
    use rand::SeedableRng;
    let seed = seed_for(test_name);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(256);
    while passed < config.cases {
        let input = generate(&mut rng);
        match body(&input) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{test_name}: too many rejected cases ({rejected}) — \
                     prop_assume! conditions are rarely satisfiable"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: case {} failed (seed {seed:#x}): {msg}\n\
                     inputs: {input:#?}",
                    passed + 1
                );
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use super::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property test, failing the current case
/// (rather than panicking) so the runner can report the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("{} (left: `{:?}`, right: `{:?}`)", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Weighted choice among strategies producing one value type
/// (upstream's `prop_oneof!`). Arms are `weight => strategy`, or bare
/// strategies for uniform weight 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strat,)+);
            $crate::run_cases(
                stringify!($name),
                &config,
                |rng| $crate::Strategy::generate(&strategy, rng),
                |input| {
                    #[allow(unused_parens)]
                    let ($(ref $arg,)+) = *input;
                    $(let $arg = ::core::clone::Clone::clone($arg);)+
                    (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })()
                },
            );
        }
    )*};
    // With a block-level config override.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // Without: default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_in_range(v in collection::vec(0u32..10, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_skips_cases(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_and_any(pair in (any::<bool>(), 1u32..5)) {
            let (_b, n) = pair;
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn prop_map_transforms_draws(even in (0u64..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(even % 2, 0);
            prop_assert!(even < 100);
        }

        #[test]
        fn oneof_draws_only_from_arms(x in prop_oneof![
            3 => 0u64..10,
            1 => 100u64..110,
            1 => Just(777u64),
        ]) {
            prop_assert!(x < 10 || (100..110).contains(&x) || x == 777);
        }
    }

    #[test]
    fn oneof_respects_weights() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(crate::seed_for("oneof_weights"));
        let strat = prop_oneof![9 => Just(0u8), 1 => Just(1u8)];
        let n = 4000;
        let ones: u32 = (0..n)
            .map(|_| u32::from(Strategy::generate(&strat, &mut rng)))
            .sum();
        // Expected ~400 of 4000; allow a wide band, just not ~uniform.
        assert!(
            ones > 100 && ones < 1000,
            "weight-1 arm drawn {ones}/{n} times, expected ~{}",
            n / 10
        );
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for("x"), crate::seed_for("x"));
        assert_ne!(crate::seed_for("x"), crate::seed_for("y"));
    }

    #[test]
    fn seed_for_is_fnv1a() {
        // Known-answer FNV-1a values: failures reported with a seed must
        // reproduce forever, so the hash is part of the contract.
        assert_eq!(crate::seed_for(""), 0xcbf29ce484222325);
        assert_eq!(crate::seed_for("a"), 0xaf63dc4c8601ec8c);
        assert_eq!(crate::seed_for("trim"), 0x5b33c0ef512afe89);
    }

    #[test]
    fn run_cases_generates_an_identical_sequence_per_name() {
        use std::cell::RefCell;
        let collect = |name: &str| {
            let seen: RefCell<Vec<(u64, u64)>> = RefCell::new(Vec::new());
            crate::run_cases(
                name,
                &ProptestConfig::with_cases(16),
                |rng| Strategy::generate(&(0u64..1000, 0u64..1000), rng),
                |input| {
                    seen.borrow_mut().push(*input);
                    Ok(())
                },
            );
            seen.into_inner()
        };
        assert_eq!(collect("same_name"), collect("same_name"));
        assert_ne!(collect("same_name"), collect("other_name"));
    }

    /// The crate-doc audit claim, checked: range strategies draw
    /// uniformly and do not over-weight zero or the range edges the way
    /// a shrinker-driven replay would. With 8000 draws over 0..100,
    /// each value's expected count is 80; zero landing past ~2x that
    /// would flag an edge bias.
    #[test]
    fn range_generation_is_uniform_not_zero_biased() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(crate::seed_for("uniformity_audit"));
        let strat = 0u64..100;
        let mut counts = [0u32; 100];
        let n = 8000;
        for _ in 0..n {
            counts[Strategy::generate(&strat, &mut rng) as usize] += 1;
        }
        let expected = n / 100;
        assert!(
            counts[0] < 2 * expected,
            "zero drawn {} times, expected ~{expected}: generation is zero-biased",
            counts[0]
        );
        let &max = counts.iter().max().unwrap();
        let &min = counts.iter().min().unwrap();
        assert!(
            max < 2 * expected && min > expected / 3,
            "draw counts span {min}..{max} around expected {expected}: not uniform"
        );
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn unsatisfiable_assumptions_are_reported() {
        crate::run_cases(
            "never_satisfied",
            &ProptestConfig::with_cases(4),
            |rng| <core::ops::Range<u64> as Strategy>::generate(&(0u64..10), rng),
            |_| Err(TestCaseError::reject("always")),
        );
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failures_panic_with_inputs() {
        crate::run_cases(
            "always_fails",
            &ProptestConfig::with_cases(4),
            |rng| <core::ops::Range<u64> as Strategy>::generate(&(0u64..10), rng),
            |_| Err(TestCaseError::fail("nope")),
        );
    }
}
