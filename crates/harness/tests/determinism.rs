//! End-to-end guarantees of the campaign engine: artifacts are
//! byte-identical regardless of worker count, resume skips completed
//! jobs without changing outputs, and `--force` recomputes.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use trim_harness::store::normalize_manifest;
use trim_harness::{engine, Campaign, ExecConfig, Table};

/// A scratch results root, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("trim-harness-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

static EXECUTIONS: AtomicUsize = AtomicUsize::new(0);

/// A campaign of 12 jobs whose artifacts depend only on the derived
/// seed, plus a reduce table aggregating all of them.
fn campaign() -> Campaign {
    let mut c = Campaign::new("determinism", 0xD37);
    for i in 0..12 {
        c.table_job(format!("job{i}"), &[("i", i.to_string())], move |seed| {
            EXECUTIONS.fetch_add(1, Ordering::SeqCst);
            // A cheap seed-dependent pseudo-computation.
            let mut t = Table::new("t", &["i", "value"]);
            let mut x = seed;
            for _ in 0..=i {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            t.row(&[i.to_string(), format!("{x}")]);
            t
        });
    }
    c.reduce(|records| {
        let mut t = Table::new("sum", &["jobs", "xor"]);
        let xor = records
            .iter()
            .fold(0u64, |acc, r| acc ^ r.only().u64_at(0, 1));
        t.row(&[records.len().to_string(), xor.to_string()]);
        vec![("determinism_sum".to_string(), t)]
    });
    c
}

/// Every file under `root`, keyed by relative path, with the manifests
/// normalized (wall-clock zeroed) so runs compare equal.
fn snapshot(root: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("read_dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .replace('\\', "/");
                let mut bytes = fs::read(&path).expect("read");
                if rel.ends_with(".json") {
                    let text = String::from_utf8(bytes).expect("utf8 manifest");
                    bytes = normalize_manifest(&text).into_bytes();
                }
                out.insert(rel, bytes);
            }
        }
    }
    out
}

fn exec(dir: &Path, jobs: usize, force: bool) -> engine::CampaignOutcome {
    let cfg = ExecConfig {
        jobs,
        force,
        results_dir: dir.to_path_buf(),
        quiet: true,
    };
    engine::execute(campaign(), &cfg).expect("execute")
}

#[test]
fn artifacts_are_identical_for_any_worker_count_and_resume_skips() {
    let serial = Scratch::new("serial");
    let parallel = Scratch::new("parallel");

    let out1 = exec(&serial.0, 1, false);
    let out8 = exec(&parallel.0, 8, false);
    assert_eq!(out1.skipped, 0);
    assert_eq!(out8.skipped, 0);

    let snap1 = snapshot(&serial.0);
    let snap8 = snapshot(&parallel.0);
    assert!(
        snap1.keys().any(|k| k.contains("jobs/determinism")),
        "per-job artifacts exist: {:?}",
        snap1.keys().collect::<Vec<_>>()
    );
    assert!(snap1.contains_key("manifest.json"));
    assert!(snap1.contains_key("determinism_sum.csv"));
    assert_eq!(
        snap1, snap8,
        "--jobs 1 and --jobs 8 must produce byte-identical results"
    );

    // Resume: a second run over the same root executes nothing.
    let before = EXECUTIONS.load(Ordering::SeqCst);
    let resumed = exec(&serial.0, 4, false);
    assert_eq!(resumed.skipped, 12, "every job resumes from disk");
    assert_eq!(
        EXECUTIONS.load(Ordering::SeqCst),
        before,
        "resume must not re-run job closures"
    );
    assert_eq!(snapshot(&serial.0), snap1, "resume leaves artifacts intact");

    // Force: everything recomputes, to the same bytes.
    let forced = exec(&serial.0, 4, true);
    assert_eq!(forced.skipped, 0);
    assert_eq!(EXECUTIONS.load(Ordering::SeqCst), before + 12);
    assert_eq!(snapshot(&serial.0), snap1);
}
