//! The result store: deterministic artifact layout, resume sentinels,
//! and the run manifest.
//!
//! Layout under the results root (default `results/`):
//!
//! ```text
//! results/
//!   <figure>.csv                     # reduce artifacts (one per figure/table)
//!   jobs/<campaign>/<key>/<name>.csv # per-job artifacts
//!   jobs/<campaign>/<key>/JOB_OK     # resume sentinel: seed + artifact list
//!   manifest/<campaign>.json         # per-campaign manifest fragment
//!   manifest.json                    # combined run manifest
//! ```
//!
//! All writes go through a temp-file + rename so concurrent runs never
//! observe a torn artifact. The sentinel is written only after every
//! artifact of its job has been renamed into place, and it records the
//! job seed: a seed change (new campaign seed or changed key
//! derivation) invalidates the resume automatically.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::job::JobRecord;
use crate::table::Table;

/// Manifest schema version, bumped on layout changes.
pub const MANIFEST_VERSION: u32 = 1;

const SENTINEL: &str = "JOB_OK";

/// Handle on the results directory.
#[derive(Clone, Debug)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// Opens (lazily creating) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ResultStore { root: root.into() }
    }

    /// The results root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Replaces every character outside `[A-Za-z0-9._-]` so a job key
    /// maps to a single path component.
    pub fn sanitize(key: &str) -> String {
        key.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect()
    }

    /// Directory holding one job's artifacts.
    pub fn job_dir(&self, campaign: &str, key: &str) -> PathBuf {
        self.root
            .join("jobs")
            .join(Self::sanitize(campaign))
            .join(Self::sanitize(key))
    }

    /// Writes a job's artifacts and its resume sentinel.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_job(
        &self,
        campaign: &str,
        key: &str,
        seed: u64,
        artifacts: &[(String, Table)],
    ) -> io::Result<()> {
        let dir = self.job_dir(campaign, key);
        for (name, table) in artifacts {
            table.write_csv(&dir, &Self::sanitize(name))?;
        }
        let mut sentinel = format!("seed={seed}\n");
        for (name, _) in artifacts {
            sentinel.push_str(&Self::sanitize(name));
            sentinel.push('\n');
        }
        let tmp = dir.join(".JOB_OK.tmp");
        fs::write(&tmp, sentinel)?;
        fs::rename(&tmp, dir.join(SENTINEL))
    }

    /// Attempts to load a previously completed job's artifacts. Returns
    /// `None` unless the sentinel exists, records the same seed, and
    /// every listed artifact reads back cleanly.
    pub fn load_job(&self, campaign: &str, key: &str, seed: u64) -> Option<Vec<(String, Table)>> {
        let dir = self.job_dir(campaign, key);
        let sentinel = fs::read_to_string(dir.join(SENTINEL)).ok()?;
        let mut lines = sentinel.lines();
        let seed_line = lines.next()?;
        if seed_line.strip_prefix("seed=")?.parse::<u64>().ok()? != seed {
            return None;
        }
        let mut artifacts = Vec::new();
        for name in lines {
            let table = Table::read_csv(&dir.join(format!("{name}.csv"))).ok()?;
            artifacts.push((name.to_string(), table));
        }
        Some(artifacts)
    }

    /// Deletes a job's artifacts (the `--force` path), ignoring a
    /// missing directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than "not found".
    pub fn clear_job(&self, campaign: &str, key: &str) -> io::Result<()> {
        match fs::remove_dir_all(self.job_dir(campaign, key)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Atomically writes `contents` to `rel` (a path relative to the
    /// results root, e.g. `perf/incast_1k.json`), creating parent
    /// directories. Same temp-file + rename discipline as every other
    /// artifact, so a concurrent reader never observes a torn file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    ///
    /// # Panics
    ///
    /// Panics if `rel` has no file name (e.g. ends in `/`).
    pub fn write_text_artifact(&self, rel: &str, contents: &str) -> io::Result<()> {
        let path = self.root.join(rel);
        let dir = path.parent().expect("artifact path has a parent");
        fs::create_dir_all(dir)?;
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("artifact path has a file name");
        let tmp = dir.join(format!(".{name}.tmp"));
        fs::write(&tmp, contents)?;
        fs::rename(&tmp, &path)
    }

    /// Writes a reduce artifact to the results root.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_reduce_artifact(&self, name: &str, table: &Table) -> io::Result<()> {
        table.write_csv(&self.root, &Self::sanitize(name))
    }

    /// Writes the per-campaign manifest fragment and rebuilds the
    /// combined `manifest.json` from every fragment present.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_manifest(
        &self,
        campaign: &str,
        seed: u64,
        records: &[JobRecord],
        reduce_artifacts: &[(String, Table)],
    ) -> io::Result<()> {
        let dir = self.root.join("manifest");
        fs::create_dir_all(&dir)?;
        let fragment = campaign_json(self, campaign, seed, records, reduce_artifacts);
        let name = Self::sanitize(campaign);
        let tmp = dir.join(format!(".{name}.json.tmp"));
        fs::write(&tmp, &fragment)?;
        fs::rename(&tmp, dir.join(format!("{name}.json")))?;
        self.rebuild_combined_manifest()
    }

    /// Concatenates every `manifest/<campaign>.json` fragment (sorted
    /// by file name, so the result is order-independent) into
    /// `manifest.json`.
    fn rebuild_combined_manifest(&self) -> io::Result<()> {
        let dir = self.root.join("manifest");
        let mut names: Vec<String> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".json") && !n.starts_with('.'))
            .collect();
        names.sort();
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {MANIFEST_VERSION},\n"));
        out.push_str("  \"campaigns\": [\n");
        for (i, name) in names.iter().enumerate() {
            let fragment = fs::read_to_string(dir.join(name))?;
            out.push_str(&indent(fragment.trim_end(), 4));
            out.push_str(if i + 1 < names.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        let tmp = self.root.join(".manifest.json.tmp");
        fs::write(&tmp, out)?;
        fs::rename(&tmp, self.root.join("manifest.json"))
    }
}

/// Renders one campaign's manifest fragment as JSON.
fn campaign_json(
    store: &ResultStore,
    campaign: &str,
    seed: u64,
    records: &[JobRecord],
    reduce_artifacts: &[(String, Table)],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"id\": {},\n", json_str(campaign)));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"jobs\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"key\": {},\n", json_str(&r.key)));
        out.push_str(&format!("      \"seed\": {},\n", r.seed));
        out.push_str("      \"params\": {");
        for (j, (k, v)) in r.params.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_str(k), json_str(v)));
        }
        out.push_str("},\n");
        out.push_str(&format!("      \"skipped\": {},\n", r.skipped));
        out.push_str(&format!(
            "      \"wall_ms\": {},\n",
            crate::table::num(r.wall_ms)
        ));
        out.push_str("      \"artifacts\": [");
        let rel = |name: &str| {
            format!(
                "jobs/{}/{}/{}.csv",
                ResultStore::sanitize(campaign),
                ResultStore::sanitize(&r.key),
                ResultStore::sanitize(name)
            )
        };
        for (j, (name, table)) in r.artifacts.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"file\": {}, \"rows\": {}}}",
                json_str(&rel(name)),
                table.len()
            ));
        }
        out.push_str("]\n");
        out.push_str(if i + 1 < records.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"reduce_artifacts\": [");
    for (j, (name, table)) in reduce_artifacts.iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"file\": {}, \"rows\": {}}}",
            json_str(&format!("{}.csv", ResultStore::sanitize(name))),
            table.len()
        ));
    }
    out.push_str("]\n");
    out.push_str("}\n");
    let _ = store;
    out
}

/// JSON string literal with minimal escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn indent(s: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    s.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Rewrites every `"wall_ms": <number>` to `"wall_ms": 0` and every
/// `"skipped": <bool>` to `"skipped": false` in a manifest.
///
/// Those two are the intentionally run-specific manifest fields (how
/// long a job took; whether it was resumed from disk). The determinism
/// tests compare manifests after this normalization and everything
/// else byte-for-byte.
pub fn normalize_manifest(manifest: &str) -> String {
    fn rewrite(manifest: &str, key: &str, replacement: &str) -> String {
        let mut out = String::with_capacity(manifest.len());
        let mut rest = manifest;
        while let Some(pos) = rest.find(key) {
            let value_start = pos + key.len();
            out.push_str(&rest[..value_start]);
            let tail = &rest[value_start..];
            let end = tail.find([',', '}', '\n']).unwrap_or(tail.len());
            out.push_str(replacement);
            rest = &tail[end..];
        }
        out.push_str(rest);
        out
    }
    let pass1 = rewrite(manifest, "\"wall_ms\": ", "0");
    rewrite(&pass1, "\"skipped\": ", "false")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> ResultStore {
        let dir = std::env::temp_dir().join(format!("trim_store_test_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        ResultStore::new(dir)
    }

    fn one_row_table() -> Table {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t
    }

    #[test]
    fn job_round_trip_and_seed_check() {
        let store = tmp_store("roundtrip");
        let arts = vec![("data".to_string(), one_row_table())];
        store.write_job("camp", "k/1", 42, &arts).unwrap();
        let loaded = store.load_job("camp", "k/1", 42).expect("resumable");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, "data");
        assert_eq!(loaded[0].1.rows(), arts[0].1.rows());
        // A different seed invalidates the artifacts.
        assert!(store.load_job("camp", "k/1", 43).is_none());
        // Clearing removes them.
        store.clear_job("camp", "k/1").unwrap();
        assert!(store.load_job("camp", "k/1", 42).is_none());
    }

    #[test]
    fn text_artifact_round_trips_and_creates_dirs() {
        let store = tmp_store("text_artifact");
        store
            .write_text_artifact("perf/incast_1k.json", "{\"a\": 1}\n")
            .unwrap();
        let read = fs::read_to_string(store.root().join("perf/incast_1k.json")).unwrap();
        assert_eq!(read, "{\"a\": 1}\n");
        // Overwrite is atomic (rename), not append.
        store
            .write_text_artifact("perf/incast_1k.json", "{}\n")
            .unwrap();
        let read = fs::read_to_string(store.root().join("perf/incast_1k.json")).unwrap();
        assert_eq!(read, "{}\n");
    }

    #[test]
    fn sanitization_collapses_path_chars() {
        assert_eq!(ResultStore::sanitize("a/b c:d"), "a_b_c_d");
        assert_eq!(ResultStore::sanitize("ok-1.2_x"), "ok-1.2_x");
    }

    #[test]
    fn manifest_mentions_jobs_and_artifacts() {
        let store = tmp_store("manifest");
        let rec = JobRecord {
            key: "k1".into(),
            seed: 7,
            params: vec![("n".into(), "5".into())],
            skipped: false,
            wall_ms: 12.5,
            artifacts: vec![("data".into(), one_row_table())],
        };
        store
            .write_manifest("camp", 1, &[rec], &[("fig".into(), one_row_table())])
            .unwrap();
        let combined = fs::read_to_string(store.root().join("manifest.json")).unwrap();
        assert!(combined.contains("\"id\": \"camp\""));
        assert!(combined.contains("\"key\": \"k1\""));
        assert!(combined.contains("\"n\": \"5\""));
        assert!(combined.contains("jobs/camp/k1/data.csv"));
        assert!(combined.contains("fig.csv"));
        assert!(combined.contains("\"wall_ms\": 12.5"));
    }

    #[test]
    fn normalization_zeroes_wall_clock_only() {
        let a = "{\"wall_ms\": 12.5, \"rows\": 3}\n{\"wall_ms\": 0.25}";
        let b = "{\"wall_ms\": 99.125, \"rows\": 3}\n{\"wall_ms\": 7}";
        assert_eq!(normalize_manifest(a), normalize_manifest(b));
        assert!(normalize_manifest(a).contains("\"rows\": 3"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
