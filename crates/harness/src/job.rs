//! [`Job`] and [`Campaign`]: the unit of parallel work and the sweep
//! that owns it.
//!
//! A job is a closure from a derived seed to a set of named tables
//! (its artifacts). The seed is a pure function of the campaign seed
//! and the job key, so a campaign's artifacts do not depend on worker
//! count, scheduling order, or which jobs were resumed from disk.

use crate::table::Table;
use crate::{fnv1a, splitmix64};

/// Named tables produced by a job or a reduce step. The name becomes
/// the artifact's CSV file stem.
pub type Artifacts = Vec<(String, Table)>;

/// One independent unit of work in a campaign.
pub struct Job {
    pub(crate) key: String,
    /// Seed derivation key; defaults to `key`. Jobs that compare
    /// protocols on the *same* random workload share a seed key so the
    /// comparison stays paired.
    pub(crate) seed_key: String,
    pub(crate) params: Vec<(String, String)>,
    pub(crate) run: Box<dyn FnOnce(u64) -> Artifacts + Send>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("key", &self.key)
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

impl Job {
    /// The job's key, unique within its campaign.
    pub fn key(&self) -> &str {
        &self.key
    }
}

/// The completed (or resumed) state of one job, handed to the reduce
/// step and recorded in the run manifest.
#[derive(Debug)]
pub struct JobRecord {
    /// The job key.
    pub key: String,
    /// The derived per-job seed.
    pub seed: u64,
    /// The job's parameters, for the manifest.
    pub params: Vec<(String, String)>,
    /// Whether the artifacts were loaded from a previous run.
    pub skipped: bool,
    /// Wall-clock time executing the job (0 when skipped).
    pub wall_ms: f64,
    /// The job's artifact tables, in production order.
    pub artifacts: Artifacts,
}

impl JobRecord {
    /// The artifact table with the given name.
    ///
    /// # Panics
    ///
    /// Panics if the job produced no artifact of that name.
    pub fn table(&self, name: &str) -> &Table {
        self.artifacts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
            .unwrap_or_else(|| panic!("job '{}' has no artifact '{name}'", self.key))
    }

    /// The sole artifact of a single-table job.
    ///
    /// # Panics
    ///
    /// Panics if the job produced zero or multiple artifacts.
    pub fn only(&self) -> &Table {
        assert_eq!(
            self.artifacts.len(),
            1,
            "job '{}' has {} artifacts, expected 1",
            self.key,
            self.artifacts.len()
        );
        &self.artifacts[0].1
    }
}

type ReduceFn = Box<dyn FnOnce(&[JobRecord]) -> Artifacts + Send>;

/// A named sweep: a seed, a set of jobs, and a reduce step assembling
/// the jobs' artifacts into the experiment's figure tables.
pub struct Campaign {
    pub(crate) id: String,
    pub(crate) seed: u64,
    pub(crate) jobs: Vec<Job>,
    pub(crate) reduce: Option<ReduceFn>,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("id", &self.id)
            .field("seed", &self.seed)
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

impl Campaign {
    /// Creates an empty campaign with the given id and seed.
    pub fn new(id: impl Into<String>, seed: u64) -> Self {
        Campaign {
            id: id.into(),
            seed,
            jobs: Vec::new(),
            reduce: None,
        }
    }

    /// The campaign id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The campaign seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of submitted jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no jobs have been submitted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The submitted job keys, in submission order.
    pub fn job_keys(&self) -> Vec<&str> {
        self.jobs.iter().map(|j| j.key.as_str()).collect()
    }

    /// Replaces the campaign seed (the `--seed` override), re-deriving
    /// every job seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Submits a job producing (possibly several) named tables.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate key.
    pub fn job(
        &mut self,
        key: impl Into<String>,
        params: &[(&str, String)],
        run: impl FnOnce(u64) -> Artifacts + Send + 'static,
    ) -> &mut Self {
        let key = key.into();
        let seed_key = key.clone();
        self.push_job(key, seed_key, params, run)
    }

    /// Like [`Campaign::job`] but deriving the seed from `seed_key`
    /// instead of the job key: jobs that share a `seed_key` see the
    /// identical random workload, keeping A/B protocol comparisons
    /// paired.
    pub fn job_seeded(
        &mut self,
        key: impl Into<String>,
        seed_key: impl Into<String>,
        params: &[(&str, String)],
        run: impl FnOnce(u64) -> Artifacts + Send + 'static,
    ) -> &mut Self {
        self.push_job(key.into(), seed_key.into(), params, run)
    }

    fn push_job(
        &mut self,
        key: String,
        seed_key: String,
        params: &[(&str, String)],
        run: impl FnOnce(u64) -> Artifacts + Send + 'static,
    ) -> &mut Self {
        assert!(
            self.jobs.iter().all(|j| j.key != key),
            "duplicate job key '{key}' in campaign '{}'",
            self.id
        );
        self.jobs.push(Job {
            key,
            seed_key,
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            run: Box::new(run),
        });
        self
    }

    /// Submits a job producing exactly one table, stored under the
    /// artifact name `data`.
    pub fn table_job(
        &mut self,
        key: impl Into<String>,
        params: &[(&str, String)],
        run: impl FnOnce(u64) -> Table + Send + 'static,
    ) -> &mut Self {
        self.job(key, params, move |seed| {
            vec![("data".to_string(), run(seed))]
        })
    }

    /// [`Campaign::table_job`] with an explicit seed key (see
    /// [`Campaign::job_seeded`]).
    pub fn table_job_seeded(
        &mut self,
        key: impl Into<String>,
        seed_key: impl Into<String>,
        params: &[(&str, String)],
        run: impl FnOnce(u64) -> Table + Send + 'static,
    ) -> &mut Self {
        self.job_seeded(key, seed_key, params, move |seed| {
            vec![("data".to_string(), run(seed))]
        })
    }

    /// Sets the reduce step run after every job completes. Its tables
    /// are written to the results root and returned by the engine.
    pub fn reduce(&mut self, f: impl FnOnce(&[JobRecord]) -> Artifacts + Send + 'static) {
        self.reduce = Some(Box::new(f));
    }

    /// The deterministic seed for the job with the given key: a pure
    /// function of `(campaign seed, seed key)`, where the seed key
    /// defaults to the job key.
    pub fn job_seed(&self, key: &str) -> u64 {
        let seed_key = self
            .jobs
            .iter()
            .find(|j| j.key == key)
            .map(|j| j.seed_key.as_str())
            .unwrap_or(key);
        derive_seed(self.seed, seed_key)
    }
}

/// Derives a job seed from a campaign seed and a job key.
pub fn derive_seed(campaign_seed: u64, key: &str) -> u64 {
    splitmix64(campaign_seed ^ fnv1a(key.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_depend_on_campaign_seed_and_key_only() {
        let mut a = Campaign::new("x", 1);
        a.table_job("j1", &[], |_| Table::new("t", &["v"]));
        a.table_job("j2", &[], |_| Table::new("t", &["v"]));
        assert_eq!(a.job_seed("j1"), derive_seed(1, "j1"));
        assert_ne!(a.job_seed("j1"), a.job_seed("j2"));
        let b = Campaign::new("y", 1); // same seed, different id: same derivation
        assert_eq!(a.job_seed("j1"), b.job_seed("j1"));
        let c = Campaign::new("x", 2);
        assert_ne!(a.job_seed("j1"), c.job_seed("j1"));
    }

    #[test]
    fn shared_seed_keys_pair_jobs() {
        let mut c = Campaign::new("x", 9);
        c.table_job_seeded("tcp_n4", "n4", &[], |_| Table::new("t", &["v"]));
        c.table_job_seeded("trim_n4", "n4", &[], |_| Table::new("t", &["v"]));
        c.table_job("solo", &[], |_| Table::new("t", &["v"]));
        assert_eq!(c.job_seed("tcp_n4"), c.job_seed("trim_n4"));
        assert_eq!(c.job_seed("tcp_n4"), derive_seed(9, "n4"));
        assert_ne!(c.job_seed("solo"), c.job_seed("tcp_n4"));
    }

    #[test]
    #[should_panic(expected = "duplicate job key")]
    fn rejects_duplicate_keys() {
        let mut c = Campaign::new("x", 1);
        c.table_job("j", &[], |_| Table::new("t", &["v"]));
        c.table_job("j", &[], |_| Table::new("t", &["v"]));
    }

    #[test]
    fn record_lookup() {
        let mut t = Table::new("t", &["v"]);
        t.row(&["1".into()]);
        let r = JobRecord {
            key: "k".into(),
            seed: 0,
            params: vec![],
            skipped: false,
            wall_ms: 0.0,
            artifacts: vec![("data".into(), t)],
        };
        assert_eq!(r.table("data").len(), 1);
        assert_eq!(r.only().len(), 1);
    }
}
