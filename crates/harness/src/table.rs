//! Aligned-text tables and CSV input/output for experiment artifacts.
//!
//! Job artifacts round-trip through CSV: a job writes its [`Table`]s
//! with [`Table::write_csv`], and the reduce step reads them back with
//! [`Table::read_csv`]. Numeric cells written with [`num`] use Rust's
//! shortest-roundtrip float formatting, so the parse-back is exact and
//! resumed runs aggregate to bit-identical figures.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table, printed in the style of the paper's
/// result tables.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Returns the table with a replacement title (CSV round-trips keep
    /// headers and rows but name tables after the file stem; reduce
    /// steps use this to restore the display title).
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = title.into();
        self
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The cell at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// The cell at `(row, col)` parsed as `f64`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or not a number.
    pub fn f64_at(&self, row: usize, col: usize) -> f64 {
        self.cell(row, col)
            .parse()
            .unwrap_or_else(|_| panic!("table '{}' [{row}][{col}] is not an f64", self.title))
    }

    /// The cell at `(row, col)` parsed as `u64`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or not an integer.
    pub fn u64_at(&self, row: usize, col: usize) -> u64 {
        self.cell(row, col)
            .parse()
            .unwrap_or_else(|_| panic!("table '{}' [{row}][{col}] is not a u64", self.title))
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout (tolerating a closed pipe).
    pub fn print(&self) {
        crate::cli::emit(&self.render());
    }

    /// Serializes the table body (headers + rows) as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the table as CSV under `dir/<name>.csv`, atomically
    /// (write to a temporary file, then rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path, name: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(".{name}.csv.tmp"));
        fs::write(&tmp, self.to_csv())?;
        fs::rename(&tmp, dir.join(format!("{name}.csv")))
    }

    /// Reads a table back from a CSV file written by [`Table::write_csv`].
    /// The title is taken from the file stem.
    ///
    /// Cells must not contain commas (none of the harness's artifacts
    /// do); there is no quoting.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or an empty/ragged file.
    pub fn read_csv(path: &Path) -> io::Result<Table> {
        let text = fs::read_to_string(path)?;
        let title = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut lines = text.lines();
        let headers: Vec<String> = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV"))?
            .split(',')
            .map(str::to_string)
            .collect();
        let mut t = Table {
            title,
            headers,
            rows: Vec::new(),
        };
        for line in lines {
            let cells: Vec<String> = line.split(',').map(str::to_string).collect();
            if cells.len() != t.headers.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("ragged CSV row in {}", path.display()),
                ));
            }
            t.rows.push(cells);
        }
        Ok(t)
    }
}

/// Formats an `f64` with Rust's shortest-roundtrip representation, so
/// `parse::<f64>()` recovers the exact value. Every numeric cell in a
/// figure or artifact CSV routes through this single helper: the
/// golden-trace regression suite compares CSVs field by field, and one
/// formatting policy keeps re-runs bit-identical to the committed
/// goldens.
pub fn fmt_f64(x: f64) -> String {
    format!("{x}")
}

/// Alias of [`fmt_f64`], kept for the job-artifact call sites.
pub fn num(x: f64) -> String {
    fmt_f64(x)
}

/// Formats a duration in seconds adaptively (ms below 1 s).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else {
        format!("{:.3}ms", s * 1e3)
    }
}

/// Formats a ratio as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("name    value"));
        assert!(r.contains("longer  22"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("trim_table_test");
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        t.write_csv(&dir, "demo").unwrap();
        let s = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(s, "x,y\n1,2\n");
        let back = Table::read_csv(&dir.join("demo.csv")).unwrap();
        assert_eq!(back.title(), "demo");
        assert_eq!(back.headers(), t.headers());
        assert_eq!(back.rows(), t.rows());
        assert_eq!(back.u64_at(0, 1), 2);
    }

    #[test]
    fn num_round_trips_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456.789, f64::MAX] {
            assert_eq!(num(x).parse::<f64>().unwrap(), x);
        }
        let t = {
            let mut t = Table::new("n", &["v"]);
            t.row(&[num(0.30000000000000004)]);
            t
        };
        assert_eq!(t.f64_at(0, 0), 0.30000000000000004);
    }

    #[test]
    fn fmt_f64_is_the_num_policy() {
        for x in [0.5, 97.3, 1.0 / 3.0, -2.25e-9] {
            assert_eq!(fmt_f64(x), num(x));
            assert_eq!(fmt_f64(x).parse::<f64>().unwrap(), x);
        }
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(0.5), "0.5");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(1.5), "1.500s");
        assert_eq!(fmt_secs(0.0123), "12.300ms");
        assert_eq!(fmt_pct(0.805), "80.5%");
    }
}
