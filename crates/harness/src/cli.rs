//! Strict command-line parsing for `trim-bench` and the per-experiment
//! binaries.
//!
//! Unlike the old `Effort::from_args` (which scanned for `--full` and
//! silently ignored everything else, so a typo like `--ful` ran the
//! quick suite without complaint), this parser rejects unknown flags
//! and malformed values with an error that names the offending
//! argument.

use std::path::PathBuf;

use crate::Effort;

/// Parsed command-line options shared by every benchmark binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliArgs {
    /// Sweep size: quick (default) or `--full` paper-scale.
    pub effort: Effort,
    /// Worker threads (`--jobs N`); `0` means "available parallelism".
    pub jobs: usize,
    /// Experiment ids selected with `--only a,b`; `None` means all.
    pub only: Option<Vec<String>>,
    /// Recompute jobs even when resumable artifacts exist (`--force`).
    pub force: bool,
    /// Results root (`--results-dir DIR`), default `results/`.
    pub results_dir: PathBuf,
    /// Campaign seed override (`--seed N`).
    pub seed: Option<u64>,
    /// Suppress progress output (`--quiet`).
    pub quiet: bool,
    /// List experiment ids and exit (`--list`).
    pub list: bool,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            effort: Effort::Quick,
            jobs: 0,
            only: None,
            force: false,
            results_dir: PathBuf::from("results"),
            seed: None,
            quiet: false,
            list: false,
        }
    }
}

/// Outcome of parsing: either options to run with, or "print help".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Parsed {
    /// Run with these options.
    Run(CliArgs),
    /// `--help`/`-h` was given; print [`help`] and exit 0.
    Help,
}

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// Returns a message naming the offending argument on unknown flags,
/// missing values, malformed numbers, or positional arguments.
pub fn parse<I, S>(args: I) -> Result<Parsed, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = CliArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let arg = arg.as_ref();
        // Accept both `--flag value` and `--flag=value`.
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg, None),
        };
        let mut value = |name: &str| -> Result<String, String> {
            match inline.clone() {
                Some(v) => Ok(v),
                None => it
                    .next()
                    .map(|s| s.as_ref().to_string())
                    .ok_or_else(|| format!("{name} requires a value")),
            }
        };
        match flag {
            "--help" | "-h" => return Ok(Parsed::Help),
            "--full" => out.effort = Effort::Full,
            "--quick" => out.effort = Effort::Quick,
            "--force" => out.force = true,
            "--quiet" | "-q" => out.quiet = true,
            "--list" => out.list = true,
            "--jobs" | "-j" => {
                let v = value("--jobs")?;
                out.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs: '{v}' is not a number"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                out.seed = Some(
                    v.parse()
                        .map_err(|_| format!("--seed: '{v}' is not a u64"))?,
                );
            }
            "--results-dir" => out.results_dir = PathBuf::from(value("--results-dir")?),
            "--only" => {
                let v = value("--only")?;
                let ids: Vec<String> = v
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if ids.is_empty() {
                    return Err("--only requires a comma-separated list of ids".into());
                }
                out.only = Some(ids);
            }
            _ if flag.starts_with('-') => {
                return Err(format!("unknown flag '{flag}' (try --help)"))
            }
            _ => {
                return Err(format!(
                    "unexpected argument '{flag}' (experiments are selected with --only)"
                ))
            }
        }
        // `--flag=value` with a flag that takes no value.
        if let Some(v) = inline {
            if matches!(
                flag,
                "--help" | "-h" | "--full" | "--quick" | "--force" | "--quiet" | "-q" | "--list"
            ) {
                return Err(format!("{flag} takes no value (got '{v}')"));
            }
        }
    }
    Ok(Parsed::Run(out))
}

/// Parses [`std::env::args`], printing help or an error and exiting as
/// appropriate. `ids` is listed in the help text.
pub fn parse_env_or_exit(program: &str, ids: &[&str]) -> CliArgs {
    match parse(std::env::args().skip(1)) {
        Ok(Parsed::Run(args)) => args,
        Ok(Parsed::Help) => {
            emit(&help(program, ids));
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("{program}: {msg}");
            eprintln!("{}", help(program, ids));
            std::process::exit(2);
        }
    }
}

/// Writes a line to stdout, exiting quietly when the reader has gone
/// away — `trim-bench --list | head` must end like any Unix filter,
/// not with a broken-pipe panic.
pub fn emit(line: &str) {
    use std::io::Write;
    if writeln!(std::io::stdout(), "{line}").is_err() {
        std::process::exit(0);
    }
}

/// Renders the help text.
pub fn help(program: &str, ids: &[&str]) -> String {
    let mut out = format!(
        "usage: {program} [options]\n\
         \n\
         options:\n\
         \x20 --full             paper-scale sweeps (default: quick)\n\
         \x20 --quick            reduced sweeps (the default; minutes, not hours)\n\
         \x20 --only <ids>       run only these experiments (comma-separated)\n\
         \x20 --jobs, -j <N>     worker threads (default: all cores)\n\
         \x20 --force            recompute jobs even when artifacts exist\n\
         \x20 --seed <N>         override every campaign seed\n\
         \x20 --results-dir <D>  results root (default: results/)\n\
         \x20 --quiet, -q        suppress progress output\n\
         \x20 --list             list experiment ids and exit\n\
         \x20 --help, -h         show this help\n"
    );
    if !ids.is_empty() {
        out.push_str("\nexperiments:\n");
        for id in ids {
            out.push_str(&format!("  {id}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> CliArgs {
        match parse(args.iter().copied()).unwrap() {
            Parsed::Run(a) => a,
            Parsed::Help => panic!("unexpected help"),
        }
    }

    #[test]
    fn defaults() {
        let a = run(&[]);
        assert_eq!(a, CliArgs::default());
        assert_eq!(a.effort, Effort::Quick);
    }

    #[test]
    fn full_flags_and_values() {
        let a = run(&[
            "--full",
            "--jobs",
            "4",
            "--only",
            "trace,kmodel",
            "--force",
            "--seed",
            "99",
            "--results-dir",
            "out",
            "--quiet",
        ]);
        assert_eq!(a.effort, Effort::Full);
        assert_eq!(a.jobs, 4);
        assert_eq!(
            a.only.as_deref(),
            Some(&["trace".to_string(), "kmodel".to_string()][..])
        );
        assert!(a.force && a.quiet);
        assert_eq!(a.seed, Some(99));
        assert_eq!(a.results_dir, PathBuf::from("out"));
    }

    #[test]
    fn equals_syntax() {
        let a = run(&["--jobs=8", "--only=trace"]);
        assert_eq!(a.jobs, 8);
        assert_eq!(a.only.as_deref(), Some(&["trace".to_string()][..]));
    }

    #[test]
    fn rejects_typos_and_garbage() {
        assert!(parse(["--ful"]).unwrap_err().contains("--ful"));
        assert!(parse(["trace"]).unwrap_err().contains("--only"));
        assert!(parse(["--jobs", "many"])
            .unwrap_err()
            .contains("not a number"));
        assert!(parse(["--jobs"]).unwrap_err().contains("requires a value"));
        assert!(parse(["--full=yes"])
            .unwrap_err()
            .contains("takes no value"));
        assert!(parse(["--only", ""]).unwrap_err().contains("--only"));
    }

    #[test]
    fn help_flag() {
        assert_eq!(parse(["-h"]).unwrap(), Parsed::Help);
        assert!(help("trim-bench", &["trace"]).contains("--only"));
        assert!(help("trim-bench", &["trace"]).contains("trace"));
    }
}
