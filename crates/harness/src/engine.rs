//! Campaign execution: a work-stealing pool over scoped threads.
//!
//! Workers pull jobs from a shared queue, so a slow job never blocks
//! the others (classic work stealing degenerates to this single-queue
//! form when jobs are coarse, which campaign jobs are). Determinism
//! does not depend on the pool at all: each job's seed is derived from
//! `(campaign seed, job key)` before any thread starts, and results
//! are re-ordered back into submission order before the reduce step.

use std::io;
use std::sync::Mutex;
use std::time::Instant;

use crate::job::{Artifacts, Campaign, Job, JobRecord};
use crate::progress::Progress;
use crate::store::ResultStore;

/// Execution settings for [`execute`].
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Worker threads; `0` means "available parallelism".
    pub jobs: usize,
    /// Recompute jobs even when resumable artifacts exist.
    pub force: bool,
    /// Results root (artifacts, manifest).
    pub results_dir: std::path::PathBuf,
    /// Suppress progress output.
    pub quiet: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            jobs: 0,
            force: false,
            results_dir: std::path::PathBuf::from("results"),
            quiet: false,
        }
    }
}

impl ExecConfig {
    /// The effective worker count.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Everything a finished campaign produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Per-job records in submission order.
    pub records: Vec<JobRecord>,
    /// The reduce step's tables (empty when no reduce was set).
    pub reduced: Artifacts,
    /// How many jobs were resumed from disk.
    pub skipped: usize,
}

impl CampaignOutcome {
    /// The reduce tables, consumed.
    pub fn into_tables(self) -> Vec<crate::table::Table> {
        self.reduced.into_iter().map(|(_, t)| t).collect()
    }
}

/// Runs every job of `campaign` on a scoped thread pool, persists
/// artifacts and the manifest through a [`ResultStore`], then runs the
/// reduce step.
///
/// # Errors
///
/// Propagates filesystem errors from the store.
///
/// # Panics
///
/// Panics if a job panics (the panic is resurfaced on the calling
/// thread with the job key attached).
pub fn execute(campaign: Campaign, cfg: &ExecConfig) -> io::Result<CampaignOutcome> {
    let store = ResultStore::new(cfg.results_dir.clone());
    let Campaign {
        id,
        seed,
        jobs,
        reduce,
    } = campaign;
    let progress = Progress::new(&id, jobs.len(), cfg.quiet);

    let n_jobs = jobs.len();
    let queue: Mutex<Vec<(usize, Job)>> = Mutex::new(jobs.into_iter().enumerate().rev().collect());
    let slots: Mutex<Vec<Option<JobRecord>>> = Mutex::new((0..n_jobs).map(|_| None).collect());
    let failure: Mutex<Option<(String, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    let io_error: Mutex<Option<io::Error>> = Mutex::new(None);

    let workers = cfg.effective_jobs().min(n_jobs.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some((index, job)) = queue.lock().unwrap().pop() else {
                    return;
                };
                match run_one(&store, &id, seed, job, cfg.force) {
                    Ok(record) => {
                        progress.job_done(&record.key, record.wall_ms, record.skipped);
                        slots.lock().unwrap()[index] = Some(record);
                    }
                    Err(RunError::Io(e)) => {
                        io_error.lock().unwrap().get_or_insert(e);
                        queue.lock().unwrap().clear();
                        return;
                    }
                    Err(RunError::Panic(key, payload)) => {
                        failure.lock().unwrap().get_or_insert((key, payload));
                        queue.lock().unwrap().clear();
                        return;
                    }
                }
            });
        }
    });

    if let Some((key, payload)) = failure.into_inner().unwrap() {
        eprintln!("job '{key}' panicked");
        std::panic::resume_unwind(payload);
    }
    if let Some(e) = io_error.into_inner().unwrap() {
        return Err(e);
    }

    let records: Vec<JobRecord> = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every job slot filled"))
        .collect();
    let skipped = records.iter().filter(|r| r.skipped).count();

    let reduced = match reduce {
        Some(f) => f(&records),
        None => Vec::new(),
    };
    for (name, table) in &reduced {
        store.write_reduce_artifact(name, table)?;
    }
    store.write_manifest(&id, seed, &records, &reduced)?;
    progress.finish();

    Ok(CampaignOutcome {
        records,
        reduced,
        skipped,
    })
}

enum RunError {
    Io(io::Error),
    Panic(String, Box<dyn std::any::Any + Send>),
}

fn run_one(
    store: &ResultStore,
    campaign: &str,
    campaign_seed: u64,
    job: Job,
    force: bool,
) -> Result<JobRecord, RunError> {
    let key = job.key.clone();
    let seed = crate::job::derive_seed(campaign_seed, &job.seed_key);

    if force {
        store.clear_job(campaign, &key).map_err(RunError::Io)?;
    } else if let Some(artifacts) = store.load_job(campaign, &key, seed) {
        return Ok(JobRecord {
            key,
            seed,
            params: job.params,
            skipped: true,
            wall_ms: 0.0,
            artifacts,
        });
    }

    let started = Instant::now();
    let run = job.run;
    let artifacts = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || run(seed)))
        .map_err(|payload| RunError::Panic(key.clone(), payload))?;
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    store
        .write_job(campaign, &key, seed, &artifacts)
        .map_err(RunError::Io)?;
    Ok(JobRecord {
        key,
        seed,
        params: job.params,
        skipped: false,
        wall_ms,
        artifacts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{num, Table};

    fn tmp_cfg(tag: &str, jobs: usize) -> ExecConfig {
        let dir = std::env::temp_dir().join(format!("trim_engine_test_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        ExecConfig {
            jobs,
            force: false,
            results_dir: dir,
            quiet: true,
        }
    }

    fn demo_campaign(n: usize) -> Campaign {
        let mut c = Campaign::new("demo", 0xD0);
        for i in 0..n {
            c.table_job(format!("job{i}"), &[("i", i.to_string())], move |seed| {
                let mut t = Table::new("t", &["i", "seed_lo"]);
                t.row(&[i.to_string(), num((seed & 0xFFFF) as f64)]);
                t
            });
        }
        c.reduce(|records| {
            let mut t = Table::new("sum", &["n"]);
            t.row(&[records.len().to_string()]);
            vec![("demo_sum".to_string(), t)]
        });
        c
    }

    #[test]
    fn executes_all_jobs_in_submission_order() {
        let cfg = tmp_cfg("order", 4);
        let out = execute(demo_campaign(9), &cfg).unwrap();
        assert_eq!(out.records.len(), 9);
        assert_eq!(out.skipped, 0);
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.key, format!("job{i}"));
            assert_eq!(r.only().cell(0, 0), i.to_string());
        }
        assert_eq!(out.reduced.len(), 1);
        assert!(cfg.results_dir.join("demo_sum.csv").exists());
        assert!(cfg.results_dir.join("manifest.json").exists());
    }

    #[test]
    fn worker_count_does_not_change_artifacts() {
        let cfg1 = tmp_cfg("det1", 1);
        let cfg8 = tmp_cfg("det8", 8);
        let a = execute(demo_campaign(6), &cfg1).unwrap();
        let b = execute(demo_campaign(6), &cfg8).unwrap();
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.seed, rb.seed);
            assert_eq!(ra.only().rows(), rb.only().rows());
        }
    }

    #[test]
    fn resume_skips_and_force_recomputes() {
        let cfg = tmp_cfg("resume", 2);
        let first = execute(demo_campaign(4), &cfg).unwrap();
        assert_eq!(first.skipped, 0);
        let second = execute(demo_campaign(4), &cfg).unwrap();
        assert_eq!(second.skipped, 4);
        for (a, b) in first.records.iter().zip(&second.records) {
            assert_eq!(a.only().rows(), b.only().rows());
        }
        let forced = execute(demo_campaign(4), &ExecConfig { force: true, ..cfg }).unwrap();
        assert_eq!(forced.skipped, 0);
    }

    #[test]
    fn seed_change_invalidates_resume() {
        let cfg = tmp_cfg("reseed", 2);
        execute(demo_campaign(3), &cfg).unwrap();
        let out = execute(demo_campaign(3).with_seed(0xD1), &cfg).unwrap();
        assert_eq!(out.skipped, 0);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn job_panic_resurfaces() {
        let cfg = tmp_cfg("panic", 2);
        let mut c = Campaign::new("p", 1);
        c.table_job("bad", &[], |_| panic!("boom"));
        let _ = execute(c, &cfg);
    }
}
