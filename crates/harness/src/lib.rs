//! # trim-harness — the simulation-campaign engine
//!
//! Turns an experiment's parameter sweep into a set of independent,
//! seeded [`Job`]s, executes them on a work-stealing thread pool, and
//! persists every result as a deterministic artifact:
//!
//! - **Determinism.** Each job's RNG seed derives from the campaign
//!   seed and the job key alone, so artifacts are byte-identical
//!   regardless of worker count or scheduling order.
//! - **Artifacts.** Every job writes its tables as CSV under
//!   `results/jobs/<campaign>/<key>/`; a run manifest
//!   (`results/manifest.json`) records job keys, parameters, seeds,
//!   wall-clock, and row counts.
//! - **Resume.** A completed job's artifacts are reused on the next run
//!   (`--force` recomputes); the reduce step reads job tables back from
//!   the store, so skipped and freshly-run jobs are indistinguishable.
//!
//! The engine knows nothing about TCP or the paper: experiments in
//! `trim-experiments` build [`Campaign`]s and hand them to
//! [`engine::execute`]. The `trim-bench` binary is the user-facing CLI.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod engine;
pub mod job;
pub mod progress;
pub mod store;
pub mod table;

pub use cli::CliArgs;
pub use engine::{execute, CampaignOutcome, ExecConfig};
pub use job::{Artifacts, Campaign, Job, JobRecord};
pub use store::ResultStore;
pub use table::Table;

/// How much work an experiment should do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// Reduced sweeps/repetitions: minutes for the whole suite.
    Quick,
    /// Paper-scale parameters.
    Full,
}

impl Effort {
    /// Whether this is the full effort.
    pub fn is_full(self) -> bool {
        self == Effort::Full
    }

    /// Picks `quick` or `full` by effort.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Effort::Quick => quick,
            Effort::Full => full,
        }
    }
}

/// FNV-1a over a byte string; the stable hash used for seed derivation.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates structured seed material.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_pick() {
        assert_eq!(Effort::Quick.pick(1, 2), 1);
        assert_eq!(Effort::Full.pick(1, 2), 2);
        assert!(Effort::Full.is_full());
        assert!(!Effort::Quick.is_full());
    }

    #[test]
    fn hashes_are_stable() {
        assert_eq!(fnv1a(b"trace"), fnv1a(b"trace"));
        assert_ne!(fnv1a(b"trace"), fnv1a(b"kmodel"));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
