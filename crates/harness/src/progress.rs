//! Progress reporting to stderr: per-job timing and a running ETA.
//!
//! The reporter assumes jobs within a campaign have broadly similar
//! cost, so the ETA is `mean elapsed per finished job × jobs left`.
//! Skipped (resumed) jobs are excluded from the mean so a partially
//! resumed run does not report a wildly optimistic ETA.

use std::io::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// Shared progress state for one campaign run.
#[derive(Debug)]
pub struct Progress {
    campaign: String,
    total: usize,
    quiet: bool,
    started: Instant,
    state: Mutex<State>,
}

#[derive(Debug, Default)]
struct State {
    done: usize,
    skipped: usize,
    executed_ms: f64,
}

impl Progress {
    /// Creates a reporter for `total` jobs of the named campaign.
    pub fn new(campaign: &str, total: usize, quiet: bool) -> Self {
        let p = Progress {
            campaign: campaign.to_string(),
            total,
            quiet,
            started: Instant::now(),
            state: Mutex::new(State::default()),
        };
        if !quiet && total > 0 {
            eprintln!("[{}] {} job(s) queued", p.campaign, total);
        }
        p
    }

    /// Records a job completion (fresh or resumed) and prints one
    /// status line.
    pub fn job_done(&self, key: &str, wall_ms: f64, skipped: bool) {
        let mut s = self.state.lock().unwrap();
        s.done += 1;
        if skipped {
            s.skipped += 1;
        } else {
            s.executed_ms += wall_ms;
        }
        if self.quiet {
            return;
        }
        let executed = s.done - s.skipped;
        let remaining = self.total.saturating_sub(s.done);
        let eta = if executed > 0 && remaining > 0 {
            let per_job = s.executed_ms / executed as f64;
            format!(", eta {}", fmt_ms(per_job * remaining as f64))
        } else {
            String::new()
        };
        let how = if skipped {
            "resumed".to_string()
        } else {
            fmt_ms(wall_ms)
        };
        eprintln!(
            "[{}] {}/{} {key} ({how}{eta})",
            self.campaign, s.done, self.total
        );
        let _ = std::io::stderr().flush();
    }

    /// Prints the campaign summary line.
    pub fn finish(&self) {
        if self.quiet {
            return;
        }
        let s = self.state.lock().unwrap();
        eprintln!(
            "[{}] done: {} job(s), {} resumed, {} wall",
            self.campaign,
            s.done,
            s.skipped,
            fmt_ms(self.started.elapsed().as_secs_f64() * 1e3)
        );
    }
}

fn fmt_ms(ms: f64) -> String {
    if ms >= 60_000.0 {
        format!("{:.1}min", ms / 60_000.0)
    } else if ms >= 1_000.0 {
        format!("{:.1}s", ms / 1e3)
    } else {
        format!("{ms:.0}ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_reporter_counts_without_printing() {
        let p = Progress::new("camp", 3, true);
        p.job_done("a", 10.0, false);
        p.job_done("b", 0.0, true);
        p.finish();
        let s = p.state.lock().unwrap();
        assert_eq!(s.done, 2);
        assert_eq!(s.skipped, 1);
        assert_eq!(s.executed_ms, 10.0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ms(250.0), "250ms");
        assert_eq!(fmt_ms(2_500.0), "2.5s");
        assert_eq!(fmt_ms(90_000.0), "1.5min");
    }
}
