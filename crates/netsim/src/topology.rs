//! Topology builders for the scenarios evaluated in the paper.
//!
//! Each builder wires hosts and switches into a [`Simulator`] and returns a
//! handle naming the interesting nodes and channels (in particular the
//! bottleneck queues whose statistics the experiments report). Host agents
//! are produced by a caller-supplied factory so the builders stay
//! protocol-agnostic.

use crate::agent::Agent;
use crate::packet::{ChannelId, NodeId, Payload};
use crate::queue::QueueConfig;
use crate::sim::Simulator;
use crate::time::Dur;
use crate::units::Bandwidth;

/// Parameters of one duplex link.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// Rate of each direction.
    pub bandwidth: Bandwidth,
    /// Propagation delay of each direction.
    pub delay: Dur,
    /// Queue configuration of each direction.
    pub queue: QueueConfig,
}

impl LinkSpec {
    /// Creates a link spec.
    pub fn new(bandwidth: Bandwidth, delay: Dur, queue: QueueConfig) -> Self {
        LinkSpec {
            bandwidth,
            delay,
            queue,
        }
    }
}

/// The role a host plays in a built topology, passed to the agent factory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The i-th traffic source.
    Sender(usize),
    /// The aggregating front-end server.
    FrontEnd,
    /// The i-th dedicated receiver (multi-hop scenario's group D).
    Receiver(usize),
}

/// Handle to a many-to-one (incast) topology: `n` senders and one front-end
/// behind a single switch. This is the paper's workhorse scenario
/// (Sections II.B, IV.A, IV.B).
#[derive(Clone, Debug)]
pub struct ManyToOne {
    /// The sender hosts, in index order.
    pub senders: Vec<NodeId>,
    /// The aggregating front-end host.
    pub front_end: NodeId,
    /// The switch joining them.
    pub switch: NodeId,
    /// The bottleneck channel (switch -> front-end) whose queue overflows.
    pub bottleneck: ChannelId,
}

/// Builds a many-to-one topology with identical links everywhere.
pub fn many_to_one<P: Payload>(
    sim: &mut Simulator<P>,
    n_senders: usize,
    link: LinkSpec,
    make: impl FnMut(Role) -> Box<dyn Agent<P>>,
) -> ManyToOne {
    many_to_one_asym(sim, n_senders, link, link, make)
}

/// Builds a many-to-one topology where sender links and the front-end link
/// differ, as in the convergence test (senders at 1.1 Gbps, receiver at
/// 1 Gbps; Fig. 10).
pub fn many_to_one_asym<P: Payload>(
    sim: &mut Simulator<P>,
    n_senders: usize,
    sender_link: LinkSpec,
    front_end_link: LinkSpec,
    mut make: impl FnMut(Role) -> Box<dyn Agent<P>>,
) -> ManyToOne {
    let switch = sim.add_switch();
    let front_end = sim.add_host(make(Role::FrontEnd));
    let (_, bottleneck) = sim.connect(
        front_end,
        switch,
        front_end_link.bandwidth,
        front_end_link.delay,
        front_end_link.queue,
    );
    let senders = (0..n_senders)
        .map(|i| {
            let h = sim.add_host(make(Role::Sender(i)));
            sim.connect(
                h,
                switch,
                sender_link.bandwidth,
                sender_link.delay,
                sender_link.queue,
            );
            h
        })
        .collect();
    ManyToOne {
        senders,
        front_end,
        switch,
        bottleneck,
    }
}

/// Handle to the two-tier large-scale topology of Fig. 8(a): `s` edge
/// switches with `m` servers each, joined by a fabric switch that also
/// serves the front-end.
#[derive(Clone, Debug)]
pub struct TwoTier {
    /// Server hosts grouped by edge switch: `servers[s][i]`.
    pub servers: Vec<Vec<NodeId>>,
    /// All server hosts flattened, in (switch, index) order.
    pub all_servers: Vec<NodeId>,
    /// The aggregating front-end host.
    pub front_end: NodeId,
    /// The fabric (core) switch.
    pub fabric: NodeId,
    /// The edge switches.
    pub edges: Vec<NodeId>,
    /// The bottleneck channel fabric -> front-end.
    pub bottleneck: ChannelId,
}

/// Builds the Fig. 8(a) topology: `n_switches` edge switches, each with
/// `servers_per_switch` servers on `server_link`s; edge switches connect to
/// the fabric via `core_link`s; the front-end hangs off the fabric via
/// `front_end_link`.
pub fn two_tier<P: Payload>(
    sim: &mut Simulator<P>,
    n_switches: usize,
    servers_per_switch: usize,
    server_link: LinkSpec,
    core_link: LinkSpec,
    front_end_link: LinkSpec,
    mut make: impl FnMut(Role) -> Box<dyn Agent<P>>,
) -> TwoTier {
    let fabric = sim.add_switch();
    let front_end = sim.add_host(make(Role::FrontEnd));
    let (_, bottleneck) = sim.connect(
        front_end,
        fabric,
        front_end_link.bandwidth,
        front_end_link.delay,
        front_end_link.queue,
    );
    let mut servers = Vec::new();
    let mut all_servers = Vec::new();
    let mut edges = Vec::new();
    let mut idx = 0;
    for _ in 0..n_switches {
        let edge = sim.add_switch();
        sim.connect(
            edge,
            fabric,
            core_link.bandwidth,
            core_link.delay,
            core_link.queue,
        );
        let mut group = Vec::new();
        for _ in 0..servers_per_switch {
            let h = sim.add_host(make(Role::Sender(idx)));
            idx += 1;
            sim.connect(
                h,
                edge,
                server_link.bandwidth,
                server_link.delay,
                server_link.queue,
            );
            group.push(h);
            all_servers.push(h);
        }
        servers.push(group);
        edges.push(edge);
    }
    TwoTier {
        servers,
        all_servers,
        front_end,
        fabric,
        edges,
        bottleneck,
    }
}

/// Handle to the multi-hop, multi-bottleneck topology of Fig. 11(a).
#[derive(Clone, Debug)]
pub struct MultiHop {
    /// Group A senders (attached to switch 1; cross both bottlenecks).
    pub group_a: Vec<NodeId>,
    /// Group B senders (attached to switch 2; cross the second bottleneck).
    pub group_b: Vec<NodeId>,
    /// Group C senders (attached to switch 1; cross the first bottleneck).
    pub group_c: Vec<NodeId>,
    /// Group D receivers (attached to switch 2), targets of group C.
    pub group_d: Vec<NodeId>,
    /// The front-end host receiving groups A and B.
    pub front_end: NodeId,
    /// Switch 1 and switch 2.
    pub switches: (NodeId, NodeId),
    /// Bottleneck 1: switch 1 -> switch 2.
    pub bottleneck1: ChannelId,
    /// Bottleneck 2: switch 2 -> front-end.
    pub bottleneck2: ChannelId,
}

/// Builds the Fig. 11(a) topology: groups A and C (each `group_size`
/// senders) on switch 1, group B senders and group D receivers on switch 2,
/// the front-end behind switch 2. The two `bottleneck_link`s (sw1->sw2 and
/// sw2->front-end) are oversubscribed relative to the `edge_link`s.
pub fn multi_hop<P: Payload>(
    sim: &mut Simulator<P>,
    group_size: usize,
    edge_link: LinkSpec,
    bottleneck_link: LinkSpec,
    mut make: impl FnMut(Role) -> Box<dyn Agent<P>>,
) -> MultiHop {
    let sw1 = sim.add_switch();
    let sw2 = sim.add_switch();
    let (b1, _) = sim.connect(
        sw1,
        sw2,
        bottleneck_link.bandwidth,
        bottleneck_link.delay,
        bottleneck_link.queue,
    );
    let front_end = sim.add_host(make(Role::FrontEnd));
    let (_, b2) = sim.connect(
        front_end,
        sw2,
        bottleneck_link.bandwidth,
        bottleneck_link.delay,
        bottleneck_link.queue,
    );
    let attach = |sim: &mut Simulator<P>,
                  sw,
                  role,
                  i: usize,
                  make: &mut dyn FnMut(Role) -> Box<dyn Agent<P>>| {
        let h = sim.add_host(make(match role {
            0 => Role::Sender(i),
            _ => Role::Receiver(i),
        }));
        sim.connect(h, sw, edge_link.bandwidth, edge_link.delay, edge_link.queue);
        h
    };
    let group_a: Vec<_> = (0..group_size)
        .map(|i| attach(sim, sw1, 0, i, &mut make))
        .collect();
    let group_b: Vec<_> = (0..group_size)
        .map(|i| attach(sim, sw2, 0, group_size + i, &mut make))
        .collect();
    let group_c: Vec<_> = (0..group_size)
        .map(|i| attach(sim, sw1, 0, 2 * group_size + i, &mut make))
        .collect();
    let group_d: Vec<_> = (0..group_size)
        .map(|i| attach(sim, sw2, 1, i, &mut make))
        .collect();
    MultiHop {
        group_a,
        group_b,
        group_c,
        group_d,
        front_end,
        switches: (sw1, sw2),
        bottleneck1: b1,
        bottleneck2: b2,
    }
}

/// Handle to a k-ary fat-tree (Fig. 12's scenario).
#[derive(Clone, Debug)]
pub struct FatTree {
    /// All hosts, ordered pod by pod, edge switch by edge switch.
    pub hosts: Vec<NodeId>,
    /// Pod count (the `k` of the k-ary fat-tree).
    pub pods: usize,
    /// Edge switches per pod, then aggregation, then core, for inspection.
    pub edge_switches: Vec<NodeId>,
    /// Aggregation switches.
    pub agg_switches: Vec<NodeId>,
    /// Core switches.
    pub core_switches: Vec<NodeId>,
    /// Per-host edge→host downlink channels, indexed like `hosts`. The
    /// downlink is the last hop of every response train, so this is
    /// where serving workloads record queue occupancy.
    pub host_downlinks: Vec<ChannelId>,
}

/// Builds a k-ary fat-tree with `k` pods: each pod has `k/2` edge and `k/2`
/// aggregation switches, each edge switch hosts `k/2` servers, and
/// `(k/2)^2` core switches join the pods. All links share `link`.
///
/// # Panics
///
/// Panics if `k` is odd or less than 2.
pub fn fat_tree<P: Payload>(
    sim: &mut Simulator<P>,
    k: usize,
    link: LinkSpec,
    mut make: impl FnMut(Role) -> Box<dyn Agent<P>>,
) -> FatTree {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree requires an even k >= 2"
    );
    let half = k / 2;
    let core: Vec<_> = (0..half * half).map(|_| sim.add_switch()).collect();
    let mut hosts = Vec::new();
    let mut host_downlinks = Vec::new();
    let mut edge_switches = Vec::new();
    let mut agg_switches = Vec::new();
    let mut host_idx = 0;
    for _pod in 0..k {
        let aggs: Vec<_> = (0..half).map(|_| sim.add_switch()).collect();
        let edges: Vec<_> = (0..half).map(|_| sim.add_switch()).collect();
        for (g, &agg) in aggs.iter().enumerate() {
            // Aggregation switch g connects to core group g.
            for j in 0..half {
                sim.connect(
                    agg,
                    core[g * half + j],
                    link.bandwidth,
                    link.delay,
                    link.queue,
                );
            }
            for &edge in &edges {
                sim.connect(edge, agg, link.bandwidth, link.delay, link.queue);
            }
        }
        for &edge in &edges {
            for _ in 0..half {
                let h = sim.add_host(make(Role::Sender(host_idx)));
                host_idx += 1;
                let (_up, down) = sim.connect(h, edge, link.bandwidth, link.delay, link.queue);
                hosts.push(h);
                host_downlinks.push(down);
            }
        }
        edge_switches.extend(edges);
        agg_switches.extend(aggs);
    }
    FatTree {
        hosts,
        pods: k,
        edge_switches,
        agg_switches,
        core_switches: core,
        host_downlinks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::SinkAgent;
    use crate::packet::{FlowId, Packet, TagPayload};

    fn sink(_role: Role) -> Box<dyn Agent<TagPayload>> {
        Box::new(SinkAgent::default())
    }

    fn spec() -> LinkSpec {
        LinkSpec::new(
            Bandwidth::gbps(1),
            Dur::from_micros(10),
            QueueConfig::default(),
        )
    }

    #[test]
    fn many_to_one_connects_all_senders() {
        let mut sim = Simulator::new();
        let net = many_to_one(&mut sim, 5, spec(), sink);
        assert_eq!(net.senders.len(), 5);
        for &s in &net.senders {
            sim.inject(
                s,
                Packet::new(s, net.front_end, FlowId(0), 1000, TagPayload(0)),
            );
        }
        sim.run();
        assert_eq!(sim.host::<SinkAgent>(net.front_end).received, 5);
    }

    #[test]
    fn two_tier_reaches_front_end() {
        let mut sim = Simulator::new();
        let net = two_tier(&mut sim, 3, 4, spec(), spec(), spec(), sink);
        assert_eq!(net.all_servers.len(), 12);
        assert_eq!(net.servers.len(), 3);
        for &s in &net.all_servers {
            sim.inject(
                s,
                Packet::new(
                    s,
                    net.front_end,
                    FlowId(s.index() as u64),
                    1000,
                    TagPayload(0),
                ),
            );
        }
        sim.run();
        assert_eq!(sim.host::<SinkAgent>(net.front_end).received, 12);
    }

    #[test]
    fn multi_hop_paths() {
        let mut sim = Simulator::new();
        let net = multi_hop(&mut sim, 4, spec(), spec(), sink);
        // A -> front-end crosses both bottlenecks.
        let a = net.group_a[0];
        sim.inject(
            a,
            Packet::new(a, net.front_end, FlowId(1), 1000, TagPayload(0)),
        );
        // C -> D crosses only bottleneck 1.
        let c = net.group_c[0];
        let d = net.group_d[0];
        sim.inject(c, Packet::new(c, d, FlowId(2), 1000, TagPayload(0)));
        // B -> front-end crosses only bottleneck 2.
        let b = net.group_b[0];
        sim.inject(
            b,
            Packet::new(b, net.front_end, FlowId(3), 1000, TagPayload(0)),
        );
        sim.run();
        assert_eq!(sim.host::<SinkAgent>(net.front_end).received, 2);
        assert_eq!(sim.host::<SinkAgent>(d).received, 1);
        let b1 = sim.queue_stats(net.bottleneck1);
        let b2 = sim.queue_stats(net.bottleneck2);
        assert_eq!(b1.enqueued, 2, "A and C cross bottleneck 1");
        assert_eq!(b2.enqueued, 2, "A and B cross bottleneck 2");
    }

    #[test]
    fn fat_tree_structure() {
        let mut sim = Simulator::new();
        let net = fat_tree(&mut sim, 4, spec(), sink);
        assert_eq!(net.hosts.len(), 16); // k^3/4
        assert_eq!(net.core_switches.len(), 4);
        assert_eq!(net.edge_switches.len(), 8);
        assert_eq!(net.agg_switches.len(), 8);
        assert_eq!(net.host_downlinks.len(), net.hosts.len());
    }

    #[test]
    fn fat_tree_downlinks_carry_inbound_traffic() {
        let mut sim = Simulator::new();
        let net = fat_tree(&mut sim, 4, spec(), sink);
        for &ch in &net.host_downlinks {
            sim.enable_queue_recording(ch);
        }
        let dst = net.hosts[5];
        let src = net.hosts[12]; // cross-pod source
        sim.inject(src, Packet::new(src, dst, FlowId(1), 1000, TagPayload(0)));
        sim.run();
        assert_eq!(sim.queue_stats(net.host_downlinks[5]).enqueued, 1);
        assert_eq!(sim.queue_stats(net.host_downlinks[12]).enqueued, 0);
    }

    #[test]
    fn fat_tree_any_to_any() {
        let mut sim = Simulator::new();
        let net = fat_tree(&mut sim, 4, spec(), sink);
        let n = net.hosts.len();
        for (i, &src) in net.hosts.iter().enumerate() {
            let dst = net.hosts[(i + n / 2 + 1) % n]; // cross-pod target
            sim.inject(
                src,
                Packet::new(src, dst, FlowId(i as u64), 1000, TagPayload(0)),
            );
        }
        sim.run();
        let delivered: u64 = net
            .hosts
            .iter()
            .map(|&h| sim.host::<SinkAgent>(h).received)
            .sum();
        assert_eq!(delivered, n as u64);
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn fat_tree_odd_k_rejected() {
        let mut sim: Simulator<TagPayload> = Simulator::new();
        let _ = fat_tree(&mut sim, 3, spec(), sink);
    }
}
