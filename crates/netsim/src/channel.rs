//! Unidirectional channels: a drop-tail queue feeding a transmitter and a
//! fixed-latency wire.
//!
//! A duplex link between two nodes is modelled as two independent
//! [`Channel`]s, one per direction, each with its own queue — the same
//! structure as an NS2 duplex link.

use crate::packet::NodeId;
use crate::queue::{DropTailQueue, QueueConfig};
use crate::time::Dur;
use crate::units::Bandwidth;

/// One direction of a link: FIFO queue, serializing transmitter, and a wire
/// with fixed propagation delay.
#[derive(Debug)]
pub struct Channel<P> {
    /// Node at the receiving end.
    pub(crate) to: NodeId,
    /// Transmission rate.
    pub(crate) bandwidth: Bandwidth,
    /// Propagation delay of the wire.
    pub(crate) delay: Dur,
    /// Packets waiting for the transmitter.
    pub(crate) queue: DropTailQueue<P>,
    /// Whether a packet is currently being serialized.
    pub(crate) busy: bool,
}

impl<P: crate::packet::Payload> Channel<P> {
    pub(crate) fn new(to: NodeId, bandwidth: Bandwidth, delay: Dur, config: QueueConfig) -> Self {
        Channel {
            to,
            bandwidth,
            delay,
            queue: DropTailQueue::new(config),
            busy: false,
        }
    }

    /// The node this channel delivers to.
    pub fn destination(&self) -> NodeId {
        self.to
    }

    /// The channel's transmission rate.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// The wire's propagation delay.
    pub fn propagation_delay(&self) -> Dur {
        self.delay
    }
}
