//! # netsim — a packet-level discrete-event network simulator
//!
//! `netsim` is the simulation substrate for the TCP-TRIM reproduction: an
//! NS2-style packet-level simulator with
//!
//! - integer-nanosecond simulated time ([`time`]),
//! - duplex links built from per-direction drop-tail queues with optional
//!   ECN marking ([`queue`], [`channel`]),
//! - output-queued switches with shortest-path forwarding and deterministic
//!   per-flow ECMP ([`sim`]),
//! - host [`agent::Agent`]s that receive packets and timers and reply
//!   through a [`sim::Ctx`],
//! - the paper's topologies: many-to-one, two-tier, multi-hop and fat-tree
//!   ([`topology`]),
//! - measurement helpers: queue statistics, queue-length recording, and
//!   throughput/series tracing ([`trace`]).
//!
//! Determinism: event ordering is exact (`(time, insertion-sequence)`
//! keys), so a simulation is a pure function of its inputs.
//!
//! ## Example
//!
//! ```
//! use netsim::prelude::*;
//!
//! let mut sim: Simulator<TagPayload> = Simulator::new();
//! let net = topology::many_to_one(
//!     &mut sim,
//!     3,
//!     topology::LinkSpec::new(
//!         Bandwidth::gbps(1),
//!         Dur::from_micros(50),
//!         QueueConfig::drop_tail(100),
//!     ),
//!     |_role| Box::new(SinkAgent::default()),
//! );
//! for &s in &net.senders {
//!     sim.inject(s, Packet::new(s, net.front_end, FlowId(0), 1460, TagPayload(0)));
//! }
//! sim.run();
//! assert_eq!(sim.host::<SinkAgent>(net.front_end).received, 3);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    deny(clippy::dbg_macro, clippy::print_stdout, clippy::float_cmp)
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agent;
pub mod arena;
pub mod channel;
pub mod eventq;
pub mod hash;
pub mod monitor;
pub mod packet;
pub mod queue;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;
pub mod units;
pub mod wheel;

pub use agent::{Agent, SinkAgent};
pub use arena::{PacketArena, PacketRef};
pub use eventq::EventQueue;
pub use hash::{mix64, FastHashMap, FastHashSet};
pub use monitor::{AuditStats, InvariantMonitor, MonitorEvent, ProbeTransition, Violation};
pub use packet::{ChannelId, FlowId, NodeId, Packet, Payload, TagPayload};
pub use queue::{
    Aqm, CoDelConfig, QueueConfig, QueueDiscipline, QueueSample, QueueStats, RedConfig,
};
pub use sim::{Ctx, Simulator, TimerId};
pub use time::{Dur, SimTime};
pub use trace::{PacketEvent, PacketEventKind, PacketTrace, Series, ThroughputMeter};
pub use units::{Bandwidth, QueueCapacity};
pub use wheel::TimerWheel;

/// Convenient glob import for simulator users.
pub mod prelude {
    pub use crate::agent::{Agent, SinkAgent};
    pub use crate::monitor::{
        AuditStats, InvariantMonitor, MonitorEvent, ProbeTransition, Violation,
    };
    pub use crate::packet::{ChannelId, FlowId, NodeId, Packet, Payload, TagPayload};
    pub use crate::queue::{Aqm, CoDelConfig, QueueConfig, QueueDiscipline, QueueStats, RedConfig};
    pub use crate::sim::{Ctx, Simulator, TimerId};
    pub use crate::time::{Dur, SimTime};
    pub use crate::topology;
    pub use crate::trace::{PacketEvent, PacketEventKind, PacketTrace, Series, ThroughputMeter};
    pub use crate::units::{Bandwidth, QueueCapacity};
}
