//! Runtime invariant monitoring hooks for the simulator.
//!
//! An [`InvariantMonitor`] observes a stream of [`MonitorEvent`]s emitted
//! by the engine (and by protocol agents through
//! [`Ctx::emit_monitor`](crate::sim::Ctx::emit_monitor)) and records
//! [`Violation`]s without ever influencing the simulation: monitoring is
//! strictly read-only, so a monitored run produces byte-identical results
//! to an unmonitored one.
//!
//! Cost when disabled: every emission site first checks whether any
//! monitor is attached and returns immediately otherwise, so the
//! overhead of an unmonitored simulation is one branch per event.
//!
//! The built-in monitors (packet conservation, queue bounds, per-port
//! FIFO order, clock monotonicity, cwnd range, and TRIM probe-machine
//! legality) live in the `trim-check` crate; this module only defines
//! the contract.

use core::fmt;

use crate::packet::{ChannelId, FlowId, NodeId};
use crate::time::SimTime;

/// A lifecycle step of TCP-TRIM's Algorithm-1 probe state machine, as
/// reported by the transport layer.
///
/// Legal sequences per flow are `Start → Suspend → (Resolve | Timeout |
/// Abort)` and `Start → Resolve | Timeout | Abort` (a probe can resolve
/// before every probe packet has been transmitted, i.e. before the
/// window suspends).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeTransition {
    /// `pre_send` decided to probe: probe packets scheduled, deadline set.
    Start,
    /// The last probe packet was transmitted; the window is suspended.
    Suspend,
    /// Probe ACKs returned in time; the window was restored (scaled
    /// inheritance or fallback to the minimum window).
    Resolve,
    /// The probe deadline fired; the connection fell back to the minimum
    /// window and resumed.
    Timeout,
    /// A retransmission timeout aborted the probe outright.
    Abort,
}

impl fmt::Display for ProbeTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProbeTransition::Start => "start",
            ProbeTransition::Suspend => "suspend",
            ProbeTransition::Resolve => "resolve",
            ProbeTransition::Timeout => "timeout",
            ProbeTransition::Abort => "abort",
        };
        f.write_str(s)
    }
}

/// One observation handed to every attached monitor.
///
/// Engine-level events (`Clock`, `Injected`, `Delivered`, `Dropped`,
/// `Enqueued`, `Dequeued`) are emitted by the simulator itself;
/// protocol-level events (`CwndUpdate`, `ProbeTransition`) are emitted
/// by transport agents through
/// [`Ctx::emit_monitor`](crate::sim::Ctx::emit_monitor).
#[derive(Clone, Debug, PartialEq)]
pub enum MonitorEvent {
    /// The engine is about to advance the clock to `to` (the timestamp
    /// of the event being dispatched). Event time must never decrease.
    Clock {
        /// The timestamp of the next event.
        to: SimTime,
    },
    /// A host handed a new packet to the network (`Ctx::send` or
    /// `Simulator::inject`).
    Injected {
        /// The sending host.
        node: NodeId,
        /// Flow label of the packet.
        flow: FlowId,
        /// Engine-assigned unique packet id.
        uid: u64,
        /// Wire size in bytes.
        size: u32,
    },
    /// A packet arrived at its destination host.
    Delivered {
        /// The receiving host.
        node: NodeId,
        /// Flow label of the packet.
        flow: FlowId,
        /// Engine-assigned unique packet id.
        uid: u64,
        /// Wire size in bytes.
        size: u32,
    },
    /// A queue refused a packet (capacity, RED, or injected fault).
    Dropped {
        /// The channel whose queue dropped the packet.
        channel: ChannelId,
        /// Flow label of the packet.
        flow: FlowId,
        /// Engine-assigned unique packet id.
        uid: u64,
        /// Wire size in bytes.
        size: u32,
    },
    /// An AQM (RED) dropped a packet early — below capacity — at enqueue
    /// time. Emitted *in addition to* [`MonitorEvent::Dropped`] for the
    /// same packet, carrying the average-queue estimate that drove the
    /// decision.
    AqmEarlyDrop {
        /// The channel whose queue made the decision.
        channel: ChannelId,
        /// Flow label of the packet.
        flow: FlowId,
        /// Engine-assigned unique packet id.
        uid: u64,
        /// Wire size in bytes.
        size: u32,
        /// The EWMA queue estimate (in packets) at the drop decision.
        avg_queue: f64,
    },
    /// CoDel dropped a queued packet at *dequeue* time because its
    /// sojourn stayed above target. Emitted *in addition to*
    /// [`MonitorEvent::Dropped`] for the same packet, carrying the
    /// measured sojourn. The dropped packet was the queue head, so FIFO
    /// monitors treat this as a head removal.
    SojournDrop {
        /// The channel whose queue made the decision.
        channel: ChannelId,
        /// Flow label of the packet.
        flow: FlowId,
        /// Engine-assigned unique packet id.
        uid: u64,
        /// Wire size in bytes.
        size: u32,
        /// How long the packet sat in the queue, in nanoseconds.
        sojourn_ns: u64,
    },
    /// A packet was accepted into a channel's queue.
    Enqueued {
        /// The channel.
        channel: ChannelId,
        /// Flow label of the packet.
        flow: FlowId,
        /// Engine-assigned unique packet id.
        uid: u64,
        /// Queue length in packets immediately after the enqueue.
        len_after: usize,
        /// The queue's capacity in packets, when configured in packets
        /// (`None` for byte-capacity queues).
        cap_pkts: Option<usize>,
    },
    /// A packet left a channel's queue for the transmitter.
    Dequeued {
        /// The channel.
        channel: ChannelId,
        /// Flow label of the packet.
        flow: FlowId,
        /// Engine-assigned unique packet id.
        uid: u64,
    },
    /// A transport connection updated its congestion window.
    CwndUpdate {
        /// The connection's flow label.
        flow: FlowId,
        /// The new congestion window in segments.
        cwnd: f64,
        /// The configured window floor in segments.
        min_cwnd: f64,
        /// The configured window ceiling in segments.
        max_cwnd: f64,
    },
    /// A transport connection ran its congestion-control ACK hook.
    ///
    /// `before`/`after` bracket the entire per-ACK window update
    /// (additive growth and any multiplicative reduction combined), so a
    /// differential oracle can bound the worst-case per-ACK cut: no
    /// controller in this workspace may reduce the window below legacy
    /// TCP's halving on a single ACK (TRIM's Eq. 2–3 scale factor
    /// `1 - ep/2` is strictly above 1/2; DCTCP/L2DCT cut by at most
    /// `alpha/2 <= 1/2`).
    AckWindow {
        /// The connection's flow label.
        flow: FlowId,
        /// Congestion window in segments before the ACK was processed.
        before: f64,
        /// Congestion window in segments after the ACK was processed.
        after: f64,
        /// Whether the ACK answered a TRIM probe packet (probe
        /// resolution restores an inherited window and is exempt from
        /// the per-ACK reduction bound).
        probe_echo: bool,
    },
    /// A TCP-TRIM probe state-machine step.
    ProbeTransition {
        /// The connection's flow label.
        flow: FlowId,
        /// The step taken.
        transition: ProbeTransition,
    },
    /// An application-level user session opened on a connection (the
    /// serve workload's request/response exchange began).
    SessionStarted {
        /// The flow label of the connection carrying the session.
        flow: FlowId,
        /// Requests the session intends to issue over its lifetime.
        planned_requests: u32,
    },
    /// A session issued one request (one response train was enqueued).
    RequestIssued {
        /// The flow label of the connection carrying the session.
        flow: FlowId,
        /// Zero-based index of the request within the session.
        index: u32,
        /// Response bytes the request asks for.
        bytes: u64,
    },
    /// One request's response train was fully acknowledged.
    ResponseCompleted {
        /// The flow label of the connection carrying the session.
        flow: FlowId,
        /// Zero-based index of the completed request.
        index: u32,
    },
    /// A session closed after its final response completed.
    SessionEnded {
        /// The flow label of the connection carrying the session.
        flow: FlowId,
        /// Requests the session issued in total.
        issued: u32,
        /// Responses that completed in total.
        completed: u32,
    },
}

/// A recorded invariant violation: which monitor, when (simulation
/// time), which flow (when attributable), and a human-readable detail.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Simulation time at which the violation was observed.
    pub at: SimTime,
    /// Name of the monitor that recorded it.
    pub monitor: &'static str,
    /// The flow involved, when the event carries one.
    pub flow: Option<FlowId>,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] t={}ns", self.monitor, self.at.as_nanos())?;
        if let Some(flow) = self.flow {
            write!(f, " {flow}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The engine's own packet accounting, handed to
/// [`InvariantMonitor::finalize`] so conservation monitors can
/// cross-check their event-derived tallies against ground truth.
///
/// The conservation identity at any quiescent point is
/// `injected == delivered + dropped + queued_pkts + pending_arrivals`
/// (the last two terms are the in-flight population: packets waiting in
/// queues plus packets on the wire / in the transmitter, which the
/// engine represents as pending `Arrival` events).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuditStats {
    /// Packets injected by hosts since the start of the simulation.
    pub injected: u64,
    /// Packets delivered to destination hosts.
    pub delivered: u64,
    /// Packets dropped by queues.
    pub dropped: u64,
    /// Packets currently sitting in channel queues.
    pub queued_pkts: u64,
    /// Packets currently on the wire or in a transmitter (pending
    /// `Arrival` events).
    pub pending_arrivals: u64,
    /// Packets currently resident in the engine's packet arena. The
    /// arena holds exactly the packets with a pending `Arrival`, so this
    /// must equal `pending_arrivals` at every instant and zero once a
    /// run drains — anything else is a leak (or double-free) in the
    /// engine's slab accounting.
    pub arena_live: u64,
}

impl AuditStats {
    /// Packets currently inside the network (queued or propagating).
    pub fn in_flight(&self) -> u64 {
        self.queued_pkts + self.pending_arrivals
    }
}

/// A runtime invariant checker attached to a
/// [`Simulator`](crate::sim::Simulator).
///
/// Monitors are strictly observers: `observe` receives a shared
/// reference to each event and has no channel back into the engine, so
/// attaching any number of monitors cannot change simulation results.
/// Record problems with an internal `Vec<Violation>` and report them
/// from [`InvariantMonitor::violations`]; do not panic from `observe`,
/// so a single run can surface every violation at once.
pub trait InvariantMonitor {
    /// A short stable name, used in violation reports.
    fn name(&self) -> &'static str;

    /// Called for every [`MonitorEvent`], with the simulation time at
    /// which it occurred.
    fn observe(&mut self, at: SimTime, ev: &MonitorEvent);

    /// Called when [`Simulator::run_until`](crate::sim::Simulator::run_until)
    /// returns, with the engine's own packet accounting. May be called
    /// more than once (once per `run_until`); implementations should
    /// re-derive any end-of-run checks each time.
    fn finalize(&mut self, _at: SimTime, _audit: &AuditStats) {}

    /// The violations recorded so far.
    fn violations(&self) -> &[Violation];
}

impl fmt::Debug for dyn InvariantMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InvariantMonitor({}, {} violations)",
            self.name(),
            self.violations().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_includes_time_flow_and_monitor() {
        let v = Violation {
            at: SimTime::from_nanos(1234),
            monitor: "queue-bound",
            flow: Some(FlowId(7)),
            detail: "len 101 > cap 100".into(),
        };
        let s = v.to_string();
        assert!(s.contains("queue-bound"));
        assert!(s.contains("t=1234ns"));
        assert!(s.contains("f7"));
        assert!(s.contains("len 101 > cap 100"));
    }

    #[test]
    fn audit_in_flight_sums_queues_and_wires() {
        let a = AuditStats {
            injected: 10,
            delivered: 5,
            dropped: 2,
            queued_pkts: 2,
            pending_arrivals: 1,
            arena_live: 1,
        };
        assert_eq!(a.in_flight(), 3);
        assert_eq!(a.delivered + a.dropped + a.in_flight(), a.injected);
    }
}
