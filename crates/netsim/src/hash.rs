//! Fast deterministic hashing for hot-path lookup tables.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed per
//! process and costs tens of cycles per integer key. Simulation hot
//! paths — flow demultiplexing, timer-cancellation sets, forced-drop
//! indices — hash small integers millions of times per run, so they use
//! this fixed-key finalizer instead: a single splitmix64 pass, the same
//! mixer the engine already uses for ECMP and seed derivation.
//!
//! Determinism: the hash of a key is a pure function of the key (no
//! per-process randomness), so any accidental dependence on hash-map
//! internals is at least reproducible across runs and machines. Code
//! must still never iterate these maps where ordering can influence
//! simulation results.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The engine's standard 64-bit mixer (splitmix64 finalizer).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A [`Hasher`] that folds the input into a 64-bit accumulator and
/// finishes with one splitmix64 pass. Built for small integer keys
/// (`u32`/`u64`/newtypes thereof); byte-string input is folded 8 bytes
/// at a time, which is adequate for the short keys used here.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.state = mix64(self.state ^ u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.state = self.state.rotate_left(32) ^ u64::from(i);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = mix64(self.state) ^ i;
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// [`BuildHasherDefault`] over [`FastHasher`]: a drop-in, deterministic
/// `S` parameter for `HashMap`/`HashSet`.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FastHashMap<u64, u32> = FastHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m[&i], (i * 2) as u32);
        }
        let mut s: FastHashSet<u64> = FastHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert!(s.remove(&42));
        assert!(!s.remove(&42));
    }

    #[test]
    fn hashing_is_deterministic_across_hasher_instances() {
        use std::hash::BuildHasher;
        let b = FastBuildHasher::default();
        let h = |x: u64| b.hash_one(x);
        assert_eq!(h(7), h(7));
        assert_ne!(h(7), h(8));
    }

    #[test]
    fn mix64_matches_known_splitmix_values() {
        // splitmix64(seed = 0) first output.
        assert_eq!(mix64(0), 0xe220_a839_7b1d_cdaf);
    }
}
