//! Link bandwidth and buffer-capacity units.

use core::fmt;

use crate::time::Dur;

/// Link bandwidth in bits per second.
///
/// ```
/// use netsim::units::Bandwidth;
/// use netsim::time::Dur;
///
/// let gbps = Bandwidth::gbps(1);
/// // A 1500-byte packet serializes in 12 microseconds at 1 Gbps.
/// assert_eq!(gbps.serialization_time(1500), Dur::from_micros(12));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Creates a bandwidth from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is zero; a zero-rate link never drains.
    pub fn bps(bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "bandwidth must be positive");
        Bandwidth(bits_per_sec)
    }

    /// Creates a bandwidth from megabits per second.
    pub fn mbps(mbits: u64) -> Self {
        Bandwidth::bps(mbits * 1_000_000)
    }

    /// Creates a bandwidth from gigabits per second.
    pub fn gbps(gbits: u64) -> Self {
        Bandwidth::bps(gbits * 1_000_000_000)
    }

    /// The rate in bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// The rate in packets per second for a given packet size in bytes.
    ///
    /// This is the `C` of the paper's steady-state model (Section III.B),
    /// which measures capacity in packets per second.
    pub fn packets_per_sec(self, packet_bytes: u32) -> f64 {
        self.0 as f64 / (packet_bytes as f64 * 8.0)
    }

    /// Time to serialize `bytes` onto the wire at this rate, rounded up to
    /// the next nanosecond so that back-to-back packets never overlap.
    pub fn serialization_time(self, bytes: u32) -> Dur {
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        Dur::from_nanos(ns as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{}Gbps", self.0 / 1_000_000_000)
        } else if self.0.is_multiple_of(1_000_000) {
            write!(f, "{}Mbps", self.0 / 1_000_000)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

/// Capacity of a switch queue.
///
/// The paper sizes buffers in packets for the 1 Gbps scenarios (100 packets)
/// and in bytes for the fat-tree scenario (350 KB), so both units are
/// supported.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueueCapacity {
    /// At most this many packets may be queued (excluding the one in
    /// transmission).
    Packets(usize),
    /// At most this many bytes may be queued (excluding the packet in
    /// transmission).
    Bytes(u64),
}

impl QueueCapacity {
    /// Whether a queue currently holding `pkts` packets / `bytes` bytes can
    /// accept one more packet of `incoming_bytes`.
    pub fn admits(self, pkts: usize, bytes: u64, incoming_bytes: u32) -> bool {
        match self {
            QueueCapacity::Packets(cap) => pkts < cap,
            QueueCapacity::Bytes(cap) => bytes + incoming_bytes as u64 <= cap,
        }
    }
}

impl fmt::Display for QueueCapacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueCapacity::Packets(p) => write!(f, "{p}pkts"),
            QueueCapacity::Bytes(b) => write!(f, "{b}B"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_exact() {
        // 1460 B at 1 Gbps = 11.68 us.
        assert_eq!(
            Bandwidth::gbps(1).serialization_time(1460),
            Dur::from_nanos(11_680)
        );
        // 100 Mbps is 10x slower.
        assert_eq!(
            Bandwidth::mbps(100).serialization_time(1460),
            Dur::from_nanos(116_800)
        );
    }

    #[test]
    fn serialization_time_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666..s -> rounds up.
        let t = Bandwidth::bps(3).serialization_time(1);
        assert_eq!(t.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn packets_per_sec_matches_paper_units() {
        // 1 Gbps / (1460 B * 8) = 85616.4 packets/s.
        let c = Bandwidth::gbps(1).packets_per_sec(1460);
        assert!((c - 85_616.438).abs() < 0.01);
    }

    #[test]
    fn capacity_packets() {
        let cap = QueueCapacity::Packets(2);
        assert!(cap.admits(0, 0, 1500));
        assert!(cap.admits(1, 1500, 1500));
        assert!(!cap.admits(2, 3000, 1500));
    }

    #[test]
    fn capacity_bytes() {
        let cap = QueueCapacity::Bytes(3000);
        assert!(cap.admits(0, 0, 1500));
        assert!(cap.admits(5, 1500, 1500));
        assert!(!cap.admits(1, 1501, 1500));
    }

    #[test]
    fn display() {
        assert_eq!(Bandwidth::gbps(10).to_string(), "10Gbps");
        assert_eq!(Bandwidth::mbps(100).to_string(), "100Mbps");
        assert_eq!(QueueCapacity::Packets(100).to_string(), "100pkts");
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::bps(0);
    }
}
