//! Simulated time.
//!
//! The simulator measures time in integer nanoseconds since the start of the
//! run. Integer time keeps event ordering exact and runs reproducible: two
//! events scheduled for the same instant are delivered in insertion order,
//! with no floating-point drift.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, in nanoseconds since the simulation epoch.
///
/// `SimTime` is an absolute point on the simulation clock; [`Dur`] is the
/// distance between two such points.
///
/// ```
/// use netsim::time::{Dur, SimTime};
///
/// let t = SimTime::ZERO + Dur::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// assert_eq!(t - SimTime::ZERO, Dur::from_millis(3));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use netsim::time::Dur;
///
/// assert_eq!(Dur::from_micros(50) * 2, Dur::from_micros(100));
/// assert!(Dur::from_millis(1) > Dur::from_micros(999));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dur(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates an instant from fractional seconds since the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid simulation time {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, or [`Dur::ZERO`] if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);
    /// The greatest representable span.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Dur(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Dur(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        Dur((s * 1e9).round() as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the span by a float factor, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> Dur {
        assert!(f.is_finite() && f >= 0.0, "invalid duration factor {f}");
        Dur((self.0 as f64 * f).round() as u64)
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: Dur) -> Dur {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: Dur) -> Dur {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Subtracts, clamping at zero instead of underflowing.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for SimTime {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is longer than `self`.
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Dur::from_secs(1), Dur::from_millis(1000));
        assert_eq!(Dur::from_millis(1), Dur::from_micros(1000));
        assert_eq!(Dur::from_micros(1), Dur::from_nanos(1000));
        assert_eq!(SimTime::from_secs(2), SimTime::from_nanos(2_000_000_000));
    }

    #[test]
    fn float_round_trip() {
        let t = SimTime::from_secs_f64(0.123_456_789);
        assert_eq!(t.as_nanos(), 123_456_789);
        assert!((t.as_secs_f64() - 0.123_456_789).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + Dur::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t - SimTime::from_secs(1), Dur::from_millis(500));
        assert_eq!(Dur::from_millis(3) * 4, Dur::from_millis(12));
        assert_eq!(Dur::from_millis(12) / 4, Dur::from_millis(3));
    }

    #[test]
    fn saturating_ops() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), Dur::ZERO);
        assert_eq!(b.saturating_since(a), Dur::from_secs(1));
        assert_eq!(
            Dur::from_nanos(5).saturating_sub(Dur::from_nanos(9)),
            Dur::ZERO
        );
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(Dur::from_nanos(10).mul_f64(1.26), Dur::from_nanos(13));
        assert_eq!(Dur::from_millis(2).mul_f64(0.5), Dur::from_millis(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(Dur::from_nanos(12).to_string(), "12ns");
        assert_eq!(Dur::from_micros(50).to_string(), "50.000us");
        assert_eq!(Dur::from_millis(7).to_string(), "7.000ms");
        assert_eq!(Dur::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    #[should_panic]
    fn negative_seconds_rejected() {
        let _ = Dur::from_secs_f64(-1.0);
    }

    #[test]
    fn min_max() {
        let a = Dur::from_micros(3);
        let b = Dur::from_micros(5);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
