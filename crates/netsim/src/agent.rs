//! Host agents: the interface between the simulator and protocol code.

use std::any::Any;

use crate::packet::{Packet, Payload};
use crate::sim::Ctx;

/// Protocol logic attached to a host node.
///
/// The simulator calls these hooks with a [`Ctx`] through which the agent
/// reads the clock, sends packets, and manages timers. Agents must be
/// `'static` (and implement [`Any`]) so experiment code can downcast them
/// back to their concrete type after a run via
/// [`Simulator::host`](crate::sim::Simulator::host).
///
/// Switches are not agents: forwarding is handled inside the engine.
pub trait Agent<P: Payload>: Any {
    /// Called once, at time zero, before any event is processed. Schedule
    /// initial timers and send initial packets here.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, P>) {}

    /// Called when a packet addressed to this host arrives.
    fn on_packet(&mut self, ctx: &mut Ctx<'_, P>, pkt: Packet<P>);

    /// Called when a timer set via [`Ctx::set_timer`] fires. `token` is the
    /// value passed when the timer was set; its meaning is private to the
    /// agent.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, P>, token: u64);
}

/// An agent that drops every packet; useful as a passive sink in tests.
#[derive(Debug, Default)]
pub struct SinkAgent {
    /// Packets received so far.
    pub received: u64,
    /// Bytes received so far.
    pub received_bytes: u64,
}

impl<P: Payload> Agent<P> for SinkAgent {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_, P>, pkt: Packet<P>) {
        self.received += 1;
        self.received_bytes += pkt.size as u64;
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, P>, _token: u64) {}
}
