//! Packet arena: slab + freelist storage for in-flight packets.
//!
//! Every packet on the wire — dequeued into a transmitter and awaiting
//! its scheduled `Arrival` — lives in one [`PacketArena`]. Events then
//! carry a 4-byte [`PacketRef`] instead of the packet itself, which
//! keeps event-queue entries small and `Copy`, and means steady-state
//! simulation performs zero per-packet heap allocation: freed slots are
//! recycled through a freelist, so after warm-up the slab stops
//! growing. (Packets waiting in a channel queue live in that queue's
//! ring buffer, which likewise reuses its storage.)
//!
//! The arena also doubles as a leak detector. [`PacketArena::live`]
//! counts slots currently allocated; it must equal the engine's count
//! of pending `Arrival` events at every instant, and after a drained
//! run it must be zero. The packet-conservation monitor in
//! `crates/check` asserts exactly that via
//! [`AuditStats::arena_live`](crate::monitor::AuditStats).

use crate::packet::Packet;

/// Index of a live packet in a [`PacketArena`].
///
/// Refs are move-once tickets: the engine allocates one per injected or
/// enqueued packet and consumes it exactly once via
/// [`PacketArena::free`]. Holding a ref past its `free` is a logic bug
/// — the slot may be recycled for an unrelated packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PacketRef(u32);

impl PacketRef {
    /// Raw slot index (diagnostics only).
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Slab of in-flight packets with freelist recycling.
#[derive(Clone, Debug)]
pub struct PacketArena<P> {
    slots: Vec<Option<Packet<P>>>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
}

impl<P> Default for PacketArena<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> PacketArena<P> {
    /// Creates an empty arena.
    pub const fn new() -> Self {
        PacketArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
        }
    }

    /// Stores `pkt`, recycling a freed slot when one is available.
    #[inline]
    pub fn alloc(&mut self, pkt: Packet<P>) -> PacketRef {
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx as usize].is_none());
                self.slots[idx as usize] = Some(pkt);
                PacketRef(idx)
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("arena exceeds u32 slots"); // trim-lint: allow(no-panic-in-library, reason = "4G live packets exhausts memory long before this fires")
                self.slots.push(Some(pkt));
                PacketRef(idx)
            }
        }
    }

    /// Removes and returns the packet behind `r`, releasing its slot.
    ///
    /// Panics if `r` was already freed — a double-free here would mean
    /// the engine duplicated or lost a packet.
    #[inline]
    pub fn free(&mut self, r: PacketRef) -> Packet<P> {
        let pkt = self.slots[r.0 as usize]
            .take()
            .expect("PacketRef freed twice or never allocated"); // trim-lint: allow(no-panic-in-library, reason = "documented panic: a double-free means the engine duplicated a packet")
        self.live -= 1;
        self.free.push(r.0);
        pkt
    }

    /// Read access to a live packet.
    #[inline]
    pub fn get(&self, r: PacketRef) -> &Packet<P> {
        self.slots[r.0 as usize]
            .as_ref()
            .expect("PacketRef dangling: slot already freed") // trim-lint: allow(no-panic-in-library, reason = "documented panic: a dangling ref means the engine lost a packet")
    }

    /// Number of packets currently allocated.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak concurrent allocation over the arena's lifetime.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total slots ever created (live + recyclable).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, Packet, TagPayload};
    use crate::time::SimTime;

    fn pkt(uid: u64) -> Packet<TagPayload> {
        Packet {
            src: NodeId(0),
            dst: NodeId(1),
            flow: FlowId(9),
            size: 1500,
            sent_at: SimTime::ZERO,
            uid,
            payload: TagPayload(7),
        }
    }

    #[test]
    fn alloc_free_round_trips_packets() {
        let mut a = PacketArena::new();
        let r1 = a.alloc(pkt(1));
        let r2 = a.alloc(pkt(2));
        assert_eq!(a.live(), 2);
        assert_eq!(a.get(r1).uid, 1);
        assert_eq!(a.get(r2).uid, 2);
        assert_eq!(a.free(r1).uid, 1);
        assert_eq!(a.free(r2).uid, 2);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn freed_slots_are_recycled_not_grown() {
        let mut a = PacketArena::new();
        let refs: Vec<_> = (0..64).map(|i| a.alloc(pkt(i))).collect();
        assert_eq!(a.capacity(), 64);
        for r in refs {
            a.free(r);
        }
        // Steady state: churn through many more packets than peak
        // concurrency without growing the slab.
        for round in 0..100u64 {
            let refs: Vec<_> = (0..64).map(|i| a.alloc(pkt(round * 64 + i))).collect();
            for r in refs {
                a.free(r);
            }
        }
        assert_eq!(a.capacity(), 64, "freelist must recycle slots");
        assert_eq!(a.high_water(), 64);
        assert_eq!(a.live(), 0);
    }

    #[test]
    #[should_panic(expected = "freed twice")]
    fn double_free_panics() {
        let mut a = PacketArena::new();
        let r = a.alloc(pkt(1));
        a.free(r);
        a.free(r);
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut a = PacketArena::new();
        let r1 = a.alloc(pkt(1));
        let r2 = a.alloc(pkt(2));
        a.free(r1);
        a.free(r2);
        assert_eq!(a.live(), 0);
        assert_eq!(a.high_water(), 2);
        a.alloc(pkt(3));
        assert_eq!(a.high_water(), 2);
    }
}
