//! Time-series helpers for experiment output: throughput meters,
//! fixed-width binning, and the packet-event trace.

use crate::packet::{ChannelId, FlowId, NodeId};
use crate::time::{Dur, SimTime};

/// What happened to a packet, for the packet-event trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketEventKind {
    /// A host handed the packet to its uplink.
    Sent {
        /// The sending host.
        node: NodeId,
    },
    /// The packet arrived at its destination host.
    Delivered {
        /// The receiving host.
        node: NodeId,
    },
    /// A queue dropped the packet.
    Dropped {
        /// The channel whose queue overflowed.
        channel: ChannelId,
    },
}

/// One record in the packet-event trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PacketEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: PacketEventKind,
    /// Source host of the packet.
    pub src: NodeId,
    /// Destination host of the packet.
    pub dst: NodeId,
    /// Flow label.
    pub flow: FlowId,
    /// Wire size in bytes.
    pub size: u32,
}

/// A bounded in-memory packet-event recorder (pcap-style, without
/// payloads). Enabled per simulator via
/// [`Simulator::enable_packet_trace`](crate::sim::Simulator::enable_packet_trace).
#[derive(Clone, Debug)]
pub struct PacketTrace {
    events: Vec<PacketEvent>,
    cap: usize,
    dropped_events: u64,
}

impl PacketTrace {
    pub(crate) fn new(cap: usize) -> Self {
        PacketTrace {
            events: Vec::new(),
            cap,
            dropped_events: 0,
        }
    }

    pub(crate) fn record(&mut self, ev: PacketEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped_events += 1;
        }
    }

    /// The recorded events, in simulation order.
    pub fn events(&self) -> &[PacketEvent] {
        &self.events
    }

    /// Whether the capacity was reached and later events were discarded.
    pub fn is_truncated(&self) -> bool {
        self.dropped_events > 0
    }

    /// How many events were discarded after the capacity was reached.
    /// `events().len() + dropped_events()` is the number of packet
    /// events the simulation actually produced, so a test can assert
    /// that a trace captured everything (`dropped_events() == 0`) or
    /// size the gap when it did not.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Events of one flow, filtered by kind.
    pub fn flow_events(
        &self,
        flow: FlowId,
        kind_filter: impl Fn(&PacketEventKind) -> bool,
    ) -> Vec<PacketEvent> {
        self.events
            .iter()
            .filter(|e| e.flow == flow && kind_filter(&e.kind))
            .copied()
            .collect()
    }
}

/// Accumulates byte arrivals into fixed-width time bins and reports
/// per-bin throughput. This is how the paper's throughput-vs-time plots
/// (Fig. 4(a), 6(a), 10) are produced.
///
/// ```
/// use netsim::time::{Dur, SimTime};
/// use netsim::trace::ThroughputMeter;
///
/// let mut m = ThroughputMeter::new(Dur::from_millis(10));
/// m.record(SimTime::from_secs_f64(0.001), 1_250_000); // 1.25 MB in bin 0
/// m.record(SimTime::from_secs_f64(0.015), 2_500_000); // 2.5 MB in bin 1
/// let series = m.mbps_series();
/// assert_eq!(series.len(), 2);
/// assert!((series[0].1 - 1000.0).abs() < 1e-9); // 1.25MB/10ms = 1 Gbps
/// assert!((series[1].1 - 2000.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct ThroughputMeter {
    bin: Dur,
    bytes: Vec<u64>,
}

impl ThroughputMeter {
    /// Creates a meter with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn new(bin: Dur) -> Self {
        assert!(bin > Dur::ZERO, "bin width must be positive");
        ThroughputMeter {
            bin,
            bytes: Vec::new(),
        }
    }

    /// Records `bytes` arriving at time `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        let idx = (at.as_nanos() / self.bin.as_nanos()) as usize;
        if idx >= self.bytes.len() {
            self.bytes.resize(idx + 1, 0);
        }
        self.bytes[idx] += bytes;
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// The bin width.
    pub fn bin_width(&self) -> Dur {
        self.bin
    }

    /// Per-bin throughput as `(bin start time, Mbps)` pairs.
    pub fn mbps_series(&self) -> Vec<(SimTime, f64)> {
        let bin_s = self.bin.as_secs_f64();
        self.bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                (
                    SimTime::from_nanos(i as u64 * self.bin.as_nanos()),
                    b as f64 * 8.0 / bin_s / 1e6,
                )
            })
            .collect()
    }

    /// Average throughput in Mbps between two instants (by whole bins).
    pub fn average_mbps(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let lo = (from.as_nanos() / self.bin.as_nanos()) as usize;
        let hi = ((to.as_nanos().saturating_sub(1)) / self.bin.as_nanos()) as usize;
        let total: u64 = self
            .bytes
            .iter()
            .enumerate()
            .filter(|(i, _)| *i >= lo && *i <= hi)
            .map(|(_, b)| *b)
            .sum();
        total as f64 * 8.0 / (to - from).as_secs_f64() / 1e6
    }
}

/// A generic `(time, value)` series sampled by protocol code, e.g. the
/// congestion-window evolution plots (Fig. 4(b), 6(b)).
#[derive(Clone, Debug, Default)]
pub struct Series {
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Series::default()
    }

    /// Appends a point. Points should be appended in time order.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at, value));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The maximum value, or `None` when empty.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|(_, v)| *v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }

    /// The last value at or before `at`, or `None` if the series has no
    /// point that early.
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        match self.points.partition_point(|(t, _)| *t <= at) {
            0 => None,
            i => Some(self.points[i - 1].1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_bins_and_totals() {
        let mut m = ThroughputMeter::new(Dur::from_millis(1));
        m.record(SimTime::from_nanos(0), 100);
        m.record(SimTime::from_nanos(999_999), 100);
        m.record(SimTime::from_nanos(1_000_000), 100);
        assert_eq!(m.total_bytes(), 300);
        let s = m.mbps_series();
        assert_eq!(s.len(), 2);
        assert!((s[0].1 - 1.6).abs() < 1e-9); // 200 B/ms = 1.6 Mbps
        assert!((s[1].1 - 0.8).abs() < 1e-9);
    }

    #[test]
    fn meter_average_window() {
        let mut m = ThroughputMeter::new(Dur::from_millis(1));
        m.record(SimTime::from_nanos(500_000), 1000);
        m.record(SimTime::from_nanos(1_500_000), 3000);
        // Average over [0, 2ms): 4000 B / 2 ms = 16 Mbps.
        let avg = m.average_mbps(SimTime::ZERO, SimTime::from_nanos(2_000_000));
        assert!((avg - 16.0).abs() < 1e-9);
        assert_eq!(m.average_mbps(SimTime::ZERO, SimTime::ZERO), 0.0);
    }

    #[test]
    fn series_queries() {
        let mut s = Series::new();
        assert!(s.is_empty());
        assert_eq!(s.value_at(SimTime::from_secs(1)), None);
        s.push(SimTime::from_secs(1), 10.0);
        s.push(SimTime::from_secs(2), 30.0);
        s.push(SimTime::from_secs(3), 20.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_value(), Some(30.0));
        assert_eq!(s.value_at(SimTime::from_secs(2)), Some(30.0));
        assert_eq!(s.value_at(SimTime::from_nanos(2_500_000_000)), Some(30.0));
        assert_eq!(s.value_at(SimTime::from_nanos(500_000_000)), None);
    }

    #[test]
    #[should_panic]
    fn zero_bin_rejected() {
        let _ = ThroughputMeter::new(Dur::ZERO);
    }
}
